file(REMOVE_RECURSE
  "CMakeFiles/pgxd_sim_tool.dir/pgxd_sim.cpp.o"
  "CMakeFiles/pgxd_sim_tool.dir/pgxd_sim.cpp.o.d"
  "pgxd_sim"
  "pgxd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
