# Empty dependencies file for pgxd_sim_tool.
# This may be replaced when dependencies are built.
