# Empty compiler generated dependencies file for fig4_distributions.
# This may be replaced when dependencies are built.
