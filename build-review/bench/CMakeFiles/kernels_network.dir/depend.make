# Empty dependencies file for kernels_network.
# This may be replaced when dependencies are built.
