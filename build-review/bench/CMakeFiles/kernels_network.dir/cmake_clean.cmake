file(REMOVE_RECURSE
  "CMakeFiles/kernels_network.dir/kernels_network.cpp.o"
  "CMakeFiles/kernels_network.dir/kernels_network.cpp.o.d"
  "kernels_network"
  "kernels_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
