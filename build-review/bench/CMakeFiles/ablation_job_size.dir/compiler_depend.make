# Empty compiler generated dependencies file for ablation_job_size.
# This may be replaced when dependencies are built.
