file(REMOVE_RECURSE
  "CMakeFiles/ablation_job_size.dir/ablation_job_size.cpp.o"
  "CMakeFiles/ablation_job_size.dir/ablation_job_size.cpp.o.d"
  "ablation_job_size"
  "ablation_job_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_job_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
