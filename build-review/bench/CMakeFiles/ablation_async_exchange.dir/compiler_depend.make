# Empty compiler generated dependencies file for ablation_async_exchange.
# This may be replaced when dependencies are built.
