file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_exchange.dir/ablation_async_exchange.cpp.o"
  "CMakeFiles/ablation_async_exchange.dir/ablation_async_exchange.cpp.o.d"
  "ablation_async_exchange"
  "ablation_async_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
