# Empty dependencies file for kernels_scheduling.
# This may be replaced when dependencies are built.
