file(REMOVE_RECURSE
  "CMakeFiles/kernels_scheduling.dir/kernels_scheduling.cpp.o"
  "CMakeFiles/kernels_scheduling.dir/kernels_scheduling.cpp.o.d"
  "kernels_scheduling"
  "kernels_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
