file(REMOVE_RECURSE
  "CMakeFiles/fig5_total_time.dir/fig5_total_time.cpp.o"
  "CMakeFiles/fig5_total_time.dir/fig5_total_time.cpp.o.d"
  "fig5_total_time"
  "fig5_total_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_total_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
