# Empty dependencies file for fig5_total_time.
# This may be replaced when dependencies are built.
