file(REMOVE_RECURSE
  "CMakeFiles/ablation_investigator.dir/ablation_investigator.cpp.o"
  "CMakeFiles/ablation_investigator.dir/ablation_investigator.cpp.o.d"
  "ablation_investigator"
  "ablation_investigator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_investigator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
