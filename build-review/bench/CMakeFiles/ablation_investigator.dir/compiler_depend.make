# Empty compiler generated dependencies file for ablation_investigator.
# This may be replaced when dependencies are built.
