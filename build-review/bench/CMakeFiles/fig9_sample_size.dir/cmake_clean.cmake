file(REMOVE_RECURSE
  "CMakeFiles/fig9_sample_size.dir/fig9_sample_size.cpp.o"
  "CMakeFiles/fig9_sample_size.dir/fig9_sample_size.cpp.o.d"
  "fig9_sample_size"
  "fig9_sample_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sample_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
