# Empty dependencies file for fig9_sample_size.
# This may be replaced when dependencies are built.
