file(REMOVE_RECURSE
  "CMakeFiles/fig6_strong_scaling.dir/fig6_strong_scaling.cpp.o"
  "CMakeFiles/fig6_strong_scaling.dir/fig6_strong_scaling.cpp.o.d"
  "fig6_strong_scaling"
  "fig6_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
