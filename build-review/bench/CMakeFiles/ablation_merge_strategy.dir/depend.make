# Empty dependencies file for ablation_merge_strategy.
# This may be replaced when dependencies are built.
