file(REMOVE_RECURSE
  "CMakeFiles/ablation_merge_strategy.dir/ablation_merge_strategy.cpp.o"
  "CMakeFiles/ablation_merge_strategy.dir/ablation_merge_strategy.cpp.o.d"
  "ablation_merge_strategy"
  "ablation_merge_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
