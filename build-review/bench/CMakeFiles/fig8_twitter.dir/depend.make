# Empty dependencies file for fig8_twitter.
# This may be replaced when dependencies are built.
