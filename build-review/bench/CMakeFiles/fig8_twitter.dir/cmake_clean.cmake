file(REMOVE_RECURSE
  "CMakeFiles/fig8_twitter.dir/fig8_twitter.cpp.o"
  "CMakeFiles/fig8_twitter.dir/fig8_twitter.cpp.o.d"
  "fig8_twitter"
  "fig8_twitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
