# Empty dependencies file for table3_ranges.
# This may be replaced when dependencies are built.
