file(REMOVE_RECURSE
  "CMakeFiles/table3_ranges.dir/table3_ranges.cpp.o"
  "CMakeFiles/table3_ranges.dir/table3_ranges.cpp.o.d"
  "table3_ranges"
  "table3_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
