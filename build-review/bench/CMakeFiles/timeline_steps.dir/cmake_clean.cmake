file(REMOVE_RECURSE
  "CMakeFiles/timeline_steps.dir/timeline_steps.cpp.o"
  "CMakeFiles/timeline_steps.dir/timeline_steps.cpp.o.d"
  "timeline_steps"
  "timeline_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
