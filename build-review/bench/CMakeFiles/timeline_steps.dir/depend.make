# Empty dependencies file for timeline_steps.
# This may be replaced when dependencies are built.
