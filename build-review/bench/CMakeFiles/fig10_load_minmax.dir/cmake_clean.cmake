file(REMOVE_RECURSE
  "CMakeFiles/fig10_load_minmax.dir/fig10_load_minmax.cpp.o"
  "CMakeFiles/fig10_load_minmax.dir/fig10_load_minmax.cpp.o.d"
  "fig10_load_minmax"
  "fig10_load_minmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_load_minmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
