# Empty compiler generated dependencies file for fig10_load_minmax.
# This may be replaced when dependencies are built.
