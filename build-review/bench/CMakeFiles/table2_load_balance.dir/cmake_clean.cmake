file(REMOVE_RECURSE
  "CMakeFiles/table2_load_balance.dir/table2_load_balance.cpp.o"
  "CMakeFiles/table2_load_balance.dir/table2_load_balance.cpp.o.d"
  "table2_load_balance"
  "table2_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
