# Empty compiler generated dependencies file for table2_load_balance.
# This may be replaced when dependencies are built.
