# Empty compiler generated dependencies file for weak_scaling.
# This may be replaced when dependencies are built.
