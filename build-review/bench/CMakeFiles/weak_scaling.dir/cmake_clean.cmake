file(REMOVE_RECURSE
  "CMakeFiles/weak_scaling.dir/weak_scaling.cpp.o"
  "CMakeFiles/weak_scaling.dir/weak_scaling.cpp.o.d"
  "weak_scaling"
  "weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
