# Empty dependencies file for kernels_local_sort.
# This may be replaced when dependencies are built.
