file(REMOVE_RECURSE
  "CMakeFiles/kernels_local_sort.dir/kernels_local_sort.cpp.o"
  "CMakeFiles/kernels_local_sort.dir/kernels_local_sort.cpp.o.d"
  "kernels_local_sort"
  "kernels_local_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_local_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
