file(REMOVE_RECURSE
  "CMakeFiles/fig11_memory.dir/fig11_memory.cpp.o"
  "CMakeFiles/fig11_memory.dir/fig11_memory.cpp.o.d"
  "fig11_memory"
  "fig11_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
