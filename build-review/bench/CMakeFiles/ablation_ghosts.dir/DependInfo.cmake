
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_ghosts.cpp" "bench/CMakeFiles/ablation_ghosts.dir/ablation_ghosts.cpp.o" "gcc" "bench/CMakeFiles/ablation_ghosts.dir/ablation_ghosts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/pgxd_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spark/CMakeFiles/pgxd_spark.dir/DependInfo.cmake"
  "/root/repo/build-review/src/datagen/CMakeFiles/pgxd_datagen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/pgxd_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analytics/CMakeFiles/pgxd_analytics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/pgxd_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/pgxd_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/pgxd_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/pgxd_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/pgxd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
