file(REMOVE_RECURSE
  "CMakeFiles/ablation_ghosts.dir/ablation_ghosts.cpp.o"
  "CMakeFiles/ablation_ghosts.dir/ablation_ghosts.cpp.o.d"
  "ablation_ghosts"
  "ablation_ghosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ghosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
