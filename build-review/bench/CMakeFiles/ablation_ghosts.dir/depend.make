# Empty dependencies file for ablation_ghosts.
# This may be replaced when dependencies are built.
