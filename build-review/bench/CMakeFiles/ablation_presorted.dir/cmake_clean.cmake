file(REMOVE_RECURSE
  "CMakeFiles/ablation_presorted.dir/ablation_presorted.cpp.o"
  "CMakeFiles/ablation_presorted.dir/ablation_presorted.cpp.o.d"
  "ablation_presorted"
  "ablation_presorted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_presorted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
