# Empty dependencies file for ablation_presorted.
# This may be replaced when dependencies are built.
