file(REMOVE_RECURSE
  "CMakeFiles/fig7_step_breakdown.dir/fig7_step_breakdown.cpp.o"
  "CMakeFiles/fig7_step_breakdown.dir/fig7_step_breakdown.cpp.o.d"
  "fig7_step_breakdown"
  "fig7_step_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_step_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
