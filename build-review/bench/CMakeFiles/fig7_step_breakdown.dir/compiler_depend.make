# Empty compiler generated dependencies file for fig7_step_breakdown.
# This may be replaced when dependencies are built.
