# Empty dependencies file for twitter_degree_sort.
# This may be replaced when dependencies are built.
