file(REMOVE_RECURSE
  "CMakeFiles/twitter_degree_sort.dir/twitter_degree_sort.cpp.o"
  "CMakeFiles/twitter_degree_sort.dir/twitter_degree_sort.cpp.o.d"
  "twitter_degree_sort"
  "twitter_degree_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_degree_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
