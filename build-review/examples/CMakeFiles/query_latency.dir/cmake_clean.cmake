file(REMOVE_RECURSE
  "CMakeFiles/query_latency.dir/query_latency.cpp.o"
  "CMakeFiles/query_latency.dir/query_latency.cpp.o.d"
  "query_latency"
  "query_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
