# Empty compiler generated dependencies file for query_latency.
# This may be replaced when dependencies are built.
