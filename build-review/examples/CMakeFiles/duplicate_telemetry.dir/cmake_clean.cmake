file(REMOVE_RECURSE
  "CMakeFiles/duplicate_telemetry.dir/duplicate_telemetry.cpp.o"
  "CMakeFiles/duplicate_telemetry.dir/duplicate_telemetry.cpp.o.d"
  "duplicate_telemetry"
  "duplicate_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplicate_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
