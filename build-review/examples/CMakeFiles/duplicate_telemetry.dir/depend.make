# Empty dependencies file for duplicate_telemetry.
# This may be replaced when dependencies are built.
