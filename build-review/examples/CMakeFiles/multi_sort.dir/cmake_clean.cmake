file(REMOVE_RECURSE
  "CMakeFiles/multi_sort.dir/multi_sort.cpp.o"
  "CMakeFiles/multi_sort.dir/multi_sort.cpp.o.d"
  "multi_sort"
  "multi_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
