# Empty compiler generated dependencies file for multi_sort.
# This may be replaced when dependencies are built.
