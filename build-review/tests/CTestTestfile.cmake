# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/common_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/net_test[1]_include.cmake")
include("/root/repo/build-review/tests/sort_kernels_test[1]_include.cmake")
include("/root/repo/build-review/tests/timsort_test[1]_include.cmake")
include("/root/repo/build-review/tests/balanced_merge_test[1]_include.cmake")
include("/root/repo/build-review/tests/runtime_test[1]_include.cmake")
include("/root/repo/build-review/tests/splitters_test[1]_include.cmake")
include("/root/repo/build-review/tests/distributed_sort_test[1]_include.cmake")
include("/root/repo/build-review/tests/datagen_test[1]_include.cmake")
include("/root/repo/build-review/tests/graph_test[1]_include.cmake")
include("/root/repo/build-review/tests/spark_test[1]_include.cmake")
include("/root/repo/build-review/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-review/tests/queries_test[1]_include.cmake")
include("/root/repo/build-review/tests/radix_sort_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_fuzz_test[1]_include.cmake")
include("/root/repo/build-review/tests/timsort_exhaustive_test[1]_include.cmake")
include("/root/repo/build-review/tests/collectives_test[1]_include.cmake")
include("/root/repo/build-review/tests/trace_test[1]_include.cmake")
include("/root/repo/build-review/tests/net_fuzz_test[1]_include.cmake")
include("/root/repo/build-review/tests/validate_test[1]_include.cmake")
include("/root/repo/build-review/tests/analytics_test[1]_include.cmake")
include("/root/repo/build-review/tests/kway_merge_test[1]_include.cmake")
include("/root/repo/build-review/tests/config_matrix_test[1]_include.cmake")
include("/root/repo/build-review/tests/work_stealing_test[1]_include.cmake")
include("/root/repo/build-review/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build-review/tests/buffer_pool_test[1]_include.cmake")
