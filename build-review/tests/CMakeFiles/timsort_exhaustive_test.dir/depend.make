# Empty dependencies file for timsort_exhaustive_test.
# This may be replaced when dependencies are built.
