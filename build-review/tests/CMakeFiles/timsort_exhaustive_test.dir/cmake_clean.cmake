file(REMOVE_RECURSE
  "CMakeFiles/timsort_exhaustive_test.dir/timsort_exhaustive_test.cpp.o"
  "CMakeFiles/timsort_exhaustive_test.dir/timsort_exhaustive_test.cpp.o.d"
  "timsort_exhaustive_test"
  "timsort_exhaustive_test.pdb"
  "timsort_exhaustive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timsort_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
