file(REMOVE_RECURSE
  "CMakeFiles/sim_fuzz_test.dir/sim_fuzz_test.cpp.o"
  "CMakeFiles/sim_fuzz_test.dir/sim_fuzz_test.cpp.o.d"
  "sim_fuzz_test"
  "sim_fuzz_test.pdb"
  "sim_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
