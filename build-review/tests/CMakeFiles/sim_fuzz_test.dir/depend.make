# Empty dependencies file for sim_fuzz_test.
# This may be replaced when dependencies are built.
