file(REMOVE_RECURSE
  "CMakeFiles/work_stealing_test.dir/work_stealing_test.cpp.o"
  "CMakeFiles/work_stealing_test.dir/work_stealing_test.cpp.o.d"
  "work_stealing_test"
  "work_stealing_test.pdb"
  "work_stealing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_stealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
