# Empty dependencies file for parallel_kway_merge_test.
# This may be replaced when dependencies are built.
