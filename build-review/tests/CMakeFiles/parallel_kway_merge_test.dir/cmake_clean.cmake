file(REMOVE_RECURSE
  "CMakeFiles/parallel_kway_merge_test.dir/parallel_kway_merge_test.cpp.o"
  "CMakeFiles/parallel_kway_merge_test.dir/parallel_kway_merge_test.cpp.o.d"
  "parallel_kway_merge_test"
  "parallel_kway_merge_test.pdb"
  "parallel_kway_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_kway_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
