file(REMOVE_RECURSE
  "CMakeFiles/sort_kernels_test.dir/sort_kernels_test.cpp.o"
  "CMakeFiles/sort_kernels_test.dir/sort_kernels_test.cpp.o.d"
  "sort_kernels_test"
  "sort_kernels_test.pdb"
  "sort_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
