file(REMOVE_RECURSE
  "CMakeFiles/balanced_merge_test.dir/balanced_merge_test.cpp.o"
  "CMakeFiles/balanced_merge_test.dir/balanced_merge_test.cpp.o.d"
  "balanced_merge_test"
  "balanced_merge_test.pdb"
  "balanced_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balanced_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
