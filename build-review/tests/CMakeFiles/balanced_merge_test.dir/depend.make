# Empty dependencies file for balanced_merge_test.
# This may be replaced when dependencies are built.
