file(REMOVE_RECURSE
  "CMakeFiles/concurrency_stress_test.dir/concurrency_stress_test.cpp.o"
  "CMakeFiles/concurrency_stress_test.dir/concurrency_stress_test.cpp.o.d"
  "concurrency_stress_test"
  "concurrency_stress_test.pdb"
  "concurrency_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
