file(REMOVE_RECURSE
  "CMakeFiles/queries_test.dir/queries_test.cpp.o"
  "CMakeFiles/queries_test.dir/queries_test.cpp.o.d"
  "queries_test"
  "queries_test.pdb"
  "queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
