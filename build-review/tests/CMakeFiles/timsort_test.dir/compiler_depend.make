# Empty compiler generated dependencies file for timsort_test.
# This may be replaced when dependencies are built.
