file(REMOVE_RECURSE
  "CMakeFiles/timsort_test.dir/timsort_test.cpp.o"
  "CMakeFiles/timsort_test.dir/timsort_test.cpp.o.d"
  "timsort_test"
  "timsort_test.pdb"
  "timsort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timsort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
