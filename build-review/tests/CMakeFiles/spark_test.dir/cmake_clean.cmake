file(REMOVE_RECURSE
  "CMakeFiles/spark_test.dir/spark_test.cpp.o"
  "CMakeFiles/spark_test.dir/spark_test.cpp.o.d"
  "spark_test"
  "spark_test.pdb"
  "spark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
