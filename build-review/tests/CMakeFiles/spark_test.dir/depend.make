# Empty dependencies file for spark_test.
# This may be replaced when dependencies are built.
