# Empty dependencies file for local_sort_test.
# This may be replaced when dependencies are built.
