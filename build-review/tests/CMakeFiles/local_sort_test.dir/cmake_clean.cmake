file(REMOVE_RECURSE
  "CMakeFiles/local_sort_test.dir/local_sort_test.cpp.o"
  "CMakeFiles/local_sort_test.dir/local_sort_test.cpp.o.d"
  "local_sort_test"
  "local_sort_test.pdb"
  "local_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
