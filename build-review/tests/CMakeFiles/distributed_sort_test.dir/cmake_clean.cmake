file(REMOVE_RECURSE
  "CMakeFiles/distributed_sort_test.dir/distributed_sort_test.cpp.o"
  "CMakeFiles/distributed_sort_test.dir/distributed_sort_test.cpp.o.d"
  "distributed_sort_test"
  "distributed_sort_test.pdb"
  "distributed_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
