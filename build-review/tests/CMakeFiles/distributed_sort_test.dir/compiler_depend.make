# Empty compiler generated dependencies file for distributed_sort_test.
# This may be replaced when dependencies are built.
