file(REMOVE_RECURSE
  "CMakeFiles/radix_sort_test.dir/radix_sort_test.cpp.o"
  "CMakeFiles/radix_sort_test.dir/radix_sort_test.cpp.o.d"
  "radix_sort_test"
  "radix_sort_test.pdb"
  "radix_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radix_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
