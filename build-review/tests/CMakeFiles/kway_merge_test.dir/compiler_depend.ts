# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for kway_merge_test.
