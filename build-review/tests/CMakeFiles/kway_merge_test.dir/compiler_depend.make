# Empty compiler generated dependencies file for kway_merge_test.
# This may be replaced when dependencies are built.
