file(REMOVE_RECURSE
  "CMakeFiles/kway_merge_test.dir/kway_merge_test.cpp.o"
  "CMakeFiles/kway_merge_test.dir/kway_merge_test.cpp.o.d"
  "kway_merge_test"
  "kway_merge_test.pdb"
  "kway_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kway_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
