# Empty dependencies file for splitters_test.
# This may be replaced when dependencies are built.
