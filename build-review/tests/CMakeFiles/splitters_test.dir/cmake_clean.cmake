file(REMOVE_RECURSE
  "CMakeFiles/splitters_test.dir/splitters_test.cpp.o"
  "CMakeFiles/splitters_test.dir/splitters_test.cpp.o.d"
  "splitters_test"
  "splitters_test.pdb"
  "splitters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
