file(REMOVE_RECURSE
  "CMakeFiles/net_fuzz_test.dir/net_fuzz_test.cpp.o"
  "CMakeFiles/net_fuzz_test.dir/net_fuzz_test.cpp.o.d"
  "net_fuzz_test"
  "net_fuzz_test.pdb"
  "net_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
