file(REMOVE_RECURSE
  "libpgxd_net.a"
)
