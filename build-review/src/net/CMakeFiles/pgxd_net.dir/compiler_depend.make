# Empty compiler generated dependencies file for pgxd_net.
# This may be replaced when dependencies are built.
