file(REMOVE_RECURSE
  "CMakeFiles/pgxd_net.dir/fabric.cpp.o"
  "CMakeFiles/pgxd_net.dir/fabric.cpp.o.d"
  "libpgxd_net.a"
  "libpgxd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
