# Empty dependencies file for pgxd_obs.
# This may be replaced when dependencies are built.
