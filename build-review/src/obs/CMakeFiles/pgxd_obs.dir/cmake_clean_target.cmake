file(REMOVE_RECURSE
  "libpgxd_obs.a"
)
