file(REMOVE_RECURSE
  "CMakeFiles/pgxd_obs.dir/metrics.cpp.o"
  "CMakeFiles/pgxd_obs.dir/metrics.cpp.o.d"
  "libpgxd_obs.a"
  "libpgxd_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
