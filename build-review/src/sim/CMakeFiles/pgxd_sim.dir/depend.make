# Empty dependencies file for pgxd_sim.
# This may be replaced when dependencies are built.
