file(REMOVE_RECURSE
  "CMakeFiles/pgxd_sim.dir/simulator.cpp.o"
  "CMakeFiles/pgxd_sim.dir/simulator.cpp.o.d"
  "libpgxd_sim.a"
  "libpgxd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
