file(REMOVE_RECURSE
  "libpgxd_sim.a"
)
