# Empty compiler generated dependencies file for pgxd_core.
# This may be replaced when dependencies are built.
