file(REMOVE_RECURSE
  "CMakeFiles/pgxd_core.dir/config.cpp.o"
  "CMakeFiles/pgxd_core.dir/config.cpp.o.d"
  "libpgxd_core.a"
  "libpgxd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
