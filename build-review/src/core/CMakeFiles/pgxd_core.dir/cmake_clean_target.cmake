file(REMOVE_RECURSE
  "libpgxd_core.a"
)
