
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/pgxd_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/pgxd_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/generate.cpp" "src/graph/CMakeFiles/pgxd_graph.dir/generate.cpp.o" "gcc" "src/graph/CMakeFiles/pgxd_graph.dir/generate.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/pgxd_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/pgxd_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/graph/CMakeFiles/pgxd_graph.dir/partition.cpp.o" "gcc" "src/graph/CMakeFiles/pgxd_graph.dir/partition.cpp.o.d"
  "/root/repo/src/graph/twitter.cpp" "src/graph/CMakeFiles/pgxd_graph.dir/twitter.cpp.o" "gcc" "src/graph/CMakeFiles/pgxd_graph.dir/twitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pgxd_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/datagen/CMakeFiles/pgxd_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
