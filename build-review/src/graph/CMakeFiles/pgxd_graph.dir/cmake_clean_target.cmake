file(REMOVE_RECURSE
  "libpgxd_graph.a"
)
