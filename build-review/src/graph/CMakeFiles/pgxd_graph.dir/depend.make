# Empty dependencies file for pgxd_graph.
# This may be replaced when dependencies are built.
