file(REMOVE_RECURSE
  "CMakeFiles/pgxd_graph.dir/csr.cpp.o"
  "CMakeFiles/pgxd_graph.dir/csr.cpp.o.d"
  "CMakeFiles/pgxd_graph.dir/generate.cpp.o"
  "CMakeFiles/pgxd_graph.dir/generate.cpp.o.d"
  "CMakeFiles/pgxd_graph.dir/io.cpp.o"
  "CMakeFiles/pgxd_graph.dir/io.cpp.o.d"
  "CMakeFiles/pgxd_graph.dir/partition.cpp.o"
  "CMakeFiles/pgxd_graph.dir/partition.cpp.o.d"
  "CMakeFiles/pgxd_graph.dir/twitter.cpp.o"
  "CMakeFiles/pgxd_graph.dir/twitter.cpp.o.d"
  "libpgxd_graph.a"
  "libpgxd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
