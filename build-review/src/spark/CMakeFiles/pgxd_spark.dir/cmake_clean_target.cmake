file(REMOVE_RECURSE
  "libpgxd_spark.a"
)
