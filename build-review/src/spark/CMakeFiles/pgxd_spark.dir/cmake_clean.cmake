file(REMOVE_RECURSE
  "CMakeFiles/pgxd_spark.dir/spark.cpp.o"
  "CMakeFiles/pgxd_spark.dir/spark.cpp.o.d"
  "libpgxd_spark.a"
  "libpgxd_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
