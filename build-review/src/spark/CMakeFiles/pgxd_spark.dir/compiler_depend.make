# Empty compiler generated dependencies file for pgxd_spark.
# This may be replaced when dependencies are built.
