# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("obs")
subdirs("net")
subdirs("runtime")
subdirs("sort")
subdirs("datagen")
subdirs("graph")
subdirs("core")
subdirs("baselines")
subdirs("spark")
subdirs("analytics")
