file(REMOVE_RECURSE
  "libpgxd_common.a"
)
