file(REMOVE_RECURSE
  "CMakeFiles/pgxd_common.dir/cli.cpp.o"
  "CMakeFiles/pgxd_common.dir/cli.cpp.o.d"
  "CMakeFiles/pgxd_common.dir/stats.cpp.o"
  "CMakeFiles/pgxd_common.dir/stats.cpp.o.d"
  "CMakeFiles/pgxd_common.dir/table.cpp.o"
  "CMakeFiles/pgxd_common.dir/table.cpp.o.d"
  "CMakeFiles/pgxd_common.dir/thread_pool.cpp.o"
  "CMakeFiles/pgxd_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/pgxd_common.dir/work_stealing_pool.cpp.o"
  "CMakeFiles/pgxd_common.dir/work_stealing_pool.cpp.o.d"
  "libpgxd_common.a"
  "libpgxd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
