# Empty compiler generated dependencies file for pgxd_common.
# This may be replaced when dependencies are built.
