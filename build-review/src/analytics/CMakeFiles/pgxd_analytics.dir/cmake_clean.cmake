file(REMOVE_RECURSE
  "CMakeFiles/pgxd_analytics.dir/analytics.cpp.o"
  "CMakeFiles/pgxd_analytics.dir/analytics.cpp.o.d"
  "libpgxd_analytics.a"
  "libpgxd_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
