file(REMOVE_RECURSE
  "libpgxd_analytics.a"
)
