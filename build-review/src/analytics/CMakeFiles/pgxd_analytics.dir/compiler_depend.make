# Empty compiler generated dependencies file for pgxd_analytics.
# This may be replaced when dependencies are built.
