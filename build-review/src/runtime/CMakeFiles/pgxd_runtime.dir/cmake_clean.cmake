file(REMOVE_RECURSE
  "CMakeFiles/pgxd_runtime.dir/cost_model.cpp.o"
  "CMakeFiles/pgxd_runtime.dir/cost_model.cpp.o.d"
  "libpgxd_runtime.a"
  "libpgxd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
