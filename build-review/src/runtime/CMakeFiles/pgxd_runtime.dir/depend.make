# Empty dependencies file for pgxd_runtime.
# This may be replaced when dependencies are built.
