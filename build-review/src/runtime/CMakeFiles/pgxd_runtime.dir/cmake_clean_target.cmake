file(REMOVE_RECURSE
  "libpgxd_runtime.a"
)
