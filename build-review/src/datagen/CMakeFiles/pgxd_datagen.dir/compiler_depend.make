# Empty compiler generated dependencies file for pgxd_datagen.
# This may be replaced when dependencies are built.
