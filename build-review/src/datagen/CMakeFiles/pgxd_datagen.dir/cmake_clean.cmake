file(REMOVE_RECURSE
  "CMakeFiles/pgxd_datagen.dir/distributions.cpp.o"
  "CMakeFiles/pgxd_datagen.dir/distributions.cpp.o.d"
  "libpgxd_datagen.a"
  "libpgxd_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgxd_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
