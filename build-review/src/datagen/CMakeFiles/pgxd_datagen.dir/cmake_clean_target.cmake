file(REMOVE_RECURSE
  "libpgxd_datagen.a"
)
