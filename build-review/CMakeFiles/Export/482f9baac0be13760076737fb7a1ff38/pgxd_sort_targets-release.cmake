#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "pgxd::pgxd_common" for configuration "Release"
set_property(TARGET pgxd::pgxd_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_common.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_common )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_common "${_IMPORT_PREFIX}/lib/libpgxd_common.a" )

# Import target "pgxd::pgxd_sim" for configuration "Release"
set_property(TARGET pgxd::pgxd_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_sim.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_sim )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_sim "${_IMPORT_PREFIX}/lib/libpgxd_sim.a" )

# Import target "pgxd::pgxd_obs" for configuration "Release"
set_property(TARGET pgxd::pgxd_obs APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_obs PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_obs.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_obs )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_obs "${_IMPORT_PREFIX}/lib/libpgxd_obs.a" )

# Import target "pgxd::pgxd_net" for configuration "Release"
set_property(TARGET pgxd::pgxd_net APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_net PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_net.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_net )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_net "${_IMPORT_PREFIX}/lib/libpgxd_net.a" )

# Import target "pgxd::pgxd_runtime" for configuration "Release"
set_property(TARGET pgxd::pgxd_runtime APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_runtime PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_runtime.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_runtime )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_runtime "${_IMPORT_PREFIX}/lib/libpgxd_runtime.a" )

# Import target "pgxd::pgxd_datagen" for configuration "Release"
set_property(TARGET pgxd::pgxd_datagen APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_datagen PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_datagen.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_datagen )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_datagen "${_IMPORT_PREFIX}/lib/libpgxd_datagen.a" )

# Import target "pgxd::pgxd_graph" for configuration "Release"
set_property(TARGET pgxd::pgxd_graph APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_graph PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_graph.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_graph )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_graph "${_IMPORT_PREFIX}/lib/libpgxd_graph.a" )

# Import target "pgxd::pgxd_core" for configuration "Release"
set_property(TARGET pgxd::pgxd_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_core.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_core )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_core "${_IMPORT_PREFIX}/lib/libpgxd_core.a" )

# Import target "pgxd::pgxd_spark" for configuration "Release"
set_property(TARGET pgxd::pgxd_spark APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_spark PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_spark.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_spark )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_spark "${_IMPORT_PREFIX}/lib/libpgxd_spark.a" )

# Import target "pgxd::pgxd_analytics" for configuration "Release"
set_property(TARGET pgxd::pgxd_analytics APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(pgxd::pgxd_analytics PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libpgxd_analytics.a"
  )

list(APPEND _cmake_import_check_targets pgxd::pgxd_analytics )
list(APPEND _cmake_import_check_files_for_pgxd::pgxd_analytics "${_IMPORT_PREFIX}/lib/libpgxd_analytics.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
