// Weak scaling (supplementary to the paper's strong-scaling Fig. 6): keys
// *per machine* held constant while machines grow. Ideal weak scaling is a
// flat line; deviations expose the O(p)-ish costs (sampling gather at the
// master, splitter broadcast, p-1 exchange partners).
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("per-machine", "keys per machine", "131072");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t per_machine = flags.u64("per-machine");

  print_header("Weak scaling: fixed keys/machine, growing cluster",
               "supplementary experiment (not in the paper)", env);

  Table t({"procs", "total keys", "pgxd (s)", "efficiency", "spark (s)",
           "spark efficiency"});
  double pgxd_base = 0, spark_base = 0;
  for (auto p : env.procs) {
    BenchEnv e = env;
    e.n = per_machine * p;
    const auto pg = run_pgxd(e, p, dist_shards(e, gen::Distribution::kUniform, p));
    const auto sp = run_spark(e, p, dist_shards(e, gen::Distribution::kUniform, p));
    const double pg_s = sim::to_seconds(pg.stats.total_time);
    const double sp_s = sim::to_seconds(sp.total_time);
    if (pgxd_base == 0) {
      pgxd_base = pg_s;
      spark_base = sp_s;
    }
    t.row({std::to_string(p), std::to_string(e.n), Table::fmt(pg_s, 6),
           Table::fmt_pct(pgxd_base / pg_s, 1), Table::fmt(sp_s, 6),
           Table::fmt_pct(spark_base / sp_s, 1)});
  }
  emit(t, flags);
  std::printf("\n'efficiency' = t(first processor count) / t(p); 100%% is "
              "ideal weak scaling.\n");
  return 0;
}
