// Ablation: the Fig. 2 balanced parallel merge handler vs a sequential
// k-way heap merge for the final merge step.
//
// Expectation: the balanced tree parallelizes every level across the
// machine's worker threads, so step (6) shrinks by roughly the thread
// count over the heap merge's single-threaded n*log2(k) pass.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  print_header("Ablation: balanced merge handler (Fig. 2) vs sequential k-way",
               "expectation: balanced tree wins on every processor count", env);

  Table t({"procs", "final-merge balanced (s)", "final-merge k-way (s)",
           "merge speedup", "total balanced (s)", "total k-way (s)"});
  for (auto p : env.procs) {
    core::SortConfig balanced, kway;
    kway.balanced_final_merge = false;
    const auto b = run_pgxd(env, p, dist_shards(env, gen::Distribution::kUniform, p),
                            balanced);
    const auto k = run_pgxd(env, p, dist_shards(env, gen::Distribution::kUniform, p),
                            kway);
    const auto bm = b.stats.steps_max[core::Step::kFinalMerge];
    const auto km = k.stats.steps_max[core::Step::kFinalMerge];
    t.row({std::to_string(p), seconds(bm), seconds(km),
           Table::fmt(static_cast<double>(km) / static_cast<double>(bm), 2) + "x",
           seconds(b.stats.total_time), seconds(k.stats.total_time)});
  }
  emit(t, flags);
  return 0;
}
