// Ablation: the three final-merge strategies for step (6) — the single-pass
// parallel k-way merge (default), the Fig. 2 balanced pairwise tree, and a
// sequential k-way loser-tree pass.
//
// Expectation: the pairwise tree parallelizes every level across the
// machine's worker threads, so it beats the sequential pass by roughly the
// thread count; the single-pass k-way merge then drops the tree's
// once-per-level data movement to one move per element, winning again —
// and more the larger the processor count (more runs, deeper tree).
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  print_header("Ablation: final-merge strategy (parallel k-way vs Fig. 2 "
               "tree vs sequential k-way)",
               "expectation: kway < tree < seq on every processor count",
               env);

  Table t({"procs", "merge kway (s)", "merge tree (s)", "merge seq (s)",
           "kway vs tree", "kway vs seq", "total kway (s)"});
  for (auto p : env.procs) {
    core::SortConfig kway, tree, seq;
    kway.final_merge = core::MergeAlgo::kParallelKway;
    tree.final_merge = core::MergeAlgo::kPairwiseTree;
    seq.final_merge = core::MergeAlgo::kSequentialKway;
    const auto a = run_pgxd(env, p, dist_shards(env, gen::Distribution::kUniform, p),
                            kway);
    const auto b = run_pgxd(env, p, dist_shards(env, gen::Distribution::kUniform, p),
                            tree);
    const auto c = run_pgxd(env, p, dist_shards(env, gen::Distribution::kUniform, p),
                            seq);
    const auto am = a.stats.steps_max[core::Step::kFinalMerge];
    const auto bm = b.stats.steps_max[core::Step::kFinalMerge];
    const auto cm = c.stats.steps_max[core::Step::kFinalMerge];
    t.row({std::to_string(p), seconds(am), seconds(bm), seconds(cm),
           Table::fmt(static_cast<double>(bm) / static_cast<double>(am), 2) + "x",
           Table::fmt(static_cast<double>(cm) / static_cast<double>(am), 2) + "x",
           seconds(a.stats.total_time)});
  }
  emit(t, flags);
  return 0;
}
