// Figure 6 reproduction: strong-scaling speedup of the PGX.D distributed
// sort versus Spark's sortByKey on the same data and simulated cluster.
//
// Paper claim: PGX.D shows visibly better speedup than Spark as processors
// grow (Spark's stage barriers and materialization flatten its curve).
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("dist", "distribution: uniform|normal|right-skewed|exponential",
                "uniform");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  gen::Distribution dist = gen::Distribution::kUniform;
  for (auto d : gen::kAllDistributions)
    if (flags.str("dist") == gen::name(d)) dist = d;

  print_header("Figure 6: strong scaling, PGX.D vs Spark sortByKey",
               "paper: PGX.D speedup curve clearly above Spark's", env);

  const std::size_t base_p = env.procs.front();
  double pgxd_base = 0, spark_base = 0;
  Table t({"procs", "pgxd time (s)", "pgxd speedup", "spark time (s)",
           "spark speedup", "pgxd/spark advantage"});
  for (auto p : env.procs) {
    const auto pg = run_pgxd(env, p, dist_shards(env, dist, p));
    const auto sp = run_spark(env, p, dist_shards(env, dist, p));
    const double pg_s = sim::to_seconds(pg.stats.total_time);
    const double sp_s = sim::to_seconds(sp.total_time);
    if (p == base_p) {
      pgxd_base = pg_s;
      spark_base = sp_s;
    }
    t.row({std::to_string(p), Table::fmt(pg_s, 4),
           Table::fmt(pgxd_base / pg_s, 2) + "x", Table::fmt(sp_s, 4),
           Table::fmt(spark_base / sp_s, 2) + "x",
           Table::fmt(sp_s / pg_s, 2) + "x"});
  }
  emit(t, flags);
  std::printf("\nSpeedups are relative to each engine's own %zu-processor time; "
              "'advantage' is\nSpark time / PGX.D time at equal processors "
              "(paper: around 2x-3x).\n", static_cast<std::size_t>(base_p));
  return 0;
}
