// Microbenchmarks (google-benchmark) of the real local sorting kernels:
// quicksort, TimSort, the balanced merge handler, and Merge-Path parallel
// merge. These are the kernels the simulator's cost model is calibrated
// against (runtime/cost_model.cpp).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/merge.hpp"
#include "sort/parallel_sort.hpp"
#include "sort/quicksort.hpp"
#include "sort/timsort.hpp"

namespace {

using pgxd::Rng;

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t domain,
                                       std::uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = domain ? rng.bounded(domain) : rng.next();
  return v;
}

void BM_Quicksort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_keys(n, 0);
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::quicksort(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Quicksort)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_StdSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_keys(n, 0);
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StdSort)->Arg(1 << 17)->Arg(1 << 20);

void BM_TimsortRandom(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_keys(n, 0);
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::timsort(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimsortRandom)->Arg(1 << 17)->Arg(1 << 20);

// TimSort's home turf: data made of pre-sorted runs (the paper notes Spark
// picked TimSort because "it performs better when the data is partially
// sorted").
void BM_TimsortPresortedRuns(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> base;
  Rng rng(7);
  const std::size_t run_len = 4096;
  while (base.size() < n) {
    std::vector<std::uint64_t> run(std::min(run_len, n - base.size()));
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    base.insert(base.end(), run.begin(), run.end());
  }
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::timsort(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimsortPresortedRuns)->Arg(1 << 20);

void BM_MergeInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_keys(n / 2, 0, 1);
  auto b = random_keys(n / 2, 0, 2);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    pgxd::sort::merge_into<std::uint64_t>(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MergeInto)->Arg(1 << 17)->Arg(1 << 21);

void BM_BalancedMergeTree(benchmark::State& state) {
  const auto runs = static_cast<std::size_t>(state.range(0));
  const std::size_t per_run = (1u << 21) / runs;
  Rng rng(5);
  std::vector<std::uint64_t> base;
  std::vector<std::size_t> bounds{0};
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> run(per_run);
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    base.insert(base.end(), run.begin(), run.end());
    bounds.push_back(base.size());
  }
  std::vector<std::uint64_t> scratch;
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::balanced_merge(v, bounds, scratch);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_BalancedMergeTree)->Arg(4)->Arg(8)->Arg(32);

void BM_ParallelMergePieces(benchmark::State& state) {
  const auto pieces = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 1u << 21;
  auto a = random_keys(n / 2, 0, 1);
  auto b = random_keys(n / 2, 0, 2);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::uint64_t> out(n);
  pgxd::ThreadPool pool(3);
  for (auto _ : state) {
    pgxd::sort::parallel_merge<std::uint64_t>(a, b, out, {}, &pool, pieces);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelMergePieces)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
