// Microbenchmarks (google-benchmark) of the real local sorting kernels:
// quicksort, TimSort, the balanced merge handler, and Merge-Path parallel
// merge. These are the kernels the simulator's cost model is calibrated
// against (runtime/cost_model.cpp).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/local_sort.hpp"
#include "sort/merge.hpp"
#include "sort/parallel_kway_merge.hpp"
#include "sort/parallel_sort.hpp"
#include "sort/quicksort.hpp"
#include "sort/soa_merge.hpp"
#include "sort/timsort.hpp"

namespace {

using pgxd::Rng;

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t domain,
                                       std::uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = domain ? rng.bounded(domain) : rng.next();
  return v;
}

void BM_Quicksort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_keys(n, 0);
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::quicksort(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Quicksort)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

// Duplicate-heavy input: the pdqsort-style equal-range fast path should keep
// this at least as fast as the uniform case, never slower.
void BM_QuicksortDupHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_keys(n, 100);
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::quicksort(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuicksortDupHeavy)->Arg(1 << 20);

// Skewed input: values cluster near zero with a long tail (variable-width
// draws), stressing uneven pivot splits.
void BM_QuicksortSkewed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(41);
  std::vector<std::uint64_t> base(n);
  for (auto& x : base) x = rng.next() >> (rng.bounded(56));
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::quicksort(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuicksortSkewed)->Arg(1 << 20);

// Ablation: scalar Hoare partition instead of the branchless block
// partition. The gap between this and BM_Quicksort is the win attributable
// to the block scheme on branch-miss-heavy uniform data.
void BM_QuicksortClassicPartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_keys(n, 0);
  pgxd::sort::QuicksortConfig cfg;
  cfg.block_partition = false;
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::quicksort(std::span<std::uint64_t>(v), {}, cfg);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuicksortClassicPartition)->Arg(1 << 20);

// Ablation: block partition with the SIMD classify disabled. The gap to
// BM_Quicksort is the win attributable to the AVX2/SSE compress-store
// classify alone.
void BM_QuicksortNoSimd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_keys(n, 0);
  pgxd::sort::QuicksortConfig cfg;
  cfg.simd_partition = false;
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::quicksort(std::span<std::uint64_t>(v), {}, cfg);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuicksortNoSimd)->Arg(1 << 20);

// LSD radix sort on full-width and 32-bit-wide keys — the data points
// behind the adaptive crossover's constants (sort/local_sort.hpp).
void BM_RadixSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto domain = static_cast<std::uint64_t>(state.range(1));
  const auto base = random_keys(n, domain);
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::radix_sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSort)
    ->Args({1 << 20, 0})                       // 8 passes
    ->Args({1 << 20, std::int64_t{1} << 32});  // 4 passes

// The adaptive local sort as the sorter's step (1) runs it: full-width
// keys stay on the comparison sort at this size, 32-bit-wide keys flip to
// radix.
void BM_LocalSortAdaptive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto domain = static_cast<std::uint64_t>(state.range(1));
  const auto base = random_keys(n, domain);
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::local_sort(v, pgxd::sort::LocalSortAlgo::kAdaptive);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LocalSortAdaptive)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, std::int64_t{1} << 32});

void BM_StdSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_keys(n, 0);
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StdSort)->Arg(1 << 17)->Arg(1 << 20);

void BM_TimsortRandom(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_keys(n, 0);
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::timsort(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimsortRandom)->Arg(1 << 17)->Arg(1 << 20);

// TimSort's home turf: data made of pre-sorted runs (the paper notes Spark
// picked TimSort because "it performs better when the data is partially
// sorted").
void BM_TimsortPresortedRuns(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> base;
  Rng rng(7);
  const std::size_t run_len = 4096;
  while (base.size() < n) {
    std::vector<std::uint64_t> run(std::min(run_len, n - base.size()));
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    base.insert(base.end(), run.begin(), run.end());
  }
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::timsort(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimsortPresortedRuns)->Arg(1 << 20);

void BM_MergeInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_keys(n / 2, 0, 1);
  auto b = random_keys(n / 2, 0, 2);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    pgxd::sort::merge_into<std::uint64_t>(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MergeInto)->Arg(1 << 17)->Arg(1 << 21);

void BM_BalancedMergeTree(benchmark::State& state) {
  const auto runs = static_cast<std::size_t>(state.range(0));
  const std::size_t per_run = (1u << 21) / runs;
  Rng rng(5);
  std::vector<std::uint64_t> base;
  std::vector<std::size_t> bounds{0};
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> run(per_run);
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    base.insert(base.end(), run.begin(), run.end());
    bounds.push_back(base.size());
  }
  std::vector<std::uint64_t> scratch;
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::balanced_merge(v, bounds, scratch);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_BalancedMergeTree)->Arg(4)->Arg(8)->Arg(32);

// AoS final merge as the distributed sorter's fallback path runs it:
// full key+provenance records (24 bytes with padding) through every level
// of the Fig. 2 tree. Baseline for BM_BalancedMergeSoaTree.
void BM_BalancedMergeItemTree(benchmark::State& state) {
  struct FatItem {
    std::uint64_t key;
    std::uint32_t src;
    std::uint64_t idx;
  };
  const auto runs = static_cast<std::size_t>(state.range(0));
  const std::size_t per_run = (1u << 21) / runs;
  Rng rng(5);
  std::vector<FatItem> base;
  std::vector<std::size_t> bounds{0};
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> run(per_run);
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    for (std::size_t i = 0; i < run.size(); ++i)
      base.push_back({run[i], static_cast<std::uint32_t>(r), i});
    bounds.push_back(base.size());
  }
  std::vector<FatItem> scratch;
  const auto less = [](const FatItem& a, const FatItem& b) {
    return a.key < b.key;
  };
  for (auto _ : state) {
    auto v = base;
    pgxd::sort::balanced_merge(v, bounds, scratch, less);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_BalancedMergeItemTree)->Arg(4)->Arg(8)->Arg(32);

// SoA merge tree: keys plus a u32 permutation through the same Fig. 2
// schedule, as the distributed sorter's default final merge runs it — 12
// payload bytes per element per level instead of BM_BalancedMergeItemTree's
// 24 (BM_BalancedMergeTree above is the keys-only lower bound).
void BM_BalancedMergeSoaTree(benchmark::State& state) {
  const auto runs = static_cast<std::size_t>(state.range(0));
  const std::size_t per_run = (1u << 21) / runs;
  Rng rng(5);
  std::vector<std::uint64_t> base;
  std::vector<std::size_t> bounds{0};
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> run(per_run);
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    base.insert(base.end(), run.begin(), run.end());
    bounds.push_back(base.size());
  }
  std::vector<std::uint32_t> perm_base(base.size());
  std::vector<std::uint64_t> key_scratch;
  std::vector<std::uint32_t> perm_scratch;
  for (auto _ : state) {
    auto keys = base;
    auto perm = perm_base;
    pgxd::sort::balanced_merge_soa(keys, perm, bounds, key_scratch,
                                   perm_scratch);
    benchmark::DoNotOptimize(keys.data());
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_BalancedMergeSoaTree)->Arg(4)->Arg(8)->Arg(32);

// Single-pass parallel k-way SoA merge over the same input shape as
// BM_BalancedMergeSoaTree: splitter search + one loser tree per range on a
// 3-worker pool (4 merging threads incl. the caller). The tentpole claim —
// one move per element instead of one per level — is this bench against
// that one.
void BM_ParallelKwayMergeSoa(benchmark::State& state) {
  const auto runs = static_cast<std::size_t>(state.range(0));
  const std::size_t per_run = (1u << 21) / runs;
  Rng rng(5);
  std::vector<std::uint64_t> base;
  std::vector<std::size_t> bounds{0};
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> run(per_run);
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    base.insert(base.end(), run.begin(), run.end());
    bounds.push_back(base.size());
  }
  std::vector<std::uint32_t> perm_base(base.size());
  std::vector<std::uint64_t> key_out;
  std::vector<std::uint32_t> perm_out;
  pgxd::ThreadPool pool(3);
  for (auto _ : state) {
    pgxd::sort::parallel_kway_merge_soa(base, perm_base, bounds, key_out,
                                        perm_out, {}, &pool);
    benchmark::DoNotOptimize(key_out.data());
    benchmark::DoNotOptimize(perm_out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_ParallelKwayMergeSoa)->Arg(4)->Arg(8)->Arg(32);

// Sequential single-range variant: isolates the loser tree's one-move-
// per-element gain from the added merge parallelism.
void BM_ParallelKwayMergeSoaSeq(benchmark::State& state) {
  const auto runs = static_cast<std::size_t>(state.range(0));
  const std::size_t per_run = (1u << 21) / runs;
  Rng rng(5);
  std::vector<std::uint64_t> base;
  std::vector<std::size_t> bounds{0};
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> run(per_run);
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    base.insert(base.end(), run.begin(), run.end());
    bounds.push_back(base.size());
  }
  std::vector<std::uint32_t> perm_base(base.size());
  std::vector<std::uint64_t> key_out;
  std::vector<std::uint32_t> perm_out;
  for (auto _ : state) {
    pgxd::sort::parallel_kway_merge_soa(base, perm_base, bounds, key_out,
                                        perm_out, {}, nullptr, 1);
    benchmark::DoNotOptimize(key_out.data());
    benchmark::DoNotOptimize(perm_out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_ParallelKwayMergeSoaSeq)->Arg(32);

void BM_ParallelMergePieces(benchmark::State& state) {
  const auto pieces = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 1u << 21;
  auto a = random_keys(n / 2, 0, 1);
  auto b = random_keys(n / 2, 0, 2);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::uint64_t> out(n);
  pgxd::ThreadPool pool(3);
  for (auto _ : state) {
    pgxd::sort::parallel_merge<std::uint64_t>(a, b, out, {}, &pool, pieces);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelMergePieces)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
