// Job-size crossover: PGX.D's advantage over Spark as a function of the
// dataset size at a fixed cluster. Small jobs are dominated by Spark's
// per-stage scheduling overhead (large advantage); large jobs converge to
// the structural per-row gap (the paper's 2x-3x regime).
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("p", "processor count", "16");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t p = flags.u64("p");

  print_header("Ablation: job size vs PGX.D advantage over Spark",
               "expectation: overhead-dominated at small n, structural 2-3x at large n",
               env);

  Table t({"keys", "pgxd (s)", "spark (s)", "spark/pgxd"});
  for (std::size_t n : {1u << 14, 1u << 17, 1u << 20, 1u << 22, 1u << 23}) {
    BenchEnv e = env;
    e.n = n;
    const auto pg = run_pgxd(e, p, dist_shards(e, gen::Distribution::kUniform, p));
    const auto sp = run_spark(e, p, dist_shards(e, gen::Distribution::kUniform, p));
    t.row({std::to_string(n), seconds(pg.stats.total_time),
           seconds(sp.total_time),
           Table::fmt(static_cast<double>(sp.total_time) /
                          static_cast<double>(pg.stats.total_time),
                      2) +
               "x"});
  }
  emit(t, flags);
  std::printf("\nNote: the Spark stage overhead is the scaled default "
              "(cost_profile.hpp); at real\n1e9-key scale both the overhead "
              "and the work are ~500x larger, same ratio.\n");
  return 0;
}
