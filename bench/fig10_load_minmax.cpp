// Figure 10 reproduction: minimum and maximum per-processor load for three
// sample sizes (0.004X, X, 1.4X) across processor counts, Twitter-like
// dataset.
//
// Paper claims: 0.004X is "not large enough to keep balanced workloads"
// (an average load difference of ~1.3e8 elements at 52 processors on 1B
// keys, i.e. ~13% of n); both X and 1.4X stay balanced everywhere.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::vector<double> factors{0.004, 1.0, 1.4};

  print_header("Figure 10: min/max per-processor load vs sample size",
               "paper: 0.004X unbalanced; X and 1.4X balanced at every p", env);

  // Load figures come from the SortReport's per-rank item-load section —
  // the same numbers `pgxd_sim --report` exports.
  Table t({"procs", "factor", "min load", "max load", "spread",
           "spread/n", "max/min"});
  for (auto p : env.procs) {
    for (double f : factors) {
      core::SortConfig cfg;
      cfg.sample_factor = f;
      const auto run =
          run_pgxd(env, p, twitter_shards(env, p), cfg, "twitter");
      const auto& l = run.report.items;
      t.row({std::to_string(p), Table::fmt(f, 3) + "X",
             std::to_string(l.min), std::to_string(l.max),
             std::to_string(l.max - l.min),
             Table::fmt_pct(static_cast<double>(l.max - l.min) /
                            static_cast<double>(env.n)),
             Table::fmt(l.max_over_min, 3)});
    }
  }
  emit(t, flags);
  std::printf("\n'spread' is the paper's \"load difference\" (max - min "
              "elements on a machine).\n");
  return 0;
}
