// Microbenchmarks (google-benchmark) of the two task schedulers: the
// single-shared-queue ThreadPool versus the WorkStealingPool, on regular
// and on irregular (power-law) task sizes — the irregular case is why
// PGX.D pairs its task manager with edge chunking and stealing.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/work_stealing_pool.hpp"

namespace {

using pgxd::Rng;

// Busy-work proportional to `units`, opaque to the optimizer.
void spin(std::uint64_t units) {
  std::uint64_t acc = 0xdeadbeef;
  for (std::uint64_t i = 0; i < units * 64; ++i)
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  benchmark::DoNotOptimize(acc);
}

std::vector<std::uint64_t> task_sizes(bool irregular, std::size_t count) {
  Rng rng(7);
  std::vector<std::uint64_t> sizes(count);
  for (auto& s : sizes) {
    if (irregular) {
      // Power-law: a few giant tasks, many tiny ones.
      double u = rng.uniform();
      while (u <= 0) u = rng.uniform();
      s = static_cast<std::uint64_t>(std::min(std::pow(u, -1.2), 4000.0));
    } else {
      s = 40;
    }
  }
  return sizes;
}

template <typename Pool>
void run_tasks(Pool& pool, const std::vector<std::uint64_t>& sizes) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(sizes.size());
  for (auto s : sizes) tasks.push_back([s] { spin(s); });
  pool.run_all(std::move(tasks));
}

void BM_SharedQueueRegular(benchmark::State& state) {
  pgxd::ThreadPool pool(3);
  const auto sizes = task_sizes(false, 512);
  for (auto _ : state) run_tasks(pool, sizes);
}
BENCHMARK(BM_SharedQueueRegular);

void BM_WorkStealingRegular(benchmark::State& state) {
  pgxd::WorkStealingPool pool(3);
  const auto sizes = task_sizes(false, 512);
  for (auto _ : state) run_tasks(pool, sizes);
}
BENCHMARK(BM_WorkStealingRegular);

void BM_SharedQueueIrregular(benchmark::State& state) {
  pgxd::ThreadPool pool(3);
  const auto sizes = task_sizes(true, 512);
  for (auto _ : state) run_tasks(pool, sizes);
}
BENCHMARK(BM_SharedQueueIrregular);

void BM_WorkStealingIrregular(benchmark::State& state) {
  pgxd::WorkStealingPool pool(3);
  const auto sizes = task_sizes(true, 512);
  for (auto _ : state) run_tasks(pool, sizes);
}
BENCHMARK(BM_WorkStealingIrregular);

}  // namespace

BENCHMARK_MAIN();
