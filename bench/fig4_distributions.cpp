// Figure 4 reproduction: the four input data distributions (uniform,
// normal, right-skewed, exponential), rendered as histograms, with the
// duplication statistics that motivate the investigator.
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("buckets", "histogram buckets", "20");
  flags.declare("domain", "key domain size", "1048576");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t buckets = flags.u64("buckets");
  const std::uint64_t domain = flags.u64("domain");

  print_header("Figure 4: input data distributions",
               "paper: four shapes — flat, bell, mass-at-low-values, decaying tail",
               env);

  Table summary({"distribution", "distinct keys", "top-key share", "mean/domain"});
  for (auto dist : gen::kAllDistributions) {
    gen::DataGenConfig dcfg;
    dcfg.dist = dist;
    dcfg.domain = domain;
    dcfg.seed = env.seed;
    const auto keys = gen::generate(dcfg, env.n);

    Histogram h(0, static_cast<double>(domain), buckets);
    RunningStats st;
    std::unordered_map<std::uint64_t, std::uint64_t> freq;
    for (auto k : keys) {
      h.add(static_cast<double>(k));
      st.add(static_cast<double>(k));
      ++freq[k];
    }
    std::uint64_t top = 0;
    for (const auto& [k, c] : freq) top = std::max(top, c);

    std::printf("--- %s ---\n%s\n", gen::name(dist), h.render(50).c_str());
    summary.row({gen::name(dist), std::to_string(freq.size()),
                 Table::fmt_pct(static_cast<double>(top) /
                                static_cast<double>(keys.size())),
                 Table::fmt(st.mean() / static_cast<double>(domain), 4)});
  }
  std::printf("\nDuplication summary (the right-skewed/exponential rows are the\n"
              "\"many duplicated data entries\" datasets of Sec. IV-B):\n");
  summary.print();
  return 0;
}
