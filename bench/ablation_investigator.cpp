// Ablation: the Fig. 3c duplicate-splitter investigator on vs off.
//
// Expectation: with the investigator off, duplicate-heavy datasets
// (right-skewed, exponential, twitter-like) collapse onto few machines —
// the Fig. 3b failure — and total time degrades because the overloaded
// machine's merge dominates. Uniform data is barely affected.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("p", "processor count", "16");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t p = flags.u64("p");

  print_header("Ablation: duplicate-splitter investigator",
               "expectation: off => Fig. 3b imbalance on duplicate-heavy data",
               env);

  Table t({"dataset", "investigator", "imbalance", "min share", "max share",
           "total time (s)"});
  auto report = [&](const std::string& name,
                    std::vector<std::vector<Key>> shards) {
    for (bool inv : {true, false}) {
      core::SortConfig cfg;
      cfg.use_investigator = inv;
      const auto run = run_pgxd(env, p, shards, cfg);
      t.row({name, inv ? "on" : "off",
             Table::fmt(run.stats.balance.imbalance, 3),
             Table::fmt_pct(run.stats.balance.min_share),
             Table::fmt_pct(run.stats.balance.max_share),
             seconds(run.stats.total_time)});
    }
  };

  for (auto dist : gen::kAllDistributions)
    report(gen::name(dist), dist_shards(env, dist, p));
  report("twitter-like", twitter_shards(env, p));
  emit(t, flags);
  return 0;
}
