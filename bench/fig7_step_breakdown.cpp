// Figure 7 reproduction: per-step execution time of the PGX.D sort for the
// normal and right-skewed distributions.
//
// Paper claim: "sending/receiving data costs less time than the other
// steps" — the asynchronous, buffered exchange keeps step (5) below the
// local-sort and merge steps.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

namespace {

// Reads per-step times from the run's SortReport: each PhaseReport carries
// the Fig. 7 display name and the per-rank max, so the table header and the
// rows come from the same telemetry the JSON export serves.
void breakdown_for(const BenchEnv& env, const Flags& flags,
                   gen::Distribution dist) {
  std::printf("--- %s ---\n", gen::name(dist));
  std::vector<std::string> header{"procs"};
  for (std::size_t i = 0; i < core::kStepCount; ++i)
    header.push_back(core::step_name(static_cast<core::Step>(i)));
  header.push_back("total");
  Table t(header);
  for (auto p : env.procs) {
    const auto run =
        run_pgxd(env, p, dist_shards(env, dist, p), {}, gen::name(dist));
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& phase : run.report.phases)
      row.push_back(seconds(phase.max_ns));
    row.push_back(seconds(run.report.total_time_ns));
    t.row(row);
  }
  emit(t, flags);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  print_header("Figure 7: execution time of each sort step (seconds, simulated)",
               "paper: send/receive is cheaper than local sort and merge steps",
               env);
  breakdown_for(env, flags, gen::Distribution::kNormal);
  breakdown_for(env, flags, gen::Distribution::kRightSkewed);
  return 0;
}
