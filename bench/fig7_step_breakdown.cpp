// Figure 7 reproduction: per-step execution time of the PGX.D sort for the
// normal and right-skewed distributions.
//
// Paper claim: "sending/receiving data costs less time than the other
// steps" — the asynchronous, buffered exchange keeps step (5) below the
// local-sort and merge steps.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

namespace {

void breakdown_for(const BenchEnv& env, const Flags& flags,
                   gen::Distribution dist) {
  std::printf("--- %s ---\n", gen::name(dist));
  Table t({"procs", "local-sort", "sampling", "splitter-select",
           "partition-plan", "send/receive", "final-merge", "total"});
  for (auto p : env.procs) {
    const auto run = run_pgxd(env, p, dist_shards(env, dist, p));
    const auto& s = run.stats.steps_max;
    t.row({std::to_string(p),
           seconds(s[core::Step::kLocalSort]),
           seconds(s[core::Step::kSampling]),
           seconds(s[core::Step::kSplitterSelect]),
           seconds(s[core::Step::kPartitionPlan]),
           seconds(s[core::Step::kExchange]),
           seconds(s[core::Step::kFinalMerge]),
           seconds(run.stats.total_time)});
  }
  emit(t, flags);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  print_header("Figure 7: execution time of each sort step (seconds, simulated)",
               "paper: send/receive is cheaper than local sort and merge steps",
               env);
  breakdown_for(env, flags, gen::Distribution::kNormal);
  breakdown_for(env, flags, gen::Distribution::kRightSkewed);
  return 0;
}
