// Figure 11 reproduction: average per-machine memory consumption of the
// PGX.D sort on the Twitter-like dataset, split into RSS (persistent:
// result keys + provenance bookkeeping) and temporary allocations.
//
// Paper claims: memory shrinks with processor count (each machine holds
// n/p), and the persistent overhead is "used for keeping previous
// information of each data's previous processor and location".
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  print_header("Figure 11: average per-machine memory (simulated accounting)",
               "paper: <300MB/machine at 20 procs on 25GB input; falls with p",
               env);

  Table t({"procs", "avg RSS (persistent)", "avg temp", "avg total peak",
           "provenance share"});
  for (auto p : env.procs) {
    const auto run = run_pgxd(env, p, twitter_shards(env, p));
    std::uint64_t rss = 0, temp = 0;
    for (auto b : run.peak_persistent) rss += b;
    for (auto b : run.peak_temp) temp += b;
    rss /= p;
    temp /= p;
    // Of the persistent bytes, provenance is 12 of every 20 per element.
    const double prov_share =
        static_cast<double>(core::kProvenanceBytes) /
        static_cast<double>(core::kProvenanceBytes + sizeof(Key));
    t.row({std::to_string(p), Table::fmt_bytes(rss), Table::fmt_bytes(temp),
           Table::fmt_bytes(rss + temp), Table::fmt_pct(prov_share, 1)});
  }
  emit(t, flags);
  std::printf("\nRSS counts the sorted result plus the per-element previous-"
              "processor/index\nrecords; temp counts sort scratch and request "
              "buffers, freed before return.\n");
  return 0;
}
