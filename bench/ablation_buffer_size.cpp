// Ablation: the PGX.D read-buffer size (the paper fixes 256 KB, chosen by
// measurement in the PGX.D engine paper).
//
// The buffer size sets both the per-processor sample budget (X = buffer/p)
// and the exchange chunk size. Expectation: tiny buffers pay per-message
// overhead and undersample (imbalance); huge buffers reduce send/receive
// overlap granularity and inflate the sampling gather; the sweet spot sits
// in the hundreds-of-KB range.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("p", "processor count", "16");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t p = flags.u64("p");
  const std::vector<std::uint64_t> buffers{16ull << 10, 64ull << 10,
                                           256ull << 10, 1ull << 20,
                                           4ull << 20};

  print_header("Ablation: read-buffer size (sample budget + exchange chunking)",
               "expectation: 256KB-1MB is the sweet spot (paper fixes 256KB)",
               env);

  Table t({"buffer", "total time (s)", "exchange (s)", "sampling (s)",
           "imbalance", "messages"});
  for (auto bytes : buffers) {
    core::SortConfig cfg;
    cfg.read_buffer_bytes = bytes;
    rt::Cluster<Sorter::Msg> cluster(cluster_config(env, p));
    Sorter sorter(cluster, cfg);
    sorter.run(twitter_shards(env, p));
    const auto& st = sorter.stats();
    t.row({Table::fmt_bytes(bytes), seconds(st.total_time),
           seconds(st.steps_max[core::Step::kExchange]),
           seconds(st.steps_max[core::Step::kSampling]),
           Table::fmt(st.balance.imbalance, 3),
           std::to_string(cluster.fabric().total_messages())});
  }
  emit(t, flags);
  return 0;
}
