// Ablation: partially sorted input — the workload TimSort is adaptive on.
//
// The paper notes Spark chose TimSort because "it performs better when the
// data is partially sorted". The Spark baseline's reduce-stage sort charge
// follows the *real* TimSort run decomposition (adaptive_sort_time), so
// sorted-ish data genuinely narrows Spark's gap; the PGX.D local sort is a
// non-adaptive parallel quicksort and keeps its cost. This bench sweeps the
// disorder fraction from fully sorted to fully random.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("p", "processor count", "16");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t p = flags.u64("p");
  const std::vector<double> disorder{0.0, 0.01, 0.1, 0.5, 1.0};

  print_header("Ablation: partially sorted input (TimSort adaptivity)",
               "expectation: Spark's gap narrows as the data gets more sorted",
               env);

  Table t({"disorder", "pgxd (s)", "spark (s)", "spark/pgxd"});
  for (double d : disorder) {
    std::vector<std::vector<Key>> shards;
    for (std::size_t r = 0; r < p; ++r)
      shards.push_back(gen::almost_sorted_shard(env.n, 1ull << 40, d,
                                                env.seed, p, r));
    const auto pg = run_pgxd(env, p, shards);
    const auto sp = run_spark(env, p, shards);
    t.row({Table::fmt_pct(d, 0), seconds(pg.stats.total_time),
           seconds(sp.total_time),
           Table::fmt(static_cast<double>(sp.total_time) /
                          static_cast<double>(pg.stats.total_time),
                      2) +
               "x"});
  }
  emit(t, flags);
  std::printf("\n'disorder' is the fraction of positions swapped at random in "
              "an ascending ramp.\n");
  return 0;
}
