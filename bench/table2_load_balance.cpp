// Table II reproduction: the share of data on each of 10 processors after
// the PGX.D distributed sort, for all four distributions.
//
// Paper claim: every processor holds ~10% of the data regardless of the
// distribution — including right-skewed and exponential, where most keys
// duplicate a single value and Table II shows runs of processors with
// *exactly* equal shares (the investigator's equal division at work).
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t p = 10;  // the table's fixed processor count

  print_header("Table II: per-processor data share after sorting, p=10",
               "paper: all shares ~10%, exactly-equal runs on duplicate-heavy data",
               env);

  std::vector<std::string> headers{"distribution"};
  for (std::size_t r = 0; r < p; ++r) headers.push_back("proc" + std::to_string(r));
  headers.push_back("imbalance");
  Table t(std::move(headers));

  for (auto dist : gen::kAllDistributions) {
    const auto run = run_pgxd(env, p, dist_shards(env, dist, p));
    std::vector<std::string> row{gen::name(dist)};
    for (auto size : run.partition_sizes)
      row.push_back(Table::fmt_pct(static_cast<double>(size) /
                                   static_cast<double>(env.n)));
    row.push_back(Table::fmt(run.stats.balance.imbalance, 4));
    t.row(std::move(row));
  }
  emit(t, flags);
  std::printf("\n'imbalance' = largest share / ideal share (1.0 = perfect). "
              "Paper's Table II\nshows 9.98%%-10.02%% everywhere; the "
              "right-skewed row has eight processors at\nexactly 9.998%% — "
              "the duplicate run divided in equal integer slices.\n");
  return 0;
}
