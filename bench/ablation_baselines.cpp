// Comparator study: the PGX.D sample sort against the Sec. II baselines —
// distributed bitonic sort, partitioned parallel radix sort, and the Spark
// sortByKey engine — on uniform and duplicate-heavy data.
//
// Expectations (the paper's related-work critique, measured):
//   * bitonic moves entire blocks every round: far more wire bytes;
//   * radix balances uniform keys but collapses on duplicate-heavy data
//     (bucket granularity);
//   * sample sort + investigator is fastest and balanced on both.
#include <cstdio>

#include "baselines/bitonic.hpp"
#include "baselines/radix.hpp"
#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

namespace {

void compare_on(const BenchEnv& env, const std::string& name,
                gen::Distribution dist, std::size_t p) {
  std::printf("--- %s, %zu processors ---\n", name.c_str(), p);
  Table t({"algorithm", "time (s)", "wire bytes", "imbalance"});

  const auto pg = run_pgxd(env, p, dist_shards(env, dist, p));
  t.row({"pgxd sample sort", seconds(pg.stats.total_time),
         Table::fmt_bytes(pg.stats.wire_bytes_total),
         Table::fmt(pg.stats.balance.imbalance, 3)});

  {
    rt::Cluster<baselines::BitonicSorter<Key>::Msg> cluster(cluster_config(env, p));
    baselines::BitonicSorter<Key> bitonic(cluster);
    bitonic.run(dist_shards(env, dist, p));
    t.row({"bitonic", seconds(bitonic.stats().total_time),
           Table::fmt_bytes(bitonic.stats().wire_bytes),
           "1.000"});  // keeps block sizes by construction
  }
  {
    rt::Cluster<baselines::RadixSorter<Key>::Msg> cluster(cluster_config(env, p));
    baselines::RadixSorter<Key> radix(cluster);
    radix.run(dist_shards(env, dist, p));
    t.row({"radix", seconds(radix.stats().total_time),
           Table::fmt_bytes(radix.stats().wire_bytes),
           Table::fmt(radix.stats().balance.imbalance, 3)});
  }
  {
    const auto sp = run_spark(env, p, dist_shards(env, dist, p));
    t.row({"spark sortByKey", seconds(sp.total_time),
           Table::fmt_bytes(sp.wire_bytes),
           Table::fmt(sp.balance.imbalance, 3)});
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("p", "processor count (power of two for bitonic)", "16");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  // Bitonic needs equal blocks: trim n to a multiple of p.
  const std::size_t p = flags.u64("p");
  env.n -= env.n % p;

  print_header("Comparator baselines: sample sort vs bitonic vs radix vs Spark",
               "expectation: sample sort fastest; radix collapses on duplicates",
               env);
  compare_on(env, "uniform", gen::Distribution::kUniform, p);
  compare_on(env, "right-skewed (duplicate-heavy)",
             gen::Distribution::kRightSkewed, p);
  return 0;
}
