// Fault-tolerance ablation: sort completion time and retransmission
// traffic as a function of the fabric's message drop rate, with the
// reliable-delivery layer (ack/retry/backoff) enabled. The clean row uses
// the same reliable configuration, so the delta against drop rate isolates
// recovery cost (RTO stalls + retransmitted bytes) from ack overhead.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("p", "processor count", "16");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t p = flags.u64("p");

  print_header("Ablation: drop rate vs sort completion (reliable delivery)",
               "exactly-once sorting survives a lossy fabric; cost grows "
               "with the drop rate",
               env);

  const double drop_rates[] = {0.0, 0.01, 0.02, 0.05, 0.10};

  Table t({"drop rate", "total (s)", "retransmits", "retx MB", "acks",
           "vs clean"});
  sim::SimTime baseline = 0;
  for (const double drop : drop_rates) {
    rt::ClusterConfig ccfg = cluster_config(env, p);
    ccfg.net.faults.drop_prob = drop;
    ccfg.reliable.enabled = true;
    rt::Cluster<Sorter::Msg> cluster(ccfg);
    core::SortConfig scfg;
    Sorter sorter(cluster, scfg);
    sorter.run(dist_shards(env, gen::Distribution::kUniform, p));
    const auto total = sorter.stats().total_time;
    if (baseline == 0) baseline = total;
    const auto& rs = cluster.comm().reliable_stats();
    t.row({Table::fmt(100.0 * drop, 1) + "%", seconds(total),
           std::to_string(rs.retransmits),
           Table::fmt(static_cast<double>(rs.retransmitted_bytes) / 1.0e6, 2),
           std::to_string(rs.acks_sent),
           Table::fmt(static_cast<double>(total) /
                          static_cast<double>(baseline),
                      2) +
               "x"});
  }
  emit(t, flags);
  std::printf(
      "\nEvery row sorts to the same exactly-once-audited output; the only\n"
      "difference is recovery work. Retransmitted bytes grow roughly\n"
      "linearly with the drop rate, while completion time also absorbs the\n"
      "RTO stalls of chunks whose first copy (or ack) was lost.\n");
  return 0;
}
