// Shared plumbing for the figure/table reproduction benches.
//
// Every bench accepts the same core flags (--n, --procs, --seed, --threads,
// plus bench-specific ones) and prints through common/table.hpp so outputs
// are uniform. Element counts default to 2^21 — the paper's 1-billion-entry
// runs scaled to what a single-host simulation sweeps in seconds; the DES
// cost model is linear in n, so curve *shapes* are scale-invariant (see
// EXPERIMENTS.md for the scaling discussion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/api.hpp"
#include "core/distributed_sort.hpp"
#include "core/sort_report.hpp"
#include "datagen/distributions.hpp"
#include "graph/twitter.hpp"
#include "obs/critical_path.hpp"
#include "obs/timeseries.hpp"
#include "runtime/cluster.hpp"
#include "sim/trace.hpp"
#include "spark/sort_by_key.hpp"

namespace pgxd::bench {

using Key = std::uint64_t;
using Sorter = core::DistributedSorter<Key>;
using Spark = spark::SparkSortByKey<Key>;

// The processor counts of the paper's evaluation (8 up to 52).
inline const std::vector<std::uint64_t> kPaperProcs = {8, 16, 24, 32, 40, 52};

struct BenchEnv {
  std::size_t n = 1ull << 21;
  std::vector<std::uint64_t> procs = kPaperProcs;
  unsigned threads = 32;
  std::uint64_t seed = 2017;
  rt::CostModel cost{};  // Table-I defaults, or host-calibrated
  // Full causal telemetry: span trace + per-frame flow edges + time-series
  // sampler on every run (the telemetry overhead gate's "on" side).
  bool flows = false;
};

// Declares the shared flags on `flags`; call parse() afterwards.
inline void declare_common_flags(Flags& flags) {
  flags.declare("n", "total number of keys to sort", "2097152");
  flags.declare("procs", "comma-separated processor counts", "8,16,24,32,40,52");
  flags.declare("threads", "worker threads per processor (Table I: 32)", "32");
  flags.declare("seed", "root RNG seed", "2017");
  flags.declare("calibrate",
                "measure this host's kernels and use them as the cost model "
                "instead of the Table-I defaults",
                "false");
  flags.declare("csv", "emit result tables as CSV (for plotting)", "false");
  flags.declare("flows",
                "record span trace + flow edges + time-series sampler on "
                "every run (overhead-gate workload)",
                "false");
}

// Prints `t` as an aligned table, or as CSV when --csv was passed.
inline void emit(const Table& t, const Flags& flags) {
  if (flags.boolean("csv"))
    std::fputs(t.render_csv().c_str(), stdout);
  else
    t.print();
}

inline BenchEnv env_from_flags(const Flags& flags) {
  BenchEnv env;
  env.n = flags.u64("n");
  env.procs = flags.u64_list("procs");
  env.threads = static_cast<unsigned>(flags.u64("threads"));
  env.seed = flags.u64("seed");
  env.flows = flags.boolean("flows");
  if (flags.boolean("calibrate")) {
    env.cost = rt::calibrate();
    std::printf("calibrated cost model: sort %.3f ns/(elem*log2), merge %.3f "
                "ns/elem, copy %.3f ns/elem, probe %.3f ns\n",
                env.cost.sort_ns_per_elem_log, env.cost.merge_ns_per_elem,
                env.cost.copy_ns_per_elem, env.cost.search_ns_per_probe);
  }
  return env;
}

inline rt::ClusterConfig cluster_config(const BenchEnv& env, std::size_t p) {
  rt::ClusterConfig cfg;
  cfg.machines = p;
  cfg.threads_per_machine = env.threads;
  cfg.seed = env.seed;
  cfg.cost = env.cost;
  return cfg;
}

inline std::vector<std::vector<Key>> dist_shards(const BenchEnv& env,
                                                 gen::Distribution dist,
                                                 std::size_t p) {
  gen::DataGenConfig dcfg;
  dcfg.dist = dist;
  dcfg.seed = env.seed;
  std::vector<std::vector<Key>> shards;
  shards.reserve(p);
  for (std::size_t r = 0; r < p; ++r)
    shards.push_back(gen::generate_shard(dcfg, env.n, p, r));
  return shards;
}

inline std::vector<std::vector<Key>> twitter_shards(const BenchEnv& env,
                                                    std::size_t p) {
  graph::TwitterConfig tcfg;
  tcfg.total_keys = env.n;
  tcfg.seed = env.seed;
  std::vector<std::vector<Key>> shards;
  shards.reserve(p);
  for (std::size_t r = 0; r < p; ++r)
    shards.push_back(graph::twitter_shard(tcfg, p, r));
  return shards;
}

struct PgxdRun {
  core::SortStats<Key> stats;
  // Telemetry flight recorder: phase timings, load balance, splitter error,
  // network/pool counters, merged metrics. Benches read from here.
  core::SortReport report;
  std::vector<std::uint64_t> partition_sizes;
  std::vector<std::pair<Key, Key>> partition_ranges;  // (min,max), empty->0,0
  std::vector<std::uint64_t> peak_persistent;
  std::vector<std::uint64_t> peak_temp;
};

// Benches used to read step timings straight out of the raw per-machine
// stats; PgxdRun::report.phases is the supported surface now.
[[deprecated("read phase timings from PgxdRun::report.phases instead")]]
inline const core::StepTimings& private_step_timings(const PgxdRun& run) {
  return run.stats.steps_max;
}

inline PgxdRun run_pgxd(const BenchEnv& env, std::size_t p,
                        std::vector<std::vector<Key>> shards,
                        core::SortConfig cfg = {},
                        const std::string& distribution = "unknown") {
  // cfg.telemetry follows $PGXD_TELEMETRY by default; the report's phase /
  // load / splitter sections are always populated, registry-backed sections
  // only when telemetry is on (scripts/check.sh telemetry measures the
  // on-vs-off overhead through these benches).
  rt::Cluster<Sorter::Msg> cluster(cluster_config(env, p));
  Sorter sorter(cluster, cfg);
  sim::Trace trace;
  obs::TimeSeriesSampler sampler;
  if (env.flows) {
    sorter.set_trace(&trace);
    sorter.set_sampler(&sampler);
  }
  sorter.run(std::move(shards));
  PgxdRun run;
  run.stats = sorter.stats();
  core::SortRunInfo info;
  info.distribution = distribution;
  info.n = env.n;
  info.machines = p;
  info.seed = env.seed;
  run.report = core::build_sort_report(sorter, std::move(info));
  if (env.flows) {
    run.report.critical_path = obs::compute_critical_path(
        trace, /*top_k=*/5, sorter.stats().total_time);
    run.report.timeseries = sampler.dump();
  }
  for (const auto& part : sorter.partitions()) {
    run.partition_sizes.push_back(part.size());
    if (part.empty())
      run.partition_ranges.emplace_back(0, 0);
    else
      run.partition_ranges.emplace_back(part.front().key, part.back().key);
  }
  for (const auto& ms : run.stats.machines) {
    run.peak_persistent.push_back(ms.peak_persistent_bytes);
    run.peak_temp.push_back(ms.peak_temp_bytes);
  }
  return run;
}

inline spark::SparkStats run_spark(const BenchEnv& env, std::size_t p,
                                   std::vector<std::vector<Key>> shards,
                                   const spark::SparkCostProfile& profile = {}) {
  rt::Cluster<Spark::Msg> cluster(cluster_config(env, p));
  Spark sp(cluster, profile);
  sp.run(std::move(shards));
  return sp.stats();
}

inline std::string seconds(sim::SimTime t, int precision = 0) {
  const double s = sim::to_seconds(t);
  if (precision == 0) precision = s < 0.01 ? 6 : 4;  // keep small sims readable
  return Table::fmt(s, precision);
}

// Prints the standard bench header with the scaled-run disclaimer.
inline void print_header(const std::string& figure, const std::string& claim,
                         const BenchEnv& env) {
  print_banner(figure, claim);
  std::printf(
      "n=%zu keys, threads/machine=%u, seed=%llu (paper: 1B keys on the "
      "Table I cluster;\nsimulated fabric: 6 GB/s links, 2us latency — "
      "shapes comparable, absolute values scaled)\n\n",
      env.n, env.threads, static_cast<unsigned long long>(env.seed));
}

}  // namespace pgxd::bench
