// Step-timeline visualization: an ASCII Gantt chart of every machine's six
// sort steps, for the asynchronous exchange and for the bulk-synchronous
// ablation side by side. Makes the paper's "asynchronous execution ...
// removes the unnecessary barriers" claim visible: in the async chart
// machines flow through send/receive at their own pace; in the BSP chart
// every machine waits at the exchange barrier.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/trace.hpp"

using namespace pgxd;
using namespace pgxd::bench;

namespace {

void write_chrome(const sim::Trace& trace, const std::string& path,
                  const std::string& process_name) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  const std::string json = obs::chrome_trace_json(trace, process_name);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("(chrome trace written to %s — load in Perfetto or "
              "chrome://tracing)\n", path.c_str());
}

void run_with(const BenchEnv& env, std::size_t p, bool async_exchange,
              const std::string& chrome_prefix) {
  sim::Trace trace;
  rt::Cluster<Sorter::Msg> cluster(cluster_config(env, p));
  core::SortConfig cfg;
  cfg.async_exchange = async_exchange;
  Sorter sorter(cluster, cfg);
  sorter.set_trace(&trace);
  sorter.run(twitter_shards(env, p));

  const char* label = async_exchange ? "asynchronous" : "bulk-synchronous";
  std::printf("--- %s exchange: total %.6f s ---\n", label,
              sim::to_seconds(sorter.stats().total_time));
  std::fputs(trace.render_gantt(96).c_str(), stdout);
  if (!chrome_prefix.empty())
    write_chrome(trace,
                 chrome_prefix + (async_exchange ? ".async.json" : ".bsp.json"),
                 std::string("pgxd-sort-") + label);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("p", "processor count for the timeline", "8");
  flags.declare("chrome",
                "prefix for Chrome trace_event JSON dumps of each timeline "
                "(writes <prefix>.async.json etc.); empty = no dumps", "");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t p = flags.u64("p");
  const std::string chrome = flags.str("chrome");

  print_header("Step timeline: async vs bulk-synchronous exchange, vs Spark",
               "one lane per machine; letters are sort steps / Spark stages",
               env);
  run_with(env, p, /*async_exchange=*/true, chrome);
  run_with(env, p, /*async_exchange=*/false, chrome);

  // The Spark baseline's stage structure on the same data — every machine
  // marches through the barriers in lockstep.
  sim::Trace trace;
  rt::Cluster<Spark::Msg> cluster(cluster_config(env, p));
  Spark spark(cluster);
  spark.set_trace(&trace);
  spark.run(twitter_shards(env, p));
  std::printf("--- spark sortByKey: total %.6f s ---\n",
              sim::to_seconds(spark.stats().total_time));
  std::fputs(trace.render_gantt(96).c_str(), stdout);
  if (!chrome.empty()) write_chrome(trace, chrome + ".spark.json", "spark");
  return 0;
}
