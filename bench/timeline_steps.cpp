// Step-timeline visualization: an ASCII Gantt chart of every machine's six
// sort steps, for the asynchronous exchange and for the bulk-synchronous
// ablation side by side. Makes the paper's "asynchronous execution ...
// removes the unnecessary barriers" claim visible: in the async chart
// machines flow through send/receive at their own pace; in the BSP chart
// every machine waits at the exchange barrier.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/trace.hpp"

using namespace pgxd;
using namespace pgxd::bench;

namespace {

void run_with(const BenchEnv& env, std::size_t p, bool async_exchange) {
  sim::Trace trace;
  rt::Cluster<Sorter::Msg> cluster(cluster_config(env, p));
  core::SortConfig cfg;
  cfg.async_exchange = async_exchange;
  Sorter sorter(cluster, cfg);
  sorter.set_trace(&trace);
  sorter.run(twitter_shards(env, p));

  std::printf("--- %s exchange: total %.6f s ---\n",
              async_exchange ? "asynchronous" : "bulk-synchronous",
              sim::to_seconds(sorter.stats().total_time));
  std::fputs(trace.render_gantt(96).c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("p", "processor count for the timeline", "8");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t p = flags.u64("p");

  print_header("Step timeline: async vs bulk-synchronous exchange, vs Spark",
               "one lane per machine; letters are sort steps / Spark stages",
               env);
  run_with(env, p, /*async_exchange=*/true);
  run_with(env, p, /*async_exchange=*/false);

  // The Spark baseline's stage structure on the same data — every machine
  // marches through the barriers in lockstep.
  sim::Trace trace;
  rt::Cluster<Spark::Msg> cluster(cluster_config(env, p));
  Spark spark(cluster);
  spark.set_trace(&trace);
  spark.run(twitter_shards(env, p));
  std::printf("--- spark sortByKey: total %.6f s ---\n",
              sim::to_seconds(spark.stats().total_time));
  std::fputs(trace.render_gantt(96).c_str(), stdout);
  return 0;
}
