// Ablation: asynchronous send-while-receive exchange (PGX.D style) vs a
// bulk-synchronous exchange (send everything, barrier, then receive).
//
// Expectation: async overlap shortens step (5); the gap widens with
// processor count because the barrier waits for the slowest sender.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  print_header("Ablation: asynchronous vs bulk-synchronous data exchange",
               "expectation: async exchange step is consistently shorter", env);

  Table t({"procs", "exchange async (s)", "exchange BSP (s)", "saving",
           "total async (s)", "total BSP (s)"});
  for (auto p : env.procs) {
    core::SortConfig async_cfg, bsp_cfg;
    bsp_cfg.async_exchange = false;
    const auto a = run_pgxd(env, p, twitter_shards(env, p), async_cfg);
    const auto b = run_pgxd(env, p, twitter_shards(env, p), bsp_cfg);
    const auto ae = a.stats.steps_max[core::Step::kExchange];
    const auto be = b.stats.steps_max[core::Step::kExchange];
    t.row({std::to_string(p), seconds(ae), seconds(be),
           Table::fmt_pct(1.0 - static_cast<double>(ae) /
                                    static_cast<double>(be), 1),
           seconds(a.stats.total_time), seconds(b.stats.total_time)});
  }
  emit(t, flags);
  return 0;
}
