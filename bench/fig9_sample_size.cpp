// Figure 9 reproduction: impact of the sample size on communication
// overhead and total execution time, Twitter-like dataset.
//
// Sample sizes are multiples of X = 256KB / processors (the PGX.D read
// buffer budget). Paper claims: tiny samples (0.004X) cause load imbalance
// *and more* communication (skewed exchange); oversized samples (1.4X) cost
// more than X without gains; X is the operating point.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("factors", "sample-size factors (multiples of X) to sweep",
                "0.004,0.04,0.4,1.0,1.004,1.04,1.4");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  std::vector<double> factors;
  {
    const std::string v = flags.str("factors");
    std::size_t pos = 0;
    while (pos < v.size()) {
      const auto comma = v.find(',', pos);
      factors.push_back(std::stod(v.substr(pos, comma - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  print_header("Figure 9: sample size vs communication overhead & total time",
               "paper: both undersampling and oversampling lose to X = 256KB/p",
               env);

  for (auto p : env.procs) {
    std::printf("--- %llu processors (X = %llu bytes of samples per machine) ---\n",
                static_cast<unsigned long long>(p),
                static_cast<unsigned long long>(256 * 1024 / p));
    Table t({"sample size", "comm overhead (s)", "total time (s)",
             "max share", "wire bytes"});
    for (double f : factors) {
      core::SortConfig cfg;
      cfg.sample_factor = f;
      const auto run = run_pgxd(env, p, twitter_shards(env, p), cfg);
      const auto& s = run.stats.steps_max;
      // Communication overhead: the sampling gather plus the data exchange
      // (the two steps whose time is wire-dominated).
      const sim::SimTime comm = s[core::Step::kSampling] +
                                s[core::Step::kSplitterSelect] +
                                s[core::Step::kExchange];
      t.row({Table::fmt(f, 3) + "X", seconds(comm),
             seconds(run.stats.total_time),
             Table::fmt_pct(run.stats.balance.max_share),
             Table::fmt_bytes(run.stats.wire_bytes_total)});
    }
    emit(t, flags);
    std::printf("\n");
  }
  return 0;
}
