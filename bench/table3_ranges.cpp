// Table III reproduction: the key range held by each processor after
// sorting the Twitter-like dataset with 8, 12 and 16 processors.
//
// Paper claim: ranges ascend with processor id and tile the key domain
// [0, 95] — "data with the smaller value are located on the processor with
// the smaller ID".
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::vector<std::size_t> proc_counts{8, 12, 16};

  print_header("Table III: per-processor key ranges, Twitter-like dataset",
               "paper: ascending ranges covering [0, 95] (keys are centi-units/100)",
               env);

  std::vector<PgxdRun> runs;
  for (auto p : proc_counts) runs.push_back(run_pgxd(env, p, twitter_shards(env, p)));

  Table t({"", "8 procs", "12 procs", "16 procs"});
  const std::size_t max_p = 16;
  for (std::size_t r = 0; r < max_p; ++r) {
    std::vector<std::string> row{"proc" + std::to_string(r)};
    for (std::size_t c = 0; c < proc_counts.size(); ++c) {
      if (r >= proc_counts[c]) {
        row.push_back("");
        continue;
      }
      const auto [lo, hi] = runs[c].partition_ranges[r];
      if (runs[c].partition_sizes[r] == 0) {
        row.push_back("(empty)");
      } else {
        row.push_back(Table::fmt(static_cast<double>(lo) / 100.0, 2) + " - " +
                      Table::fmt(static_cast<double>(hi) / 100.0, 2));
      }
    }
    t.row(std::move(row));
  }
  emit(t, flags);
  std::printf("\nAdjacent ranges may share a boundary value: the investigator "
              "splits duplicate\nruns of one key across neighbouring "
              "processors (global order is preserved).\n");
  return 0;
}
