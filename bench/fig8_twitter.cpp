// Figure 8 reproduction: PGX.D vs Spark sortByKey on the Twitter-like
// graph dataset (power-law vertex-degree keys, heavy duplication).
//
// Paper claim: PGX.D is faster than Spark by around 2.6x at 52 processors.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  print_header("Figure 8: Twitter-like dataset, PGX.D vs Spark (seconds, simulated)",
               "paper: PGX.D ~2.6x faster than Spark at 52 processors", env);

  Table t({"procs", "pgxd (s)", "spark (s)", "spark/pgxd", "pgxd imbalance",
           "spark imbalance"});
  for (auto p : env.procs) {
    const auto pg = run_pgxd(env, p, twitter_shards(env, p));
    const auto sp = run_spark(env, p, twitter_shards(env, p));
    t.row({std::to_string(p), seconds(pg.stats.total_time),
           seconds(sp.total_time),
           Table::fmt(static_cast<double>(sp.total_time) /
                          static_cast<double>(pg.stats.total_time),
                      2) +
               "x",
           Table::fmt(pg.stats.balance.imbalance, 3),
           Table::fmt(sp.balance.imbalance, 3)});
  }
  emit(t, flags);
  std::printf("\nThe duplicate-heavy degree keys also show the balance story: "
              "Spark's range\npartitioner concentrates the dominant key on one "
              "reducer; the investigator\nkeeps PGX.D near 1.0.\n");
  return 0;
}
