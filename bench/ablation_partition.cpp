// Ablation: partitioning-scheme crossover — one-level sampling vs histogram
// refinement vs two-level AMS, p = 64 .. 4096.
//
// Two row kinds in one table (the `kind` column):
//   measured — full simulated sorts at the --procs counts: total time, the
//              refiner's achieved epsilon, and the partition layer's actual
//              sample/probe/level-1 traffic out of the SortReport.
//   model    — the closed-form control-volume model of sort/partition.hpp
//              extended past what a simulated run can execute (to
//              --max-model-procs, default 4096), parameterized by the
//              measured refinement behaviour.
//
// Expectation: at small p the one-level scheme's O(p^2) splitter broadcast
// and counts exchange are cheap and the extra machinery of the refined
// schemes costs more than it saves; past p ~ 1024 the O(p^2) terms dominate
// and histogram (smaller samples) and AMS (no O(p^2) control plane at all)
// win on sample + wire volume.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "sort/partition.hpp"

using namespace pgxd;
using namespace pgxd::bench;

namespace {

const char* kind_name(sort::PartitionScheme s) {
  return core::partition_scheme_name(s);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("max-model-procs",
                "extend the control-volume model out to this processor count",
                "4096");
  flags.declare("epsilon", "histogram refinement balance target", "0.05");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::uint64_t max_model = flags.u64("max-model-procs");
  const double epsilon = flags.f64("epsilon");

  print_header(
      "Ablation: partitioning-scheme crossover (one-level vs histogram vs "
      "AMS)",
      "expectation: refined schemes beat one-level on sample+wire volume "
      "past p ~ 1024",
      env);

  const sort::PartitionScheme kSchemes[] = {
      sort::PartitionScheme::kOneLevelSample,
      sort::PartitionScheme::kHistogramRefine,
      sort::PartitionScheme::kTwoLevelAms,
  };

  Table t({"kind", "procs", "scheme", "total (s)", "rounds", "achieved eps",
           "sample keys", "probe keys", "level1 items", "control bytes"});

  // Refinement behaviour observed at the largest measured p, used to
  // parameterize the model rows.
  std::uint64_t seen_rounds = 3, seen_probes_per_round = 8;

  for (auto p : env.procs) {
    for (auto scheme : kSchemes) {
      core::SortConfig cfg;
      cfg.partition = scheme;
      cfg.partition_epsilon = epsilon;
      cfg.partition_max_rounds = 30;
      const auto run =
          run_pgxd(env, p, dist_shards(env, gen::Distribution::kUniform, p),
                   cfg, "uniform");
      const auto& pt = run.report.partition;
      const std::uint64_t per_rank =
          pt.sample_keys / std::max<std::uint64_t>(1, p);
      const std::uint64_t probes_per_round =
          pt.probe_keys / std::max<std::uint64_t>(1, pt.rounds);
      if (scheme == sort::PartitionScheme::kHistogramRefine) {
        seen_rounds = pt.rounds;
        seen_probes_per_round = std::max<std::uint64_t>(1, probes_per_round);
      }
      const auto vol = sort::model_control_volume(
          scheme, p, sizeof(Key), per_rank, pt.rounds, probes_per_round);
      t.row({"measured", std::to_string(p), kind_name(scheme),
             seconds(run.stats.total_time), std::to_string(pt.rounds),
             Table::fmt(pt.achieved_epsilon, 4),
             std::to_string(pt.sample_keys), std::to_string(pt.probe_keys),
             std::to_string(pt.level1_items), std::to_string(vol.total())});
    }
  }

  // Model extension: the same per-rank sample budget formula the sorter
  // uses (X = read_buffer / p bytes), refinement shaped like the largest
  // measured run.
  core::SortConfig defaults;
  for (std::uint64_t p = 64; p <= max_model; p *= 2) {
    for (auto scheme : kSchemes) {
      const std::uint64_t per_rank = std::max<std::uint64_t>(
          1, defaults.read_buffer_bytes / p / sizeof(Key));
      const auto vol = sort::model_control_volume(
          scheme, p, sizeof(Key), per_rank, seen_rounds,
          seen_probes_per_round);
      t.row({"model", std::to_string(p), kind_name(scheme), "-", "-", "-",
             std::to_string(vol.sample_bytes / sizeof(Key)), "-", "-",
             std::to_string(vol.total())});
    }
  }

  emit(t, flags);
  return 0;
}
