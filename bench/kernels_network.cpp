// Microbenchmarks (google-benchmark) of the simulation substrate itself:
// DES event throughput, channel handoffs, and fabric transfer modeling.
// These bound how large a cluster/problem the figure benches can sweep.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace {

using namespace pgxd::sim;

Task<void> delay_chain(Simulator& sim, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim.delay(1);
}

void BM_SimDelayEvents(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    sim.spawn(delay_chain(sim, hops));
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * hops);
}
BENCHMARK(BM_SimDelayEvents)->Arg(1 << 10)->Arg(1 << 14);

Task<void> ping(Simulator&, Channel<int>& tx, Channel<int>& rx, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    tx.send(i);
    (void)co_await rx.recv();
  }
}

Task<void> pong(Simulator&, Channel<int>& rx, Channel<int>& tx, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    int v = co_await rx.recv();
    tx.send(v);
  }
}

void BM_ChannelPingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Channel<int> a(sim), b(sim);
    sim.spawn(ping(sim, a, b, rounds));
    sim.spawn(pong(sim, a, b, rounds));
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * rounds);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1 << 10)->Arg(1 << 13);

pgxd::sim::Task<void> all_to_all(Simulator& sim, pgxd::net::Fabric& fab,
                                 std::size_t rank, std::size_t machines,
                                 std::uint64_t bytes) {
  for (std::size_t step = 1; step < machines; ++step) {
    const std::size_t dst = (rank + step) % machines;
    co_await fab.transfer(rank, dst, bytes);
  }
  (void)sim;
}

void BM_FabricAllToAll(benchmark::State& state) {
  const auto machines = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    pgxd::net::Fabric fab(sim, machines, pgxd::net::NetConfig{});
    for (std::size_t r = 0; r < machines; ++r)
      sim.spawn(all_to_all(sim, fab, r, machines, 256 * 1024));
    sim.run();
    benchmark::DoNotOptimize(fab.total_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(machines * (machines - 1)));
}
BENCHMARK(BM_FabricAllToAll)->Arg(8)->Arg(32)->Arg(52);

}  // namespace

BENCHMARK_MAIN();
