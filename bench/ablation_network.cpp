// Network-sensitivity ablation: how the PGX.D sort responds to fabric
// degradation — switch-core oversubscription and two-tier rack topologies
// with oversubscribed top-of-rack up-links. The paper's testbed is a
// non-blocking SX6512 (full bisection); this quantifies how much of the
// sort's performance depends on that assumption. The all-to-all exchange
// is bisection-limited, so rack oversubscription hits it roughly in
// proportion to the share of traffic that crosses racks.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("p", "processor count", "16");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);
  const std::size_t p = flags.u64("p");

  print_header("Ablation: fabric topology sensitivity",
               "paper testbed: non-blocking switch (first row)", env);

  struct Variant {
    const char* name;
    net::NetConfig net;
  };
  std::vector<Variant> variants;
  {
    net::NetConfig flat;
    variants.push_back({"full bisection (paper)", flat});
    net::NetConfig core2 = flat;
    core2.oversubscription = 2.0;
    variants.push_back({"switch core 2:1", core2});
    net::NetConfig core4 = flat;
    core4.oversubscription = 4.0;
    variants.push_back({"switch core 4:1", core4});
    net::NetConfig racks = flat;
    racks.rack_size = 4;
    racks.uplink_bandwidth_Bps = flat.link_bandwidth_Bps * 2;  // 2:1 TOR
    racks.inter_rack_latency = 2 * sim::kMicrosecond;
    variants.push_back({"racks of 4, 2:1 uplink", racks});
    net::NetConfig tight = racks;
    tight.uplink_bandwidth_Bps = flat.link_bandwidth_Bps;  // 4:1 TOR
    variants.push_back({"racks of 4, 4:1 uplink", tight});
  }

  Table t({"fabric", "total (s)", "exchange (s)", "vs paper fabric"});
  sim::SimTime baseline = 0;
  for (const auto& v : variants) {
    rt::ClusterConfig ccfg = cluster_config(env, p);
    ccfg.net = v.net;
    rt::Cluster<Sorter::Msg> cluster(ccfg);
    Sorter sorter(cluster, core::SortConfig{});
    sorter.run(twitter_shards(env, p));
    const auto total = sorter.stats().total_time;
    if (baseline == 0) baseline = total;
    t.row({v.name, seconds(total),
           seconds(sorter.stats().steps_max[core::Step::kExchange]),
           Table::fmt(static_cast<double>(total) /
                          static_cast<double>(baseline),
                      2) +
               "x"});
  }
  emit(t, flags);
  std::printf("\nWith racks of 4 at p=%zu, ~%.0f%% of exchanged bytes cross "
              "racks, so a k:1\nup-link stretches the exchange step by "
              "roughly that share times k.\n",
              p, 100.0 * (1.0 - 4.0 / static_cast<double>(p)));
  return 0;
}
