// Figure 5 reproduction: PGX.D distributed sort total execution time for
// the four Fig. 4 distributions across 8..52 processors.
//
// Paper claim: "PGX.D sorts data efficiently regardless of the input data
// distribution type" — the four curves nearly coincide and all decrease
// with processor count.
#include <cstdio>

#include "bench_common.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  print_header("Figure 5: PGX.D sort total execution time (seconds, simulated)",
               "paper: all four distributions overlap; time falls with processors",
               env);

  Table t({"procs", "uniform", "normal", "right-skewed", "exponential",
           "max spread"});
  for (auto p : env.procs) {
    std::vector<std::string> row{std::to_string(p)};
    double lo = 1e30, hi = 0;
    for (auto dist : gen::kAllDistributions) {
      const auto run = run_pgxd(env, p, dist_shards(env, dist, p));
      const double s = sim::to_seconds(run.stats.total_time);
      lo = std::min(lo, s);
      hi = std::max(hi, s);
      row.push_back(seconds(run.stats.total_time));
    }
    row.push_back(Table::fmt_pct(hi / lo - 1.0, 1));
    t.row(std::move(row));
  }
  emit(t, flags);
  std::printf("\n'max spread' = relative gap between slowest and fastest "
              "distribution at that\nprocessor count — small values reproduce "
              "the paper's distribution-independence claim.\n");
  return 0;
}
