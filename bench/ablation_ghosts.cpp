// Ablation: the PGX.D ghost-node optimization (Sec. III) measured on a
// real workload — distributed PageRank ships one aggregated contribution
// per *distinct* remote neighbour instead of one per crossing edge. The
// paper credits ghost selection for PGX.D's "low communication overhead";
// this bench quantifies it on twitter-like RMAT graphs.
#include <cstdio>

#include "analytics/pagerank.hpp"
#include "bench_common.hpp"
#include "graph/generate.hpp"
#include "graph/partition.hpp"

using namespace pgxd;
using namespace pgxd::bench;

int main(int argc, char** argv) {
  Flags flags;
  declare_common_flags(flags);
  flags.declare("vertices", "graph vertices", "65536");
  flags.declare("edges", "graph edges", "1048576");
  flags.declare("iters", "pagerank iterations", "10");
  flags.parse(argc, argv);
  BenchEnv env = env_from_flags(flags);

  graph::RmatConfig gcfg;
  gcfg.num_vertices = static_cast<graph::VertexId>(flags.u64("vertices"));
  gcfg.num_edges = flags.u64("edges");
  gcfg.seed = env.seed;
  const auto g = graph::rmat_graph(gcfg);

  print_header("Ablation: ghost-node aggregation (PageRank contribution traffic)",
               "paper: ghost selection decreases communication between processors",
               env);

  Table t({"procs", "crossing edges", "ghost vertices", "bytes w/ ghosts",
           "bytes w/o", "traffic saved", "time saved"});
  for (auto p : env.procs) {
    const auto part = graph::partition_by_edges(g, p);
    const auto gs = graph::total_ghost_stats(g, part);

    analytics::PageRankConfig with, without;
    with.iterations = without.iterations =
        static_cast<unsigned>(flags.u64("iters"));
    without.ghost_aggregation = false;

    rt::Cluster<analytics::PageRankMsg> c1(cluster_config(env, p));
    analytics::DistributedPageRank pr1(c1, g, part, with);
    pr1.run();
    rt::Cluster<analytics::PageRankMsg> c2(cluster_config(env, p));
    analytics::DistributedPageRank pr2(c2, g, part, without);
    pr2.run();

    t.row({std::to_string(p), std::to_string(gs.crossing_edges),
           std::to_string(gs.ghost_vertices),
           Table::fmt_bytes(pr1.stats().wire_bytes),
           Table::fmt_bytes(pr2.stats().wire_bytes),
           Table::fmt_pct(1.0 - static_cast<double>(pr1.stats().wire_bytes) /
                                    static_cast<double>(pr2.stats().wire_bytes),
                          1),
           Table::fmt_pct(1.0 - static_cast<double>(pr1.stats().total_time) /
                                    static_cast<double>(pr2.stats().total_time),
                          1)});
  }
  t.print();
  return 0;
}
