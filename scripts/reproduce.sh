#!/usr/bin/env bash
# Regenerates every paper figure/table plus the ablations into results/,
# one text file per experiment (add --csv in BENCH_FLAGS for plot-ready
# output). Usage:
#   scripts/reproduce.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"
BENCH_FLAGS="${BENCH_FLAGS:-}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "build first: cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"
for bench in "$BUILD_DIR"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "== $name"
  # shellcheck disable=SC2086
  "$bench" $BENCH_FLAGS > "$RESULTS_DIR/$name.txt" 2>&1
done

echo
echo "results written to $RESULTS_DIR/:"
ls -1 "$RESULTS_DIR"
