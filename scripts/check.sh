#!/usr/bin/env bash
# Build-and-verify entry point. Usage:
#
#   scripts/check.sh                 # ASan + UBSan test suite (the default)
#   scripts/check.sh tsan            # ThreadSanitizer test suite (alias:
#                                    # thread); the TSan fleet is kept clean
#   scripts/check.sh undefined       # UBSan alone
#   scripts/check.sh release         # -O3 -DNDEBUG build + full test suite
#   scripts/check.sh perf            # Release benches vs committed
#                                    # results/BENCH_sort.json; fails on a
#                                    # >30% throughput regression
#   scripts/check.sh telemetry       # Release suite with PGXD_TELEMETRY=1,
#                                    # validator self-test, pgxd_sim smoke
#                                    # test with flow events + critical path
#                                    # + sampler (--strict validated; flow
#                                    # arrows and counter events asserted in
#                                    # the chrome trace; artifacts kept in
#                                    # $TELEMETRY_OUT for CI upload), and a
#                                    # <3% overhead gate on the fig5 e2e
#                                    # workload with the full causal stack on
#   scripts/check.sh chaos           # crash-stop gate: release build, the
#                                    # crash/recovery/fault test suites, and
#                                    # a pgxd_sim --crash sweep (kill a rank
#                                    # at several instants x {restart, not},
#                                    # master death, recovery report
#                                    # validated against the schema)
#   scripts/check.sh scale           # partition-at-scale gate: release
#                                    # build, the balance-guarantee suite
#                                    # (partition_test, refiner harness to
#                                    # p=4096), then a p=1024 histogram-
#                                    # refined pgxd_sim run and a two-level
#                                    # AMS run, both --strict validated
#                                    # against the report schema
#   scripts/check.sh lint            # the static-analysis wall: custom
#                                    # linter (self-test + repo), a
#                                    # PGXD_WERROR=ON build (-Wall -Wextra
#                                    # -Wshadow -Wconversion as errors), and
#                                    # clang-tidy over compile_commands.json
#                                    # when a clang-tidy binary exists
#   scripts/check.sh analyze         # the deadlock-analysis gate: protocol
#                                    # analyzer (self-test + repo), the
#                                    # wait-graph / deadlock-regression
#                                    # suites, a perturbation fuzz smoke
#                                    # (guarded two-level AMS across seeds,
#                                    # zero false-positive aborts), and the
#                                    # guard-off expected-deadlock check
#                                    # (the wait-for graph must name the
#                                    # buffer-pool cycle)
#
# Each mode gets its own build tree, so switching between them never forces
# a full reconfigure of the main build. Every mode propagates non-zero exit
# codes (set -euo pipefail; helpers never swallow a failing stage).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-address,undefined}"
JOBS="$(nproc)"

# One configure+build path for every mode: configure_build <dir> [cmake
# options...]. A cached tree reconfigures incrementally; options differing
# from the cache (e.g. a new PGXD_SANITIZE) trigger the usual CMake rebuild.
configure_build() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
}

run_suite() {
  ctest --test-dir "$1" --output-on-failure -j "$JOBS"
}

case "$MODE" in
  release)
    configure_build build-release -DCMAKE_BUILD_TYPE=Release
    run_suite build-release
    exit 0
    ;;

  lint)
    echo "== lint 1/4: custom linter self-test (tests/lint_selftest) =="
    python3 tools/lint_pgxd.py --selftest tests/lint_selftest

    echo "== lint 2/4: custom linter over the repo =="
    python3 tools/lint_pgxd.py

    echo "== lint 3/4: warnings-as-errors build (PGXD_WERROR=ON) =="
    configure_build build-werror -DPGXD_WERROR=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo

    echo "== lint 4/4: clang-tidy (checked-in .clang-tidy) =="
    TIDY=""
    for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                clang-tidy-16 clang-tidy-15 clang-tidy-14; do
      if command -v "$cand" > /dev/null 2>&1; then
        TIDY="$cand"
        break
      fi
    done
    if [ -z "$TIDY" ]; then
      echo "NOTE: no clang-tidy binary on PATH — step skipped (the config"
      echo "      and compile_commands.json are ready; install clang-tidy"
      echo "      to run it: build-werror/compile_commands.json)."
      exit 0
    fi
    # Sources only; headers are covered through HeaderFilterRegex.
    git ls-files 'src/**/*.cpp' 'tests/*.cpp' 'bench/*.cpp' \
        'examples/*.cpp' 'tools/*.cpp' |
      grep -v '^tests/lint_selftest/' |
      xargs -r "$TIDY" -p build-werror --quiet --warnings-as-errors='*'
    exit 0
    ;;

  analyze)
    echo "== analyze 1/4: protocol analyzer self-test =="
    python3 tools/analyze_protocol.py --selftest tests/protocol_selftest

    echo "== analyze 2/4: protocol analyzer over the repo =="
    python3 tools/analyze_protocol.py

    configure_build build-release -DCMAKE_BUILD_TYPE=Release

    echo "== analyze 3/4: wait-graph + deadlock regression suites =="
    build-release/tests/wait_graph_test
    build-release/tests/deadlock_regression_test

    # 4a. Perturbation fuzz smoke: the guarded two-level AMS config that the
    #     regression suite pins must survive a seed sweep with zero
    #     false-positive deadlock aborts (every seed is one deterministic
    #     alternative delivery order; pgxd_sim exits non-zero if the sort
    #     wedges or the output fails validation). Seed 7 is the committed
    #     reproduction seed from tests/deadlock_regression_test.cpp — with
    #     the guard ON it must pass like any other.
    TMP="$(mktemp -d /tmp/pgxd_analyze.XXXXXX)"
    trap 'rm -rf "$TMP"' EXIT
    for seed in 1 7 42; do
      echo "== analyze 4/4: perturbation smoke --perturb=$seed =="
      build-release/tools/pgxd_sim --n=60000 --p=9 --partition=two-level \
        --buffer-bytes=2048 --perturb="$seed" --perturb-jitter-ns=50 \
        > "$TMP/perturb_$seed.log"
      grep -E 'validation:|sorted' "$TMP/perturb_$seed.log" || true
    done

    # 4b. The negative control: with the pending guard off, the same config
    #     must deadlock — and the wait-for graph must name the buffer-pool
    #     cycle instead of hanging. A clean exit here means the regression
    #     fixture has gone stale.
    echo "== analyze 4/4: guard-off expected-deadlock check =="
    if build-release/tools/pgxd_sim --n=60000 --p=9 --partition=two-level \
        --buffer-bytes=2048 --pending-guard=false \
        > "$TMP/wedge.log" 2>&1; then
      echo "FAIL: guard-off run completed; the pool deadlock fixture is stale" >&2
      exit 1
    fi
    if ! grep -q 'deadlocked' "$TMP/wedge.log" ||
       ! grep -q 'buffer-pool' "$TMP/wedge.log"; then
      echo "FAIL: guard-off run died without naming the buffer-pool cycle:" >&2
      tail -n 20 "$TMP/wedge.log" >&2
      exit 1
    fi
    grep -o 'wait-for cycle.*' "$TMP/wedge.log" | head -n 1
    echo "analyze gate passed"
    exit 0
    ;;

  chaos)
    configure_build build-release -DCMAKE_BUILD_TYPE=Release

    # 1. The crash-stop test suites: fabric crash schedule + FaultConfig
    #    validation (net_fuzz), detector / fail-fast / bounded collectives
    #    (recovery), and the kill-a-rank-in-every-phase matrix plus the
    #    chaos sweep that rides in fault_injection. The binaries run
    #    directly (ctest registers individual case names, not binaries).
    for t in net_fuzz_test recovery_test fault_injection_test; do
      echo "== chaos suite: $t =="
      "build-release/tests/$t"
    done

    # 2. End-to-end kill-a-rank sweep through the CLI: several crash
    #    instants x {crash-stop forever, reboot}, plus a master (rank 0)
    #    death. Every run must re-sort on the survivors and pass the
    #    order/permutation/exactly-once validation (pgxd_sim exits non-zero
    #    otherwise); the last run's flight recorder must match the schema.
    TMP="$(mktemp -d /tmp/pgxd_chaos.XXXXXX)"
    trap 'rm -rf "$TMP"' EXIT
    for crash in "2@50" "2@120" "2@200" "2@120:2000" "0@100"; do
      echo "== chaos sweep: --crash $crash =="
      build-release/tools/pgxd_sim --n=200000 --p=5 --recovery \
        --crash="$crash" --report="$TMP/report.json" > "$TMP/run.log"
      grep -E 'recovery:|validation:' "$TMP/run.log"
    done
    python3 tools/validate_report.py "$TMP/report.json" tools/report_schema.json
    echo "chaos gate passed"
    exit 0
    ;;

  scale)
    configure_build build-release -DCMAKE_BUILD_TYPE=Release

    # 1. The statistical balance-guarantee suite: partition kernels, the
    #    multi-rank refiner harness up to p=4096 partitions, and the
    #    end-to-end epsilon-balance matrix (p=64/256/1024 simulated ranks).
    echo "== scale 1/2: partition_test (refiner harness to p=4096) =="
    build-release/tests/partition_test

    # 2. Smoke the CLI at p=1024 under both refined schemes; each run's
    #    flight recorder must pass strict schema + semantic validation
    #    (including the partition block's per-scheme invariants).
    TMP="$(mktemp -d /tmp/pgxd_scale.XXXXXX)"
    trap 'rm -rf "$TMP"' EXIT
    echo "== scale 2/2: pgxd_sim p=1024 histogram + p=256 two-level =="
    build-release/tools/pgxd_sim --n=500000 --p=1024 \
      --partition=histogram --epsilon=0.05 \
      --report="$TMP/histogram.json" > "$TMP/histogram.log"
    grep -E 'partition|validation:' "$TMP/histogram.log" || true
    python3 tools/validate_report.py --strict "$TMP/histogram.json" \
      tools/report_schema.json
    build-release/tools/pgxd_sim --n=500000 --p=256 \
      --partition=two-level \
      --report="$TMP/ams.json" > "$TMP/ams.log"
    python3 tools/validate_report.py --strict "$TMP/ams.json" \
      tools/report_schema.json
    echo "scale gate passed"
    exit 0
    ;;

  telemetry)
    configure_build build-release -DCMAKE_BUILD_TYPE=Release

    # 1. The whole tier-1 suite with every sort instrumented
    #    (SortConfig::telemetry defaults from this env var).
    PGXD_TELEMETRY=1 run_suite build-release

    # 2. The report validator's own fixture matrix (lax + strict modes).
    python3 tools/validate_report.py --selftest

    # 3. Flight-recorder smoke test: 4-rank exponential sort with the full
    #    causal stack (flow edges, critical path, time-series sampler), then
    #    strict schema + semantic validation. Artifacts land in
    #    $TELEMETRY_OUT when set (CI uploads them), else in a temp dir.
    if [ -n "${TELEMETRY_OUT:-}" ]; then
      OUT="$TELEMETRY_OUT"
      mkdir -p "$OUT"
    else
      OUT="$(mktemp -d /tmp/pgxd_telemetry.XXXXXX)"
      trap 'rm -rf "$OUT"' EXIT
    fi
    build-release/tools/pgxd_sim --dist=exponential --n=200000 --p=4 \
      --critical-path --sample-us=200 \
      --report="$OUT/report.json" --trace="$OUT/trace.json"
    python3 tools/validate_report.py --strict "$OUT/report.json" \
      tools/report_schema.json
    python3 - "$OUT/trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f: doc = json.load(f)
events = doc["traceEvents"]
complete = [e for e in events if e.get("ph") == "X"]
names = {e["name"] for e in complete}
want = {"local-sort", "sampling", "splitter-select",
        "partition-plan", "send/receive", "final-merge"}
missing = want - names
assert not missing, f"chrome trace missing steps: {missing}"
assert all("ts" in e and "dur" in e for e in complete)
# Flow arrows: every "s" start has exactly one "f" finish with the same
# (cat, id), and the finish binds to the enclosing slice ("bp": "e").
starts = {(e["cat"], e["id"]) for e in events if e.get("ph") == "s"}
finishes = {(e["cat"], e["id"]) for e in events if e.get("ph") == "f"}
assert starts, "chrome trace has no flow events"
assert starts == finishes, "unmatched flow start/finish pairs"
assert all(e.get("bp") == "e" for e in events if e.get("ph") == "f")
data_flows = sum(1 for c, _ in starts if c == "flow.data")
assert data_flows > 0, "no data-frame flow edges"
# Counter graphs from the time-series sampler.
counters = [e for e in events if e.get("ph") == "C"]
assert counters, "chrome trace has no counter events"
counter_names = {e["name"] for e in counters}
assert any(n.endswith("mailbox_depth") for n in counter_names), counter_names
print(f"OK: chrome trace has {len(complete)} spans, {len(starts)} flow "
      f"arrows ({data_flows} data), {len(counters)} counter samples")
PY

    # 4. Overhead gate: the fig5 e2e workload with telemetry off vs fully
    #    on (metrics registry + flow edges + sampler) must stay within 3%
    #    wall-clock (best of N to shave scheduler noise).
    python3 - build-release <<'PY'
import subprocess, sys, time

build = sys.argv[1]
cmd = [f"{build}/bench/fig5_total_time", "--n=2097152", "--procs=8,16"]

def best_of(env_extra, extra_args=(), runs=3):
    best = float("inf")
    for _ in range(runs):
        env = dict(**__import__("os").environ, **env_extra)
        t0 = time.monotonic()
        subprocess.run([*cmd, *extra_args], check=True, env=env,
                       stdout=subprocess.DEVNULL)
        best = min(best, time.monotonic() - t0)
    return best

off = best_of({"PGXD_TELEMETRY": "0"})
on = best_of({"PGXD_TELEMETRY": "1"}, extra_args=["--flows=true"])
ratio = on / off
print(f"telemetry overhead: off {off:.3f}s, on {on:.3f}s ({ratio:.4f}x)")
if ratio > 1.03:
    print(f"FAIL: telemetry overhead {ratio - 1:.1%} exceeds the 3% budget")
    sys.exit(1)
print("telemetry overhead gate passed (<3%)")
PY
    exit 0
    ;;

  perf)
    BASELINE="results/BENCH_sort.json"
    [ -f "$BASELINE" ] || {
      echo "no committed baseline at $BASELINE; run scripts/bench.sh first" >&2
      exit 1
    }
    NOW="$(mktemp /tmp/bench_now.XXXXXX.json)"
    trap 'rm -f "$NOW"' EXIT
    scripts/bench.sh "$NOW"
    python3 - "$BASELINE" "$NOW" <<'PY'
import json, sys

THRESHOLD = 0.30  # fail when throughput drops by more than this

with open(sys.argv[1]) as f: base = json.load(f)
with open(sys.argv[2]) as f: now = json.load(f)

# The tentpole kernels must exist (with throughput numbers) on BOTH sides:
# the skip-if-absent rule below must never silently drop them from the gate.
REQUIRED = [
    "BM_ParallelKwayMergeSoa/4",
    "BM_ParallelKwayMergeSoa/8",
    "BM_ParallelKwayMergeSoa/32",
    "BM_ParallelKwayMergeSoaSeq/32",
    "BM_QuicksortNoSimd/1048576",
    "BM_RadixSort/1048576/0",
    "BM_RadixSort/1048576/4294967296",
    "BM_LocalSortAdaptive/1048576/0",
    "BM_LocalSortAdaptive/1048576/4294967296",
]
missing = [
    name for name in REQUIRED
    for side in (base, now)
    if not (side.get("kernels_local_sort", {}).get(name) or {}).get(
        "items_per_second")
]
if missing:
    print(f"perf gate FAILED: required benches absent: {sorted(set(missing))}")
    sys.exit(1)

failures = []
# Only the kernel suites gate; other top-level keys — including the "meta"
# provenance block (git SHA, build type, SortConfig) bench.sh embeds — are
# descriptive, never compared.
for suite in ("kernels_local_sort", "kernels_network"):
    for name, b in base.get(suite, {}).items():
        n = now.get(suite, {}).get(name)
        ref = (b or {}).get("items_per_second")
        cur = (n or {}).get("items_per_second")
        if not ref or not cur:
            continue  # new/removed benchmark or timing-only entry: not a gate
        ratio = cur / ref
        mark = "FAIL" if ratio < 1.0 - THRESHOLD else "ok"
        print(f"{mark:4s} {suite}/{name}: {cur/1e6:8.2f} M/s vs {ref/1e6:8.2f} M/s ({ratio:5.2f}x)")
        if ratio < 1.0 - THRESHOLD:
            failures.append(name)

if failures:
    print(f"\nperf gate FAILED: >{THRESHOLD:.0%} regression in: {', '.join(failures)}")
    sys.exit(1)
print(f"\nperf gate passed (threshold: {THRESHOLD:.0%} drop in items/s)")
PY
    exit 0
    ;;

  tsan)
    MODE="thread"
    ;;
esac

# Sanitizer modes: configure, build, and run the full test suite under the
# given sanitizer(s).
SAN="$MODE"
BUILD_DIR="build-san-${SAN//,/-}"

configure_build "$BUILD_DIR" -DPGXD_SANITIZE="$SAN" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

# abort_on_error/halt_on_error make sanitizer findings fail the test process
# the same way PGXD_CHECK does; detect_leaks stays on wherever ASan supports
# it. TSan keeps its history buffer large enough for the merge-tree tests'
# long synchronization chains.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1:history_size=7}"

run_suite "$BUILD_DIR"
