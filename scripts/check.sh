#!/usr/bin/env bash
# Build-and-verify entry point. Usage:
#
#   scripts/check.sh                 # ASan + UBSan test suite (the default)
#   scripts/check.sh thread          # TSan
#   scripts/check.sh undefined       # UBSan alone
#   scripts/check.sh release         # -O3 -DNDEBUG build + full test suite
#   scripts/check.sh perf            # Release benches vs committed
#                                    # results/BENCH_sort.json; fails on a
#                                    # >30% throughput regression
#   scripts/check.sh telemetry       # Release suite with PGXD_TELEMETRY=1,
#                                    # pgxd_sim --report/--trace smoke test
#                                    # validated against the checked-in
#                                    # schema, and a <3% telemetry-overhead
#                                    # gate on the fig5 e2e workload
#
# Each mode gets its own build tree, so switching between them never forces
# a full reconfigure of the main build.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-address,undefined}"

case "$MODE" in
  release)
    BUILD_DIR="build-release"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
    exit 0
    ;;

  telemetry)
    BUILD_DIR="build-release"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j "$(nproc)"

    # 1. The whole tier-1 suite with every sort instrumented
    #    (SortConfig::telemetry defaults from this env var).
    PGXD_TELEMETRY=1 ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

    # 2. Flight-recorder smoke test: 4-rank exponential sort, report +
    #    chrome trace, then schema + semantic validation.
    TMP="$(mktemp -d /tmp/pgxd_telemetry.XXXXXX)"
    trap 'rm -rf "$TMP"' EXIT
    "$BUILD_DIR/tools/pgxd_sim" --dist=exponential --n=200000 --p=4 \
      --report="$TMP/report.json" --trace="$TMP/trace.json"
    python3 tools/validate_report.py "$TMP/report.json" tools/report_schema.json
    python3 - "$TMP/trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f: doc = json.load(f)
events = doc["traceEvents"]
complete = [e for e in events if e.get("ph") == "X"]
names = {e["name"] for e in complete}
want = {"local-sort", "sampling", "splitter-select",
        "partition-plan", "send/receive", "final-merge"}
missing = want - names
assert not missing, f"chrome trace missing steps: {missing}"
assert all("ts" in e and "dur" in e for e in complete)
print(f"OK: chrome trace has {len(complete)} spans over {len(names)} step names")
PY

    # 3. Overhead gate: the fig5 e2e workload with telemetry off vs on must
    #    stay within 3% wall-clock (best of N to shave scheduler noise).
    python3 - "$BUILD_DIR" <<'PY'
import subprocess, sys, time

build = sys.argv[1]
cmd = [f"{build}/bench/fig5_total_time", "--n=2097152", "--procs=8,16"]

def best_of(env_extra, runs=3):
    best = float("inf")
    for _ in range(runs):
        env = dict(**__import__("os").environ, **env_extra)
        t0 = time.monotonic()
        subprocess.run(cmd, check=True, env=env, stdout=subprocess.DEVNULL)
        best = min(best, time.monotonic() - t0)
    return best

off = best_of({"PGXD_TELEMETRY": "0"})
on = best_of({"PGXD_TELEMETRY": "1"})
ratio = on / off
print(f"telemetry overhead: off {off:.3f}s, on {on:.3f}s ({ratio:.4f}x)")
if ratio > 1.03:
    print(f"FAIL: telemetry overhead {ratio - 1:.1%} exceeds the 3% budget")
    sys.exit(1)
print("telemetry overhead gate passed (<3%)")
PY
    exit 0
    ;;

  perf)
    BASELINE="results/BENCH_sort.json"
    [ -f "$BASELINE" ] || {
      echo "no committed baseline at $BASELINE; run scripts/bench.sh first" >&2
      exit 1
    }
    NOW="$(mktemp /tmp/bench_now.XXXXXX.json)"
    trap 'rm -f "$NOW"' EXIT
    scripts/bench.sh "$NOW"
    python3 - "$BASELINE" "$NOW" <<'PY'
import json, sys

THRESHOLD = 0.30  # fail when throughput drops by more than this

with open(sys.argv[1]) as f: base = json.load(f)
with open(sys.argv[2]) as f: now = json.load(f)

failures = []
for suite in ("kernels_local_sort", "kernels_network"):
    for name, b in base.get(suite, {}).items():
        n = now.get(suite, {}).get(name)
        ref = (b or {}).get("items_per_second")
        cur = (n or {}).get("items_per_second")
        if not ref or not cur:
            continue  # new/removed benchmark or timing-only entry: not a gate
        ratio = cur / ref
        mark = "FAIL" if ratio < 1.0 - THRESHOLD else "ok"
        print(f"{mark:4s} {suite}/{name}: {cur/1e6:8.2f} M/s vs {ref/1e6:8.2f} M/s ({ratio:5.2f}x)")
        if ratio < 1.0 - THRESHOLD:
            failures.append(name)

if failures:
    print(f"\nperf gate FAILED: >{THRESHOLD:.0%} regression in: {', '.join(failures)}")
    sys.exit(1)
print(f"\nperf gate passed (threshold: {THRESHOLD:.0%} drop in items/s)")
PY
    exit 0
    ;;
esac

# Sanitizer modes: configure, build, and run the full test suite under the
# given sanitizer(s).
SAN="$MODE"
BUILD_DIR="build-san-${SAN//,/-}"

cmake -B "${BUILD_DIR}" -S . -DPGXD_SANITIZE="${SAN}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# abort_on_error makes sanitizer findings fail the test process the same way
# PGXD_CHECK does; detect_leaks stays on wherever ASan supports it.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
