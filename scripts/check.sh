#!/usr/bin/env bash
# Sanitizer check: configure, build, and run the full test suite under the
# given sanitizer(s). Usage:
#
#   scripts/check.sh                 # ASan + UBSan (the default)
#   scripts/check.sh thread          # TSan
#   scripts/check.sh undefined       # UBSan alone
#
# Each sanitizer combination gets its own build tree (build-san-<name>), so
# switching between them never forces a full reconfigure of the main build.
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${1:-address,undefined}"
BUILD_DIR="build-san-${SAN//,/-}"

cmake -B "${BUILD_DIR}" -S . -DPGXD_SANITIZE="${SAN}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# abort_on_error makes sanitizer findings fail the test process the same way
# PGXD_CHECK does; detect_leaks stays on wherever ASan supports it.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
