#!/usr/bin/env bash
# Build-and-verify entry point. Usage:
#
#   scripts/check.sh                 # ASan + UBSan test suite (the default)
#   scripts/check.sh thread          # TSan
#   scripts/check.sh undefined       # UBSan alone
#   scripts/check.sh release         # -O3 -DNDEBUG build + full test suite
#   scripts/check.sh perf            # Release benches vs committed
#                                    # results/BENCH_sort.json; fails on a
#                                    # >30% throughput regression
#
# Each mode gets its own build tree, so switching between them never forces
# a full reconfigure of the main build.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-address,undefined}"

case "$MODE" in
  release)
    BUILD_DIR="build-release"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
    exit 0
    ;;

  perf)
    BASELINE="results/BENCH_sort.json"
    [ -f "$BASELINE" ] || {
      echo "no committed baseline at $BASELINE; run scripts/bench.sh first" >&2
      exit 1
    }
    NOW="$(mktemp /tmp/bench_now.XXXXXX.json)"
    trap 'rm -f "$NOW"' EXIT
    scripts/bench.sh "$NOW"
    python3 - "$BASELINE" "$NOW" <<'PY'
import json, sys

THRESHOLD = 0.30  # fail when throughput drops by more than this

with open(sys.argv[1]) as f: base = json.load(f)
with open(sys.argv[2]) as f: now = json.load(f)

failures = []
for suite in ("kernels_local_sort", "kernels_network"):
    for name, b in base.get(suite, {}).items():
        n = now.get(suite, {}).get(name)
        ref = (b or {}).get("items_per_second")
        cur = (n or {}).get("items_per_second")
        if not ref or not cur:
            continue  # new/removed benchmark or timing-only entry: not a gate
        ratio = cur / ref
        mark = "FAIL" if ratio < 1.0 - THRESHOLD else "ok"
        print(f"{mark:4s} {suite}/{name}: {cur/1e6:8.2f} M/s vs {ref/1e6:8.2f} M/s ({ratio:5.2f}x)")
        if ratio < 1.0 - THRESHOLD:
            failures.append(name)

if failures:
    print(f"\nperf gate FAILED: >{THRESHOLD:.0%} regression in: {', '.join(failures)}")
    sys.exit(1)
print(f"\nperf gate passed (threshold: {THRESHOLD:.0%} drop in items/s)")
PY
    exit 0
    ;;
esac

# Sanitizer modes: configure, build, and run the full test suite under the
# given sanitizer(s).
SAN="$MODE"
BUILD_DIR="build-san-${SAN//,/-}"

cmake -B "${BUILD_DIR}" -S . -DPGXD_SANITIZE="${SAN}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# abort_on_error makes sanitizer findings fail the test process the same way
# PGXD_CHECK does; detect_leaks stays on wherever ASan supports it.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
