#!/usr/bin/env bash
# Performance baseline: builds the benchmark suite in Release (-O3 -DNDEBUG),
# runs the google-benchmark kernel suites plus a wall-clock end-to-end run of
# the Figure 5 simulation, and folds everything into one machine-readable
# snapshot. Usage:
#
#   scripts/bench.sh                   # writes results/BENCH_sort.json
#   scripts/bench.sh /tmp/now.json     # write elsewhere (perf-gate compares
#                                      # a fresh file against the committed one)
#
# The committed results/BENCH_sort.json is the regression reference for
# `scripts/check.sh perf`.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-results/BENCH_sort.json}"
BUILD_DIR="${BUILD_DIR:-build-release}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target kernels_local_sort kernels_network fig5_total_time

# Kernel microbenchmarks, JSON so the perf gate can diff items_per_second.
"$BUILD_DIR/bench/kernels_local_sort" \
  --benchmark_format=json --benchmark_min_time=0.2 \
  > "$TMP/local_sort.json"
"$BUILD_DIR/bench/kernels_network" \
  --benchmark_format=json --benchmark_min_time=0.2 \
  > "$TMP/network.json"

# End-to-end: wall-clock seconds to run the Fig. 5 sweep (real sorting work
# inside the simulator — local sorts, exchanges, merges — not simulated time).
E2E_START=$(date +%s.%N)
"$BUILD_DIR/bench/fig5_total_time" > "$TMP/fig5.txt"
E2E_SECS=$(python3 -c "import time,sys; print(f'{time.time()-float(sys.argv[1]):.3f}')" "$E2E_START")

python3 - "$TMP" "$OUT" "$E2E_SECS" <<'PY'
import json, sys
tmp, out, e2e = sys.argv[1], sys.argv[2], float(sys.argv[3])

def kernels(path):
    with open(path) as f:
        doc = json.load(f)
    res = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        res[b["name"]] = {
            "items_per_second": b.get("items_per_second"),
            "real_time_ns": b.get("real_time"),
        }
    return res

snapshot = {
    "schema": 1,
    "build_type": "Release",
    "kernels_local_sort": kernels(f"{tmp}/local_sort.json"),
    "kernels_network": kernels(f"{tmp}/network.json"),
    "e2e": {"fig5_total_time_wall_seconds": e2e},
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
PY
