#!/usr/bin/env bash
# Performance baseline: builds the benchmark suite in Release (-O3 -DNDEBUG),
# runs the google-benchmark kernel suites plus a wall-clock end-to-end run of
# the Figure 5 simulation, and folds everything into one machine-readable
# snapshot. Usage:
#
#   scripts/bench.sh                   # writes results/BENCH_sort.json
#   scripts/bench.sh /tmp/now.json     # write elsewhere (perf-gate compares
#                                      # a fresh file against the committed one)
#
# The committed results/BENCH_sort.json is the regression reference for
# `scripts/check.sh perf`.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-results/BENCH_sort.json}"
BUILD_DIR="${BUILD_DIR:-build-release}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target kernels_local_sort kernels_network fig5_total_time pgxd_sim_tool

# Provenance for the snapshot's "meta" block: exact source revision (plus a
# -dirty marker for uncommitted changes) and the effective SortConfig knobs
# as the binary resolves them. The perf gate never compares "meta" — it
# exists so a regression report can say what was actually measured.
GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD 2>/dev/null; then GIT_SHA="$GIT_SHA-dirty"; fi
"$BUILD_DIR/tools/pgxd_sim" --print-config > "$TMP/sort_config.json"

# Kernel microbenchmarks, JSON so the perf gate can diff items_per_second.
"$BUILD_DIR/bench/kernels_local_sort" \
  --benchmark_format=json --benchmark_min_time=0.2 \
  > "$TMP/local_sort.json"
"$BUILD_DIR/bench/kernels_network" \
  --benchmark_format=json --benchmark_min_time=0.2 \
  > "$TMP/network.json"

# End-to-end: wall-clock seconds to run the Fig. 5 sweep (real sorting work
# inside the simulator — local sorts, exchanges, merges — not simulated time).
E2E_START=$(date +%s.%N)
"$BUILD_DIR/bench/fig5_total_time" > "$TMP/fig5.txt"
E2E_SECS=$(python3 -c "import time,sys; print(f'{time.time()-float(sys.argv[1]):.3f}')" "$E2E_START")

python3 - "$TMP" "$OUT" "$E2E_SECS" "$GIT_SHA" <<'PY'
import json, sys
tmp, out, e2e, git_sha = sys.argv[1], sys.argv[2], float(sys.argv[3]), sys.argv[4]

def kernels(path):
    with open(path) as f:
        doc = json.load(f)
    res = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        res[b["name"]] = {
            "items_per_second": b.get("items_per_second"),
            "real_time_ns": b.get("real_time"),
        }
    return res

with open(f"{tmp}/sort_config.json") as f:
    sort_config = json.load(f)

snapshot = {
    "schema": 1,
    "build_type": "Release",
    "meta": {
        "git_sha": git_sha,
        "build_type": "Release",
        "sort_config": sort_config,
    },
    "kernels_local_sort": kernels(f"{tmp}/local_sort.json"),
    "kernels_network": kernels(f"{tmp}/network.json"),
    "e2e": {"fig5_total_time_wall_seconds": e2e},
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
PY
