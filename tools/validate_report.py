#!/usr/bin/env python3
"""Validate a SortReport JSON document against tools/report_schema.json.

Implements the small JSON-Schema subset the checked-in schema uses (type,
properties, required, additionalProperties, items, enum, minimum, minItems)
so no third-party dependency is needed, then applies semantic checks the
schema language cannot express:

  * the phases cover all six Fig. 7 step names, each exactly once;
  * per-phase and per-load min <= mean <= max;
  * load totals match run.n, and splitter boundary_error has machines-1
    entries bounded by max_error;
  * required sort.* metric counters are present in the merged registry;
  * the partition section is self-consistent per scheme: the one-level
    baseline reports exactly one round, one group, and no probe/level-1
    traffic; histogram refinement stays flat (one group, no level-1 items)
    and respects its epsilon target's sign; two-level AMS never probes;
  * the recovery section is self-consistent: mean time-to-recover never
    exceeds the max, final_members never exceeds machines, a clean run
    (recoveries == 0) reports zero recovery cost, and a recovery-enabled
    run with recoveries > 0 shrank or kept the membership;
  * the waits section is self-consistent: a report can only come from a
    run that completed, so deadlocks must be 0, and max_blocked (peak
    simultaneously-blocked ranks) never exceeds run.machines;
  * a computed critical_path reconciles with the run: total_ns equals
    total_time_ns within 1%, compute + wire == total, phase shares sum to
    1, and every on-path phase is one of the six step names;
  * timeseries points are [t_ns, value] pairs with non-decreasing time and
    at most `capacity` entries per series.

Usage: validate_report.py [--strict] report.json [schema.json]
       validate_report.py --selftest

--strict additionally rejects keys the schema does not declare, wherever
the schema declares `properties` (schema-drift detector: a new C++ report
field must land in the schema in the same change). --selftest runs the
validator against built-in good/bad fixtures and exits non-zero if any
fixture stops behaving as designed.

Exit code 0 on success; prints every violation and exits 1 otherwise.
"""

import json
import os
import sys

STEP_NAMES = [
    "local-sort", "sampling", "splitter-select",
    "partition-plan", "send/receive", "final-merge",
]

REQUIRED_COUNTERS = [
    "sort.load.items",
    "sort.exchange.chunks_sent",
    "sort.exchange.items_received",
    "net.nic.bytes_sent",
    "net.nic.messages_sent",
]


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "null":
        return value is None
    return False


def validate(value, schema, path, errors, strict=False):
    expected = schema.get("type")
    if expected is not None and not type_ok(value, expected):
        errors.append("%s: expected %s, got %s" %
                      (path, expected, type(value).__name__))
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: %r not in enum %r" % (path, value, schema["enum"]))
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append("%s: %r < minimum %r" % (path, value, schema["minimum"]))
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append("%s: missing required key %r" % (path, req))
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, "%s.%s" % (path, key), errors,
                         strict)
        # additionalProperties: False always closes an object. In strict
        # mode every object that declares properties is closed unless the
        # schema explicitly opts out with additionalProperties: True —
        # catching C++ report fields that never landed in the schema.
        closed = schema.get("additionalProperties") is False or \
            (strict and props and
             schema.get("additionalProperties") is not True)
        if closed:
            for key in value:
                if key not in props:
                    errors.append("%s: unexpected key %r" % (path, key))
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append("%s: %d items < minItems %d" %
                          (path, len(value), schema["minItems"]))
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                validate(item, items, "%s[%d]" % (path, i), errors, strict)


def semantic_checks(doc, errors):
    phases = doc.get("phases", [])
    names = [p.get("name") for p in phases]
    for step in STEP_NAMES:
        if names.count(step) != 1:
            errors.append("phases: step %r appears %d times, want exactly 1" %
                          (step, names.count(step)))
    for p in phases:
        lo, mid, hi = p.get("min_ns", 0), p.get("mean_ns", 0), p.get("max_ns", 0)
        if not (lo <= mid <= hi):
            errors.append("phase %r: min/mean/max out of order (%r, %r, %r)" %
                          (p.get("name"), lo, mid, hi))

    run = doc.get("run", {})
    machines = run.get("machines", 0)
    for unit in ("items", "bytes"):
        load = doc.get("load", {}).get(unit, {})
        lo, mid, hi = load.get("min", 0), load.get("mean", 0), load.get("max", 0)
        if not (lo <= mid <= hi):
            errors.append("load.%s: min/mean/max out of order (%r, %r, %r)" %
                          (unit, lo, mid, hi))
    if doc.get("load", {}).get("items", {}).get("total") != run.get("n"):
        errors.append("load.items.total != run.n")

    boundary = doc.get("splitters", {}).get("boundary_error", [])
    if machines and len(boundary) != machines - 1:
        errors.append("splitters.boundary_error: %d entries, want machines-1=%d"
                      % (len(boundary), machines - 1))
    max_err = doc.get("splitters", {}).get("max_error", 0)
    for i, e in enumerate(boundary):
        if e > max_err + 1e-12:
            errors.append("splitters.boundary_error[%d]=%r exceeds max_error=%r"
                          % (i, e, max_err))

    part = doc.get("partition", {})
    scheme = part.get("scheme")
    if scheme == "one-level-sample":
        for key, want in (("rounds", 1), ("groups", 1), ("probe_keys", 0),
                          ("level1_items", 0)):
            if part.get(key, want) != want:
                errors.append("partition: one-level-sample must report "
                              "%s=%r, got %r" % (key, want, part.get(key)))
        if part.get("epsilon_target", 0) != 0:
            errors.append("partition: one-level-sample has no epsilon "
                          "target, got %r" % part.get("epsilon_target"))
    elif scheme == "histogram-refine":
        for key, want in (("groups", 1), ("level1_items", 0)):
            if part.get(key, want) != want:
                errors.append("partition: histogram-refine must report "
                              "%s=%r, got %r" % (key, want, part.get(key)))
        if part.get("epsilon_target", 0) <= 0:
            errors.append("partition: histogram-refine needs a positive "
                          "epsilon_target, got %r" %
                          part.get("epsilon_target"))
    elif scheme == "two-level-ams":
        if part.get("probe_keys", 0) != 0:
            errors.append("partition: two-level-ams does not probe, got "
                          "probe_keys=%r" % part.get("probe_keys"))
    machines_for_groups = machines if machines else 1
    if part.get("groups", 1) > machines_for_groups:
        errors.append("partition: groups=%r exceeds run.machines=%r" %
                      (part.get("groups"), machines))

    counters = doc.get("metrics", {}).get("counters", {})
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            errors.append("metrics.counters: missing %r" % name)

    rec = doc.get("recovery", {})
    if rec.get("time_to_recover_mean_ns", 0) > \
            rec.get("time_to_recover_max_ns", 0) + 1e-9:
        errors.append("recovery: time_to_recover_mean_ns exceeds "
                      "time_to_recover_max_ns")
    if machines and rec.get("final_members", 0) > machines:
        errors.append("recovery: final_members=%r exceeds run.machines=%r" %
                      (rec.get("final_members"), machines))
    if rec.get("recoveries", 0) == 0:
        # A rank can be dead before attempt 0 (shards regenerate without a
        # re-run), but wasted work and time-to-recover only accrue when a
        # failed attempt was actually thrown away.
        for zero_key in ("wasted_work_ns", "time_to_recover_max_ns"):
            if rec.get(zero_key, 0) != 0:
                errors.append("recovery: %s=%r nonzero with recoveries=0" %
                              (zero_key, rec.get(zero_key)))
    if not rec.get("enabled", False):
        if machines and rec.get("final_members", 0) != machines:
            errors.append("recovery: disabled run must report "
                          "final_members == machines")

    waits = doc.get("waits", {})
    if waits.get("deadlocks", 0) != 0:
        errors.append("waits: deadlocks=%r in a completed run (a deadlocked "
                      "run aborts before producing a report)" %
                      waits.get("deadlocks"))
    if machines and waits.get("max_blocked", 0) > machines:
        errors.append("waits: max_blocked=%r exceeds run.machines=%r" %
                      (waits.get("max_blocked"), machines))

    # Critical path: the walk charges contiguous segments back to the run
    # start, so its total must reconcile with the run's end-to-end time
    # (1% tolerance covers any trailing non-span activity).
    cp = doc.get("critical_path", {})
    if cp.get("computed", False):
        total = doc.get("total_time_ns", 0)
        cp_total = cp.get("total_ns", 0)
        if abs(cp_total - total) > max(1, 0.01 * total):
            errors.append("critical_path: total_ns=%r differs from "
                          "total_time_ns=%r by more than 1%%" %
                          (cp_total, total))
        if cp.get("compute_ns", 0) + cp.get("wire_ns", 0) != cp_total:
            errors.append("critical_path: compute_ns + wire_ns != total_ns")
        cp_phases = cp.get("phases", [])
        share_sum = sum(p.get("share", 0) for p in cp_phases)
        if cp_total and abs(share_sum - 1.0) > 0.01:
            errors.append("critical_path: phase shares sum to %r, want 1.0" %
                          share_sum)
        for p in cp_phases:
            if p.get("name") not in STEP_NAMES:
                errors.append("critical_path: phase %r is not a step name" %
                              p.get("name"))
        if len(cp.get("top_edges", [])) > cp.get("hops", 0):
            errors.append("critical_path: more top_edges than hops")
        for i, e in enumerate(cp.get("top_edges", [])):
            if e.get("recv_ns", 0) - e.get("send_ns", 0) != e.get("wire_ns"):
                errors.append("critical_path.top_edges[%d]: wire_ns != "
                              "recv_ns - send_ns" % i)

    ts = doc.get("timeseries", {})
    for name, series in ts.get("series", {}).items():
        points = series.get("points", [])
        cap = series.get("capacity", 0)
        if cap and len(points) > cap:
            errors.append("timeseries.%s: %d points exceed capacity %d" %
                          (name, len(points), cap))
        prev_t = None
        for i, p in enumerate(points):
            if not (isinstance(p, list) and len(p) == 2 and
                    isinstance(p[0], int) and
                    isinstance(p[1], (int, float))):
                errors.append("timeseries.%s.points[%d]: want [t_ns, value]" %
                              (name, i))
                break
            if prev_t is not None and p[0] < prev_t:
                errors.append("timeseries.%s.points[%d]: time went backwards"
                              % (name, i))
                break
            prev_t = p[0]


def run_validation(doc, schema, strict):
    errors = []
    validate(doc, schema, "$", errors, strict)
    if not errors:  # semantic checks assume the shape is right
        semantic_checks(doc, errors)
    return errors


def make_valid_fixture():
    """A minimal document that satisfies the schema and every semantic
    check — the base the self-test mutates."""
    machines, n = 2, 100
    metric_names = ["local_sort", "sampling", "splitter_select",
                    "partition_plan", "exchange", "final_merge"]
    phases = [{"name": name, "metric": metric,
               "min_ns": 10, "max_ns": 20, "mean_ns": 15.0}
              for name, metric in zip(STEP_NAMES, metric_names)]
    load_items = {"total": n, "min": 50, "max": 50, "mean": 50.0,
                  "max_over_min": 1.0, "imbalance": 0.0}
    load_bytes = {"total": 1200, "min": 600, "max": 600, "mean": 600.0,
                  "max_over_min": 1.0, "imbalance": 0.0}
    return {
        "run": {"engine": "pgxd", "distribution": "uniform", "n": n,
                "machines": machines, "seed": 1},
        "total_time_ns": 1000,
        "phases": phases,
        "load": {"items": load_items, "bytes": load_bytes},
        "splitters": {"boundary_error": [0.0], "max_error": 0.0,
                      "mean_error": 0.0},
        "partition": {"scheme": "one-level-sample", "rounds": 1,
                      "epsilon_target": 0.0, "achieved_epsilon": 0.0,
                      "groups": 1, "sample_keys": 4, "probe_keys": 0,
                      "level1_items": 0},
        "network": {"bytes_sent": 0, "messages_sent": 0,
                    "messages_dropped": 0, "messages_duplicated": 0,
                    "retransmits": 0, "acks_received": 0,
                    "duplicates_suppressed": 0, "duplicate_chunks": 0},
        "pool": {"leases": 0, "reuses": 0, "fresh_allocs": 0, "returns": 0,
                 "hit_rate": 0.0},
        "recovery": {"enabled": False, "recoveries": 0, "final_attempt": 0,
                     "final_members": machines, "regenerated_shards": 0,
                     "abort_broadcasts": 0, "hedged_rerequests": 0,
                     "hedged_chunks_resent": 0, "detector_suspicions": 0,
                     "detector_heartbeats_sent": 0, "wasted_work_ns": 0,
                     "time_to_recover_max_ns": 0,
                     "time_to_recover_mean_ns": 0.0},
        "waits": {"mailbox_waits": 4, "barrier_waits": 0, "pool_waits": 0,
                  "holds_added": 2, "deadlock_checks": 1, "deadlocks": 0,
                  "max_blocked": 1},
        "critical_path": {"computed": False, "total_ns": 0, "compute_ns": 0,
                          "wire_ns": 0, "hops": 0, "start_lane": 0,
                          "end_lane": 0, "phases": [], "top_edges": []},
        "timeseries": {"interval_ns": 0, "series": {}},
        "metrics": {"counters": {name: 1 for name in REQUIRED_COUNTERS},
                    "gauges": {}, "histograms": {}, "fixed_histograms": {}},
    }


def selftest(schema):
    """Fixture matrix: (name, mutate(doc), lax_ok, strict_ok)."""
    def identity(doc):
        return doc

    def unknown_top_level(doc):
        doc["experimental_section"] = {"x": 1}
        return doc

    def unknown_nested(doc):
        doc["run"]["git_sha"] = "abc123"
        return doc

    def missing_required(doc):
        del doc["pool"]
        return doc

    def cp_total_mismatch(doc):
        doc["critical_path"] = {
            "computed": True, "total_ns": 2000, "compute_ns": 1800,
            "wire_ns": 200, "hops": 1, "start_lane": 0, "end_lane": 1,
            "phases": [{"name": "send/receive", "compute_ns": 1800,
                        "wire_ns": 200, "share": 1.0, "slack_mean_ns": 0}],
            "top_edges": [{"span_id": 1, "src": 0, "dst": 1, "send_ns": 100,
                           "recv_ns": 300, "wire_ns": 200, "bytes": 64,
                           "label": "chunk", "retransmit": False}],
        }
        return doc

    def cp_consistent(doc):
        doc = cp_total_mismatch(doc)
        doc["critical_path"]["total_ns"] = 1000
        doc["critical_path"]["compute_ns"] = 800
        doc["critical_path"]["phases"][0]["compute_ns"] = 800
        return doc

    def partition_histogram_ok(doc):
        doc["partition"] = {"scheme": "histogram-refine", "rounds": 3,
                            "epsilon_target": 0.05,
                            "achieved_epsilon": 0.02, "groups": 1,
                            "sample_keys": 4, "probe_keys": 12,
                            "level1_items": 0}
        return doc

    def partition_unknown_scheme(doc):
        doc["partition"]["scheme"] = "three-level"
        return doc

    def partition_baseline_with_rounds(doc):
        doc["partition"]["rounds"] = 4
        return doc

    def partition_histogram_no_target(doc):
        doc = partition_histogram_ok(doc)
        doc["partition"]["epsilon_target"] = 0.0
        return doc

    def partition_too_many_groups(doc):
        doc["partition"] = {"scheme": "two-level-ams", "rounds": 1,
                            "epsilon_target": 0.0,
                            "achieved_epsilon": 0.01, "groups": 5,
                            "sample_keys": 4, "probe_keys": 0,
                            "level1_items": 10}
        return doc

    def waits_deadlock_in_report(doc):
        doc["waits"]["deadlocks"] = 1
        return doc

    def waits_overblocked(doc):
        doc["waits"]["max_blocked"] = 99
        return doc

    def ts_time_backwards(doc):
        doc["timeseries"]["series"]["rank0.mailbox_depth"] = {
            "capacity": 4, "dropped": 0, "points": [[200, 1.0], [100, 0.0]],
        }
        return doc

    cases = [
        ("valid", identity, True, True),
        ("unknown top-level key", unknown_top_level, True, False),
        ("unknown nested key", unknown_nested, True, False),
        ("missing required section", missing_required, False, False),
        ("critical_path total off by >1%", cp_total_mismatch, False, False),
        ("critical_path consistent", cp_consistent, True, True),
        ("partition histogram consistent", partition_histogram_ok,
         True, True),
        ("partition unknown scheme", partition_unknown_scheme, False, False),
        ("partition baseline claims rounds", partition_baseline_with_rounds,
         False, False),
        ("partition histogram without target", partition_histogram_no_target,
         False, False),
        ("partition groups exceed machines", partition_too_many_groups,
         False, False),
        ("waits deadlock in completed run", waits_deadlock_in_report,
         False, False),
        ("waits max_blocked exceeds machines", waits_overblocked,
         False, False),
        ("timeseries time backwards", ts_time_backwards, False, False),
    ]
    failures = 0
    for name, mutate, want_lax, want_strict in cases:
        for strict, want in ((False, want_lax), (True, want_strict)):
            doc = mutate(make_valid_fixture())
            errors = run_validation(doc, schema, strict)
            got = not errors
            mode = "strict" if strict else "lax"
            if got != want:
                failures += 1
                print("SELFTEST FAIL: %s [%s]: expected %s, got %s" %
                      (name, mode, "pass" if want else "fail",
                       "pass" if got else "fail"))
                for e in errors[:3]:
                    print("  " + e)
    if failures:
        return 1
    print("OK: validator self-test passed (%d cases x lax/strict)" %
          len(cases))
    return 0


def main(argv):
    args = argv[1:]
    strict = "--strict" in args
    run_self = "--selftest" in args
    args = [a for a in args if a not in ("--strict", "--selftest")]

    if run_self:
        schema_path = args[0] if args else \
            os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "report_schema.json")
        with open(schema_path) as f:
            schema = json.load(f)
        return selftest(schema)

    if len(args) < 1 or len(args) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    report_path = args[0]
    schema_path = args[1] if len(args) == 2 else \
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "report_schema.json")
    with open(report_path) as f:
        doc = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    errors = run_validation(doc, schema, strict)
    if errors:
        for e in errors:
            print("FAIL: %s" % e)
        return 1
    print("OK: %s matches %s%s (%d phases, %d counters)" %
          (report_path, os.path.basename(schema_path),
           " [strict]" if strict else "",
           len(doc.get("phases", [])),
           len(doc.get("metrics", {}).get("counters", {}))))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
