#!/usr/bin/env python3
"""Validate a SortReport JSON document against tools/report_schema.json.

Implements the small JSON-Schema subset the checked-in schema uses (type,
properties, required, additionalProperties, items, enum, minimum, minItems)
so no third-party dependency is needed, then applies semantic checks the
schema language cannot express:

  * the phases cover all six Fig. 7 step names, each exactly once;
  * per-phase and per-load min <= mean <= max;
  * load totals match run.n, and splitter boundary_error has machines-1
    entries bounded by max_error;
  * required sort.* metric counters are present in the merged registry;
  * the recovery section is self-consistent: mean time-to-recover never
    exceeds the max, final_members never exceeds machines, a clean run
    (recoveries == 0) reports zero recovery cost, and a recovery-enabled
    run with recoveries > 0 shrank or kept the membership.

Usage: validate_report.py report.json [schema.json]
Exit code 0 on success; prints every violation and exits 1 otherwise.
"""

import json
import os
import sys

STEP_NAMES = [
    "local-sort", "sampling", "splitter-select",
    "partition-plan", "send/receive", "final-merge",
]

REQUIRED_COUNTERS = [
    "sort.load.items",
    "sort.exchange.chunks_sent",
    "sort.exchange.items_received",
    "net.nic.bytes_sent",
    "net.nic.messages_sent",
]


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "null":
        return value is None
    return False


def validate(value, schema, path, errors):
    expected = schema.get("type")
    if expected is not None and not type_ok(value, expected):
        errors.append("%s: expected %s, got %s" %
                      (path, expected, type(value).__name__))
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: %r not in enum %r" % (path, value, schema["enum"]))
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append("%s: %r < minimum %r" % (path, value, schema["minimum"]))
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append("%s: missing required key %r" % (path, req))
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, "%s.%s" % (path, key), errors)
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    errors.append("%s: unexpected key %r" % (path, key))
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append("%s: %d items < minItems %d" %
                          (path, len(value), schema["minItems"]))
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                validate(item, items, "%s[%d]" % (path, i), errors)


def semantic_checks(doc, errors):
    phases = doc.get("phases", [])
    names = [p.get("name") for p in phases]
    for step in STEP_NAMES:
        if names.count(step) != 1:
            errors.append("phases: step %r appears %d times, want exactly 1" %
                          (step, names.count(step)))
    for p in phases:
        lo, mid, hi = p.get("min_ns", 0), p.get("mean_ns", 0), p.get("max_ns", 0)
        if not (lo <= mid <= hi):
            errors.append("phase %r: min/mean/max out of order (%r, %r, %r)" %
                          (p.get("name"), lo, mid, hi))

    run = doc.get("run", {})
    machines = run.get("machines", 0)
    for unit in ("items", "bytes"):
        load = doc.get("load", {}).get(unit, {})
        lo, mid, hi = load.get("min", 0), load.get("mean", 0), load.get("max", 0)
        if not (lo <= mid <= hi):
            errors.append("load.%s: min/mean/max out of order (%r, %r, %r)" %
                          (unit, lo, mid, hi))
    if doc.get("load", {}).get("items", {}).get("total") != run.get("n"):
        errors.append("load.items.total != run.n")

    boundary = doc.get("splitters", {}).get("boundary_error", [])
    if machines and len(boundary) != machines - 1:
        errors.append("splitters.boundary_error: %d entries, want machines-1=%d"
                      % (len(boundary), machines - 1))
    max_err = doc.get("splitters", {}).get("max_error", 0)
    for i, e in enumerate(boundary):
        if e > max_err + 1e-12:
            errors.append("splitters.boundary_error[%d]=%r exceeds max_error=%r"
                          % (i, e, max_err))

    counters = doc.get("metrics", {}).get("counters", {})
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            errors.append("metrics.counters: missing %r" % name)

    rec = doc.get("recovery", {})
    if rec.get("time_to_recover_mean_ns", 0) > \
            rec.get("time_to_recover_max_ns", 0) + 1e-9:
        errors.append("recovery: time_to_recover_mean_ns exceeds "
                      "time_to_recover_max_ns")
    if machines and rec.get("final_members", 0) > machines:
        errors.append("recovery: final_members=%r exceeds run.machines=%r" %
                      (rec.get("final_members"), machines))
    if rec.get("recoveries", 0) == 0:
        # A rank can be dead before attempt 0 (shards regenerate without a
        # re-run), but wasted work and time-to-recover only accrue when a
        # failed attempt was actually thrown away.
        for zero_key in ("wasted_work_ns", "time_to_recover_max_ns"):
            if rec.get(zero_key, 0) != 0:
                errors.append("recovery: %s=%r nonzero with recoveries=0" %
                              (zero_key, rec.get(zero_key)))
    if not rec.get("enabled", False):
        if machines and rec.get("final_members", 0) != machines:
            errors.append("recovery: disabled run must report "
                          "final_members == machines")


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    report_path = argv[1]
    schema_path = argv[2] if len(argv) == 3 else \
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "report_schema.json")
    with open(report_path) as f:
        doc = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    errors = []
    validate(doc, schema, "$", errors)
    if not errors:  # semantic checks assume the shape is right
        semantic_checks(doc, errors)
    if errors:
        for e in errors:
            print("FAIL: %s" % e)
        return 1
    print("OK: %s matches %s (%d phases, %d counters)" %
          (report_path, os.path.basename(schema_path),
           len(doc.get("phases", [])),
           len(doc.get("metrics", {}).get("counters", {}))))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
