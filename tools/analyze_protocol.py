#!/usr/bin/env python3
"""PGX.D protocol analyzer: static deadlock-and-protocol checks over src/.

Where lint_pgxd.py guards style-level invariants, this tool checks the
message-protocol shape the runtime wait-for graph (src/sim/wait_graph.hpp)
can only verify dynamically:

  tag-unpaired             every kTag* constant used as a send endpoint
                           (post/send) in a file must also appear as a
                           receive endpoint (recv/recv_n/recv_until/
                           try_recv/recv_sort) in that file, and vice
                           versa — a one-sided tag is a send nobody
                           receives (leaks into quiescence checks) or a
                           recv nobody satisfies (deadlock)
  collective-in-rank-branch
                           no collective or barrier call inside an `if`
                           whose condition compares `rank`: collectives
                           are lockstep, and a rank-gated participant
                           hangs every other member
  recovery-unbounded-wait  inside `// pgxd-protocol: recovery-path` ..
                           `// pgxd-protocol: end-recovery-path` regions,
                           no plain blocking recv/recv_n, no barrier, and
                           no unbounded collective — recovery code runs
                           while ranks are crashing and must only use
                           try_recv / recv_until / bounded_* wrappers
  lock-order-unannotated   every std::mutex declared in src/ carries a
                           `// pgxd-lock-order: <label> rank <N>`
                           annotation (same line or the line above)
  lock-order-cycle         within one file stem (hpp + cpp), nested
                           lock_guard/unique_lock/scoped_lock
                           acquisitions must follow strictly increasing
                           pgxd-lock-order ranks — a rank <= an already
                           held rank is a potential lock-order cycle

Markers and suppressions:

  // pgxd-protocol: recovery-path          opens a crash-concurrent region
  // pgxd-protocol: end-recovery-path      closes it
  // pgxd-protocol: allow(rule) -- reason  suppresses `rule` on this line
                                           or the next one
  // pgxd-lock-order: <label> rank <N>     ranks a mutex for cycle checks

Stdlib-only; runs from ctest (tests/protocol_selftest keeps every rule
honest) and from `scripts/check.sh analyze`.
"""

import argparse
import os
import re
import sys

RECOVERY_BEGIN = "pgxd-protocol: recovery-path"
RECOVERY_END = "pgxd-protocol: end-recovery-path"
ALLOW_RE = re.compile(r"pgxd-protocol:\s*allow\(([a-z0-9-]+)\)"
                      r"(\s*--\s*(\S.*))?")
LOCK_ORDER_RE = re.compile(r"pgxd-lock-order:\s*([\w.-]+)\s+rank\s+(\d+)")

# The protocol rules only bind library code; tests and tools exercise the
# comm layer in deliberately odd shapes (one-sided sends, rank-0-only
# probes) that are safe because the whole scenario is in one file's view.
SCAN_DIRS = ("src",)
SKIP_DIR_NAMES = {"protocol_selftest", "__pycache__"}

ALL_RULES = (
    "tag-unpaired",
    "collective-in-rank-branch",
    "recovery-unbounded-wait",
    "lock-order-unannotated",
    "lock-order-cycle",
)

# Collective entry points from src/runtime/collectives.hpp. Sorted longest
# first so the regex alternation can't shadow a longer name with a shorter
# prefix at the same position.
COLLECTIVES = (
    "group_all_to_all", "group_broadcast", "group_gather",
    "all_to_all", "all_gather", "all_reduce", "broadcast", "gather",
)
BOUNDED_COLLECTIVES = tuple("bounded_" + c for c in COLLECTIVES)

SEND_CALL_RE = re.compile(r"[.>]\s*(post|send)\s*\(")
RECV_CALL_RE = re.compile(r"(?:[.>]\s*(?:recv|recv_n|recv_until|try_recv)"
                          r"|\brecv_sort)\s*\(")
COLLECTIVE_CALL_RE = re.compile(
    r"(?<![\w])(" + "|".join(COLLECTIVES + BOUNDED_COLLECTIVES) +
    r")\s*\(")
TAG_TOKEN_RE = re.compile(r"\bkTag\w*\b")

BARRIER_CALL_RE = re.compile(r"[.>]\s*barrier\s*\(")
# Unbounded blocking waits: a bare member recv (try_recv/recv_until have a
# word char before "recv", so the lookbehind rejects them), recv_n, and
# the unbounded collective family (bounded_ prefixed names likewise fail
# the lookbehind).
UNBOUNDED_RECV_RE = re.compile(r"(?<![\w])recv\s*\(")
RECV_N_RE = re.compile(r"\brecv_n\s*\(")
UNBOUNDED_COLLECTIVE_RE = re.compile(
    r"(?<![\w])(" + "|".join(COLLECTIVES) + r")\s*\(")

MUTEX_DECL_RE = re.compile(r"^\s*(?:mutable\s+)?std::mutex\s+(\w+)\s*;")
GUARD_RE = re.compile(
    r"\b(?:std::)?(lock_guard|unique_lock|scoped_lock)\s*"
    r"(?:<[^<>]*>)?\s*\w+\s*[({]([^;{}]*)[)}]")
RANK_BRANCH_RE = re.compile(
    r"(?:\brank\b|\brank\s*\(\s*\))[^&|]*(?:==|!=|<=|>=|<|>)"
    r"|(?:==|!=|<=|>=|<|>)[^&|]*\brank\b")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text):
    """Returns `text` with comments and string/char literals blanked out
    (spaces, newlines preserved) so code patterns can't match inside
    them."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "code"
                out.append('"')
            else:
                out.append("\n" if c == "\n" else " ")
        elif mode == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                mode = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class FileCtx:
    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.stem = os.path.splitext(os.path.basename(rel))[0]
        self.text = text
        self.lines = text.splitlines()
        self.code = strip_code(text)
        self.code_lines = self.code.splitlines()
        # allowed[rule] -> set of 1-based line numbers where it applies
        self.allowed = {}
        self.allow_without_reason = []
        for idx, line in enumerate(self.lines, start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            rule = m.group(1)
            if not m.group(3):
                self.allow_without_reason.append((idx, rule))
                continue
            # A trailing allow covers its own line; a standalone-comment
            # allow covers the next line.
            self.allowed.setdefault(rule, set()).update({idx, idx + 1})
        # Recovery-path regions: set of 1-based lines between markers (a
        # begin without an end extends to EOF — the region is a contract,
        # not a scope, so the conservative reading is the safe one).
        self.recovery_lines = set()
        in_region = False
        for idx, line in enumerate(self.lines, start=1):
            if RECOVERY_END in line:
                in_region = False
                continue
            if RECOVERY_BEGIN in line:
                in_region = True
                continue
            if in_region:
                self.recovery_lines.add(idx)
        # pgxd-lock-order annotations -> the member the annotation ranks:
        # the std::mutex declaration on the same line or the next one.
        self.lock_ranks = {}  # member identifier -> (rank, line)
        self.annotated_decl_lines = set()
        for idx, line in enumerate(self.lines, start=1):
            m = LOCK_ORDER_RE.search(line)
            if not m:
                continue
            rank = int(m.group(2))
            for decl_line in (idx, idx + 1):
                if decl_line > len(self.code_lines):
                    continue
                d = MUTEX_DECL_RE.match(self.code_lines[decl_line - 1])
                if d:
                    self.lock_ranks[d.group(1)] = (rank, decl_line)
                    self.annotated_decl_lines.add(decl_line)
                    break

    def suppressed(self, rule, line):
        return line in self.allowed.get(rule, set())


def line_of(code, pos):
    return code.count("\n", 0, pos) + 1


def paren_span(code, open_paren):
    """Returns the index one past the ')' matching code[open_paren] == '(',
    or None."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return None


def brace_span(code, start):
    """From `start`, skips whitespace; if the next char is '{' returns the
    span (open, close+1) of the brace block, else the span of the single
    statement up to ';' (None when neither closes)."""
    i = start
    n = len(code)
    while i < n and code[i] in " \t\n":
        i += 1
    if i >= n:
        return None
    if code[i] != "{":
        end = code.find(";", i)
        return (i, end + 1) if end != -1 else None
    depth = 0
    for j in range(i, n):
        if code[j] == "{":
            depth += 1
        elif code[j] == "}":
            depth -= 1
            if depth == 0:
                return (i, j + 1)
    return None


def check_tag_pairing(ctx, out):
    """Per-file send/recv endpoint graph over kTag* constants. Per-file is
    the right scope: every protocol in this repo keeps both endpoints of a
    tag in one header (the sorter, spark, radix, queries, analytics), so a
    tag leaving that file's view one-sided is a protocol hole, not a
    modularity choice."""
    sends = {}  # tag name -> first line seen
    recvs = {}

    def record(table, args_text, base_line, offset_code):
        for t in TAG_TOKEN_RE.finditer(args_text):
            name = t.group(0)
            ln = base_line + args_text.count("\n", 0, t.start())
            table.setdefault(name, ln)
        _ = offset_code

    code = ctx.code
    for regexp, side in ((SEND_CALL_RE, "send"), (RECV_CALL_RE, "recv"),
                         (COLLECTIVE_CALL_RE, "both")):
        for m in regexp.finditer(code):
            op = code.find("(", m.end() - 1)
            if op == -1:
                continue
            end = paren_span(code, op)
            if end is None:
                continue
            args = code[op:end]
            ln = line_of(code, m.start())
            if side in ("send", "both"):
                record(sends, args, ln, op)
            if side in ("recv", "both"):
                record(recvs, args, ln, op)

    for name, ln in sorted(sends.items()):
        if name not in recvs:
            out.append(Violation(
                ctx.rel, ln, "tag-unpaired",
                f"{name} is sent here but never received in this file — "
                f"an unreceived tag strands frames in mailboxes (or hides "
                f"a missing receive loop)"))
    for name, ln in sorted(recvs.items()):
        if name not in sends:
            out.append(Violation(
                ctx.rel, ln, "tag-unpaired",
                f"{name} is received here but never sent in this file — "
                f"a recv with no matching send deadlocks"))


def check_collective_in_rank_branch(ctx, out):
    """Collectives and barriers are lockstep: every member must reach the
    call. An `if` that compares `rank` and then invokes one gates a
    participant out and hangs the rest."""
    code = ctx.code
    for m in re.finditer(r"\bif\s*\(", code):
        op = code.find("(", m.start())
        end = paren_span(code, op)
        if end is None:
            continue
        header = code[op:end]
        if not RANK_BRANCH_RE.search(header):
            continue
        bodies = []
        body = brace_span(code, end)
        if body is None:
            continue
        bodies.append(body)
        # The else branch of a rank-comparison if is rank-gated too.
        after = body[1]
        while after < len(code) and code[after] in " \t\n":
            after += 1
        if code[after:after + 4] == "else" and \
                not (code[after + 4:after + 4 + 1].isalnum() or
                     code[after + 4:after + 4 + 1] == "_"):
            else_body = brace_span(code, after + 4)
            if else_body is not None:
                bodies.append(else_body)
        for lo, hi in bodies:
            text = code[lo:hi]
            for c in COLLECTIVE_CALL_RE.finditer(text):
                ln = line_of(code, lo + c.start())
                out.append(Violation(
                    ctx.rel, ln, "collective-in-rank-branch",
                    f"collective '{c.group(1)}' inside a rank-comparison "
                    f"branch; collectives are lockstep — hoist the call "
                    f"out of the branch"))
            for b in BARRIER_CALL_RE.finditer(text):
                ln = line_of(code, lo + b.start())
                out.append(Violation(
                    ctx.rel, ln, "collective-in-rank-branch",
                    "barrier inside a rank-comparison branch; every rank "
                    "must arrive or nobody is released"))


def check_recovery_unbounded_wait(ctx, out):
    if not ctx.recovery_lines:
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if idx not in ctx.recovery_lines:
            continue
        for regexp, what in (
                (UNBOUNDED_RECV_RE,
                 "plain blocking recv in a recovery-path region; use "
                 "try_recv or recv_until with a deadline"),
                (RECV_N_RE,
                 "recv_n in a recovery-path region blocks until all n "
                 "frames land; a crashed sender stalls it forever"),
                (BARRIER_CALL_RE,
                 "barrier in a recovery-path region; a crashed rank never "
                 "arrives — use a bounded collective wrapper"),
                (UNBOUNDED_COLLECTIVE_RE,
                 "unbounded collective in a recovery-path region; use its "
                 "bounded_ deadline-checked wrapper")):
            for _ in regexp.finditer(line):
                out.append(Violation(ctx.rel, idx, "recovery-unbounded-wait",
                                     what))


def check_lock_annotations(ctx, out):
    for idx, line in enumerate(ctx.code_lines, start=1):
        m = MUTEX_DECL_RE.match(line)
        if not m:
            continue
        if idx in ctx.annotated_decl_lines:
            continue
        out.append(Violation(
            ctx.rel, idx, "lock-order-unannotated",
            f"std::mutex {m.group(1)} has no pgxd-lock-order annotation; "
            f"add '// pgxd-lock-order: <label> rank <N>' on this line or "
            f"the one above so cycle analysis can rank it"))


def check_lock_order(ctx, stem_ranks, out):
    """Flags a guard acquisition whose pgxd-lock-order rank is <= a rank
    already held in an enclosing scope. Single-file-stem scope: the hpp
    declaring the mutexes and its cpp share one ranking."""
    ranks = stem_ranks.get(ctx.stem)
    if not ranks:
        return
    code = ctx.code
    acquisitions = []  # (pos, line, [(member, rank)])
    for m in GUARD_RE.finditer(code):
        members = []
        for arg in m.group(2).split(","):
            t = re.search(r"(\w+)\s*$", arg.strip())
            if t and t.group(1) in ranks:
                members.append((t.group(1), ranks[t.group(1)][0]))
        if members:
            acquisitions.append((m.start(), line_of(code, m.start()),
                                 members))
    if not acquisitions:
        return
    acquisitions.reverse()  # pop from the back in document order
    held = []  # (depth, member, rank)
    depth = 0
    for i, c in enumerate(code):
        if c == "{":
            depth += 1
        elif c == "}":
            while held and held[-1][0] >= depth:
                held.pop()
            depth -= 1
        while acquisitions and acquisitions[-1][0] <= i:
            _, ln, members = acquisitions.pop()
            for member, rank in members:
                for hdepth, hmember, hrank in held:
                    if rank <= hrank:
                        out.append(Violation(
                            ctx.rel, ln, "lock-order-cycle",
                            f"acquiring '{member}' (lock-order rank {rank})"
                            f" while holding '{hmember}' (rank {hrank}); "
                            f"acquisition ranks must strictly increase — "
                            f"potential lock-order cycle"))
            # scoped_lock acquires its arguments atomically; record the
            # strongest rank once.
            top = max(r for _, r in members)
            held.append((depth, members[-1][0], top))


def check_marker_hygiene(ctx, out):
    for idx, rule in ctx.allow_without_reason:
        out.append(Violation(
            ctx.rel, idx, rule if rule in ALL_RULES else "tag-unpaired",
            f"pgxd-protocol: allow({rule}) must carry a justification: "
            f"allow(rule) -- reason"))


def analyze_files(files):
    """files: list of (path, rel). Returns all violations after building
    the cross-file per-stem lock-rank maps."""
    ctxs = []
    violations = []
    for path, rel in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            violations.append(Violation(rel, 0, "io", str(e)))
            continue
        ctxs.append(FileCtx(path, rel, text))
    stem_ranks = {}
    for ctx in ctxs:
        if ctx.lock_ranks:
            merged = stem_ranks.setdefault(ctx.stem, {})
            merged.update(ctx.lock_ranks)
    for ctx in ctxs:
        found = []
        check_tag_pairing(ctx, found)
        check_collective_in_rank_branch(ctx, found)
        check_recovery_unbounded_wait(ctx, found)
        check_lock_annotations(ctx, found)
        check_lock_order(ctx, stem_ranks, found)
        check_marker_hygiene(ctx, found)
        violations.extend(v for v in found
                          if not ctx.suppressed(v.rule, v.line))
    return violations


def iter_sources(root):
    for top in SCAN_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in sorted(dirnames)
                           if d not in SKIP_DIR_NAMES and
                           not d.startswith("build")]
            for fn in sorted(filenames):
                if fn.endswith((".hpp", ".h", ".cpp", ".cc")):
                    full = os.path.join(dirpath, fn)
                    yield full, os.path.relpath(full, root)


def run_analysis(root, paths):
    if paths:
        files = [(os.path.abspath(p),
                  os.path.relpath(os.path.abspath(p), root)) for p in paths]
    else:
        files = list(iter_sources(root))
    violations = analyze_files(files)
    for v in violations:
        print(v)
    if violations:
        print(f"analyze_protocol: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"analyze_protocol: clean ({len(files)} files)")
    return 0


def run_selftest(fixture_dir):
    """Fixtures are named <rule>__bad_*.cpp/.hpp (must trigger exactly that
    rule) or <rule>__good_*.cpp/.hpp (must be clean). Any rule with no bad
    fixture fails the self-test, so a rule can't silently stop firing."""
    failures = []
    covered = set()
    entries = sorted(os.listdir(fixture_dir))
    if not entries:
        print("analyze_protocol --selftest: no fixtures found",
              file=sys.stderr)
        return 1
    for fn in entries:
        if not fn.endswith((".hpp", ".h", ".cpp", ".cc")):
            continue
        m = re.match(r"([a-z0-9-]+)__(bad|good)_", fn)
        if not m:
            failures.append(f"{fn}: fixture name must be "
                            f"<rule>__bad_*/<rule>__good_*")
            continue
        rule, kind = m.group(1), m.group(2)
        if rule not in ALL_RULES:
            failures.append(f"{fn}: unknown rule '{rule}'")
            continue
        path = os.path.join(fixture_dir, fn)
        found = analyze_files([(path, fn)])
        fired = {v.rule for v in found}
        if kind == "bad":
            covered.add(rule)
            if rule not in fired:
                failures.append(f"{fn}: expected rule '{rule}' to fire; "
                                f"got {sorted(fired) or 'nothing'}")
        else:
            if fired:
                failures.append(f"{fn}: expected clean; fired "
                                f"{sorted(fired)}")
    for rule in ALL_RULES:
        if rule not in covered:
            failures.append(f"rule '{rule}' has no __bad_ fixture — it "
                            f"could stop firing without anyone noticing")
    for f in failures:
        print(f"SELFTEST FAIL {f}", file=sys.stderr)
    if failures:
        return 1
    print(f"analyze_protocol --selftest: {len(covered)} rules verified "
          f"against {len(entries)} fixtures")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--selftest", metavar="DIR",
                    help="run the fixture self-test against DIR")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("paths", nargs="*",
                    help="analyze only these files (default: src/)")
    args = ap.parse_args()
    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0
    if args.selftest:
        return run_selftest(args.selftest)
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    return run_analysis(root, args.paths)


if __name__ == "__main__":
    sys.exit(main())
