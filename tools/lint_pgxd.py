#!/usr/bin/env python3
"""PGX.D repo linter: project-specific invariants generic tools can't see.

Rules (see docs/ARCHITECTURE.md "Correctness tooling"):

  hot-path-std-function    no std::function in files marked hot-path
  hot-path-naked-new       no naked new expressions in hot-path files
  hot-path-std-set         no std::set/std::multiset in hot-path files
  hot-path-functional-include
                           no #include <functional> in hot-path files;
                           default comparators use sort::Less
                           (sort/comparator.hpp)
  determinism-wall-clock   no wall/monotonic clock reads in src/sim, src/sort
  determinism-unseeded-rng no random_device/rand()/default-seeded engines
                           in src/sim, src/sort
  task-ref-capture         no by-reference lambda captures handed to
                           coroutine spawns, and no [&]-capturing lambda
                           coroutines (dangling across suspension)
  include-pragma-once      every header starts with #pragma once
  include-relative-parent  no #include "../..." uphill includes
  telemetry-lookup-in-loop no instrument lookup-by-name inside a loop body
                           (resolve once, bump the cached reference)
  nolint-justification     every NOLINT names its check and a reason;
                           every pgxd-lint: allow(...) carries a reason

File markers and suppressions:

  // pgxd-lint: hot-path                      marks a file hot-path
  // pgxd-lint: allow(rule-name) -- reason    suppresses `rule-name` on this
                                              line or the next one

The linter is stdlib-only and runs from ctest (tests/lint_selftest keeps
every rule honest) and from `scripts/check.sh lint`.
"""

import argparse
import os
import re
import sys

HOT_PATH_MARKER = "pgxd-lint: hot-path"
# Fixture-only marker: forces the determinism scope for files that don't
# live under src/sim or src/sort (the self-test corpus).
DETERMINISM_MARKER = "pgxd-lint: determinism-scope"
ALLOW_RE = re.compile(r"pgxd-lint:\s*allow\(([a-z0-9-]+)\)(\s*--\s*(\S.*))?")

# Directories scanned relative to the repo root, and the subset where the
# determinism contract applies (simulated time + seeded streams only).
SCAN_DIRS = ("src", "tests", "bench", "tools", "examples")
DETERMINISM_DIRS = ("src/sim", "src/sort")
SKIP_DIR_NAMES = {"lint_selftest", "protocol_selftest", "__pycache__"}

ALL_RULES = (
    "hot-path-std-function",
    "hot-path-naked-new",
    "hot-path-std-set",
    "hot-path-functional-include",
    "determinism-wall-clock",
    "determinism-unseeded-rng",
    "task-ref-capture",
    "include-pragma-once",
    "include-relative-parent",
    "telemetry-lookup-in-loop",
    "nolint-justification",
)


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text):
    """Returns `text` with comments and string/char literals blanked out
    (replaced by spaces, newlines preserved) so code patterns can't match
    inside them. Keeps instrument-name string *openers* intact is NOT done:
    callers that need string contents must use the raw text."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "code"
                out.append('"')
            else:
                out.append("\n" if c == "\n" else " ")
        elif mode == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                mode = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class FileCtx:
    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.text = text
        self.lines = text.splitlines()
        self.code = strip_code(text)
        self.code_lines = self.code.splitlines()
        self.hot_path = HOT_PATH_MARKER in text
        self.is_header = rel.endswith((".hpp", ".h"))
        # allowed[rule] -> set of 1-based line numbers where it applies
        self.allowed = {}
        self.allow_without_reason = []  # line numbers
        for idx, line in enumerate(self.lines, start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            rule = m.group(1)
            if not m.group(3):
                self.allow_without_reason.append((idx, rule))
                continue
            # A trailing allow covers its own line; a standalone-comment
            # allow covers the next line.
            self.allowed.setdefault(rule, set()).update({idx, idx + 1})

    def suppressed(self, rule, line):
        return line in self.allowed.get(rule, set())

    def in_determinism_scope(self):
        return (DETERMINISM_MARKER in self.text or
                any(self.rel.startswith(d + "/") for d in DETERMINISM_DIRS))

    def in_tests(self):
        return self.rel.startswith("tests/")


def code_matches(ctx, pattern):
    """Yields (line_no, match) for `pattern` over comment/string-stripped
    code."""
    for idx, line in enumerate(ctx.code_lines, start=1):
        for m in re.finditer(pattern, line):
            yield idx, m


def check_hot_path(ctx, out):
    if not ctx.hot_path:
        return
    for line, _ in code_matches(ctx, r"\bstd::function\s*<"):
        out.append(Violation(ctx.rel, line, "hot-path-std-function",
                             "std::function in a hot-path file; use a "
                             "template parameter or function pointer"))
    for line, _ in code_matches(ctx, r"\bnew\b(?!\s*\()"):
        out.append(Violation(ctx.rel, line, "hot-path-naked-new",
                             "naked new in a hot-path file; use containers "
                             "or the buffer pool"))
    for line, _ in code_matches(ctx, r"\bstd::(multi)?set\s*<"):
        out.append(Violation(ctx.rel, line, "hot-path-std-set",
                             "std::set in a hot-path file; use a sorted "
                             "vector or bitmap"))
    for line, _ in code_matches(ctx, r"#\s*include\s*<functional>"):
        out.append(Violation(ctx.rel, line, "hot-path-functional-include",
                             "<functional> in a hot-path file; default "
                             "comparators use sort::Less "
                             "(sort/comparator.hpp) — justify real uses "
                             "with allow(...)"))


WALL_CLOCK_RE = (r"\b(system_clock|steady_clock|high_resolution_clock)\b"
                 r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
                 r"|\bstd::time\s*\(|\btime\s*\(\s*(NULL|nullptr|0)\s*\)")
UNSEEDED_RNG_RE = (r"\bstd::random_device\b|\brandom_device\b"
                   r"|\bstd::rand\s*\(|\bsrand\s*\("
                   r"|\b(mt19937(_64)?|default_random_engine|minstd_rand0?)"
                   r"\s*(\{\s*\}|\(\s*\))")


def check_determinism(ctx, out):
    if not ctx.in_determinism_scope():
        return
    for line, _ in code_matches(ctx, WALL_CLOCK_RE):
        out.append(Violation(ctx.rel, line, "determinism-wall-clock",
                             "wall/monotonic clock read inside the "
                             "determinism contract (src/sim, src/sort); use "
                             "sim::Simulator::now()"))
    for line, _ in code_matches(ctx, UNSEEDED_RNG_RE):
        out.append(Violation(ctx.rel, line, "determinism-unseeded-rng",
                             "unseeded/system RNG inside the determinism "
                             "contract; use pgxd::Rng with an explicit seed"))


def lambda_body_span(code, open_bracket):
    """Given the index of a lambda's '[', returns (body_start, body_end)
    indices of its outermost braces, or None when it can't be found."""
    depth = 0
    i = open_bracket
    n = len(code)
    # Skip the capture list.
    while i < n:
        if code[i] == "[":
            depth += 1
        elif code[i] == "]":
            depth -= 1
            if depth == 0:
                break
        i += 1
    # Find the body's opening brace (skipping parameter list / specifiers).
    while i < n and code[i] != "{":
        if code[i] == ";":
            return None  # not a lambda after all (e.g. array subscript)
        i += 1
    if i == n:
        return None
    start = i
    depth = 0
    while i < n:
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return (start, i + 1)
        i += 1
    return None


REF_LAMBDA_RE = re.compile(r"\[\s*&")


def check_task_ref_capture(ctx, out):
    code = ctx.code
    # (a) a by-reference lambda passed straight into a coroutine spawn.
    for m in re.finditer(r"\bspawn\s*\(\s*\[\s*&", code):
        line = code.count("\n", 0, m.start()) + 1
        out.append(Violation(ctx.rel, line, "task-ref-capture",
                             "by-reference lambda capture passed to spawn(); "
                             "captures dangle once the caller's frame "
                             "suspends — capture by value"))
    # (b) any [&]-capturing lambda whose body is itself a coroutine. Library
    # code only: tests construct-and-run within one scope (cluster.run /
    # sim.run holds the lambda alive through the whole simulation), which is
    # safe by construction.
    if ctx.in_tests():
        return
    for m in REF_LAMBDA_RE.finditer(code):
        span = lambda_body_span(code, m.start())
        if span is None:
            continue
        body = code[span[0]:span[1]]
        if re.search(r"\bco_(await|return|yield)\b", body):
            line = code.count("\n", 0, m.start()) + 1
            out.append(Violation(ctx.rel, line, "task-ref-capture",
                                 "by-reference capture in a lambda coroutine; "
                                 "references dangle across suspension — "
                                 "capture by value or pass parameters"))


def check_include_hygiene(ctx, out):
    if ctx.is_header:
        has_pragma = False
        for line in ctx.lines:
            s = line.strip()
            if not s or s.startswith("//") or s.startswith("/*") or \
               s.startswith("*"):
                continue
            has_pragma = s.startswith("#pragma once")
            break
        if not has_pragma:
            out.append(Violation(ctx.rel, 1, "include-pragma-once",
                                 "header must open with #pragma once "
                                 "(after the file comment)"))
    for idx, line in enumerate(ctx.lines, start=1):
        if re.match(r'\s*#\s*include\s+"\.\./', line):
            out.append(Violation(ctx.rel, idx, "include-relative-parent",
                                 "uphill relative include; include from the "
                                 "src/ root (e.g. \"common/rng.hpp\")"))


LOOKUP_RE = re.compile(r"\.\s*(counter|gauge|histogram|fixed_histogram)"
                       r"\s*\(\s*\"")


def check_telemetry_lookup_in_loop(ctx, out):
    # Brace-depth tracker: remember the depth at which each `for`/`while`
    # statement opened; a name lookup while inside any loop scope flags.
    # Heuristic (single pass, no parse) but backed by fixtures. Library and
    # bench code only: registry tests probe names in loops on purpose.
    if ctx.in_tests():
        return
    code = ctx.code
    raw = ctx.text
    loop_stack = []  # brace depths at which a loop body opened
    depth = 0
    pending_loop = 0  # loop headers seen whose body brace hasn't opened yet
    i, n = 0, len(code)
    line = 1
    while i < n:
        c = code[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c == "{":
            depth += 1
            if pending_loop > 0:
                loop_stack.append(depth)
                pending_loop -= 1
            i += 1
            continue
        if c == "}":
            if loop_stack and loop_stack[-1] == depth:
                loop_stack.pop()
            depth -= 1
            i += 1
            continue
        m = re.match(r"\b(for|while)\s*\(", code[i:])
        if m and (i == 0 or not code[i - 1].isalnum() and code[i - 1] != "_"):
            # Skip the parenthesized header so `;` inside for(...) doesn't
            # cancel the pending body, and so lookups in headers count too.
            j = i + m.end() - 1
            pdepth = 0
            while j < n:
                if code[j] == "(":
                    pdepth += 1
                elif code[j] == ")":
                    pdepth -= 1
                    if pdepth == 0:
                        break
                elif code[j] == "\n":
                    pass
                j += 1
            header = code[i:j + 1]
            hm = LOOKUP_RE.search(header)
            if hm:
                hline = line + code.count("\n", i, i + hm.start())
                out.append(Violation(
                    ctx.rel, hline, "telemetry-lookup-in-loop",
                    "instrument lookup-by-name inside a loop; resolve the "
                    "instrument once outside and bump the reference"))
            line += code.count("\n", i, j + 1)
            pending_loop += 1
            i = j + 1
            # A brace-less loop body (single statement) is rare here; if the
            # next non-space char isn't '{', treat the single statement as
            # the body up to ';'.
            k = i
            while k < n and code[k] in " \t\n":
                k += 1
            if k < n and code[k] != "{":
                stmt_end = code.find(";", k)
                if stmt_end != -1:
                    body = code[k:stmt_end]
                    bm = LOOKUP_RE.search(body)
                    if bm:
                        bline = line + code.count("\n", i, k + bm.start())
                        out.append(Violation(
                            ctx.rel, bline, "telemetry-lookup-in-loop",
                            "instrument lookup-by-name inside a loop; "
                            "resolve the instrument once outside and bump "
                            "the reference"))
                pending_loop -= 1
            continue
        if loop_stack:
            lm = LOOKUP_RE.match(code[i:])
            if lm:
                out.append(Violation(
                    ctx.rel, line, "telemetry-lookup-in-loop",
                    "instrument lookup-by-name inside a loop; resolve the "
                    "instrument once outside and bump the reference"))
                i += lm.end()
                continue
        i += 1
    _ = raw  # (raw text reserved for future string-content rules)


NOLINT_RE = re.compile(r"//\s*NOLINT(NEXTLINE)?(\(([^)]*)\))?(:\s*(\S.*))?")


def check_nolint_justification(ctx, out):
    for idx, line in enumerate(ctx.lines, start=1):
        m = NOLINT_RE.search(line)
        if m:
            if not m.group(3):
                out.append(Violation(ctx.rel, idx, "nolint-justification",
                                     "NOLINT must name the suppressed "
                                     "check(s): NOLINT(check): reason"))
            elif not m.group(5):
                out.append(Violation(ctx.rel, idx, "nolint-justification",
                                     "NOLINT must carry a justification: "
                                     "NOLINT(check): reason"))
    for idx, rule in ctx.allow_without_reason:
        out.append(Violation(ctx.rel, idx, "nolint-justification",
                             f"pgxd-lint: allow({rule}) must carry a "
                             "justification: allow(rule) -- reason"))


CHECKS = (check_hot_path, check_determinism, check_task_ref_capture,
          check_include_hygiene, check_telemetry_lookup_in_loop,
          check_nolint_justification)


def lint_file(path, rel):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Violation(rel, 0, "io", str(e))]
    ctx = FileCtx(path, rel, text)
    found = []
    for check in CHECKS:
        check(ctx, found)
    return [v for v in found if not ctx.suppressed(v.rule, v.line)]


def iter_sources(root):
    for top in SCAN_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in sorted(dirnames)
                           if d not in SKIP_DIR_NAMES and
                           not d.startswith("build")]
            for fn in sorted(filenames):
                if fn.endswith((".hpp", ".h", ".cpp", ".cc")):
                    full = os.path.join(dirpath, fn)
                    yield full, os.path.relpath(full, root)


def run_lint(root, paths):
    violations = []
    if paths:
        for p in paths:
            full = os.path.abspath(p)
            violations.extend(lint_file(full, os.path.relpath(full, root)))
    else:
        for full, rel in iter_sources(root):
            violations.extend(lint_file(full, rel))
    for v in violations:
        print(v)
    if violations:
        print(f"lint_pgxd: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint_pgxd: clean")
    return 0


def run_selftest(fixture_dir):
    """Fixtures are named <rule>__bad_*.cpp/.hpp (must trigger exactly that
    rule) or <rule>__good_*.cpp/.hpp (must be clean). Any rule with no bad
    fixture fails the self-test, so a rule can't silently stop firing."""
    failures = []
    covered = set()
    entries = sorted(os.listdir(fixture_dir))
    if not entries:
        print("lint_pgxd --selftest: no fixtures found", file=sys.stderr)
        return 1
    for fn in entries:
        if not fn.endswith((".hpp", ".h", ".cpp", ".cc")):
            continue
        m = re.match(r"([a-z0-9-]+)__(bad|good)_", fn)
        if not m:
            failures.append(f"{fn}: fixture name must be "
                            f"<rule>__bad_*/<rule>__good_*")
            continue
        rule, kind = m.group(1), m.group(2)
        if rule not in ALL_RULES:
            failures.append(f"{fn}: unknown rule '{rule}'")
            continue
        path = os.path.join(fixture_dir, fn)
        found = lint_file(path, fn)
        fired = {v.rule for v in found}
        if kind == "bad":
            covered.add(rule)
            if rule not in fired:
                failures.append(f"{fn}: expected rule '{rule}' to fire; "
                                f"got {sorted(fired) or 'nothing'}")
        else:
            if fired:
                failures.append(f"{fn}: expected clean; fired "
                                f"{sorted(fired)}")
    for rule in ALL_RULES:
        if rule not in covered:
            failures.append(f"rule '{rule}' has no __bad_ fixture — it could "
                            f"stop firing without anyone noticing")
    for f in failures:
        print(f"SELFTEST FAIL {f}", file=sys.stderr)
    if failures:
        return 1
    print(f"lint_pgxd --selftest: {len(covered)} rules verified against "
          f"{len(entries)} fixtures")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--selftest", metavar="DIR",
                    help="run the fixture self-test against DIR")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("paths", nargs="*",
                    help="lint only these files (default: whole repo)")
    args = ap.parse_args()
    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0
    if args.selftest:
        return run_selftest(args.selftest)
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    return run_lint(root, args.paths)


if __name__ == "__main__":
    sys.exit(main())
