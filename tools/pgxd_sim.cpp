// pgxd_sim — command-line driver for the simulated sorting engines.
//
// Runs any engine (pgxd sample sort, spark sortByKey, bitonic, radix) on
// any workload at any cluster size, validates the result, and prints a
// full report: step/stage times, per-machine loads, wire traffic, memory,
// and (optionally) an ASCII Gantt timeline of the sort steps.
//
// Examples:
//   pgxd_sim --engine=pgxd --dist=twitter --n=4194304 --p=32 --gantt=true
//   pgxd_sim --engine=spark --dist=right-skewed --p=10
//   pgxd_sim --engine=radix --dist=uniform --p=8 --csv=true
//   pgxd_sim --dist=exponential --p=4 --report=out.json --trace=out.trace.json
#include <cstdio>
#include <optional>
#include <string>

#include "baselines/bitonic.hpp"
#include "baselines/radix.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/distributed_sort.hpp"
#include "core/sort_report.hpp"
#include "core/validate.hpp"
#include "datagen/distributions.hpp"
#include "graph/twitter.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/trace.hpp"
#include "spark/sort_by_key.hpp"

namespace {

using Key = std::uint64_t;
using pgxd::Table;

struct Options {
  std::string engine;
  std::string dist;
  std::size_t n = 0;
  std::size_t p = 0;
  unsigned threads = 32;
  std::uint64_t seed = 2017;
  bool csv = false;
  bool gantt = false;
  bool validate = true;
  std::string report_path;  // SortReport JSON (pgxd engine only)
  std::string trace_path;   // Chrome trace_event JSON (pgxd engine only)
  // Causal telemetry (pgxd engine only): critical-path analysis over the
  // span+flow trace, and the time-series sampler interval (0 = off).
  bool critical_path = false;
  std::uint64_t sample_us = 0;
  // Crash-stop fault schedule (pgxd only) and the machinery that survives
  // it: heartbeat failure detector + fail-fast reliable delivery +
  // phase-level sort recovery.
  std::vector<pgxd::net::CrashEvent> crashes;
  bool detector = false;
  bool recovery = false;
  // Lossy-fabric knobs (pgxd only). Either implies reliable delivery —
  // the sort is not drop-tolerant without it.
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  // Schedule perturbation (pgxd only): 0 = the canonical schedule; any
  // other value seeds one deterministic alternative delivery order (plus
  // an optional mailbox wake-up jitter window), the deadlock suite's fuzz
  // dimension.
  std::uint64_t perturb_seed = 0;
  std::uint64_t perturb_jitter_ns = 0;
  pgxd::core::SortConfig sort_cfg;
};

// Parses "--crash=rank@at_us[:restart_after_us]" entries (comma-separated),
// e.g. "2@1500" (rank 2 crash-stops at 1.5ms, never restarts) or
// "2@1500:4000,0@9000" (rank 2 restarts its ports 4ms after the crash and
// rank 0 dies at 9ms).
std::vector<pgxd::net::CrashEvent> parse_crashes(const std::string& spec) {
  std::vector<pgxd::net::CrashEvent> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t at_sep = entry.find('@');
    if (at_sep == std::string::npos) {
      std::fprintf(stderr, "bad --crash entry '%s' (want rank@at_us[:restart_after_us])\n",
                   entry.c_str());
      std::exit(2);
    }
    pgxd::net::CrashEvent ev;
    ev.rank = std::stoul(entry.substr(0, at_sep));
    const std::size_t colon = entry.find(':', at_sep);
    const std::string at_us = colon == std::string::npos
                                  ? entry.substr(at_sep + 1)
                                  : entry.substr(at_sep + 1, colon - at_sep - 1);
    ev.at = static_cast<pgxd::sim::SimTime>(std::stoll(at_us)) *
            pgxd::sim::kMicrosecond;
    if (colon != std::string::npos)
      ev.restart_after =
          static_cast<pgxd::sim::SimTime>(std::stoll(entry.substr(colon + 1))) *
          pgxd::sim::kMicrosecond;
    out.push_back(ev);
  }
  return out;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

std::vector<std::vector<Key>> make_shards(const Options& opt) {
  std::vector<std::vector<Key>> shards;
  if (opt.dist == "twitter") {
    pgxd::graph::TwitterConfig tcfg;
    tcfg.total_keys = opt.n;
    tcfg.seed = opt.seed;
    for (std::size_t r = 0; r < opt.p; ++r)
      shards.push_back(pgxd::graph::twitter_shard(tcfg, opt.p, r));
    return shards;
  }
  pgxd::gen::DataGenConfig dcfg;
  dcfg.seed = opt.seed;
  bool known = false;
  for (auto d : pgxd::gen::kAllDistributionsExtended) {
    if (opt.dist == pgxd::gen::name(d)) {
      dcfg.dist = d;
      known = true;
    }
  }
  if (!known) {
    std::fprintf(stderr, "unknown --dist '%s'\n", opt.dist.c_str());
    std::exit(2);
  }
  for (std::size_t r = 0; r < opt.p; ++r)
    shards.push_back(pgxd::gen::generate_shard(dcfg, opt.n, opt.p, r));
  return shards;
}

pgxd::rt::ClusterConfig cluster_config(const Options& opt) {
  pgxd::rt::ClusterConfig cfg;
  cfg.machines = opt.p;
  cfg.threads_per_machine = opt.threads;
  cfg.seed = opt.seed;
  cfg.net.faults.crashes = opt.crashes;
  cfg.net.faults.drop_prob = opt.drop_prob;
  cfg.net.faults.duplicate_prob = opt.dup_prob;
  if (opt.drop_prob > 0 || opt.dup_prob > 0) cfg.reliable.enabled = true;
  if (opt.detector) cfg.detector.enabled = true;
  if (opt.recovery) {
    // The recovery supervisor's prerequisites (see RecoveryConfig).
    cfg.detector.enabled = true;
    cfg.reliable.enabled = true;
    cfg.reliable.fail_fast = true;
    cfg.allow_undrained = true;
  }
  return cfg;
}

void print_loads(const Options& opt, const std::vector<std::uint64_t>& sizes) {
  Table t({"machine", "elements", "share"});
  std::uint64_t total = 0;
  for (auto s : sizes) total += s;
  for (std::size_t m = 0; m < sizes.size(); ++m)
    t.row({std::to_string(m), std::to_string(sizes[m]),
           Table::fmt_pct(total ? static_cast<double>(sizes[m]) /
                                      static_cast<double>(total)
                                : 0.0)});
  if (opt.csv)
    std::fputs(t.render_csv().c_str(), stdout);
  else
    t.print();
}

// Prints the --critical-path summary: path totals, per-phase attribution,
// and the top blocking message hops.
void print_critical_path(const pgxd::obs::CriticalPathReport& cp) {
  std::printf("\ncritical path: %.6f s end-to-end over %zu message hop(s) "
              "(compute %.1f%%, wire %.1f%%), rank %zu -> rank %zu\n",
              pgxd::sim::to_seconds(cp.total_ns), cp.hops,
              cp.total_ns
                  ? 100.0 * static_cast<double>(cp.compute_ns) /
                        static_cast<double>(cp.total_ns)
                  : 0.0,
              cp.total_ns
                  ? 100.0 * static_cast<double>(cp.wire_ns) /
                        static_cast<double>(cp.total_ns)
                  : 0.0,
              cp.start_lane, cp.end_lane);
  Table phases({"phase", "on-path (s)", "share", "wire (s)", "slack mean (s)"});
  for (const auto& p : cp.phases)
    phases.row({p.name,
                Table::fmt(pgxd::sim::to_seconds(p.compute_ns + p.wire_ns), 6),
                Table::fmt_pct(p.share),
                Table::fmt(pgxd::sim::to_seconds(p.wire_ns), 6),
                Table::fmt(pgxd::sim::to_seconds(p.slack_mean_ns), 6)});
  phases.print();
  if (!cp.top_edges.empty()) {
    Table edges({"blocking edge", "wire (s)", "bytes", "retransmit"});
    for (const auto& e : cp.top_edges)
      edges.row({e.label + " " + std::to_string(e.src) + " -> " +
                     std::to_string(e.dst),
                 Table::fmt(pgxd::sim::to_seconds(e.recv - e.send), 6),
                 std::to_string(e.bytes), e.retransmit ? "yes" : "no"});
    edges.print();
  }
}

int run_pgxd(const Options& opt) {
  using Sorter = pgxd::core::DistributedSorter<Key>;
  auto shards = make_shards(opt);
  const auto input = shards;

  pgxd::rt::Cluster<Sorter::Msg> cluster(cluster_config(opt));
  if (opt.perturb_seed != 0)
    cluster.simulator().set_perturbation(
        {true, opt.perturb_seed,
         static_cast<pgxd::sim::SimTime>(opt.perturb_jitter_ns)});
  pgxd::sim::Trace trace;
  const bool want_trace =
      opt.gantt || !opt.trace_path.empty() || opt.critical_path;
  Sorter sorter(cluster, opt.sort_cfg);
  if (want_trace) sorter.set_trace(&trace);
  std::optional<pgxd::obs::TimeSeriesSampler> sampler;
  if (opt.sample_us > 0) {
    sampler.emplace(static_cast<pgxd::sim::SimTime>(opt.sample_us) *
                    pgxd::sim::kMicrosecond);
    sorter.set_sampler(&*sampler);
  }
  sorter.run(std::move(shards));
  const auto& st = sorter.stats();

  std::printf("engine pgxd: sorted %zu keys on %zu machines in %.6f "
              "simulated s\n\n", opt.n, opt.p,
              pgxd::sim::to_seconds(st.total_time));

  Table steps({"step", "max across machines (s)"});
  for (std::size_t s = 0; s < pgxd::core::kStepCount; ++s)
    steps.row({pgxd::core::step_name(static_cast<pgxd::core::Step>(s)),
               Table::fmt(pgxd::sim::to_seconds(
                              st.steps_max[static_cast<pgxd::core::Step>(s)]),
                          6)});
  if (opt.csv)
    std::fputs(steps.render_csv().c_str(), stdout);
  else
    steps.print();

  std::printf("\nwire: %s total (%s control), %llu fabric messages\n",
              Table::fmt_bytes(st.wire_bytes_total).c_str(),
              Table::fmt_bytes(st.wire_bytes_samples).c_str(),
              static_cast<unsigned long long>(cluster.fabric().total_messages()));
  std::printf("balance: imbalance %.4f (min %s, max %s)\n\n",
              st.balance.imbalance,
              Table::fmt_pct(st.balance.min_share).c_str(),
              Table::fmt_pct(st.balance.max_share).c_str());

  if (opt.sort_cfg.recovery.enabled) {
    const auto& rc = st.recovery;
    std::printf("recovery: %llu failed attempt(s) re-run; final attempt %d "
                "completed on %zu/%zu members\n",
                static_cast<unsigned long long>(rc.recoveries),
                rc.final_attempt, rc.final_members, opt.p);
    std::printf("recovery: %llu shard(s) regenerated, %llu abort "
                "broadcast(s), %llu hedged re-request(s) (%llu chunks "
                "re-sent)\n",
                static_cast<unsigned long long>(rc.regenerated_shards),
                static_cast<unsigned long long>(rc.abort_broadcasts),
                static_cast<unsigned long long>(rc.hedged_rerequests),
                static_cast<unsigned long long>(rc.hedged_chunks_resent));
    std::printf("recovery: wasted work %.6f machine-s, time-to-recover max "
                "%.6f s\n\n",
                pgxd::sim::to_seconds(rc.wasted_work_ns),
                pgxd::sim::to_seconds(rc.time_to_recover_max_ns));
  }

  std::vector<std::uint64_t> sizes;
  for (const auto& part : sorter.partitions()) sizes.push_back(part.size());
  print_loads(opt, sizes);

  if (opt.gantt) {
    std::printf("\nstep timeline:\n%s", trace.render_gantt(96).c_str());
  }

  pgxd::obs::CriticalPathReport cp;
  if (opt.critical_path) {
    cp = pgxd::obs::compute_critical_path(trace, /*top_k=*/5,
                                          sorter.stats().total_time);
    print_critical_path(cp);
  }
  const pgxd::obs::TimeSeriesDump ts =
      sampler ? sampler->dump() : pgxd::obs::TimeSeriesDump{};

  if (!opt.report_path.empty()) {
    pgxd::core::SortRunInfo info;
    info.engine = "pgxd";
    info.distribution = opt.dist;
    info.n = opt.n;
    info.machines = opt.p;
    info.seed = opt.seed;
    auto report = pgxd::core::build_sort_report(sorter, std::move(info));
    report.critical_path = cp;
    report.timeseries = ts;
    if (!write_file(opt.report_path, report.to_json() + "\n")) return 1;
    std::printf("\nsort report written to %s\n", opt.report_path.c_str());
  }
  if (!opt.trace_path.empty()) {
    const std::string chrome = pgxd::obs::chrome_trace_json(
        trace, "pgxd", sampler ? &ts : nullptr);
    if (!write_file(opt.trace_path, chrome)) return 1;
    std::printf("chrome trace written to %s — load in Perfetto or "
                "chrome://tracing\n", opt.trace_path.c_str());
  }

  if (opt.validate) {
    if (opt.sort_cfg.recovery.enabled) {
      // A recovered run redistributes dead ranks' shards, so the
      // input<->machine provenance check does not apply; verify order and
      // key-permutation instead (the exactly-once provenance audit already
      // ran in-sim on the attempt membership).
      std::vector<Key> got;
      got.reserve(opt.n);
      const Key* prev = nullptr;
      for (const auto& part : sorter.partitions()) {
        for (const auto& item : part) {
          if (prev != nullptr && item.key < *prev) {
            std::printf("\nvalidation: FAILED — global order violated\n");
            return 1;
          }
          prev = &item.key;
          got.push_back(item.key);
        }
      }
      std::vector<Key> want;
      want.reserve(opt.n);
      for (const auto& s : input) want.insert(want.end(), s.begin(), s.end());
      std::sort(want.begin(), want.end());
      if (got != want) {
        std::printf("\nvalidation: FAILED — output is not a permutation of "
                    "the input\n");
        return 1;
      }
      std::printf("\nvalidation: OK (order, permutation; in-sim "
                  "exactly-once audit)\n");
      return 0;
    }
    const auto report = pgxd::core::validate_sorted(sorter.partitions(), input);
    std::printf("\nvalidation: %s%s%s\n", report.ok() ? "OK" : "FAILED — ",
                report.ok() ? "" : report.failure.c_str(),
                report.ok()
                    ? " (order, global order, permutation, provenance)"
                    : "");
    if (!report.ok()) return 1;
  }
  return 0;
}

template <typename Engine>
int report_keys_engine(const Options& opt, Engine& engine,
                       pgxd::sim::SimTime total,
                       std::uint64_t wire_bytes) {
  std::printf("engine %s: sorted %zu keys on %zu machines in %.6f "
              "simulated s\n", opt.engine.c_str(), opt.n, opt.p,
              pgxd::sim::to_seconds(total));
  std::printf("wire: %s\n\n", Table::fmt_bytes(wire_bytes).c_str());
  std::vector<std::uint64_t> sizes;
  for (const auto& part : engine.partitions()) sizes.push_back(part.size());
  print_loads(opt, sizes);

  if (opt.validate) {
    // Key-only engines: check order + permutation.
    std::vector<Key> all_out;
    const Key* prev = nullptr;
    for (const auto& part : engine.partitions()) {
      for (const auto& k : part) {
        if (prev != nullptr && k < *prev) {
          std::printf("\nvalidation: FAILED — global order violated\n");
          return 1;
        }
        prev = &k;
        all_out.push_back(k);
      }
    }
    if (all_out.size() != opt.n) {
      std::printf("\nvalidation: FAILED — element count mismatch\n");
      return 1;
    }
    std::printf("\nvalidation: OK (order, count)\n");
  }
  return 0;
}

int run_spark(const Options& opt) {
  using Spark = pgxd::spark::SparkSortByKey<Key>;
  pgxd::rt::Cluster<Spark::Msg> cluster(cluster_config(opt));
  Spark spark(cluster);
  spark.run(make_shards(opt));
  const auto& st = spark.stats();
  Table stages({"stage", "max across machines (s)"});
  for (std::size_t s = 0; s < pgxd::spark::kStageCount; ++s)
    stages.row({pgxd::spark::stage_name(static_cast<pgxd::spark::Stage>(s)),
                Table::fmt(pgxd::sim::to_seconds(
                               st[static_cast<pgxd::spark::Stage>(s)]),
                           6)});
  const int rc = report_keys_engine(opt, spark, st.total_time, st.wire_bytes);
  std::printf("\n");
  if (opt.csv)
    std::fputs(stages.render_csv().c_str(), stdout);
  else
    stages.print();
  return rc;
}

int run_bitonic(const Options& opt) {
  using Bitonic = pgxd::baselines::BitonicSorter<Key>;
  pgxd::rt::Cluster<Bitonic::Msg> cluster(cluster_config(opt));
  Bitonic sorter(cluster);
  sorter.run(make_shards(opt));
  return report_keys_engine(opt, sorter, sorter.stats().total_time,
                            sorter.stats().wire_bytes);
}

int run_radix(const Options& opt) {
  using Radix = pgxd::baselines::RadixSorter<Key>;
  pgxd::rt::Cluster<Radix::Msg> cluster(cluster_config(opt));
  Radix sorter(cluster);
  sorter.run(make_shards(opt));
  return report_keys_engine(opt, sorter, sorter.stats().total_time,
                            sorter.stats().wire_bytes);
}

const char* merge_name(pgxd::core::MergeAlgo m) {
  switch (m) {
    case pgxd::core::MergeAlgo::kParallelKway: return "kway";
    case pgxd::core::MergeAlgo::kPairwiseTree: return "pairwise";
    case pgxd::core::MergeAlgo::kSequentialKway: return "kway-seq";
  }
  return "?";
}

const char* local_sort_name(pgxd::core::LocalSortAlgo a) {
  switch (a) {
    case pgxd::core::LocalSortAlgo::kAdaptive: return "adaptive";
    case pgxd::core::LocalSortAlgo::kComparison: return "quicksort";
    case pgxd::core::LocalSortAlgo::kRadix: return "radix";
  }
  return "?";
}

// --print-config: the effective SortConfig knobs as one JSON object on
// stdout. scripts/bench.sh embeds this as the `meta.sort_config` block of
// the committed benchmark baseline, so every baseline says exactly which
// algorithm configuration produced it.
int print_config(const pgxd::core::SortConfig& cfg) {
  pgxd::obs::JsonWriter w;
  w.begin_object();
  w.kv("read_buffer_bytes", cfg.read_buffer_bytes);
  w.kv("sample_factor", cfg.sample_factor);
  w.kv("use_investigator", cfg.use_investigator);
  w.kv("final_merge", merge_name(cfg.effective_final_merge()));
  w.kv("local_sort", local_sort_name(cfg.local_sort));
  w.kv("async_exchange", cfg.async_exchange);
  w.kv("buffered_exchange", cfg.buffered_exchange);
  w.kv("audit_exchange", cfg.audit_exchange);
  w.kv("soa_final_merge", cfg.soa_final_merge);
  w.kv("use_buffer_pool", cfg.use_buffer_pool);
  w.kv("telemetry", cfg.telemetry);
  w.kv("recovery_enabled", cfg.recovery.enabled);
  w.kv("partition", std::string_view(pgxd::core::partition_scheme_name(
                        cfg.partition)));
  w.kv("partition_epsilon", cfg.partition_epsilon);
  w.kv("partition_max_rounds",
       static_cast<std::int64_t>(cfg.partition_max_rounds));
  w.end_object();
  std::printf("%s\n", w.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  pgxd::Flags flags;
  flags.declare("engine", "pgxd | spark | bitonic | radix", "pgxd");
  flags.declare("dist",
                "uniform | normal | right-skewed | exponential | zipf | "
                "few-distinct | twitter",
                "uniform");
  flags.declare("n", "total keys", "1048576");
  flags.declare("p", "machines", "8");
  flags.declare("threads", "worker threads per machine", "32");
  flags.declare("seed", "root seed", "2017");
  flags.declare("csv", "emit tables as CSV", "false");
  flags.declare("gantt", "print the step timeline (pgxd only)", "false");
  flags.declare("report",
                "write the SortReport flight-recorder JSON here (pgxd only; "
                "implies telemetry)", "");
  flags.declare("trace",
                "write a Chrome trace_event JSON of the step spans, flow "
                "arrows, and counter graphs here (pgxd only)", "");
  flags.declare("critical-path",
                "walk the span+flow trace and print the longest dependency "
                "chain: per-phase attribution, slack, top blocking edges "
                "(pgxd only; also lands in --report)", "false");
  flags.declare("sample-us",
                "time-series sampler interval in simulated microseconds "
                "(0 = off; series land in --report and --trace) (pgxd only)",
                "0");
  flags.declare("perturb",
                "schedule-perturbation seed: permute same-timestamp event "
                "delivery deterministically (0 = canonical order) "
                "(pgxd only)", "0");
  flags.declare("perturb-jitter-ns",
                "also jitter mailbox wake-ups by up to this many simulated "
                "ns (needs --perturb) (pgxd only)", "0");
  flags.declare("pending-guard",
                "scoped-exchange pool-backpressure pending guard; false "
                "reintroduces the shared-pool deadlock the analysis suite "
                "regression-tests (pgxd only)", "true");
  flags.declare("print-config",
                "print the effective SortConfig knobs as JSON and exit",
                "false");
  flags.declare("validate", "validate the sorted result", "true");
  flags.declare("investigator", "duplicate-splitter investigator (pgxd)", "true");
  flags.declare("async", "asynchronous exchange (pgxd)", "true");
  flags.declare("balanced-merge", "Fig. 2 final merge (pgxd)", "true");
  flags.declare("merge",
                "final-merge strategy: kway (single-pass parallel) | "
                "pairwise (Fig. 2 tree) | kway-seq (sequential ablation; "
                "same as --balanced-merge=false) (pgxd)", "kway");
  flags.declare("local-sort",
                "step-1 local sort: adaptive | quicksort | radix (pgxd)",
                "adaptive");
  flags.declare("partition",
                "splitter-selection strategy: one-level (paper baseline) | "
                "histogram (iterative histogram refinement to the --epsilon "
                "balance target) | two-level (AMS-style sqrt(p) rank-group "
                "recursion) (pgxd)", "one-level");
  flags.declare("epsilon",
                "histogram refinement balance target: certify every "
                "partition within (1+epsilon) * N/p (pgxd)", "0.05");
  flags.declare("max-rounds",
                "histogram refinement round budget (pgxd)", "10");
  flags.declare("buffered", "256KB-chunked exchange (pgxd)", "true");
  flags.declare("sample-factor", "sample size in multiples of X (pgxd)", "1.0");
  flags.declare("buffer-bytes", "read buffer size in bytes (pgxd)", "262144");
  flags.declare("crash",
                "crash-stop schedule rank@at_us[:restart_after_us],... "
                "(pgxd only)", "");
  flags.declare("detector", "heartbeat failure detector", "false");
  flags.declare("drop",
                "fabric drop probability in [0,1); nonzero enables reliable "
                "delivery (pgxd only)", "0");
  flags.declare("dup",
                "fabric duplicate probability in [0,1]; nonzero enables "
                "reliable delivery (pgxd only)", "0");
  flags.declare("recovery",
                "crash recovery: detector + fail-fast delivery + sort "
                "re-run on survivors (pgxd only)", "false");
  flags.parse(argc, argv);

  Options opt;
  opt.engine = flags.str("engine");
  opt.dist = flags.str("dist");
  opt.n = flags.u64("n");
  opt.p = flags.u64("p");
  opt.threads = static_cast<unsigned>(flags.u64("threads"));
  opt.seed = flags.u64("seed");
  opt.csv = flags.boolean("csv");
  opt.gantt = flags.boolean("gantt");
  opt.validate = flags.boolean("validate");
  opt.report_path = flags.str("report");
  opt.trace_path = flags.str("trace");
  if (!opt.report_path.empty()) opt.sort_cfg.telemetry = true;
  opt.sort_cfg.use_investigator = flags.boolean("investigator");
  opt.sort_cfg.async_exchange = flags.boolean("async");
  opt.sort_cfg.balanced_final_merge = flags.boolean("balanced-merge");
  {
    const std::string merge = flags.str("merge");
    if (merge == "kway") {
      opt.sort_cfg.final_merge = pgxd::core::MergeAlgo::kParallelKway;
    } else if (merge == "pairwise") {
      opt.sort_cfg.final_merge = pgxd::core::MergeAlgo::kPairwiseTree;
    } else if (merge == "kway-seq") {
      opt.sort_cfg.final_merge = pgxd::core::MergeAlgo::kSequentialKway;
    } else {
      std::fprintf(stderr, "unknown --merge '%s'\n", merge.c_str());
      return 2;
    }
    const std::string ls = flags.str("local-sort");
    if (ls == "adaptive") {
      opt.sort_cfg.local_sort = pgxd::core::LocalSortAlgo::kAdaptive;
    } else if (ls == "quicksort") {
      opt.sort_cfg.local_sort = pgxd::core::LocalSortAlgo::kComparison;
    } else if (ls == "radix") {
      opt.sort_cfg.local_sort = pgxd::core::LocalSortAlgo::kRadix;
    } else {
      std::fprintf(stderr, "unknown --local-sort '%s'\n", ls.c_str());
      return 2;
    }
  }
  {
    const std::string part = flags.str("partition");
    if (part == "one-level" || part == "one-level-sample") {
      opt.sort_cfg.partition = pgxd::core::PartitionScheme::kOneLevelSample;
    } else if (part == "histogram" || part == "histogram-refine") {
      opt.sort_cfg.partition = pgxd::core::PartitionScheme::kHistogramRefine;
    } else if (part == "two-level" || part == "two-level-ams") {
      opt.sort_cfg.partition = pgxd::core::PartitionScheme::kTwoLevelAms;
    } else {
      std::fprintf(stderr, "unknown --partition '%s'\n", part.c_str());
      return 2;
    }
    opt.sort_cfg.partition_epsilon = flags.f64("epsilon");
    opt.sort_cfg.partition_max_rounds =
        static_cast<int>(flags.u64("max-rounds"));
    const std::string why = opt.sort_cfg.validate();
    if (!why.empty()) {
      std::fprintf(stderr, "%s\n", why.c_str());
      return 2;
    }
  }
  opt.sort_cfg.buffered_exchange = flags.boolean("buffered");
  opt.sort_cfg.sample_factor = flags.f64("sample-factor");
  opt.sort_cfg.read_buffer_bytes = flags.u64("buffer-bytes");
  opt.critical_path = flags.boolean("critical-path");
  opt.sample_us = flags.u64("sample-us");
  opt.perturb_seed = flags.u64("perturb");
  opt.perturb_jitter_ns = flags.u64("perturb-jitter-ns");
  opt.sort_cfg.scoped_pending_guard = flags.boolean("pending-guard");
  if (opt.perturb_jitter_ns > 0 && opt.perturb_seed == 0) {
    std::fprintf(stderr, "--perturb-jitter-ns needs --perturb=SEED\n");
    return 2;
  }
  if (!flags.str("crash").empty()) opt.crashes = parse_crashes(flags.str("crash"));
  opt.detector = flags.boolean("detector");
  opt.recovery = flags.boolean("recovery");
  opt.sort_cfg.recovery.enabled = opt.recovery;
  opt.drop_prob = flags.f64("drop");
  opt.dup_prob = flags.f64("dup");
  if ((!opt.crashes.empty() || opt.recovery || opt.drop_prob > 0 ||
       opt.dup_prob > 0) &&
      opt.engine != "pgxd") {
    std::fprintf(stderr,
                 "--crash/--recovery/--drop/--dup are only supported by "
                 "--engine=pgxd\n");
    return 2;
  }
  if (flags.boolean("print-config")) return print_config(opt.sort_cfg);
  if ((opt.critical_path || opt.sample_us > 0 || opt.perturb_seed != 0) &&
      opt.engine != "pgxd") {
    std::fprintf(stderr,
                 "--critical-path/--sample-us/--perturb are only supported "
                 "by --engine=pgxd\n");
    return 2;
  }

  if (opt.engine == "pgxd") return run_pgxd(opt);
  if (opt.engine == "spark") return run_spark(opt);
  if (opt.engine == "bitonic") return run_bitonic(opt);
  if (opt.engine == "radix") return run_radix(opt);
  std::fprintf(stderr, "unknown --engine '%s'\n%s", opt.engine.c_str(),
               flags.help().c_str());
  return 2;
}
