// Tests for the flow-level network model: serialization, latency, port
// contention (incast), full-duplex behaviour, and byte accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace pgxd::net {
namespace {

NetConfig simple_config() {
  NetConfig cfg;
  cfg.link_bandwidth_Bps = 1e9;               // 1 GB/s: 1 byte == 1 ns
  cfg.latency = 100;                          // 100 ns
  cfg.per_message_overhead = 10;              // 10 ns
  cfg.oversubscription = 1.0;
  return cfg;
}

sim::Task<void> transfer_and_stamp(sim::Simulator& sim, Fabric& f,
                                   std::size_t src, std::size_t dst,
                                   std::uint64_t bytes, sim::SimTime& done) {
  co_await f.transfer(src, dst, bytes);
  done = sim.now();
}

TEST(Fabric, SingleTransferCost) {
  sim::Simulator sim;
  Fabric fab(sim, 4, simple_config());
  sim::SimTime done = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 1, 1000, done));
  sim.run();
  // overhead(10) + tx wire(1000) + latency(100) + rx wire(1000)
  EXPECT_EQ(done, 10 + 1000 + 100 + 1000);
  EXPECT_EQ(fab.stats(0).bytes_sent, 1000u);
  EXPECT_EQ(fab.stats(1).bytes_received, 1000u);
  EXPECT_EQ(fab.stats(0).messages_sent, 1u);
  EXPECT_EQ(fab.stats(1).messages_received, 1u);
}

TEST(Fabric, UncontendedDurationIsLowerBound) {
  sim::Simulator sim;
  Fabric fab(sim, 2, simple_config());
  sim::SimTime done = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 1, 5000, done));
  sim.run();
  EXPECT_GE(done, fab.uncontended_duration(5000));
}

TEST(Fabric, TxPortSerializesTwoMessagesFromSameSender) {
  sim::Simulator sim;
  Fabric fab(sim, 3, simple_config());
  sim::SimTime d1 = -1, d2 = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 1, 1000, d1));
  sim.spawn(transfer_and_stamp(sim, fab, 0, 2, 1000, d2));
  sim.run();
  EXPECT_EQ(d1, 10 + 1000 + 100 + 1000);
  // Second message waits for the first's TX serialization (incl. overhead).
  EXPECT_EQ(d2, (10 + 1000) + (10 + 1000) + 100 + 1000);
}

TEST(Fabric, IncastSerializesAtReceiverRxPort) {
  // Three senders to one receiver: TX sides run in parallel but the RX port
  // delivers one payload at a time.
  sim::Simulator sim;
  Fabric fab(sim, 4, simple_config());
  std::vector<sim::SimTime> done(3, -1);
  for (std::size_t s = 0; s < 3; ++s)
    sim.spawn(transfer_and_stamp(sim, fab, s + 1, 0, 1000, done[s]));
  sim.run();
  // All arrive at RX at the same instant; FIFO order follows spawn order.
  EXPECT_EQ(done[0], 10 + 1000 + 100 + 1000);
  EXPECT_EQ(done[1], 10 + 1000 + 100 + 2000);
  EXPECT_EQ(done[2], 10 + 1000 + 100 + 3000);
  EXPECT_EQ(fab.stats(0).bytes_received, 3000u);
}

TEST(Fabric, FullDuplexSendAndReceiveOverlap) {
  // 0->1 and 1->0 simultaneously: each NIC uses TX and RX independently, so
  // both complete as if alone.
  sim::Simulator sim;
  Fabric fab(sim, 2, simple_config());
  sim::SimTime d1 = -1, d2 = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 1, 1000, d1));
  sim.spawn(transfer_and_stamp(sim, fab, 1, 0, 1000, d2));
  sim.run();
  EXPECT_EQ(d1, 10 + 1000 + 100 + 1000);
  EXPECT_EQ(d2, 10 + 1000 + 100 + 1000);
}

TEST(Fabric, SelfTransferRejected) {
  sim::Simulator sim;
  Fabric fab(sim, 2, simple_config());
  static sim::SimTime done = -1;
  EXPECT_DEATH(
      {
        sim.spawn(transfer_and_stamp(sim, fab, 1, 1, 10, done));
        sim.run();
      },
      "local transfers");
}

TEST(Fabric, ZeroByteMessageStillPaysOverheadAndLatency) {
  sim::Simulator sim;
  Fabric fab(sim, 2, simple_config());
  sim::SimTime done = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 1, 0, done));
  sim.run();
  EXPECT_EQ(done, 10 + 100);
}

TEST(Fabric, OversubscribedCoreAddsContention) {
  // With oversubscription 2.0 and 2 machines, the core carries 1 GB/s total;
  // two disjoint 1000-byte flows (0->1 is the only possible pair here, so use
  // 4 machines: 0->1 and 2->3) must serialize partially in the core.
  NetConfig cfg = simple_config();
  cfg.oversubscription = 4.0;  // core bandwidth = 4 ports * 1e9 / 4 = 1e9
  sim::Simulator sim;
  Fabric fab(sim, 4, cfg);
  sim::SimTime d1 = -1, d2 = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 1, 1000, d1));
  sim.spawn(transfer_and_stamp(sim, fab, 2, 3, 1000, d2));
  sim.run();
  EXPECT_EQ(d1, 10 + 1000 + 1000 + 100 + 1000);          // own core slot
  EXPECT_EQ(d2, 10 + 1000 + 2000 + 100 + 1000);          // queued behind flow 1
}

TEST(Fabric, ByteAccountingAcrossManyTransfers) {
  sim::Simulator sim;
  Fabric fab(sim, 4, simple_config());
  std::vector<sim::SimTime> done(12, -1);
  std::size_t idx = 0;
  for (std::size_t s = 0; s < 4; ++s)
    for (std::size_t d = 0; d < 4; ++d) {
      if (s == d) continue;
      const std::uint64_t bytes = 100 * (idx + 1);
      sim.spawn(transfer_and_stamp(sim, fab, s, d, bytes, done[idx]));
      ++idx;
    }
  sim.run();
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < 12; ++i) expected += 100 * (i + 1);
  EXPECT_EQ(fab.total_bytes(), expected);
  EXPECT_EQ(fab.total_messages(), 12u);
  for (auto t : done) EXPECT_GT(t, 0);
}

// --- two-tier (racked) topology ---------------------------------------------

NetConfig racked_config(std::size_t rack_size, double uplink_Bps) {
  NetConfig cfg = simple_config();
  cfg.rack_size = rack_size;
  cfg.uplink_bandwidth_Bps = uplink_Bps;
  cfg.inter_rack_latency = 300;
  return cfg;
}

TEST(FabricRacks, IntraRackUnaffected) {
  sim::Simulator sim;
  Fabric fab(sim, 4, racked_config(2, 0.5e9));
  sim::SimTime done = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 1, 1000, done));  // same rack
  sim.run();
  EXPECT_EQ(done, 10 + 1000 + 100 + 1000);  // identical to the flat network
  EXPECT_EQ(fab.inter_rack_bytes(), 0u);
}

TEST(FabricRacks, InterRackPaysUplinkAndLatency) {
  sim::Simulator sim;
  Fabric fab(sim, 4, racked_config(2, 0.5e9));  // uplink at half link rate
  sim::SimTime done = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 2, 1000, done));  // rack 0 -> 1
  sim.run();
  // tx(10+1000) + uplink up(2000) + inter-rack latency(300) + downlink(2000)
  // + latency(100) + rx(1000)
  EXPECT_EQ(done, 10 + 1000 + 2000 + 300 + 2000 + 100 + 1000);
  EXPECT_EQ(fab.inter_rack_bytes(), 1000u);
}

TEST(FabricRacks, SharedUplinkSerializesRackTraffic) {
  // Both machines of rack 0 send out simultaneously: the shared up-link
  // serializes them even though their NICs are independent.
  sim::Simulator sim;
  Fabric fab(sim, 4, racked_config(2, 1e9));
  sim::SimTime d1 = -1, d2 = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 2, 1000, d1));
  sim.spawn(transfer_and_stamp(sim, fab, 1, 3, 1000, d2));
  sim.run();
  EXPECT_EQ(d1, 10 + 1000 + 1000 + 300 + 1000 + 100 + 1000);
  // Second flow queues one up-link slot (1000) behind the first.
  EXPECT_EQ(d2, 10 + 1000 + 2000 + 300 + 1000 + 100 + 1000);
}

TEST(FabricRacks, RackOfMapsContiguously) {
  sim::Simulator sim;
  Fabric fab(sim, 7, racked_config(3, 0));
  EXPECT_EQ(fab.rack_of(0), 0u);
  EXPECT_EQ(fab.rack_of(2), 0u);
  EXPECT_EQ(fab.rack_of(3), 1u);
  EXPECT_EQ(fab.rack_of(6), 2u);
}

TEST(Fabric, BusyTimeTracksUtilization) {
  sim::Simulator sim;
  Fabric fab(sim, 2, simple_config());
  sim::SimTime done = -1;
  sim.spawn(transfer_and_stamp(sim, fab, 0, 1, 4000, done));
  sim.run();
  EXPECT_EQ(fab.tx_busy(0), 10 + 4000);
  EXPECT_EQ(fab.rx_busy(1), 4000);
  EXPECT_EQ(fab.tx_busy(1), 0);
}

}  // namespace
}  // namespace pgxd::net
