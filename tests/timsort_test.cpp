// Tests for the TimSort implementation: correctness against std::stable_sort
// across adversarial patterns, stability, adaptivity, and minrun math.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sort/timsort.hpp"

namespace pgxd::sort {
namespace {

using detail::TimSorter;

TEST(MinRun, MatchesReferenceValues) {
  using S = TimSorter<int, std::less<int>>;
  // n < 64 returns n itself.
  EXPECT_EQ(S::compute_min_run(63), 63u);
  EXPECT_EQ(S::compute_min_run(64), 32u);
  EXPECT_EQ(S::compute_min_run(65), 33u);   // 65 = 0b1000001 -> 32 + 1
  EXPECT_EQ(S::compute_min_run(1024), 32u); // exact power of two
  EXPECT_EQ(S::compute_min_run(1000), 63u); // corrected: 1000>>4=62, r=1
  // minrun is always in [32, 64] for n >= 64.
  for (std::size_t n = 64; n < 100000; n = n * 2 + 7) {
    const std::size_t mr = S::compute_min_run(n);
    EXPECT_GE(mr, 32u);
    EXPECT_LE(mr, 64u);
  }
}

class TimsortRandomSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(TimsortRandomSweep, MatchesStdSort) {
  const auto [n, domain] = GetParam();
  Rng rng(n * 31 + domain);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.bounded(domain);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  timsort(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDomains, TimsortRandomSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 63, 64, 65, 100, 1000, 4096,
                                         100000),
                       ::testing::Values(2, 10, 1ULL << 40)));

TEST(Timsort, AlreadySortedUsesOneRunAndNoMerges) {
  std::vector<int> v(10000);
  std::iota(v.begin(), v.end(), 0);
  const auto stats = timsort(std::span<int>(v));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(stats.runs_found, 1u);
  EXPECT_EQ(stats.merges, 0u);
}

TEST(Timsort, ReverseSortedIsOneReversedRun) {
  std::vector<int> v(10000);
  std::iota(v.begin(), v.end(), 0);
  std::reverse(v.begin(), v.end());
  const auto stats = timsort(std::span<int>(v));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(stats.runs_found, 1u);
}

TEST(Timsort, PartiallySortedFindsLongRuns) {
  // Eight sorted blocks of 4096: run detection should find ~8 runs, far
  // fewer than random data's n/minrun.
  std::vector<int> v;
  Rng rng(3);
  for (int b = 0; b < 8; ++b) {
    std::vector<int> block(4096);
    for (auto& x : block) x = static_cast<int>(rng.bounded(1 << 20));
    std::sort(block.begin(), block.end());
    v.insert(v.end(), block.begin(), block.end());
  }
  const auto stats = timsort(std::span<int>(v));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_LE(stats.runs_found, 16u);
}

struct Rec {
  int key;
  int seq;
};
struct RecLess {
  bool operator()(const Rec& a, const Rec& b) const { return a.key < b.key; }
};

TEST(Timsort, StableOnHeavilyDuplicatedKeys) {
  Rng rng(17);
  std::vector<Rec> v(20000);
  for (int i = 0; i < 20000; ++i)
    v[i] = Rec{static_cast<int>(rng.bounded(5)), i};
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end(), RecLess{});
  timsort(std::span<Rec>(v), RecLess{});
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i].key, expect[i].key);
    EXPECT_EQ(v[i].seq, expect[i].seq) << "stability broken at " << i;
  }
}

TEST(Timsort, GallopingTriggersOnBlockPatterns) {
  // Two interleaved pre-sorted halves with disjoint dense ranges force long
  // gallop copies when merged.
  std::vector<int> v;
  for (int i = 0; i < 50000; ++i) v.push_back(i);
  for (int i = 0; i < 50000; ++i) v.push_back(i + 50000);
  std::rotate(v.begin(), v.begin() + 50000, v.end());  // second half first
  const auto stats = timsort(std::span<int>(v));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_GT(stats.galloped_elements, 10000u);
}

TEST(Timsort, SawtoothManyRuns) {
  std::vector<int> v;
  Rng rng(23);
  for (int cycle = 0; cycle < 300; ++cycle) {
    const int len = 10 + static_cast<int>(rng.bounded(200));
    const bool asc = rng.bounded(2) == 0;
    for (int i = 0; i < len; ++i) v.push_back(asc ? i : len - i);
  }
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  timsort(std::span<int>(v));
  EXPECT_EQ(v, expect);
}

TEST(Timsort, StringsSort) {
  std::vector<std::string> v{"pear", "apple", "fig", "apple", "banana", "date",
                             "cherry", "fig", "apple"};
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end());
  timsort(std::span<std::string>(v));
  EXPECT_EQ(v, expect);
}

TEST(Timsort, DescendingComparator) {
  Rng rng(29);
  std::vector<std::uint64_t> v(30000);
  for (auto& x : v) x = rng.bounded(100);
  timsort(std::span<std::uint64_t>(v), std::greater<std::uint64_t>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<std::uint64_t>{}));
}

TEST(Timsort, AllEqual) {
  std::vector<int> v(100000, 7);
  const auto stats = timsort(std::span<int>(v));
  EXPECT_EQ(stats.runs_found, 1u);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](int x) { return x == 7; }));
}

TEST(Timsort, OrganPipe) {
  std::vector<int> v;
  for (int i = 0; i < 30000; ++i) v.push_back(i);
  for (int i = 30000; i > 0; --i) v.push_back(i);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  const auto stats = timsort(std::span<int>(v));
  EXPECT_EQ(v, expect);
  EXPECT_EQ(stats.runs_found, 2u);  // one ascending + one descending run
}

}  // namespace
}  // namespace pgxd::sort
