// Tests for the collective operations over Comm.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"

namespace pgxd::rt {
namespace {

using Payload = std::vector<int>;

ClusterConfig tiny(std::size_t machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = 2;
  return cfg;
}

TEST(Collectives, BroadcastReachesEveryRank) {
  Cluster<Payload> cluster(tiny(5));
  std::vector<Payload> got(5);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    Payload value = m.rank() == 2 ? Payload{7, 8, 9} : Payload{};
    auto r = co_await broadcast(cluster.comm(), m.rank(), /*root=*/2,
                                /*tag=*/1, std::move(value), 12);
    got[m.rank()] = std::move(r);
  });
  for (const auto& v : got) EXPECT_EQ(v, (Payload{7, 8, 9}));
}

TEST(Collectives, GatherIndexedBySource) {
  Cluster<Payload> cluster(tiny(4));
  std::vector<std::vector<Payload>> got(4);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    // Braced-list payloads are named first: GCC 12 cannot keep an
    // initializer_list temporary alive across a suspension.
    Payload mine{static_cast<int>(m.rank())};
    auto r = co_await gather(cluster.comm(), m.rank(), /*root=*/1, /*tag=*/2,
                             std::move(mine), 4);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r = 0; r < 4; ++r) {
    if (r == 1) {
      ASSERT_EQ(got[r].size(), 4u);
      for (int s = 0; s < 4; ++s) EXPECT_EQ(got[r][s], Payload{s});
    } else {
      EXPECT_TRUE(got[r].empty());
    }
  }
}

TEST(Collectives, AllGatherEveryoneSeesEveryone) {
  Cluster<Payload> cluster(tiny(6));
  std::vector<std::vector<Payload>> got(6);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    Payload mine{static_cast<int>(m.rank() * 10)};
    auto r = co_await all_gather(cluster.comm(), m.rank(), /*tag=*/3,
                                 std::move(mine), 4);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r = 0; r < 6; ++r) {
    ASSERT_EQ(got[r].size(), 6u);
    for (int s = 0; s < 6; ++s) EXPECT_EQ(got[r][s], Payload{s * 10});
  }
}

TEST(Collectives, AllReduceElementwiseSum) {
  Cluster<Payload> cluster(tiny(4));
  std::vector<Payload> got(4);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    Payload value{static_cast<int>(m.rank()), 1, 2};
    got[m.rank()] = co_await all_reduce(
        cluster.comm(), m.rank(), /*gather_tag=*/4, /*bcast_tag=*/5,
        std::move(value), 12, [](Payload a, Payload b) {
          for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
          return a;
        });
  });
  for (const auto& v : got) EXPECT_EQ(v, (Payload{0 + 1 + 2 + 3, 4, 8}));
}

TEST(Collectives, AllToAllTransposes) {
  constexpr std::size_t kP = 5;
  Cluster<Payload> cluster(tiny(kP));
  std::vector<std::vector<Payload>> got(kP);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    // Rank r sends {r, d} to rank d.
    std::vector<Payload> values(kP);
    std::vector<std::uint64_t> bytes(kP, 8);
    for (std::size_t d = 0; d < kP; ++d)
      values[d] = Payload{static_cast<int>(m.rank()), static_cast<int>(d)};
    auto r = co_await all_to_all(cluster.comm(), m.rank(), /*tag=*/6,
                                 std::move(values), bytes);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r = 0; r < kP; ++r) {
    ASSERT_EQ(got[r].size(), kP);
    for (std::size_t s = 0; s < kP; ++s)
      EXPECT_EQ(got[r][s],
                (Payload{static_cast<int>(s), static_cast<int>(r)}));
  }
}

TEST(Collectives, BroadcastCostScalesWithMachines) {
  // Root's TX port serializes p messages: completion time grows with p.
  auto run_with = [](std::size_t p) {
    Cluster<Payload> cluster(tiny(p));
    return cluster.run([&](Machine& m) -> sim::Task<void> {
      (void)co_await broadcast(cluster.comm(), m.rank(), 0, 1,
                               Payload(1000, 1), 4000);
    });
  };
  EXPECT_LT(run_with(2), run_with(16));
}

TEST(Collectives, ConcurrentCollectivesWithDistinctTags) {
  Cluster<Payload> cluster(tiny(4));
  std::vector<Payload> a(4), b(4);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    // Two broadcasts from different roots in flight at once.
    Payload pa{1}, pb{2};
    auto ra = co_await broadcast(cluster.comm(), m.rank(), 0, /*tag=*/10,
                                 std::move(pa), 4);
    a[m.rank()] = std::move(ra);
    auto rb = co_await broadcast(cluster.comm(), m.rank(), 3, /*tag=*/11,
                                 std::move(pb), 4);
    b[m.rank()] = std::move(rb);
  });
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(a[r], Payload{1});
    EXPECT_EQ(b[r], Payload{2});
  }
}

}  // namespace
}  // namespace pgxd::rt
