// Tests for the collective operations over Comm.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <optional>
#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"

namespace pgxd::rt {
namespace {

using Payload = std::vector<int>;

ClusterConfig tiny(std::size_t machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = 2;
  return cfg;
}

TEST(Collectives, BroadcastReachesEveryRank) {
  Cluster<Payload> cluster(tiny(5));
  std::vector<Payload> got(5);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    Payload value = m.rank() == 2 ? Payload{7, 8, 9} : Payload{};
    auto r = co_await broadcast(cluster.comm(), m.rank(), /*root=*/2,
                                /*tag=*/1, std::move(value), 12);
    got[m.rank()] = std::move(r);
  });
  for (const auto& v : got) EXPECT_EQ(v, (Payload{7, 8, 9}));
}

TEST(Collectives, GatherIndexedBySource) {
  Cluster<Payload> cluster(tiny(4));
  std::vector<std::vector<Payload>> got(4);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    // Braced-list payloads are named first: GCC 12 cannot keep an
    // initializer_list temporary alive across a suspension.
    Payload mine{static_cast<int>(m.rank())};
    auto r = co_await gather(cluster.comm(), m.rank(), /*root=*/1, /*tag=*/2,
                             std::move(mine), 4);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r = 0; r < 4; ++r) {
    if (r == 1) {
      ASSERT_EQ(got[r].size(), 4u);
      for (int s = 0; s < 4; ++s) EXPECT_EQ(got[r][s], Payload{s});
    } else {
      EXPECT_TRUE(got[r].empty());
    }
  }
}

TEST(Collectives, AllGatherEveryoneSeesEveryone) {
  Cluster<Payload> cluster(tiny(6));
  std::vector<std::vector<Payload>> got(6);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    Payload mine{static_cast<int>(m.rank() * 10)};
    auto r = co_await all_gather(cluster.comm(), m.rank(), /*tag=*/3,
                                 std::move(mine), 4);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r = 0; r < 6; ++r) {
    ASSERT_EQ(got[r].size(), 6u);
    for (int s = 0; s < 6; ++s) EXPECT_EQ(got[r][s], Payload{s * 10});
  }
}

TEST(Collectives, AllReduceElementwiseSum) {
  Cluster<Payload> cluster(tiny(4));
  std::vector<Payload> got(4);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    Payload value{static_cast<int>(m.rank()), 1, 2};
    got[m.rank()] = co_await all_reduce(
        cluster.comm(), m.rank(), /*gather_tag=*/4, /*bcast_tag=*/5,
        std::move(value), 12, [](Payload a, Payload b) {
          for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
          return a;
        });
  });
  for (const auto& v : got) EXPECT_EQ(v, (Payload{0 + 1 + 2 + 3, 4, 8}));
}

TEST(Collectives, AllToAllTransposes) {
  constexpr std::size_t kP = 5;
  Cluster<Payload> cluster(tiny(kP));
  std::vector<std::vector<Payload>> got(kP);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    // Rank r sends {r, d} to rank d.
    std::vector<Payload> values(kP);
    std::vector<std::uint64_t> bytes(kP, 8);
    for (std::size_t d = 0; d < kP; ++d)
      values[d] = Payload{static_cast<int>(m.rank()), static_cast<int>(d)};
    auto r = co_await all_to_all(cluster.comm(), m.rank(), /*tag=*/6,
                                 std::move(values), bytes);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r = 0; r < kP; ++r) {
    ASSERT_EQ(got[r].size(), kP);
    for (std::size_t s = 0; s < kP; ++s)
      EXPECT_EQ(got[r][s],
                (Payload{static_cast<int>(s), static_cast<int>(r)}));
  }
}

TEST(Collectives, BroadcastCostScalesWithMachines) {
  // Root's TX port serializes p messages: completion time grows with p.
  auto run_with = [](std::size_t p) {
    Cluster<Payload> cluster(tiny(p));
    return cluster.run([&](Machine& m) -> sim::Task<void> {
      (void)co_await broadcast(cluster.comm(), m.rank(), 0, 1,
                               Payload(1000, 1), 4000);
    });
  };
  EXPECT_LT(run_with(2), run_with(16));
}

TEST(Collectives, ConcurrentCollectivesWithDistinctTags) {
  Cluster<Payload> cluster(tiny(4));
  std::vector<Payload> a(4), b(4);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    // Two broadcasts from different roots in flight at once.
    Payload pa{1}, pb{2};
    auto ra = co_await broadcast(cluster.comm(), m.rank(), 0, /*tag=*/10,
                                 std::move(pa), 4);
    a[m.rank()] = std::move(ra);
    auto rb = co_await broadcast(cluster.comm(), m.rank(), 3, /*tag=*/11,
                                 std::move(pb), 4);
    b[m.rank()] = std::move(rb);
  });
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(a[r], Payload{1});
    EXPECT_EQ(b[r], Payload{2});
  }
}

// ---- Group-scoped collectives (the AMS partitioning substrate) ----------

TEST(GroupCollectives, BroadcastReachesOnlyTheGroup) {
  Cluster<Payload> cluster(tiny(6));
  const std::vector<std::size_t> members = {1, 3, 4};  // root is members[0]
  std::vector<Payload> got(6);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    const bool in_group =
        std::find(members.begin(), members.end(), m.rank()) != members.end();
    if (!in_group) co_return;
    Payload value = m.rank() == 1 ? Payload{42, 43} : Payload{};
    std::vector<std::size_t> mine = members;
    auto r = co_await group_broadcast(cluster.comm(), std::move(mine),
                                      m.rank(), /*tag=*/21, std::move(value),
                                      8);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r : {1u, 3u, 4u}) EXPECT_EQ(got[r], (Payload{42, 43}));
  for (std::size_t r : {0u, 2u, 5u}) EXPECT_TRUE(got[r].empty());
}

TEST(GroupCollectives, GatherIndexedByMemberPosition) {
  Cluster<Payload> cluster(tiny(6));
  const std::vector<std::size_t> members = {0, 2, 5};
  std::vector<std::vector<Payload>> got(6);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    const bool in_group =
        std::find(members.begin(), members.end(), m.rank()) != members.end();
    if (!in_group) co_return;
    Payload mine{static_cast<int>(m.rank() * 100)};
    std::vector<std::size_t> grp = members;
    auto r = co_await group_gather(cluster.comm(), std::move(grp), m.rank(),
                                   /*tag=*/22, std::move(mine), 4);
    got[m.rank()] = std::move(r);
  });
  ASSERT_EQ(got[0].size(), 3u);  // root: one slot per member position
  EXPECT_EQ(got[0][0], Payload{0});
  EXPECT_EQ(got[0][1], Payload{200});
  EXPECT_EQ(got[0][2], Payload{500});
  EXPECT_TRUE(got[2].empty());
  EXPECT_TRUE(got[5].empty());
}

TEST(GroupCollectives, AllToAllTransposesWithinTheGroup) {
  Cluster<Payload> cluster(tiny(6));
  const std::vector<std::size_t> members = {1, 2, 4};
  std::vector<std::vector<Payload>> got(6);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    const auto it = std::find(members.begin(), members.end(), m.rank());
    if (it == members.end()) co_return;
    const auto me = static_cast<int>(it - members.begin());
    // Member position i sends {i, j} to member position j.
    std::vector<Payload> values(members.size());
    std::vector<std::uint64_t> bytes(members.size(), 8);
    for (std::size_t j = 0; j < members.size(); ++j)
      values[j] = Payload{me, static_cast<int>(j)};
    std::vector<std::size_t> grp = members;
    auto r = co_await group_all_to_all(cluster.comm(), std::move(grp),
                                       m.rank(), /*tag=*/23,
                                       std::move(values), bytes);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t j = 0; j < members.size(); ++j) {
    const auto& g = got[members[j]];
    ASSERT_EQ(g.size(), members.size());
    for (std::size_t i = 0; i < members.size(); ++i)
      EXPECT_EQ(g[i],
                (Payload{static_cast<int>(i), static_cast<int>(j)}));
  }
}

TEST(GroupCollectives, DisjointGroupsShareATagConcurrently) {
  // The sorter runs one collective per AMS group on the same tag at the
  // same time: disjoint memberships must not cross-talk.
  Cluster<Payload> cluster(tiny(6));
  const std::vector<std::size_t> ga = {0, 1, 2};
  const std::vector<std::size_t> gb = {3, 4, 5};
  std::vector<Payload> got(6);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    const bool in_a = m.rank() < 3;
    Payload value;
    if (m.rank() == 0) value = Payload{-1};
    if (m.rank() == 3) value = Payload{-2};
    std::vector<std::size_t> grp = in_a ? ga : gb;
    auto r = co_await group_broadcast(cluster.comm(), std::move(grp),
                                      m.rank(), /*tag=*/24, std::move(value),
                                      4);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r : {0u, 1u, 2u}) EXPECT_EQ(got[r], Payload{-1});
  for (std::size_t r : {3u, 4u, 5u}) EXPECT_EQ(got[r], Payload{-2});
}

TEST(GroupCollectives, BoundedAbortIsContainedToTheFailingGroup) {
  // Group A's root is dead; its members must resolve nullopt at the
  // deadline and fan abort frames to group A only — group B, running the
  // same tags concurrently, completes with its value intact.
  ClusterConfig cfg = tiny(6);
  cfg.allow_undrained = true;
  Cluster<Payload> cluster(cfg);
  const std::vector<std::size_t> ga = {0, 1, 2};
  const std::vector<std::size_t> gb = {3, 4, 5};
  const sim::SimTime deadline = 2 * sim::kMillisecond;
  std::vector<std::optional<Payload>> got(6, Payload{});
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() == 0) co_return;  // group A's root never shows up
    const bool in_a = m.rank() < 3;
    Payload value = m.rank() == 3 ? Payload{9} : Payload{};
    std::vector<std::size_t> grp = in_a ? ga : gb;
    auto r = co_await bounded_group_broadcast(
        cluster.comm(), std::move(grp), m.rank(), /*tag=*/25,
        /*abort_tag=*/26, std::move(value), 4, deadline);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r : {1u, 2u})
    EXPECT_FALSE(got[r].has_value()) << "rank " << r;
  for (std::size_t r : {3u, 4u, 5u}) {
    ASSERT_TRUE(got[r].has_value()) << "rank " << r;
    EXPECT_EQ(*got[r], Payload{9});
  }
}

TEST(GroupCollectives, BoundedGatherMissingMemberNulloptAtRoot) {
  ClusterConfig cfg = tiny(5);
  cfg.allow_undrained = true;
  Cluster<Payload> cluster(cfg);
  const std::vector<std::size_t> members = {0, 1, 3};
  const sim::SimTime deadline = 2 * sim::kMillisecond;
  std::optional<std::vector<Payload>> root_got = std::vector<Payload>{};
  std::vector<sim::SimTime> resolved_at(5, 0);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() == 3) co_return;  // one contribution never arrives
    const bool in_group =
        std::find(members.begin(), members.end(), m.rank()) != members.end();
    if (!in_group) co_return;
    Payload mine{static_cast<int>(m.rank())};
    std::vector<std::size_t> grp = members;
    auto r = co_await bounded_group_gather(cluster.comm(), std::move(grp),
                                           m.rank(), /*tag=*/27,
                                           /*abort_tag=*/28, std::move(mine),
                                           4, deadline);
    resolved_at[m.rank()] = cluster.simulator().now();
    if (m.rank() == 0) root_got = std::move(r);
  });
  EXPECT_FALSE(root_got.has_value());
  EXPECT_LE(resolved_at[0], deadline + kBoundedPoll);
  // The contributor posted and resolved long before the root's deadline.
  EXPECT_LT(resolved_at[1], deadline);
}

}  // namespace
}  // namespace pgxd::rt
