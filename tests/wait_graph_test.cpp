// Tests for the runtime wait-for graph: edge/hold bookkeeping and the
// conservative deadlock verdict at the unit level, then the Comm/Cluster
// integration — blocking receives and barriers bracket their suspension
// with wait edges, timed waits never register (so recovery paths cannot
// false-abort), and the deterministic blocked-receive report names stuck
// ranks sorted by rank then tag.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "runtime/cluster.hpp"
#include "sim/wait_graph.hpp"

namespace pgxd {
namespace {

using rt::Cluster;
using rt::ClusterConfig;
using rt::Machine;
using sim::WaitGraph;
using sim::WaitResource;

// --- WaitGraph unit behaviour -----------------------------------------------

TEST(WaitGraph, BlockedCountsDistinctRanksNotEdges) {
  WaitGraph g;
  g.process_spawned(0);
  g.process_spawned(1);
  g.process_spawned(2);  // never blocks, so detection cannot trigger
  const auto t0 = g.begin_wait(0, WaitResource::mailbox(0, 3));
  const auto t1 = g.begin_wait(0, WaitResource::mailbox(0, 4));
  EXPECT_EQ(g.blocked(), 1u);  // two edges, one rank
  const auto t2 = g.begin_wait(1, WaitResource::barrier());
  EXPECT_EQ(g.blocked(), 2u);
  g.end_wait(t0);
  EXPECT_EQ(g.blocked(), 2u);  // rank 0 still holds its second edge
  g.end_wait(t1);
  EXPECT_EQ(g.blocked(), 1u);
  g.end_wait(t2);
  EXPECT_EQ(g.blocked(), 0u);

  const auto& st = g.stats();
  EXPECT_EQ(st.mailbox_waits, 2u);
  EXPECT_EQ(st.barrier_waits, 1u);
  EXPECT_EQ(st.pool_waits, 0u);
  EXPECT_EQ(st.max_blocked, 2u);
  EXPECT_EQ(st.deadlocks, 0u);
}

TEST(WaitGraph, AnnotationEdgesNeverCountTowardBlockedness) {
  WaitGraph g;
  g.process_spawned(0);
  const auto t = g.begin_wait(0, WaitResource::pool(), /*annotation=*/true);
  EXPECT_EQ(g.blocked(), 0u);
  // Every live process "blocked" would otherwise be true here with an
  // absent probe — annotation edges must not establish a deadlock.
  EXPECT_FALSE(g.deadlock().has_value());
  EXPECT_EQ(g.stats().pool_waits, 1u);
  g.end_wait(t);
}

TEST(WaitGraph, TokensAreRecycledAfterEndWait) {
  WaitGraph g;
  g.process_spawned(0);
  g.process_spawned(1);  // keeps detection from firing mid-test
  const auto a = g.begin_wait(0, WaitResource::mailbox(0, 1));
  g.end_wait(a);
  const auto b = g.begin_wait(0, WaitResource::mailbox(0, 2));
  EXPECT_EQ(b, a);  // free-listed slot reused
  g.end_wait(b);
}

TEST(WaitGraph, EndWaitTwiceDies) {
  WaitGraph g;
  g.process_spawned(0);
  g.process_spawned(1);
  const auto t = g.begin_wait(0, WaitResource::mailbox(0, 1));
  g.end_wait(t);
  EXPECT_DEATH(g.end_wait(t), "inactive wait edge");
}

TEST(WaitGraph, HoldsAreCountedAndOverRemoveIsHarmless) {
  WaitGraph g;
  g.process_spawned(0);
  g.process_spawned(1);
  const auto pool = WaitResource::pool();
  g.add_hold(pool, 1);
  g.add_hold(pool, 1);
  g.remove_hold(pool, 1);
  g.remove_hold(pool, 1);
  g.remove_hold(pool, 1);  // below zero: no-op (duplicate-chunk returns)
  g.remove_hold(pool, 7);  // never held: no-op
  EXPECT_EQ(g.stats().holds_added, 2u);

  // With all holds gone, a full wedge names no cycle but still trips.
  const auto t0 = g.begin_wait(0, pool);
  const auto t1 = g.begin_wait(1, pool);
  (void)t0;
  (void)t1;
  ASSERT_TRUE(g.deadlock().has_value());
  EXPECT_TRUE(g.deadlock()->cycle_ranks.empty());
  EXPECT_NE(g.deadlock()->description.find("no hold edges close a cycle"),
            std::string::npos);
}

TEST(WaitGraph, DetectsWedgeAndNamesTheCycleFromHolds) {
  WaitGraph g;
  g.process_spawned(0);
  g.process_spawned(1);
  // 0 waits on its mailbox, which only 1 can fill; symmetrically for 1.
  g.add_hold(WaitResource::mailbox(0, 3), 1);
  g.add_hold(WaitResource::mailbox(1, 3), 0);
  std::optional<WaitGraph::Deadlock> seen;
  g.set_on_deadlock([&](const WaitGraph::Deadlock& d) { seen = d; });
  g.begin_wait(0, WaitResource::mailbox(0, 3));
  EXPECT_FALSE(seen.has_value());  // rank 1 still live and runnable
  g.begin_wait(1, WaitResource::mailbox(1, 3));
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->blocked, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(seen->cycle_ranks, (std::vector<std::size_t>{0, 1}));
  EXPECT_NE(seen->description.find("wait-for cycle"), std::string::npos);
  EXPECT_NE(seen->description.find("mailbox(rank 0, tag 3)"),
            std::string::npos);
  EXPECT_EQ(g.stats().deadlocks, 1u);
}

TEST(WaitGraph, SatisfiableProbeVetoesTheVerdict) {
  WaitGraph g;
  g.process_spawned(0);
  bool satisfiable = true;
  g.set_satisfiable_probe([&](const WaitResource&) { return satisfiable; });
  const auto t = g.begin_wait(0, WaitResource::mailbox(0, 9));
  EXPECT_FALSE(g.deadlock().has_value());  // a message is still in flight
  EXPECT_EQ(g.stats().deadlock_checks, 1u);
  g.end_wait(t);
  satisfiable = false;
  g.begin_wait(0, WaitResource::mailbox(0, 9));
  EXPECT_TRUE(g.deadlock().has_value());
}

TEST(WaitGraph, ProcessCompletionTriggersDetection) {
  WaitGraph g;
  g.process_spawned(0);
  g.process_spawned(1);
  g.begin_wait(0, WaitResource::mailbox(0, 2));
  EXPECT_FALSE(g.deadlock().has_value());
  g.process_done(1);  // the last runnable process exits: 0 can never wake
  EXPECT_TRUE(g.deadlock().has_value());
}

TEST(WaitGraph, RespawnRevivesACompletedProcess) {
  WaitGraph g;
  g.process_spawned(0);
  g.process_spawned(1);
  g.process_done(1);
  EXPECT_EQ(g.live(), 1u);
  g.process_spawned(1);  // recovery attempts re-run ranks
  EXPECT_EQ(g.live(), 2u);
  g.process_spawned(1);  // idempotent while live
  EXPECT_EQ(g.live(), 2u);
}

TEST(WaitGraph, ReportSortsByRankThenResourceAndBracketsAnnotations) {
  WaitGraph g;
  g.process_spawned(2);
  g.process_spawned(0);
  g.process_spawned(9);  // live spare: no detection during setup
  // Registered deliberately out of order.
  g.begin_wait(2, WaitResource::mailbox(2, 9));
  g.begin_wait(2, WaitResource::mailbox(2, 3));
  g.begin_wait(0, WaitResource::barrier());
  g.begin_wait(2, WaitResource::pool(), /*annotation=*/true);
  EXPECT_EQ(g.report(),
            " rank 0 waits on the barrier;"
            " rank 2 waits on tag 3 (1 recv) [also blocked on buffer-pool 0];"
            " rank 2 waits on tag 9 (1 recv)");
}

TEST(WaitGraph, EmptyReportSaysNone) {
  WaitGraph g;
  EXPECT_EQ(g.report(), " (none)");
}

// --- Comm/Cluster integration -----------------------------------------------

ClusterConfig tiny_cluster(std::size_t machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = 4;
  cfg.net.link_bandwidth_Bps = 1e9;
  cfg.net.latency = 100;
  cfg.net.per_message_overhead = 10;
  return cfg;
}

TEST(WaitGraphIntegration, BlockingRecvBracketsItsSuspension) {
  Cluster<std::vector<int>> cluster(tiny_cluster(2));
  cluster.run([&](Machine& m) -> sim::Task<void> {
    auto& comm = cluster.comm();
    if (m.rank() == 0) {
      co_await cluster.simulator().delay(500);
      comm.post(0, 1, /*tag=*/7, {1}, 4);
    } else {
      auto msg = co_await comm.recv(1, 7);  // parks until t=500+wire
      EXPECT_EQ(msg.payload[0], 1);
    }
    co_return;
  });
  const auto& st = cluster.wait_graph().stats();
  EXPECT_EQ(st.mailbox_waits, 1u);
  EXPECT_EQ(st.max_blocked, 1u);
  EXPECT_EQ(st.deadlocks, 0u);
  EXPECT_EQ(cluster.wait_graph().blocked(), 0u);  // edge unregistered
}

TEST(WaitGraphIntegration, ImmediatelyReadyRecvRegistersNothing) {
  Cluster<std::vector<int>> cluster(tiny_cluster(1));
  cluster.run([&](Machine&) -> sim::Task<void> {
    auto& comm = cluster.comm();
    comm.post(0, 0, /*tag=*/1, {5}, 4);  // local: delivered instantly
    auto msg = co_await comm.recv(0, 1);
    EXPECT_EQ(msg.payload[0], 5);
    co_return;
  });
  EXPECT_EQ(cluster.wait_graph().stats().mailbox_waits, 0u);
}

TEST(WaitGraphIntegration, TimedRecvNeverRegistersOrFalseAborts) {
  // Every rank parked in a deadline-bounded receive with nothing in flight
  // is the recovery-path steady state; it must neither count as blocked
  // nor trip the detector (this run would abort if it did).
  Cluster<std::vector<int>> cluster(tiny_cluster(2));
  std::size_t timeouts = 0;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    auto msg = co_await cluster.comm().recv_until(m.rank(), /*tag=*/4,
                                                  /*deadline=*/2000);
    if (!msg.has_value()) ++timeouts;
    co_return;
  });
  EXPECT_EQ(timeouts, 2u);
  const auto& st = cluster.wait_graph().stats();
  EXPECT_EQ(st.mailbox_waits, 0u);
  EXPECT_EQ(st.max_blocked, 0u);
  EXPECT_EQ(st.deadlocks, 0u);
}

TEST(WaitGraphIntegration, BarrierWaitsAreTypedEdges) {
  Cluster<int> cluster(tiny_cluster(3));
  cluster.run([&](Machine& m) -> sim::Task<void> {
    co_await m.compute(static_cast<sim::SimTime>(100 * (m.rank() + 1)));
    co_await cluster.comm().barrier(m.rank());
  });
  const auto& st = cluster.wait_graph().stats();
  // The last arrival passes straight through; the two early ranks park.
  EXPECT_EQ(st.barrier_waits, 2u);
  EXPECT_EQ(st.deadlocks, 0u);
  EXPECT_EQ(cluster.wait_graph().blocked(), 0u);
}

TEST(WaitGraphIntegration, CrossRankWedgeAbortsWithSortedBlockedList) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto doomed = [] {
    Cluster<std::vector<int>> cluster(tiny_cluster(2));
    cluster.run([&cluster](Machine& m) -> sim::Task<void> {
      // Each rank waits for the other; nobody ever sends.
      co_await cluster.comm().recv(m.rank(), /*tag=*/6);
    });
  };
  // The abort happens the instant the second rank parks, and the blocked
  // listing is deterministic: rank 0 before rank 1.
  EXPECT_DEATH(doomed(),
               "deadlocked.*rank 0 waits on tag 6.*rank 1 waits on tag 6");
}

// --- Comm::blocked_report ----------------------------------------------------

TEST(BlockedReport, SortsByRankThenTag) {
  Cluster<std::vector<int>> cluster(tiny_cluster(3));
  std::string mid_run;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    auto& comm = cluster.comm();
    if (m.rank() == 0) {
      co_await cluster.simulator().delay(1000);  // let the others park
      mid_run = comm.blocked_report();
      comm.post(0, 1, 5, {1}, 4);
      comm.post(0, 2, 3, {1}, 4);
    } else if (m.rank() == 1) {
      co_await comm.recv(1, 5);
    } else {
      co_await comm.recv(2, 3);
    }
    co_return;
  });
  // Rank-major order: rank 1 lists first even though its tag (5) sorts
  // after rank 2's tag (3).
  EXPECT_EQ(mid_run,
            " rank 1 waits on tag 5 (1 recv)"
            " rank 2 waits on tag 3 (1 recv)");
}

TEST(BlockedReport, NamesRanksStuckAtTheBarrier) {
  Cluster<int> cluster(tiny_cluster(3));
  std::string mid_run;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() == 1) {
      co_await cluster.simulator().delay(750);
      mid_run = cluster.comm().blocked_report();
    }
    co_await cluster.comm().barrier(m.rank());
  });
  EXPECT_EQ(mid_run, " [2 rank(s) stuck at the barrier: 0 2]");
}

TEST(BlockedReport, SaysNoneWhenNothingWaits) {
  Cluster<int> cluster(tiny_cluster(2));
  std::string mid_run;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() == 0) mid_run = cluster.comm().blocked_report();
    co_return;
  });
  EXPECT_EQ(mid_run, " (none — processes are blocked elsewhere)");
}

}  // namespace
}  // namespace pgxd
