// Tests for the Sec. II comparator baselines: distributed bitonic sort and
// partitioned parallel radix sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/bitonic.hpp"
#include "baselines/radix.hpp"
#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"

namespace pgxd::baselines {
namespace {

using Key = std::uint64_t;

rt::ClusterConfig test_cluster(std::size_t machines) {
  rt::ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = 8;
  return cfg;
}

std::vector<std::vector<Key>> equal_shards(gen::Distribution dist,
                                           std::size_t per_machine,
                                           std::size_t machines,
                                           std::uint64_t seed = 42) {
  gen::DataGenConfig dcfg;
  dcfg.dist = dist;
  dcfg.seed = seed;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, per_machine * machines,
                                         machines, r));
  return shards;
}

template <typename Parts>
void verify_global_sort(const Parts& parts,
                        const std::vector<std::vector<Key>>& input) {
  std::vector<Key> all_in, all_out;
  for (const auto& s : input) all_in.insert(all_in.end(), s.begin(), s.end());
  const Key* prev_max = nullptr;
  for (const auto& part : parts) {
    ASSERT_TRUE(std::is_sorted(part.begin(), part.end()));
    if (!part.empty()) {
      if (prev_max != nullptr) {
        ASSERT_LE(*prev_max, part.front());
      }
      prev_max = &part.back();
    }
    all_out.insert(all_out.end(), part.begin(), part.end());
  }
  std::sort(all_in.begin(), all_in.end());
  std::sort(all_out.begin(), all_out.end());
  ASSERT_EQ(all_in, all_out);
}

// --- Bitonic -----------------------------------------------------------------

class BitonicSweep
    : public ::testing::TestWithParam<std::tuple<gen::Distribution, std::size_t>> {};

TEST_P(BitonicSweep, SortsCorrectly) {
  const auto [dist, machines] = GetParam();
  auto shards = equal_shards(dist, 2000, machines);
  const auto input = shards;
  rt::Cluster<BitonicSorter<Key>::Msg> cluster(test_cluster(machines));
  BitonicSorter<Key> sorter(cluster);
  sorter.run(std::move(shards));
  verify_global_sort(sorter.partitions(), input);
  // Every machine keeps its block size: perfectly balanced by construction.
  for (const auto& part : sorter.partitions()) EXPECT_EQ(part.size(), 2000u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BitonicSweep,
    ::testing::Combine(::testing::ValuesIn(gen::kAllDistributions),
                       ::testing::Values(2, 4, 8, 16)));

TEST(Bitonic, RoundCountIsLogSquared) {
  auto shards = equal_shards(gen::Distribution::kUniform, 500, 8);
  rt::Cluster<BitonicSorter<Key>::Msg> cluster(test_cluster(8));
  BitonicSorter<Key> sorter(cluster);
  sorter.run(std::move(shards));
  // p=8: k in {2,4,8}, rounds 1+2+3 = 6.
  EXPECT_EQ(sorter.stats().rounds, 6u);
}

TEST(Bitonic, RejectsNonPowerOfTwo) {
  rt::Cluster<BitonicSorter<Key>::Msg> cluster(test_cluster(6));
  BitonicSorter<Key> sorter(cluster);
  EXPECT_DEATH(sorter.run(equal_shards(gen::Distribution::kUniform, 100, 6)),
               "2\\^k machines");
}

TEST(Bitonic, MovesFarMoreBytesThanSampleSort) {
  // The Sec. II critique: bitonic re-ships whole blocks every round —
  // log2(p)(log2(p)+1)/2 rounds x 8 key-bytes/element at p=16 is 80 B per
  // element, versus sample sort's single move of at most 20 B (key +
  // provenance), even though sample sort ships provenance and control
  // traffic on top.
  const std::size_t machines = 16;
  auto shards = equal_shards(gen::Distribution::kUniform, 4000, machines);

  rt::Cluster<BitonicSorter<Key>::Msg> bc(test_cluster(machines));
  BitonicSorter<Key> bitonic(bc);
  bitonic.run(shards);

  using Pgxd = core::DistributedSorter<Key>;
  rt::Cluster<Pgxd::Msg> pc(test_cluster(machines));
  Pgxd pgxd(pc, core::SortConfig{});
  pgxd.run(shards);

  EXPECT_GT(bitonic.stats().wire_bytes, pgxd.stats().wire_bytes_total * 2);
}

TEST(Bitonic, SingleMachine) {
  auto shards = equal_shards(gen::Distribution::kNormal, 1000, 1);
  const auto input = shards;
  rt::Cluster<BitonicSorter<Key>::Msg> cluster(test_cluster(1));
  BitonicSorter<Key> sorter(cluster);
  sorter.run(std::move(shards));
  verify_global_sort(sorter.partitions(), input);
}

// --- Radix -----------------------------------------------------------------

class RadixSweep
    : public ::testing::TestWithParam<std::tuple<gen::Distribution, std::size_t>> {};

TEST_P(RadixSweep, SortsCorrectly) {
  const auto [dist, machines] = GetParam();
  auto shards = equal_shards(dist, 3000, machines);
  const auto input = shards;
  rt::Cluster<RadixSorter<Key>::Msg> cluster(test_cluster(machines));
  RadixSorter<Key> sorter(cluster);
  sorter.run(std::move(shards));
  verify_global_sort(sorter.partitions(), input);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RadixSweep,
    ::testing::Combine(::testing::ValuesIn(gen::kAllDistributions),
                       ::testing::Values(1, 3, 5, 10)));

TEST(Radix, UniformKeysBalanceWell) {
  auto shards = equal_shards(gen::Distribution::kUniform, 6000, 8);
  rt::Cluster<RadixSorter<Key>::Msg> cluster(test_cluster(8));
  RadixSorter<Key> sorter(cluster);
  sorter.run(std::move(shards));
  EXPECT_LT(sorter.stats().balance.imbalance, 1.2);
}

TEST(Radix, DuplicateHeavyKeysCollapseOneBucket) {
  // 70% of right-skewed keys share one value -> one bucket -> one machine.
  auto shards = equal_shards(gen::Distribution::kRightSkewed, 6000, 8);
  rt::Cluster<RadixSorter<Key>::Msg> cluster(test_cluster(8));
  RadixSorter<Key> sorter(cluster);
  sorter.run(std::move(shards));
  EXPECT_GT(sorter.stats().balance.imbalance, 3.0);
}

TEST(Radix, SmallKeyDomainStillPartitions) {
  // Keys in [0, 16): fewer distinct digit values than machines.
  std::vector<std::vector<Key>> shards(4);
  Rng rng(5);
  for (auto& s : shards) {
    s.resize(1000);
    for (auto& k : s) k = rng.bounded(16);
  }
  const auto input = shards;
  rt::Cluster<RadixSorter<Key>::Msg> cluster(test_cluster(4));
  RadixSorter<Key> sorter(cluster);
  sorter.run(std::move(shards));
  verify_global_sort(sorter.partitions(), input);
}

TEST(Radix, AllZeroKeys) {
  std::vector<std::vector<Key>> shards(4, std::vector<Key>(500, 0));
  const auto input = shards;
  rt::Cluster<RadixSorter<Key>::Msg> cluster(test_cluster(4));
  RadixSorter<Key> sorter(cluster);
  sorter.run(std::move(shards));
  verify_global_sort(sorter.partitions(), input);
}

TEST(Radix, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto shards = equal_shards(gen::Distribution::kExponential, 2000, 5);
    rt::Cluster<RadixSorter<Key>::Msg> cluster(test_cluster(5));
    RadixSorter<Key> sorter(cluster);
    sorter.run(std::move(shards));
    return sorter.stats().total_time;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pgxd::baselines
