// Fixture: a justified suppression silences the rule (and the
// nolint-justification rule accepts it because it carries a reason).
// pgxd-lint: hot-path
#pragma once

#include <set>

// pgxd-lint: allow(hot-path-std-set) -- cold fallback, off the per-item path
inline bool seen(std::set<int>& s, int v) { return !s.insert(v).second; }
