// Fixture: naked new in a hot-path file must flag.
// pgxd-lint: hot-path

struct Node {
  int v = 0;
};

Node* make_node() { return new Node(); }
