// Fixture: sorted-vector membership in a hot-path file is the blessed
// pattern.
// pgxd-lint: hot-path
#pragma once

#include <algorithm>
#include <vector>

inline bool seen(const std::vector<int>& sorted, int v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}
