// Fixture: src/-rooted includes are clean.

#include "common/rng.hpp"

int use() { return 0; }
