// Fixture: std::set in a hot-path file must flag (node-per-element
// allocation and pointer chasing).
// pgxd-lint: hot-path
#pragma once

#include <set>

inline bool seen(std::set<int>& s, int v) { return !s.insert(v).second; }
