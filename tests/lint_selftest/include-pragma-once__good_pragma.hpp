// Fixture: the file comment may precede #pragma once; anything else may
// not.
#pragma once

inline int twice(int v) { return v * 2; }
