// Fixture: resolving an instrument by name inside a loop must flag — the
// map probe belongs outside, the loop bumps the cached reference.

struct Counter {
  void inc(unsigned long long n = 1) { v += n; }
  unsigned long long v = 0;
};
struct Registry {
  Counter& counter(const char*) { return c; }
  Counter c;
};

void record(Registry& reg, int n) {
  for (int i = 0; i < n; ++i) {
    reg.counter("sort.exchange.items_sent").inc();
  }
}
