// Fixture: reading a real clock inside the determinism contract must flag —
// simulated components take time only from sim::Simulator::now().
// pgxd-lint: determinism-scope

#include <chrono>

long long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
