// Fixture: a [&]-capturing lambda coroutine must flag even outside spawn —
// the frame outlives the enclosing scope across any suspension point.

struct Awaitable {};

void run(int& total) {
  auto body = [&]() {
    co_await Awaitable{};
    total += 1;
  };
  (void)body;
}
