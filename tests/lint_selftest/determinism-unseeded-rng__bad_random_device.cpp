// Fixture: a system-entropy RNG inside the determinism contract must flag —
// every stream must replay bit-identically from its seed.
// pgxd-lint: determinism-scope

#include <random>

unsigned draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return gen();
}
