// Fixture: a by-reference lambda handed to a coroutine spawn must flag —
// the captures dangle as soon as the enclosing frame unwinds while the
// spawned task is still suspended.

struct FakeTask {};
struct FakeSim {
  template <typename F>
  void spawn(F&&) {}
};

void launch(FakeSim& sim, int& total) {
  sim.spawn([&total]() -> FakeTask {
    total += 1;
    return {};
  });
}
