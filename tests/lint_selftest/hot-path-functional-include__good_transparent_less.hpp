// Fixture: the include-hygiene fix — a hot-path header whose default
// comparator is a transparent functor, with no <functional> include.
// pgxd-lint: hot-path
#pragma once

struct FixtureLess {
  using is_transparent = void;
  template <typename A, typename B>
  constexpr bool operator()(const A& a, const B& b) const {
    return a < b;
  }
};

template <typename T, typename Comp = FixtureLess>
void sorted_thing(T* data, Comp comp = {});
