// Fixture: simulated time plumbed through a parameter is clean; the word
// "clock" in comments (the simulated clock advances) must not flag.
// pgxd-lint: determinism-scope

long long stamp(long long sim_now_ns) { return sim_now_ns; }
