// Fixture: a header without #pragma once must flag.

inline int twice(int v) { return v * 2; }
