// Fixture: an explicitly seeded engine is clean.
// pgxd-lint: determinism-scope

#include <random>

unsigned draw(unsigned long long seed) {
  std::mt19937_64 gen(seed);
  return static_cast<unsigned>(gen());
}
