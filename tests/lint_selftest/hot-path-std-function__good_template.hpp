// Fixture: hot-path dispatch through a template parameter is the blessed
// pattern (no type erasure, no per-call allocation).
// pgxd-lint: hot-path
#pragma once

template <typename F>
void dispatch(F&& task) {
  task();
}
