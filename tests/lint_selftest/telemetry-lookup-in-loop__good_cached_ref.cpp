// Fixture: resolve once outside the loop, bump the cached reference inside.

struct Counter {
  void inc(unsigned long long n = 1) { v += n; }
  unsigned long long v = 0;
};
struct Registry {
  Counter& counter(const char*) { return c; }
  Counter c;
};

void record(Registry& reg, int n) {
  Counter& items = reg.counter("sort.exchange.items_sent");
  for (int i = 0; i < n; ++i) {
    items.inc();
  }
}
