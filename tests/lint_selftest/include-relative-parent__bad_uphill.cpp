// Fixture: uphill relative includes must flag — all includes resolve from
// the src/ root so files can move without editing their includers.

#include "../common/rng.hpp"

int use() { return 0; }
