// Fixture: a hot-path header pulling in <functional> just to spell a
// std::less<T> default comparator. The fix is sort::Less
// (sort/comparator.hpp).
// pgxd-lint: hot-path
#pragma once

#include <functional>

template <typename T, typename Comp = std::less<T>>
void sorted_thing(T* data, Comp comp = {});
