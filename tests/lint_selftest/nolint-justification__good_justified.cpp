// Fixture: a NOLINT naming its check and carrying a reason is clean.

// NOLINTNEXTLINE(cppcoreguidelines-avoid-magic-numbers): the answer is fixed
int magic() { return 42; }
