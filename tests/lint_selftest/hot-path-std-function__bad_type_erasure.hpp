// Fixture: std::function inside a hot-path file must flag.
// pgxd-lint: hot-path
#pragma once

#include <functional>

inline void dispatch(const std::function<void()>& task) { task(); }
