// Fixture: a bare NOLINT (no check name, no reason) must flag.

int magic() { return 42; }  // NOLINT
