// Fixture: by-value captures into a spawned task are clean, and a plain
// (non-coroutine) [&] lambda that runs synchronously is also clean.

struct FakeTask {};
struct FakeSim {
  template <typename F>
  void spawn(F&&) {}
};

void launch(FakeSim& sim, int total) {
  sim.spawn([total]() -> FakeTask { return {}; });
  int local = 0;
  auto bump = [&] { local += total; };
  bump();
}
