// Fixture: container-owned storage in a hot-path file is clean; the word
// "new" in comments (a new buffer) or strings ("new") must not flag.
// pgxd-lint: hot-path

#include <string>
#include <vector>

std::vector<int> make_nodes(int n) {
  const std::string label = "brand new nodes";
  (void)label;
  return std::vector<int>(static_cast<unsigned>(n), 0);
}
