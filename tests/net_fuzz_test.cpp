// Randomized property tests for the network model: byte conservation,
// per-pair FIFO delivery, latency lower bounds, and replay determinism
// under random traffic patterns — on clean fabrics and on fabrics with a
// fuzzed FaultConfig (drops, duplicates, blackout/degradation windows,
// slow NICs).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace pgxd::net {
namespace {

// One observed transfer outcome (the test-side ledger the fabric's own
// counters are checked against).
struct Observed {
  std::size_t src;
  std::size_t dst;
  std::uint64_t bytes;
  std::uint64_t seq;       // per-(src,dst) sequence number
  sim::SimTime sent_at;
  sim::SimTime arrived_at;
  int copies;
};

struct FuzzNet {
  sim::Simulator sim;
  std::unique_ptr<Fabric> fabric;
  std::vector<Observed> observed;
};

sim::Task<void> traffic_source(FuzzNet& w, std::size_t src,
                               std::uint64_t seed, int messages,
                               std::vector<std::uint64_t>& seq_counter) {
  Rng rng(seed);
  const std::size_t p = w.fabric->machines();
  for (int i = 0; i < messages; ++i) {
    co_await w.sim.delay(static_cast<sim::SimTime>(rng.bounded(2000)));
    std::size_t dst = rng.bounded(p - 1);
    if (dst >= src) ++dst;  // never self
    const std::uint64_t bytes = 1 + rng.bounded(8192);
    const std::uint64_t seq = seq_counter[src * p + dst]++;
    const sim::SimTime sent = w.sim.now();
    const Delivery d = co_await w.fabric->transfer(src, dst, bytes);
    w.observed.push_back(
        Observed{src, dst, bytes, seq, sent, w.sim.now(), d.copies});
  }
}

struct NetFuzzOutcome {
  std::uint64_t checksum = 0;
  sim::SimTime end = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
};

NetFuzzOutcome run_net_fuzz(std::uint64_t seed, std::size_t machines,
                            int msgs_per_machine,
                            const FaultConfig& faults = {}) {
  FuzzNet w;
  NetConfig cfg;
  cfg.link_bandwidth_Bps = 1e9;
  cfg.latency = 150;
  cfg.per_message_overhead = 20;
  cfg.faults = faults;
  w.fabric = std::make_unique<Fabric>(w.sim, machines, cfg);
  std::vector<std::uint64_t> seq_counter(machines * machines, 0);
  for (std::size_t s = 0; s < machines; ++s)
    w.sim.spawn(traffic_source(w, s, derive_seed(seed, s), msgs_per_machine,
                               seq_counter));
  w.sim.run();
  EXPECT_TRUE(w.sim.quiescent());

  // Conservation: fabric counters match observed outcomes. Senders are
  // charged for every message (a dropped one still paid its TX cost);
  // receivers see exactly the delivered copies.
  std::uint64_t sent_bytes = 0;
  std::map<std::size_t, std::uint64_t> recv_bytes_per_machine;
  std::map<std::size_t, std::uint64_t> recv_msgs_per_machine;
  NetFuzzOutcome out;
  for (const auto& o : w.observed) {
    sent_bytes += o.bytes;
    recv_bytes_per_machine[o.dst] +=
        static_cast<std::uint64_t>(o.copies) * o.bytes;
    recv_msgs_per_machine[o.dst] += static_cast<std::uint64_t>(o.copies);
    if (o.copies == 0) ++out.dropped;
    if (o.copies >= 1) ++out.delivered;
    if (o.copies == 2) ++out.duplicated;
    EXPECT_LE(o.copies, 2);
  }
  EXPECT_EQ(w.fabric->total_bytes(), sent_bytes);
  EXPECT_EQ(w.fabric->total_messages(), w.observed.size());
  EXPECT_EQ(w.fabric->total_dropped(), out.dropped);
  EXPECT_EQ(w.fabric->total_duplicated(), out.duplicated);
  for (std::size_t m = 0; m < machines; ++m) {
    EXPECT_EQ(w.fabric->stats(m).bytes_received, recv_bytes_per_machine[m]);
    EXPECT_EQ(w.fabric->stats(m).messages_received, recv_msgs_per_machine[m]);
  }

  // Latency lower bound: no delivered message beats the uncontended
  // duration (slow NICs and degradation windows only ever add time).
  for (const auto& o : w.observed) {
    if (o.copies >= 1) {
      EXPECT_GE(o.arrived_at - o.sent_at,
                w.fabric->uncontended_duration(o.bytes));
    }
  }

  out.end = w.sim.now();
  for (const auto& o : w.observed)
    out.checksum = out.checksum * 1099511628211ULL +
                   (o.src ^ (o.dst << 8) ^ o.bytes ^
                    static_cast<std::uint64_t>(o.arrived_at) ^
                    (static_cast<std::uint64_t>(o.copies) << 32));
  return out;
}

class NetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetFuzz, ConservesBytesAndRespectsLatency) {
  run_net_fuzz(GetParam(), 6, 40);
}

TEST_P(NetFuzz, ReplaysIdentically) {
  const auto a = run_net_fuzz(GetParam(), 5, 25);
  const auto b = run_net_fuzz(GetParam(), 5, 25);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
}

// Fault config fuzzed from the test seed: every mechanism enabled with
// random-but-valid parameters, so the property checks run under arbitrary
// combinations of drop, duplication, windows, and slow NICs.
FaultConfig fuzz_faults(std::uint64_t seed, std::size_t machines) {
  Rng rng(derive_seed(seed, 0xfa));
  FaultConfig fc;
  fc.drop_prob = 0.30 * rng.uniform();
  fc.duplicate_prob = 0.30 * rng.uniform();
  fc.blackout_period = 20'000 + static_cast<sim::SimTime>(rng.bounded(80'000));
  fc.blackout_duration =
      static_cast<sim::SimTime>(rng.bounded(fc.blackout_period / 4 + 1));
  fc.degrade_period = 20'000 + static_cast<sim::SimTime>(rng.bounded(80'000));
  fc.degrade_duration =
      static_cast<sim::SimTime>(rng.bounded(fc.degrade_period / 2 + 1));
  fc.degrade_factor = 1.0 + 4.0 * rng.uniform();
  fc.slow_nics = {rng.bounded(machines)};
  fc.slow_nic_factor = 1.0 + 2.0 * rng.uniform();
  fc.seed = derive_seed(seed, 0x10c);
  return fc;
}

TEST_P(NetFuzz, ConservesBytesUnderFuzzedFaults) {
  run_net_fuzz(GetParam(), 6, 40, fuzz_faults(GetParam(), 6));
}

TEST_P(NetFuzz, FaultyFabricReplaysIdentically) {
  const FaultConfig fc = fuzz_faults(GetParam(), 5);
  const auto a = run_net_fuzz(GetParam(), 5, 25, fc);
  const auto b = run_net_fuzz(GetParam(), 5, 25, fc);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFuzz, ::testing::Values(2, 9, 16, 25, 36));

// Targeted fault-rate checks on one representative seed.
TEST(NetFaults, DropRateMatchesConfiguredProbability) {
  FaultConfig fc;
  fc.drop_prob = 0.5;
  const auto out = run_net_fuzz(7, 6, 120, fc);
  const double total = static_cast<double>(out.dropped + out.delivered);
  const double frac = static_cast<double>(out.dropped) / total;
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

TEST(NetFaults, DuplicateRateMatchesConfiguredProbability) {
  FaultConfig fc;
  fc.duplicate_prob = 0.5;
  const auto out = run_net_fuzz(7, 6, 120, fc);
  EXPECT_EQ(out.dropped, 0u);
  const double frac = static_cast<double>(out.duplicated) /
                      static_cast<double>(out.delivered);
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

TEST(NetFaults, PermanentBlackoutDropsEverything) {
  FaultConfig fc;
  fc.blackout_period = 1'000'000;
  fc.blackout_duration = 1'000'000;  // the window never closes
  const auto out = run_net_fuzz(3, 4, 30, fc);
  EXPECT_EQ(out.delivered, 0u);
  EXPECT_EQ(out.dropped, 4u * 30u);
}

TEST(NetFaults, SlowNicStretchesItsTransfers) {
  auto one_transfer = [&](const FaultConfig& fc) {
    FuzzNet w;
    NetConfig cfg;
    cfg.link_bandwidth_Bps = 1e9;
    cfg.faults = fc;
    w.fabric = std::make_unique<Fabric>(w.sim, 2, cfg);
    std::vector<std::uint64_t> seq(4, 0);
    w.sim.spawn(traffic_source(w, 0, 1, 1, seq));
    w.sim.run();
    return w.sim.now();
  };
  FaultConfig slow;
  slow.slow_nics = {1};
  slow.slow_nic_factor = 3.0;
  EXPECT_GT(one_transfer(slow), one_transfer(FaultConfig{}));
}

TEST(NetFaults, DegradationWindowStretchesTransfersInsideIt) {
  auto one_transfer = [&](const FaultConfig& fc) {
    FuzzNet w;
    NetConfig cfg;
    cfg.link_bandwidth_Bps = 1e9;
    cfg.faults = fc;
    w.fabric = std::make_unique<Fabric>(w.sim, 2, cfg);
    std::vector<std::uint64_t> seq(4, 0);
    w.sim.spawn(traffic_source(w, 0, 1, 1, seq));
    w.sim.run();
    return w.sim.now();
  };
  FaultConfig degraded;
  degraded.degrade_period = 1'000'000'000;
  degraded.degrade_duration = 1'000'000'000;  // always inside the window
  degraded.degrade_factor = 4.0;
  EXPECT_GT(one_transfer(degraded), one_transfer(FaultConfig{}));
}

// FIFO per (src, dst): a sender's back-to-back messages to one destination
// arrive in order even under heavy cross traffic. (traffic_source awaits
// each transfer, so per-source FIFO is trivial there; this test posts
// *concurrent* transfers from one source.)
sim::Task<void> burst(FuzzNet& w, std::size_t src, std::size_t dst, int count,
                      std::vector<int>& arrivals, int id) {
  co_await w.fabric->transfer(src, dst, 500 + static_cast<std::uint64_t>(id));
  arrivals.push_back(id);
  (void)count;
}

TEST(NetFuzz, ConcurrentTransfersFromOneSourceArriveInIssueOrder) {
  FuzzNet w;
  w.fabric = std::make_unique<Fabric>(w.sim, 2, NetConfig{});
  std::vector<int> arrivals;
  for (int id = 0; id < 10; ++id)
    w.sim.spawn(burst(w, 0, 1, 10, arrivals, id));
  w.sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  for (int id = 0; id < 10; ++id) EXPECT_EQ(arrivals[id], id);
}

}  // namespace
}  // namespace pgxd::net
