// Randomized property tests for the network model: byte conservation,
// per-pair FIFO delivery, latency lower bounds, and replay determinism
// under random traffic patterns.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace pgxd::net {
namespace {

struct Delivery {
  std::size_t src;
  std::size_t dst;
  std::uint64_t bytes;
  std::uint64_t seq;       // per-(src,dst) sequence number
  sim::SimTime sent_at;
  sim::SimTime arrived_at;
};

struct FuzzNet {
  sim::Simulator sim;
  std::unique_ptr<Fabric> fabric;
  std::vector<Delivery> deliveries;
};

sim::Task<void> traffic_source(FuzzNet& w, std::size_t src,
                               std::uint64_t seed, int messages,
                               std::vector<std::uint64_t>& seq_counter) {
  Rng rng(seed);
  const std::size_t p = w.fabric->machines();
  for (int i = 0; i < messages; ++i) {
    co_await w.sim.delay(static_cast<sim::SimTime>(rng.bounded(2000)));
    std::size_t dst = rng.bounded(p - 1);
    if (dst >= src) ++dst;  // never self
    const std::uint64_t bytes = 1 + rng.bounded(8192);
    const std::uint64_t seq = seq_counter[src * p + dst]++;
    const sim::SimTime sent = w.sim.now();
    co_await w.fabric->transfer(src, dst, bytes);
    w.deliveries.push_back(Delivery{src, dst, bytes, seq, sent, w.sim.now()});
  }
}

struct NetFuzzOutcome {
  std::uint64_t checksum = 0;
  sim::SimTime end = 0;
};

NetFuzzOutcome run_net_fuzz(std::uint64_t seed, std::size_t machines,
                            int msgs_per_machine) {
  FuzzNet w;
  NetConfig cfg;
  cfg.link_bandwidth_Bps = 1e9;
  cfg.latency = 150;
  cfg.per_message_overhead = 20;
  w.fabric = std::make_unique<Fabric>(w.sim, machines, cfg);
  std::vector<std::uint64_t> seq_counter(machines * machines, 0);
  for (std::size_t s = 0; s < machines; ++s)
    w.sim.spawn(traffic_source(w, s, derive_seed(seed, s), msgs_per_machine,
                               seq_counter));
  w.sim.run();
  EXPECT_TRUE(w.sim.quiescent());

  // Conservation: fabric counters match observed deliveries.
  std::uint64_t sent_bytes = 0;
  std::map<std::size_t, std::uint64_t> recv_per_machine;
  for (const auto& d : w.deliveries) {
    sent_bytes += d.bytes;
    recv_per_machine[d.dst] += d.bytes;
  }
  EXPECT_EQ(w.fabric->total_bytes(), sent_bytes);
  EXPECT_EQ(w.fabric->total_messages(), w.deliveries.size());
  for (std::size_t m = 0; m < machines; ++m)
    EXPECT_EQ(w.fabric->stats(m).bytes_received, recv_per_machine[m]);

  // Latency lower bound: no message beats the uncontended duration.
  for (const auto& d : w.deliveries)
    EXPECT_GE(d.arrived_at - d.sent_at, w.fabric->uncontended_duration(d.bytes));

  NetFuzzOutcome out;
  out.end = w.sim.now();
  for (const auto& d : w.deliveries)
    out.checksum = out.checksum * 1099511628211ULL +
                   (d.src ^ (d.dst << 8) ^ d.bytes ^
                    static_cast<std::uint64_t>(d.arrived_at));
  return out;
}

class NetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetFuzz, ConservesBytesAndRespectsLatency) {
  run_net_fuzz(GetParam(), 6, 40);
}

TEST_P(NetFuzz, ReplaysIdentically) {
  const auto a = run_net_fuzz(GetParam(), 5, 25);
  const auto b = run_net_fuzz(GetParam(), 5, 25);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFuzz, ::testing::Values(2, 9, 16, 25, 36));

// FIFO per (src, dst): a sender's back-to-back messages to one destination
// arrive in order even under heavy cross traffic. (traffic_source awaits
// each transfer, so per-source FIFO is trivial there; this test posts
// *concurrent* transfers from one source.)
sim::Task<void> burst(FuzzNet& w, std::size_t src, std::size_t dst, int count,
                      std::vector<int>& arrivals, int id) {
  co_await w.fabric->transfer(src, dst, 500 + static_cast<std::uint64_t>(id));
  arrivals.push_back(id);
  (void)count;
}

TEST(NetFuzz, ConcurrentTransfersFromOneSourceArriveInIssueOrder) {
  FuzzNet w;
  w.fabric = std::make_unique<Fabric>(w.sim, 2, NetConfig{});
  std::vector<int> arrivals;
  for (int id = 0; id < 10; ++id)
    w.sim.spawn(burst(w, 0, 1, 10, arrivals, id));
  w.sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  for (int id = 0; id < 10; ++id) EXPECT_EQ(arrivals[id], id);
}

}  // namespace
}  // namespace pgxd::net
