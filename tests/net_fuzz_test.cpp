// Randomized property tests for the network model: byte conservation,
// per-pair FIFO delivery, latency lower bounds, and replay determinism
// under random traffic patterns — on clean fabrics and on fabrics with a
// fuzzed FaultConfig (drops, duplicates, blackout/degradation windows,
// slow NICs).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace pgxd::net {
namespace {

// One observed transfer outcome (the test-side ledger the fabric's own
// counters are checked against).
struct Observed {
  std::size_t src;
  std::size_t dst;
  std::uint64_t bytes;
  std::uint64_t seq;       // per-(src,dst) sequence number
  sim::SimTime sent_at;
  sim::SimTime arrived_at;
  int copies;
};

struct FuzzNet {
  sim::Simulator sim;
  std::unique_ptr<Fabric> fabric;
  std::vector<Observed> observed;
};

sim::Task<void> traffic_source(FuzzNet& w, std::size_t src,
                               std::uint64_t seed, int messages,
                               std::vector<std::uint64_t>& seq_counter) {
  Rng rng(seed);
  const std::size_t p = w.fabric->machines();
  for (int i = 0; i < messages; ++i) {
    co_await w.sim.delay(static_cast<sim::SimTime>(rng.bounded(2000)));
    std::size_t dst = rng.bounded(p - 1);
    if (dst >= src) ++dst;  // never self
    const std::uint64_t bytes = 1 + rng.bounded(8192);
    const std::uint64_t seq = seq_counter[src * p + dst]++;
    const sim::SimTime sent = w.sim.now();
    const Delivery d = co_await w.fabric->transfer(src, dst, bytes);
    w.observed.push_back(
        Observed{src, dst, bytes, seq, sent, w.sim.now(), d.copies});
  }
}

struct NetFuzzOutcome {
  std::uint64_t checksum = 0;
  sim::SimTime end = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
};

NetFuzzOutcome run_net_fuzz(std::uint64_t seed, std::size_t machines,
                            int msgs_per_machine,
                            const FaultConfig& faults = {}) {
  FuzzNet w;
  NetConfig cfg;
  cfg.link_bandwidth_Bps = 1e9;
  cfg.latency = 150;
  cfg.per_message_overhead = 20;
  cfg.faults = faults;
  w.fabric = std::make_unique<Fabric>(w.sim, machines, cfg);
  std::vector<std::uint64_t> seq_counter(machines * machines, 0);
  for (std::size_t s = 0; s < machines; ++s)
    w.sim.spawn(traffic_source(w, s, derive_seed(seed, s), msgs_per_machine,
                               seq_counter));
  w.sim.run();
  EXPECT_TRUE(w.sim.quiescent());

  // Conservation: fabric counters match observed outcomes. Senders are
  // charged for every message (a dropped one still paid its TX cost);
  // receivers see exactly the delivered copies.
  std::uint64_t sent_bytes = 0;
  std::map<std::size_t, std::uint64_t> recv_bytes_per_machine;
  std::map<std::size_t, std::uint64_t> recv_msgs_per_machine;
  NetFuzzOutcome out;
  for (const auto& o : w.observed) {
    sent_bytes += o.bytes;
    recv_bytes_per_machine[o.dst] +=
        static_cast<std::uint64_t>(o.copies) * o.bytes;
    recv_msgs_per_machine[o.dst] += static_cast<std::uint64_t>(o.copies);
    if (o.copies == 0) ++out.dropped;
    if (o.copies >= 1) ++out.delivered;
    if (o.copies == 2) ++out.duplicated;
    EXPECT_LE(o.copies, 2);
  }
  EXPECT_EQ(w.fabric->total_bytes(), sent_bytes);
  EXPECT_EQ(w.fabric->total_messages(), w.observed.size());
  EXPECT_EQ(w.fabric->total_dropped(), out.dropped);
  EXPECT_EQ(w.fabric->total_duplicated(), out.duplicated);
  for (std::size_t m = 0; m < machines; ++m) {
    EXPECT_EQ(w.fabric->stats(m).bytes_received, recv_bytes_per_machine[m]);
    EXPECT_EQ(w.fabric->stats(m).messages_received, recv_msgs_per_machine[m]);
  }

  // Latency lower bound: no delivered message beats the uncontended
  // duration (slow NICs and degradation windows only ever add time).
  for (const auto& o : w.observed) {
    if (o.copies >= 1) {
      EXPECT_GE(o.arrived_at - o.sent_at,
                w.fabric->uncontended_duration(o.bytes));
    }
  }

  out.end = w.sim.now();
  for (const auto& o : w.observed)
    out.checksum = out.checksum * 1099511628211ULL +
                   (o.src ^ (o.dst << 8) ^ o.bytes ^
                    static_cast<std::uint64_t>(o.arrived_at) ^
                    (static_cast<std::uint64_t>(o.copies) << 32));
  return out;
}

class NetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetFuzz, ConservesBytesAndRespectsLatency) {
  run_net_fuzz(GetParam(), 6, 40);
}

TEST_P(NetFuzz, ReplaysIdentically) {
  const auto a = run_net_fuzz(GetParam(), 5, 25);
  const auto b = run_net_fuzz(GetParam(), 5, 25);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
}

// Fault config fuzzed from the test seed: every mechanism enabled with
// random-but-valid parameters, so the property checks run under arbitrary
// combinations of drop, duplication, windows, and slow NICs.
FaultConfig fuzz_faults(std::uint64_t seed, std::size_t machines) {
  Rng rng(derive_seed(seed, 0xfa));
  FaultConfig fc;
  fc.drop_prob = 0.30 * rng.uniform();
  fc.duplicate_prob = 0.30 * rng.uniform();
  fc.blackout_period = 20'000 + static_cast<sim::SimTime>(rng.bounded(80'000));
  fc.blackout_duration =
      static_cast<sim::SimTime>(rng.bounded(fc.blackout_period / 4 + 1));
  fc.degrade_period = 20'000 + static_cast<sim::SimTime>(rng.bounded(80'000));
  fc.degrade_duration =
      static_cast<sim::SimTime>(rng.bounded(fc.degrade_period / 2 + 1));
  fc.degrade_factor = 1.0 + 4.0 * rng.uniform();
  fc.slow_nics = {rng.bounded(machines)};
  fc.slow_nic_factor = 1.0 + 2.0 * rng.uniform();
  fc.seed = derive_seed(seed, 0x10c);
  return fc;
}

TEST_P(NetFuzz, ConservesBytesUnderFuzzedFaults) {
  run_net_fuzz(GetParam(), 6, 40, fuzz_faults(GetParam(), 6));
}

TEST_P(NetFuzz, FaultyFabricReplaysIdentically) {
  const FaultConfig fc = fuzz_faults(GetParam(), 5);
  const auto a = run_net_fuzz(GetParam(), 5, 25, fc);
  const auto b = run_net_fuzz(GetParam(), 5, 25, fc);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFuzz, ::testing::Values(2, 9, 16, 25, 36));

// Targeted fault-rate checks on one representative seed.
TEST(NetFaults, DropRateMatchesConfiguredProbability) {
  FaultConfig fc;
  fc.drop_prob = 0.5;
  const auto out = run_net_fuzz(7, 6, 120, fc);
  const double total = static_cast<double>(out.dropped + out.delivered);
  const double frac = static_cast<double>(out.dropped) / total;
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

TEST(NetFaults, DuplicateRateMatchesConfiguredProbability) {
  FaultConfig fc;
  fc.duplicate_prob = 0.5;
  const auto out = run_net_fuzz(7, 6, 120, fc);
  EXPECT_EQ(out.dropped, 0u);
  const double frac = static_cast<double>(out.duplicated) /
                      static_cast<double>(out.delivered);
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

TEST(NetFaults, PermanentBlackoutDropsEverything) {
  FaultConfig fc;
  fc.blackout_period = 1'000'000;
  fc.blackout_duration = 1'000'000;  // the window never closes
  const auto out = run_net_fuzz(3, 4, 30, fc);
  EXPECT_EQ(out.delivered, 0u);
  EXPECT_EQ(out.dropped, 4u * 30u);
}

TEST(NetFaults, SlowNicStretchesItsTransfers) {
  auto one_transfer = [&](const FaultConfig& fc) {
    FuzzNet w;
    NetConfig cfg;
    cfg.link_bandwidth_Bps = 1e9;
    cfg.faults = fc;
    w.fabric = std::make_unique<Fabric>(w.sim, 2, cfg);
    std::vector<std::uint64_t> seq(4, 0);
    w.sim.spawn(traffic_source(w, 0, 1, 1, seq));
    w.sim.run();
    return w.sim.now();
  };
  FaultConfig slow;
  slow.slow_nics = {1};
  slow.slow_nic_factor = 3.0;
  EXPECT_GT(one_transfer(slow), one_transfer(FaultConfig{}));
}

TEST(NetFaults, DegradationWindowStretchesTransfersInsideIt) {
  auto one_transfer = [&](const FaultConfig& fc) {
    FuzzNet w;
    NetConfig cfg;
    cfg.link_bandwidth_Bps = 1e9;
    cfg.faults = fc;
    w.fabric = std::make_unique<Fabric>(w.sim, 2, cfg);
    std::vector<std::uint64_t> seq(4, 0);
    w.sim.spawn(traffic_source(w, 0, 1, 1, seq));
    w.sim.run();
    return w.sim.now();
  };
  FaultConfig degraded;
  degraded.degrade_period = 1'000'000'000;
  degraded.degrade_duration = 1'000'000'000;  // always inside the window
  degraded.degrade_factor = 4.0;
  EXPECT_GT(one_transfer(degraded), one_transfer(FaultConfig{}));
}

// FaultConfig is validated on Fabric construction: nonsensical settings
// die with a named error instead of silently skewing a chaos run.
TEST(FaultConfigValidation, RejectsNonsensicalSettings) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto build = [](const FaultConfig& fc) {
    sim::Simulator sim;
    NetConfig cfg;
    cfg.faults = fc;
    Fabric fabric(sim, 2, cfg);
  };
  {
    FaultConfig fc;
    fc.drop_prob = 1.5;
    EXPECT_DEATH(build(fc), "drop_prob must lie");
  }
  {
    FaultConfig fc;
    fc.duplicate_prob = -0.1;
    EXPECT_DEATH(build(fc), "duplicate_prob must lie");
  }
  {
    FaultConfig fc;
    fc.blackout_period = 1000;
    fc.blackout_duration = 2000;
    EXPECT_DEATH(build(fc), "blackout_duration must not exceed");
  }
  {
    FaultConfig fc;
    fc.degrade_period = 1000;
    fc.degrade_duration = 1000;
    fc.degrade_factor = 0.5;  // would speed links up
    EXPECT_DEATH(build(fc), "degrade_factor must be >= 1");
  }
  {
    FaultConfig fc;
    fc.slow_nics = {7};  // only machines 0 and 1 exist
    fc.slow_nic_factor = 2.0;
    EXPECT_DEATH(build(fc), "slow_nics names a machine out");
  }
  {
    FaultConfig fc;
    fc.crashes = {CrashEvent{7, 1000}};
    EXPECT_DEATH(build(fc), "crashes names a rank out of range");
  }
  {
    FaultConfig fc;
    fc.crashes = {CrashEvent{1, -5}};
    EXPECT_DEATH(build(fc), "crash_time must be non-negative");
  }
  {
    FaultConfig fc;
    fc.crashes = {CrashEvent{1, 1000, -1}};
    EXPECT_DEATH(build(fc), "restart_after must be non-negative");
  }
}

// ---- Crash-stop schedule ------------------------------------------------

// One transfer src -> dst issued at `issue_at`; returns the Delivery.
struct CrashProbe {
  sim::Simulator sim;
  std::unique_ptr<Fabric> fabric;
  Delivery out{0};

  explicit CrashProbe(const FaultConfig& fc, std::size_t machines = 2) {
    NetConfig cfg;
    cfg.link_bandwidth_Bps = 1e9;
    cfg.faults = fc;
    fabric = std::make_unique<Fabric>(sim, machines, cfg);
  }
  CrashProbe(const CrashProbe&) = delete;
  CrashProbe& operator=(const CrashProbe&) = delete;

  Delivery transfer_at(sim::SimTime issue_at, std::size_t src,
                       std::size_t dst, std::uint64_t bytes = 4096) {
    sim.spawn(probe(issue_at, src, dst, bytes));
    sim.run();
    return out;
  }

  sim::Task<void> probe(sim::SimTime issue_at, std::size_t src,
                        std::size_t dst, std::uint64_t bytes) {
    co_await sim.delay(issue_at - sim.now());
    out = co_await fabric->transfer(src, dst, bytes);
  }
};

TEST(NetCrash, DeadSourceTransmitsNothing) {
  FaultConfig fc;
  fc.crashes = {CrashEvent{0, 1000}};
  CrashProbe w(fc);
  const Delivery d = w.transfer_at(2000, 0, 1);
  EXPECT_EQ(d.copies, 0);
  // The message died before any TX accounting: no bytes, no port time.
  EXPECT_EQ(w.fabric->stats(0).bytes_sent, 0u);
  EXPECT_EQ(w.fabric->stats(0).messages_sent, 0u);
  EXPECT_EQ(w.fabric->stats(0).messages_crash_dropped, 1u);
  EXPECT_EQ(w.fabric->total_crash_dropped(), 1u);
}

TEST(NetCrash, DeadDestinationHasADarkRxPort) {
  FaultConfig fc;
  fc.crashes = {CrashEvent{1, 1000}};
  CrashProbe w(fc);
  const Delivery d = w.transfer_at(2000, 0, 1);
  EXPECT_EQ(d.copies, 0);
  // The sender still paid the TX-side cost; the payload was discarded
  // silently at the dead RX port.
  EXPECT_GT(w.fabric->stats(0).bytes_sent, 0u);
  EXPECT_EQ(w.fabric->stats(1).bytes_received, 0u);
  EXPECT_EQ(w.fabric->stats(1).messages_crash_dropped, 1u);
}

TEST(NetCrash, RestartLightsThePortsBackUp) {
  FaultConfig fc;
  // The RX-dark check happens when the head of the message reaches the
  // destination port (~7 us after issue with the default 2 us latency,
  // 1 us overhead, and ~4 us TX serialization), so the probes are placed
  // by *arrival* time relative to the [10 us, 30 us) dark window.
  fc.crashes = {CrashEvent{1, 10'000, /*restart_after=*/20'000}};
  CrashProbe before(fc), during(fc), after(fc);
  EXPECT_EQ(before.transfer_at(0, 0, 1).copies, 1);      // arrives pre-crash
  EXPECT_EQ(during.transfer_at(5000, 0, 1).copies, 0);   // dark window
  EXPECT_EQ(after.transfer_at(40'000, 0, 1).copies, 1);  // rebooted
}

TEST(NetCrash, CrashStopForeverNeverComesBack) {
  FaultConfig fc;
  fc.crashes = {CrashEvent{1, 1000}};  // restart_after == 0: forever
  CrashProbe w(fc);
  EXPECT_EQ(w.transfer_at(1'000'000'000, 0, 1).copies, 0);
}

TEST(NetCrash, DownIsAPureFunctionOfTheSchedule) {
  FaultConfig fc;
  fc.crashes = {CrashEvent{1, 1000, 2000}, CrashEvent{1, 10000}};
  CrashProbe w(fc);
  EXPECT_FALSE(w.fabric->down(1, 999));
  EXPECT_TRUE(w.fabric->down(1, 1000));   // first crash
  EXPECT_TRUE(w.fabric->down(1, 2999));
  EXPECT_FALSE(w.fabric->down(1, 3000));  // restarted
  EXPECT_TRUE(w.fabric->down(1, 10000));  // crashed again, forever
  EXPECT_FALSE(w.fabric->down(0, 10000));
  EXPECT_FALSE(w.fabric->crashed_within(1, 3000, 9999).has_value());
  const auto at = w.fabric->crashed_within(1, 3000, 20000);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(*at, 10000);
}

// Like run_net_fuzz but without the byte-conservation ledger: crash drops
// are exempt from TX accounting by design (a dead host issues no DMA), so
// only replay identity and the crash-stop properties are checked here.
NetFuzzOutcome run_crash_fuzz(std::uint64_t seed, std::size_t machines,
                              int msgs_per_machine,
                              const FaultConfig& faults) {
  FuzzNet w;
  NetConfig cfg;
  cfg.link_bandwidth_Bps = 1e9;
  cfg.latency = 150;
  cfg.per_message_overhead = 20;
  cfg.faults = faults;
  w.fabric = std::make_unique<Fabric>(w.sim, machines, cfg);
  std::vector<std::uint64_t> seq_counter(machines * machines, 0);
  for (std::size_t s = 0; s < machines; ++s)
    w.sim.spawn(traffic_source(w, s, derive_seed(seed, s), msgs_per_machine,
                               seq_counter));
  w.sim.run();
  EXPECT_TRUE(w.sim.quiescent());
  NetFuzzOutcome out;
  for (const auto& o : w.observed) {
    // A transfer issued by a crash-stopped source never delivers.
    if (w.fabric->down(o.src, o.sent_at)) {
      EXPECT_EQ(o.copies, 0);
    }
    if (o.copies == 0) ++out.dropped;
    out.checksum = out.checksum * 1099511628211ULL +
                   (o.src ^ (o.dst << 8) ^ o.bytes ^
                    static_cast<std::uint64_t>(o.arrived_at) ^
                    (static_cast<std::uint64_t>(o.copies) << 32));
  }
  out.end = w.sim.now();
  return out;
}

TEST(NetCrash, FuzzedTrafficOverACrashScheduleReplaysIdentically) {
  FaultConfig fc = fuzz_faults(11, 5);
  fc.crashes = {CrashEvent{2, 30'000}, CrashEvent{4, 50'000, 40'000}};
  const auto a = run_crash_fuzz(11, 5, 25, fc);
  const auto b = run_crash_fuzz(11, 5, 25, fc);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_GT(a.dropped, 0u);
}

// FIFO per (src, dst): a sender's back-to-back messages to one destination
// arrive in order even under heavy cross traffic. (traffic_source awaits
// each transfer, so per-source FIFO is trivial there; this test posts
// *concurrent* transfers from one source.)
sim::Task<void> burst(FuzzNet& w, std::size_t src, std::size_t dst, int count,
                      std::vector<int>& arrivals, int id) {
  co_await w.fabric->transfer(src, dst, 500 + static_cast<std::uint64_t>(id));
  arrivals.push_back(id);
  (void)count;
}

TEST(NetFuzz, ConcurrentTransfersFromOneSourceArriveInIssueOrder) {
  FuzzNet w;
  w.fabric = std::make_unique<Fabric>(w.sim, 2, NetConfig{});
  std::vector<int> arrivals;
  for (int id = 0; id < 10; ++id)
    w.sim.spawn(burst(w, 0, 1, 10, arrivals, id));
  w.sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  for (int id = 0; id < 10; ++id) EXPECT_EQ(arrivals[id], id);
}

}  // namespace
}  // namespace pgxd::net

// --- Partition schemes over a lossy fabric ----------------------------------
//
// The histogram-refinement and two-level protocols carry their own
// duplicate armor (per-attempt probe sequence numbers, distinct-source
// level-1 frames) on top of reliable delivery. A dropping + duplicating
// fabric must neither change any partitioning decision between identical
// runs nor corrupt the sorted output.
namespace pgxd::core {
namespace {

using LKey = std::uint64_t;
using LSorter = DistributedSorter<LKey>;

struct LossyOutcome {
  std::vector<LKey> splitters;
  std::uint64_t rounds = 0;
  std::uint64_t probe_keys = 0;
  std::uint64_t groups = 0;
  std::uint64_t level1_items = 0;
  sim::SimTime total = 0;
  std::uint64_t output_checksum = 0;
  bool sorted = true;
};

LossyOutcome run_lossy_sort(std::uint64_t seed, PartitionScheme scheme) {
  const std::size_t machines = 6;
  const std::size_t n = 12'000;
  gen::DataGenConfig dcfg;
  dcfg.dist = gen::Distribution::kFewDistinct;
  dcfg.seed = seed;
  std::vector<std::vector<LKey>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, n, machines, r));

  SortConfig cfg;
  cfg.partition = scheme;
  cfg.partition_epsilon = 0.10;

  rt::ClusterConfig ccfg;
  ccfg.machines = machines;
  ccfg.threads_per_machine = 2;
  ccfg.seed = seed;
  ccfg.net.faults.drop_prob = 0.05;
  ccfg.net.faults.duplicate_prob = 0.20;
  ccfg.net.faults.seed = derive_seed(seed, 0x10 + 1);
  ccfg.reliable.enabled = true;
  ccfg.allow_undrained = true;
  rt::Cluster<LSorter::Msg> cluster(ccfg);
  LSorter sorter(cluster, cfg);
  sorter.run(std::move(shards));

  LossyOutcome out;
  const auto& st = sorter.stats();
  out.splitters = st.splitters;
  out.rounds = st.partition.rounds;
  out.probe_keys = st.partition.probe_keys;
  out.groups = st.partition.groups;
  out.level1_items = st.partition.level1_items;
  out.total = st.total_time;
  const LKey* prev = nullptr;
  std::size_t got = 0;
  for (const auto& part : sorter.partitions()) {
    for (const auto& item : part) {
      if (prev && item.key < *prev) out.sorted = false;
      prev = &item.key;
      ++got;
      out.output_checksum =
          out.output_checksum * 1099511628211ULL + item.key;
    }
  }
  if (got != n) out.sorted = false;
  return out;
}

class LossyPartitionFuzz
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossyPartitionFuzz, HistogramRefineSurvivesAndReplays) {
  const auto a =
      run_lossy_sort(GetParam(), PartitionScheme::kHistogramRefine);
  const auto b =
      run_lossy_sort(GetParam(), PartitionScheme::kHistogramRefine);
  EXPECT_TRUE(a.sorted);
  EXPECT_EQ(a.splitters, b.splitters);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.probe_keys, b.probe_keys);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.output_checksum, b.output_checksum);
}

TEST_P(LossyPartitionFuzz, TwoLevelAmsSurvivesAndReplays) {
  const auto a = run_lossy_sort(GetParam(), PartitionScheme::kTwoLevelAms);
  const auto b = run_lossy_sort(GetParam(), PartitionScheme::kTwoLevelAms);
  EXPECT_TRUE(a.sorted);
  EXPECT_GT(a.groups, 1u);
  EXPECT_EQ(a.splitters, b.splitters);
  EXPECT_EQ(a.level1_items, b.level1_items);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.output_checksum, b.output_checksum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyPartitionFuzz,
                         ::testing::Values(5, 23));

}  // namespace
}  // namespace pgxd::core
