// Chaos suite: the full distributed sort over a faulty fabric with the
// reliable-delivery layer enabled. Sweeps fault profiles (drop rates up to
// 10%, duplication, blackout windows, degraded links, slow NICs) across
// the Fig. 4 data distributions and asserts the same postconditions as a
// clean run — globally sorted output, exactly-once provenance — plus
// determinism: identical seeds give bit-identical results and times.
//
// Also covers the harness diagnostics that ride along: the quiescence
// failure message naming blocked ranks/tags, and the end-of-run stray-
// message check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"
#include "net/fabric.hpp"
#include "runtime/cluster.hpp"
#include "sim/trace.hpp"

namespace pgxd::core {
namespace {

using Key = std::uint64_t;
using Sorter = DistributedSorter<Key>;
using Msg = SortMsg<Key>;

std::vector<std::vector<Key>> make_shards(gen::Distribution dist,
                                          std::size_t total_n,
                                          std::size_t machines,
                                          std::uint64_t seed = 42) {
  gen::DataGenConfig dcfg;
  dcfg.dist = dist;
  dcfg.domain = 1 << 20;
  dcfg.seed = seed;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, total_n, machines, r));
  return shards;
}

// A small read buffer makes the exchange stream many chunks per pair, so a
// given drop rate hits plenty of individual messages.
SortConfig chunky_sort_config() {
  SortConfig cfg;
  cfg.read_buffer_bytes = 4096;
  return cfg;
}

rt::ClusterConfig faulty_cluster(std::size_t machines,
                                 const net::FaultConfig& faults,
                                 bool reliable = true) {
  rt::ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = 8;
  cfg.net.faults = faults;
  cfg.reliable.enabled = reliable;
  return cfg;
}

void verify_sorted(const Sorter& sorter,
                   const std::vector<std::vector<Key>>& input) {
  const auto& parts = sorter.partitions();
  const Key* prev_max = nullptr;
  for (const auto& part : parts) {
    for (std::size_t i = 1; i < part.size(); ++i)
      ASSERT_LE(part[i - 1].key, part[i].key);
    if (!part.empty()) {
      if (prev_max != nullptr) {
        ASSERT_LE(*prev_max, part.front().key);
      }
      prev_max = &part.back().key;
    }
  }
  std::vector<Key> all_in, all_out;
  for (const auto& shard : input)
    all_in.insert(all_in.end(), shard.begin(), shard.end());
  for (const auto& part : parts)
    for (const auto& item : part) all_out.push_back(item.key);
  ASSERT_EQ(all_in.size(), all_out.size());
  std::sort(all_in.begin(), all_in.end());
  std::sort(all_out.begin(), all_out.end());
  ASSERT_EQ(all_in, all_out);
}

// Bit-exact fingerprint of a run: every output element (key + provenance)
// plus the simulated completion time.
std::uint64_t fingerprint(const Sorter& sorter) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
  for (const auto& part : sorter.partitions())
    for (const auto& item : part) {
      mix(item.key);
      mix(item.prov.prev_machine);
      mix(item.prov.prev_index);
    }
  mix(static_cast<std::uint64_t>(sorter.stats().total_time));
  return h;
}

struct FaultProfile {
  const char* label;
  net::FaultConfig faults;
};

std::vector<FaultProfile> chaos_profiles() {
  std::vector<FaultProfile> out;
  {
    net::FaultConfig fc;
    fc.drop_prob = 0.02;
    out.push_back({"drop2", fc});
  }
  {
    net::FaultConfig fc;
    fc.drop_prob = 0.10;
    out.push_back({"drop10", fc});
  }
  {
    net::FaultConfig fc;
    fc.duplicate_prob = 0.10;
    out.push_back({"dup10", fc});
  }
  {
    net::FaultConfig fc;
    fc.drop_prob = 0.05;
    fc.duplicate_prob = 0.05;
    out.push_back({"drop5dup5", fc});
  }
  {
    net::FaultConfig fc;
    fc.drop_prob = 0.02;
    fc.blackout_period = 2 * sim::kMillisecond;
    fc.blackout_duration = 200 * sim::kMicrosecond;
    out.push_back({"blackout", fc});
  }
  {
    net::FaultConfig fc;
    fc.drop_prob = 0.02;
    fc.degrade_period = 1 * sim::kMillisecond;
    fc.degrade_duration = 250 * sim::kMicrosecond;
    fc.degrade_factor = 4.0;
    fc.slow_nics = {1};
    fc.slow_nic_factor = 2.0;
    out.push_back({"degraded", fc});
  }
  return out;
}

class ChaosSweep
    : public ::testing::TestWithParam<std::tuple<gen::Distribution, int>> {};

TEST_P(ChaosSweep, SortsCorrectlyOverFaultyFabric) {
  const auto [dist, profile_idx] = GetParam();
  const FaultProfile profile =
      chaos_profiles()[static_cast<std::size_t>(profile_idx)];
  const std::size_t p = 5;
  auto shards = make_shards(dist, 20000, p);

  rt::Cluster<Msg> cluster(faulty_cluster(p, profile.faults));
  Sorter sorter(cluster, chunky_sort_config());
  sorter.run(shards);  // audit_exchange asserts exactly-once internally
  verify_sorted(sorter, shards);

  const auto& rs = cluster.comm().reliable_stats();
  const auto& fabric = cluster.fabric();
  if (profile.faults.drop_prob > 0) {
    EXPECT_GT(fabric.total_dropped(), 0u);
    EXPECT_GT(rs.retransmits, 0u);
  }
  if (profile.faults.duplicate_prob > 0) {
    EXPECT_GT(fabric.total_duplicated(), 0u);
    EXPECT_GT(rs.duplicates_suppressed, 0u);
  }
  // Every data frame eventually acked; no element ever reached the sorter
  // twice (the dedup window absorbed every redelivery).
  EXPECT_GT(rs.frames_sent, 0u);
  EXPECT_GE(rs.acks_sent, rs.frames_sent);
  for (const auto& ms : sorter.stats().machines)
    EXPECT_EQ(ms.duplicate_chunks, 0u);
}

TEST_P(ChaosSweep, IdenticalSeedsAreBitIdentical) {
  const auto [dist, profile_idx] = GetParam();
  const FaultProfile profile =
      chaos_profiles()[static_cast<std::size_t>(profile_idx)];
  const std::size_t p = 5;
  auto run_once = [&]() {
    auto shards = make_shards(dist, 8000, p);
    rt::Cluster<Msg> cluster(faulty_cluster(p, profile.faults));
    Sorter sorter(cluster, chunky_sort_config());
    sorter.run(shards);
    return fingerprint(sorter);
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosSweep,
    ::testing::Combine(::testing::Values(gen::Distribution::kUniform,
                                         gen::Distribution::kNormal,
                                         gen::Distribution::kRightSkewed,
                                         gen::Distribution::kExponential),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

// Reliable mode over a PERFECT fabric: still correct, no retransmissions,
// and the ack overhead stays modest relative to the clean run.
TEST(ReliableClean, NoFaultsMeansNoRetries) {
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kUniform, 20000, p);

  rt::Cluster<Msg> plain_cluster(faulty_cluster(p, {}, /*reliable=*/false));
  Sorter plain(plain_cluster, chunky_sort_config());
  plain.run(shards);
  verify_sorted(plain, shards);

  rt::Cluster<Msg> rel_cluster(faulty_cluster(p, {}, /*reliable=*/true));
  Sorter reliable(rel_cluster, chunky_sort_config());
  reliable.run(shards);
  verify_sorted(reliable, shards);

  const auto& rs = rel_cluster.comm().reliable_stats();
  EXPECT_EQ(rs.retransmits, 0u);
  EXPECT_EQ(rs.duplicates_suppressed, 0u);
  EXPECT_EQ(rs.acks_received, rs.frames_sent);
  // Acks ride the fabric, so a reliable run is a bit slower than plain —
  // but only by ack traffic, never by timers (RTO events are cancelled).
  EXPECT_GE(reliable.stats().total_time, plain.stats().total_time);
  EXPECT_LT(static_cast<double>(reliable.stats().total_time),
            1.25 * static_cast<double>(plain.stats().total_time));
}

// A duplicating-but-lossless fabric WITHOUT the reliable layer: the sorter
// itself must absorb duplicates (distinct-source gathers, chunk dedup by
// rel_offset). Trailing duplicate copies can sit in mailboxes at the end,
// so the run opts into allow_undrained.
TEST(AppLevelDedup, DuplicatingFabricWithoutReliableLayer) {
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kExponential, 20000, p);
  net::FaultConfig fc;
  fc.duplicate_prob = 0.15;
  rt::ClusterConfig ccfg = faulty_cluster(p, fc, /*reliable=*/false);
  ccfg.allow_undrained = true;
  rt::Cluster<Msg> cluster(ccfg);
  Sorter sorter(cluster, chunky_sort_config());
  sorter.run(shards);
  verify_sorted(sorter, shards);

  std::uint64_t dup_chunks = 0;
  for (const auto& ms : sorter.stats().machines)
    dup_chunks += ms.duplicate_chunks;
  EXPECT_GT(cluster.fabric().total_duplicated(), 0u);
  EXPECT_GT(dup_chunks, 0u);
}

// Causal flow tracing over a faulty fabric: every frame that lands records
// a flow edge stamped with the sender's span id, and redelivery is labeled
// rather than double-counted. The invariant under reliable delivery: each
// span id resolves to EXACTLY ONE accepted (duplicate == false) data edge
// — retransmitted and fabric-duplicated copies that land after the first
// acceptance carry duplicate == true.
TEST(FlowTracing, EverySpanResolvesToExactlyOneAcceptedEdge) {
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kExponential, 20000, p);
  net::FaultConfig fc;
  fc.drop_prob = 0.05;
  fc.duplicate_prob = 0.05;
  rt::Cluster<Msg> cluster(faulty_cluster(p, fc));
  sim::Trace trace;
  Sorter sorter(cluster, chunky_sort_config());
  sorter.set_trace(&trace);
  sorter.run(shards);
  verify_sorted(sorter, shards);

  std::map<std::uint64_t, int> accepted_per_span;
  std::size_t retransmit_edges = 0, duplicate_edges = 0, ack_edges = 0;
  for (const auto& f : trace.flows()) {
    if (f.kind == sim::Trace::FlowKind::kAck) {
      ++ack_edges;
      continue;
    }
    EXPECT_GT(f.span_id, 0u);
    EXPECT_LE(f.send, f.recv);
    if (f.retransmit) ++retransmit_edges;
    if (f.duplicate) ++duplicate_edges;
    if (!f.duplicate) ++accepted_per_span[f.span_id];
  }
  for (const auto& [span, n] : accepted_per_span)
    EXPECT_EQ(n, 1) << "span " << span << " accepted " << n << " times";
  // The fabric's faults are visible in the causal record, not absorbed.
  EXPECT_GT(retransmit_edges, 0u);
  EXPECT_GT(duplicate_edges, 0u);
  EXPECT_GT(ack_edges, 0u);
  // Dedup'd arrivals never reach the sorter as data.
  for (const auto& ms : sorter.stats().machines)
    EXPECT_EQ(ms.duplicate_chunks, 0u);
}

// Retry budget: a fabric whose blackout never ends defeats retransmission;
// the sender must fail loudly instead of retrying forever.
TEST(ReliableDeath, ExhaustedRetryBudgetAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto doomed = [] {
    net::FaultConfig fc;
    fc.blackout_period = 1;
    fc.blackout_duration = 1;  // every message dropped, forever
    rt::ClusterConfig ccfg;
    ccfg.machines = 2;
    ccfg.threads_per_machine = 8;
    ccfg.net.faults = fc;
    ccfg.reliable.enabled = true;
    ccfg.reliable.max_attempts = 4;
    rt::Cluster<Msg> cluster(ccfg);
    cluster.run([&cluster](rt::Machine& m) -> sim::Task<void> {
      auto& comm = cluster.comm();
      if (m.rank() == 0) {
        // Braced-list payloads are named first (GCC 12 cannot keep an
        // initializer_list temporary alive across a suspension).
        std::vector<Key> keys{1, 2, 3};
        co_await comm.send(0, 1, /*tag=*/7, Msg::of_keys(std::move(keys)), 24);
      } else {
        co_await comm.recv(1, /*tag=*/7);
      }
    });
  };
  EXPECT_DEATH(doomed(), "retry budget");
}

// Satellite diagnostics: a deadlocked run names the blocked ranks and tags.
TEST(ClusterDiagnostics, QuiescenceFailureNamesBlockedRanksAndTags) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto deadlocked = [] {
    rt::ClusterConfig ccfg;
    ccfg.machines = 3;
    ccfg.threads_per_machine = 8;
    rt::Cluster<Msg> cluster(ccfg);
    cluster.run([&cluster](rt::Machine& m) -> sim::Task<void> {
      // Rank 2 waits on tag 9 but nobody ever sends to it.
      if (m.rank() == 2) co_await cluster.comm().recv(2, /*tag=*/9);
      co_return;
    });
  };
  EXPECT_DEATH(deadlocked(), "rank 2 waits on tag 9");
}

// Satellite diagnostics: stray (sent but never received) messages fail the
// run and are named.
TEST(ClusterDiagnostics, UndrainedMailboxesAreFlagged) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto leaky = [] {
    rt::ClusterConfig ccfg;
    ccfg.machines = 2;
    ccfg.threads_per_machine = 8;
    rt::Cluster<Msg> cluster(ccfg);
    cluster.run([&cluster](rt::Machine& m) -> sim::Task<void> {
      if (m.rank() == 0) {
        std::vector<Key> keys{42};
        co_await cluster.comm().send(0, 1, /*tag=*/5,
                                     Msg::of_keys(std::move(keys)), 8);
      }
      co_return;  // rank 1 never receives it
    });
  };
  EXPECT_DEATH(leaky(), "undrained mailboxes");
}

// total_pending counts exactly the unreceived messages.
TEST(ClusterDiagnostics, TotalPendingCountsStrays) {
  rt::ClusterConfig ccfg;
  ccfg.machines = 2;
  ccfg.threads_per_machine = 8;
  ccfg.allow_undrained = true;
  rt::Cluster<Msg> cluster(ccfg);
  EXPECT_EQ(cluster.comm().total_pending(), 0u);
  cluster.run([&cluster](rt::Machine& m) -> sim::Task<void> {
    if (m.rank() == 0) {
      std::vector<Key> a{1};
      co_await cluster.comm().send(0, 1, /*tag=*/5,
                                   Msg::of_keys(std::move(a)), 8);
      std::vector<Key> b{2};
      co_await cluster.comm().send(0, 1, /*tag=*/6,
                                   Msg::of_keys(std::move(b)), 8);
    }
    co_return;
  });
  EXPECT_EQ(cluster.comm().total_pending(), 2u);
}

// ---- Crash-stop chaos: rank failures and phase-level recovery ----------
//
// The recovery stack under test: deterministic crash schedule in the
// fabric, heartbeat failure detector, fail-fast reliable delivery, and the
// sorter's attempt-loop supervisor (abort the wounded attempt, regenerate
// the dead rank's shard, re-run on the survivors). Crash instants are
// aimed by fractions of a clean pilot run's duration so every sort phase
// of attempt 0 gets killed somewhere in the matrix.

rt::ClusterConfig recovery_cluster(std::size_t machines,
                                   const net::FaultConfig& faults) {
  rt::ClusterConfig cfg = faulty_cluster(machines, faults);
  cfg.reliable.fail_fast = true;
  cfg.detector.enabled = true;
  cfg.allow_undrained = true;  // aborted attempts strand frames by design
  return cfg;
}

SortConfig recovery_sort_config() {
  SortConfig cfg = chunky_sort_config();
  cfg.recovery.enabled = true;
  return cfg;
}

// Simulated duration of one clean run over the identical stack (detector
// heartbeats included), used to aim crash instants inside attempt 0.
sim::SimTime clean_recovery_total(const std::vector<std::vector<Key>>& shards) {
  rt::Cluster<Msg> cluster(recovery_cluster(shards.size(), {}));
  Sorter sorter(cluster, recovery_sort_config());
  sorter.run(shards);
  return sorter.stats().total_time;
}

class CrashChaos : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(CrashChaos, KilledRankRecoversToACorrectSort) {
  const auto [fraction, restart] = GetParam();
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kUniform, 20000, p);
  const sim::SimTime clean_total = clean_recovery_total(shards);
  ASSERT_GT(clean_total, 0);

  net::FaultConfig fc;
  const auto crash_at =
      static_cast<sim::SimTime>(fraction * static_cast<double>(clean_total));
  fc.crashes = {net::CrashEvent{
      2, crash_at, restart ? 2 * sim::kMillisecond : sim::SimTime{0}}};
  rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
  Sorter sorter(cluster, recovery_sort_config());
  // Datagen stands in for durable storage: the supervisor regenerates the
  // dead rank's input shard from its seed instead of reading a dead disk.
  sorter.set_shard_source([&shards](std::size_t r) { return shards[r]; });
  sorter.run(shards);  // audit_exchange asserts exactly-once internally
  verify_sorted(sorter, shards);

  const auto& rec = sorter.stats().recovery;
  EXPECT_GE(rec.recoveries, 1u);
  EXPECT_GE(rec.final_attempt, 1);
  EXPECT_GT(rec.wasted_work_ns, 0);
  EXPECT_GT(rec.time_to_recover_max_ns, 0);
  if (restart) {
    // The rebooted rank rejoins if it was back before attempt 1 started.
    EXPECT_GE(rec.final_members, 4u);
  } else {
    EXPECT_EQ(rec.final_members, 4u);
    EXPECT_TRUE(sorter.partitions()[2].empty());
    EXPECT_GE(rec.regenerated_shards, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EveryPhase, CrashChaos,
    ::testing::Combine(::testing::Values(0.05, 0.25, 0.45, 0.65, 0.9),
                       ::testing::Bool()));

TEST(CrashRecovery, MasterDeathPromotesTheNextSurvivor) {
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kNormal, 20000, p);
  const sim::SimTime clean_total = clean_recovery_total(shards);

  net::FaultConfig fc;
  fc.crashes = {net::CrashEvent{0, clean_total * 3 / 10}};
  rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
  Sorter sorter(cluster, recovery_sort_config());
  sorter.run(shards);
  verify_sorted(sorter, shards);

  const auto& rec = sorter.stats().recovery;
  EXPECT_GE(rec.recoveries, 1u);
  EXPECT_EQ(rec.final_members, 4u);
  EXPECT_TRUE(sorter.partitions()[0].empty());
  ASSERT_FALSE(sorter.final_members().empty());
  EXPECT_EQ(sorter.final_members().front(), 1u);  // promoted master
}

TEST(CrashRecovery, RankDeadBeforeTheRunIsExcludedWithoutARerun) {
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kExponential, 20000, p);
  net::FaultConfig fc;
  fc.crashes = {net::CrashEvent{2, 0}};  // dead before attempt 0 starts
  rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
  Sorter sorter(cluster, recovery_sort_config());
  sorter.run(shards);
  verify_sorted(sorter, shards);

  const auto& rec = sorter.stats().recovery;
  EXPECT_EQ(rec.recoveries, 0u);
  EXPECT_EQ(rec.final_attempt, 0);
  EXPECT_EQ(rec.final_members, 4u);
  EXPECT_GE(rec.regenerated_shards, 1u);
  EXPECT_EQ(rec.wasted_work_ns, 0);
  EXPECT_TRUE(sorter.partitions()[2].empty());
}

TEST(CrashRecovery, CrashDuringFabricFaultsStillRecovers) {
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kRightSkewed, 20000, p);
  const sim::SimTime clean_total = clean_recovery_total(shards);

  net::FaultConfig fc;
  fc.drop_prob = 0.02;
  fc.blackout_period = 2 * sim::kMillisecond;
  fc.blackout_duration = 200 * sim::kMicrosecond;
  fc.crashes = {net::CrashEvent{2, clean_total * 2 / 5}};
  rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
  Sorter sorter(cluster, recovery_sort_config());
  sorter.run(shards);
  verify_sorted(sorter, shards);
  EXPECT_GE(sorter.stats().recovery.recoveries, 1u);
  EXPECT_EQ(sorter.stats().recovery.final_members, 4u);
}

TEST(CrashRecovery, StragglerHedgingFiresWhileWaitingOnTheDeadRank) {
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kUniform, 20000, p);
  const sim::SimTime clean_total = clean_recovery_total(shards);

  net::FaultConfig fc;
  fc.crashes = {net::CrashEvent{2, clean_total * 8 / 10}};  // mid-exchange
  rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
  SortConfig scfg = recovery_sort_config();
  // Hedge deadline well below the detector timeout, so re-requests fire
  // while the survivors are still waiting rather than after the abort.
  scfg.recovery.hedge_floor = 1 * sim::kMillisecond;
  Sorter sorter(cluster, scfg);
  sorter.run(shards);
  verify_sorted(sorter, shards);
  EXPECT_GE(sorter.stats().recovery.hedged_rerequests, 1u);
}

TEST(CrashRecovery, IdenticalCrashSchedulesAreBitIdentical) {
  const std::size_t p = 5;
  auto run_once = [&]() {
    auto shards = make_shards(gen::Distribution::kUniform, 8000, p);
    const sim::SimTime clean_total = clean_recovery_total(shards);
    net::FaultConfig fc;
    fc.crashes = {net::CrashEvent{2, clean_total / 2}};
    rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
    Sorter sorter(cluster, recovery_sort_config());
    sorter.run(shards);
    return fingerprint(sorter);
  };
  EXPECT_EQ(run_once(), run_once());
}

// No-fault cost of the crash-tolerance stack: the detector's heartbeats
// stay under the 3% telemetry-style overhead gate, and the recovery
// machinery itself (deadline polling, ctrl tags, supervisor) is
// bit-identical to a detector-only run on a healthy fabric.
TEST(CrashRecovery, NoFaultOverheadStaysUnderTheGate) {
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kUniform, 20000, p);

  rt::ClusterConfig base_cfg = faulty_cluster(p, {});
  base_cfg.reliable.fail_fast = true;
  rt::Cluster<Msg> base_cluster(base_cfg);
  Sorter base(base_cluster, chunky_sort_config());
  base.run(shards);
  verify_sorted(base, shards);

  rt::Cluster<Msg> det_cluster(recovery_cluster(p, {}));
  Sorter det(det_cluster, chunky_sort_config());
  det.run(shards);
  verify_sorted(det, shards);
  EXPECT_LT(static_cast<double>(det.stats().total_time),
            1.03 * static_cast<double>(base.stats().total_time));

  rt::Cluster<Msg> rec_cluster(recovery_cluster(p, {}));
  Sorter rec(rec_cluster, recovery_sort_config());
  rec.run(shards);
  verify_sorted(rec, shards);
  EXPECT_EQ(fingerprint(rec), fingerprint(det));
  EXPECT_EQ(rec.stats().recovery.recoveries, 0u);
  EXPECT_EQ(rec.stats().recovery.final_members, p);
}

TEST(CrashRecoveryDeath, DoubleFailureBelowMinMembersIsUnrecoverable) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto doomed = [] {
    const std::size_t p = 4;
    auto shards = make_shards(gen::Distribution::kUniform, 8000, p);
    net::FaultConfig fc;
    fc.crashes = {net::CrashEvent{2, 0}, net::CrashEvent{3, 0}};
    rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
    SortConfig scfg = recovery_sort_config();
    scfg.recovery.min_members = 3;  // 2 survivors void the contract
    Sorter sorter(cluster, scfg);
    sorter.run(shards);
  };
  EXPECT_DEATH(doomed(), "unrecoverable sort: surviving membership");
}

TEST(CrashRecoveryDeath, ExhaustedRecoveryBudgetIsUnrecoverable) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto doomed = [] {
    const std::size_t p = 5;
    auto shards = make_shards(gen::Distribution::kUniform, 8000, p);
    const sim::SimTime clean_total = clean_recovery_total(shards);
    net::FaultConfig fc;
    fc.crashes = {net::CrashEvent{2, clean_total / 2}};
    rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
    SortConfig scfg = recovery_sort_config();
    scfg.recovery.max_recoveries = 0;  // the one failed attempt exhausts it
    Sorter sorter(cluster, scfg);
    sorter.run(shards);
  };
  EXPECT_DEATH(doomed(), "unrecoverable sort: recovery budget exhausted");
}

// ---- Crash-stop chaos under the non-baseline partition schemes ---------
//
// Histogram refinement adds a master-driven lockstep probe protocol to
// splitter selection, and two-level AMS adds a level-1 group exchange
// before the scoped phase-2 sort; a rank killed inside either must funnel
// into the same phase-level recovery: abort the attempt, regenerate the
// dead shard, re-run on survivors, and pass the exactly-once audit there.
// Crash instants are aimed by fractions of a clean pilot run (the
// EveryPhase convention) plus one histogram kill aimed directly inside the
// refinement window from the pilot's per-step wall times.

SortConfig scheme_recovery_config(PartitionScheme scheme, double epsilon) {
  SortConfig cfg = recovery_sort_config();
  cfg.partition = scheme;
  cfg.partition_epsilon = epsilon;
  return cfg;
}

// Clean pilot over the identical stack; returns the full sorter stats so
// callers can aim at per-step windows, not just the total.
SortStats<Key> clean_scheme_stats(const std::vector<std::vector<Key>>& shards,
                                  PartitionScheme scheme, double epsilon) {
  rt::Cluster<Msg> cluster(recovery_cluster(shards.size(), {}));
  Sorter sorter(cluster, scheme_recovery_config(scheme, epsilon));
  sorter.run(shards);
  return sorter.stats();
}

class SchemeCrash
    : public ::testing::TestWithParam<std::tuple<PartitionScheme, double>> {};

TEST_P(SchemeCrash, KilledRankRecoversUnderTheScheme) {
  const auto [scheme, fraction] = GetParam();
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kRightSkewed, 20000, p);
  const sim::SimTime clean_total =
      clean_scheme_stats(shards, scheme, 0.10).total_time;
  ASSERT_GT(clean_total, 0);

  net::FaultConfig fc;
  // Rank 3 is the second AMS group's master at p=5 — the nastiest victim.
  fc.crashes = {net::CrashEvent{
      3, static_cast<sim::SimTime>(fraction *
                                   static_cast<double>(clean_total))}};
  rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
  Sorter sorter(cluster, scheme_recovery_config(scheme, 0.10));
  sorter.set_shard_source([&shards](std::size_t r) { return shards[r]; });
  sorter.run(shards);  // audit_exchange asserts exactly-once internally
  verify_sorted(sorter, shards);

  const auto& rec = sorter.stats().recovery;
  EXPECT_GE(rec.recoveries, 1u);
  EXPECT_EQ(rec.final_members, 4u);
  EXPECT_TRUE(sorter.partitions()[3].empty());
  EXPECT_GE(rec.regenerated_shards, 1u);
}

// The 0.35/0.5 fractions land inside the level-1 group exchange and the
// phase-2 pipeline for AMS, and inside the probe rounds for histogram.
INSTANTIATE_TEST_SUITE_P(
    BothSchemes, SchemeCrash,
    ::testing::Combine(::testing::Values(PartitionScheme::kHistogramRefine,
                                         PartitionScheme::kTwoLevelAms),
                       ::testing::Values(0.15, 0.35, 0.5, 0.7)));

// Aimed shot: kill a member while the master is mid-refinement-round. The
// refinement window on the master's wall clock starts after its local sort
// + sampling and spans the splitter-select step; a tight epsilon keeps the
// window wide (more rounds).
TEST(SchemeCrash2, MidRefinementRoundKillRecovers) {
  const std::size_t p = 5;
  auto shards = make_shards(gen::Distribution::kZipf, 20000, p);
  const auto pilot = clean_scheme_stats(
      shards, PartitionScheme::kHistogramRefine, 0.01);
  ASSERT_GE(pilot.partition.rounds, 2u)
      << "pilot resolved without iterating; tighten epsilon";
  const auto& master = pilot.machines[0];
  const sim::SimTime refine_start =
      master.steps[Step::kLocalSort] + master.steps[Step::kSampling];
  const sim::SimTime crash_at =
      refine_start + master.steps[Step::kSplitterSelect] / 2;

  net::FaultConfig fc;
  fc.crashes = {net::CrashEvent{2, crash_at}};
  rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
  Sorter sorter(cluster,
                scheme_recovery_config(PartitionScheme::kHistogramRefine,
                                       0.01));
  sorter.set_shard_source([&shards](std::size_t r) { return shards[r]; });
  sorter.run(shards);
  verify_sorted(sorter, shards);
  EXPECT_GE(sorter.stats().recovery.recoveries, 1u);
  EXPECT_EQ(sorter.stats().recovery.final_members, 4u);
}

TEST(SchemeCrash2, SchemeCrashScheduleReplaysBitIdentically) {
  const std::size_t p = 5;
  auto run_once = [&](PartitionScheme scheme) {
    auto shards = make_shards(gen::Distribution::kRightSkewed, 8000, p);
    const sim::SimTime clean_total =
        clean_scheme_stats(shards, scheme, 0.10).total_time;
    net::FaultConfig fc;
    fc.crashes = {net::CrashEvent{3, clean_total * 2 / 5}};
    rt::Cluster<Msg> cluster(recovery_cluster(p, fc));
    Sorter sorter(cluster, scheme_recovery_config(scheme, 0.10));
    sorter.set_shard_source([&shards](std::size_t r) { return shards[r]; });
    sorter.run(shards);
    return fingerprint(sorter);
  };
  EXPECT_EQ(run_once(PartitionScheme::kHistogramRefine),
            run_once(PartitionScheme::kHistogramRefine));
  EXPECT_EQ(run_once(PartitionScheme::kTwoLevelAms),
            run_once(PartitionScheme::kTwoLevelAms));
}

TEST(CrashRecoveryDeath, RecoveryPrerequisitesAreChecked) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto doomed = [] {
    const std::size_t p = 3;
    auto shards = make_shards(gen::Distribution::kUniform, 3000, p);
    // Plain cluster: no reliable fail-fast layer, no failure detector.
    rt::Cluster<Msg> cluster(faulty_cluster(p, {}, /*reliable=*/false));
    Sorter sorter(cluster, recovery_sort_config());
    sorter.run(shards);
  };
  EXPECT_DEATH(doomed(), "recovery requires");
}

}  // namespace
}  // namespace pgxd::core
