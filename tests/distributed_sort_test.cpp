// Integration tests for the full PGX.D distributed sort pipeline: global
// sortedness, permutation preservation, provenance, load balance across all
// four Fig. 4 distributions, the investigator's effect, async vs BSP
// exchange, buffering, simultaneous sorts, and the query API.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "core/api.hpp"
#include "core/distributed_sort.hpp"
#include "core/sort_report.hpp"
#include "datagen/distributions.hpp"

namespace pgxd::core {
namespace {

using Key = std::uint64_t;
using Sorter = DistributedSorter<Key>;

rt::ClusterConfig test_cluster(std::size_t machines, unsigned threads = 8) {
  rt::ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = threads;
  return cfg;
}

std::vector<std::vector<Key>> make_shards(gen::Distribution dist,
                                          std::size_t total_n,
                                          std::size_t machines,
                                          std::uint64_t seed = 42,
                                          std::uint64_t domain = 1 << 20) {
  gen::DataGenConfig dcfg;
  dcfg.dist = dist;
  dcfg.domain = domain;
  dcfg.seed = seed;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, total_n, machines, r));
  return shards;
}

// Asserts the three core postconditions: (a) each partition sorted, (b)
// machine m's max <= machine m+1's min, (c) output is a permutation of the
// input, (d) provenance points back at the exact source element.
void verify_sorted(const Sorter& sorter,
                   const std::vector<std::vector<Key>>& input) {
  const auto& parts = sorter.partitions();

  // (a) + (b): global order across machines.
  const Key* prev_max = nullptr;
  for (const auto& part : parts) {
    for (std::size_t i = 1; i < part.size(); ++i)
      ASSERT_LE(part[i - 1].key, part[i].key);
    if (!part.empty()) {
      if (prev_max != nullptr) {
        ASSERT_LE(*prev_max, part.front().key);
      }
      prev_max = &part.back().key;
    }
  }

  // (c): permutation.
  std::vector<Key> all_in, all_out;
  for (const auto& shard : input) all_in.insert(all_in.end(), shard.begin(), shard.end());
  for (const auto& part : parts)
    for (const auto& item : part) all_out.push_back(item.key);
  ASSERT_EQ(all_in.size(), all_out.size());
  std::sort(all_in.begin(), all_in.end());
  std::sort(all_out.begin(), all_out.end());
  ASSERT_EQ(all_in, all_out);

  // (d): provenance — prev_index refers to the previous machine's locally
  // *sorted* sequence.
  std::vector<std::vector<Key>> sorted_shards = input;
  for (auto& shard : sorted_shards) std::sort(shard.begin(), shard.end());
  for (const auto& part : parts)
    for (const auto& item : part) {
      ASSERT_LT(item.prov.prev_machine, input.size());
      const auto& shard = sorted_shards[item.prov.prev_machine];
      ASSERT_LT(item.prov.prev_index, shard.size());
      ASSERT_EQ(shard[item.prov.prev_index], item.key);
    }
}

class DistributionSweep
    : public ::testing::TestWithParam<std::tuple<gen::Distribution, std::size_t>> {};

TEST_P(DistributionSweep, SortsCorrectlyAndBalanced) {
  const auto [dist, machines] = GetParam();
  const std::size_t total_n = 40000;
  auto shards = make_shards(dist, total_n, machines);
  const auto input = shards;

  rt::Cluster<Sorter::Msg> cluster(test_cluster(machines));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(std::move(shards));

  verify_sorted(sorter, input);
  const auto& st = sorter.stats();
  EXPECT_GT(st.total_time, 0);
  // Paper Table II: max share within a small margin of ideal 1/p. Allow 15%
  // relative imbalance at these small test sizes.
  EXPECT_LT(st.balance.imbalance, 1.15)
      << gen::name(dist) << " p=" << machines;
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionSweep,
    ::testing::Combine(::testing::Values(gen::Distribution::kUniform,
                                         gen::Distribution::kNormal,
                                         gen::Distribution::kRightSkewed,
                                         gen::Distribution::kExponential),
                       ::testing::Values(2, 5, 10)));

TEST(DistributedSort, SingleMachineDegenerate) {
  auto shards = make_shards(gen::Distribution::kUniform, 5000, 1);
  const auto input = shards;
  rt::Cluster<Sorter::Msg> cluster(test_cluster(1));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(std::move(shards));
  verify_sorted(sorter, input);
}

TEST(DistributedSort, EmptyInput) {
  std::vector<std::vector<Key>> shards(4);
  rt::Cluster<Sorter::Msg> cluster(test_cluster(4));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(shards);
  for (const auto& part : sorter.partitions()) EXPECT_TRUE(part.empty());
}

TEST(DistributedSort, TinyInputFewerElementsThanMachines) {
  std::vector<std::vector<Key>> shards(6);
  shards[2] = {9};
  shards[4] = {3};
  const auto input = shards;
  rt::Cluster<Sorter::Msg> cluster(test_cluster(6));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(std::move(shards));
  verify_sorted(sorter, input);
}

TEST(DistributedSort, AllKeysIdentical) {
  std::vector<std::vector<Key>> shards(8, std::vector<Key>(2000, 77));
  const auto input = shards;
  rt::Cluster<Sorter::Msg> cluster(test_cluster(8));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(std::move(shards));
  verify_sorted(sorter, input);
  // The investigator must still spread one giant duplicate run evenly.
  EXPECT_LT(sorter.stats().balance.imbalance, 1.05);
}

TEST(DistributedSort, InvestigatorOffCollapsesOnDuplicates) {
  // Same all-identical workload without the investigator: everything lands
  // on one machine (Fig. 3b).
  std::vector<std::vector<Key>> shards(8, std::vector<Key>(2000, 77));
  SortConfig cfg;
  cfg.use_investigator = false;
  rt::Cluster<Sorter::Msg> cluster(test_cluster(8));
  Sorter sorter(cluster, cfg);
  sorter.run(std::move(shards));
  EXPECT_GT(sorter.stats().balance.imbalance, 7.0);
  EXPECT_EQ(sorter.stats().balance.min_size, 0u);
}

TEST(DistributedSort, InvestigatorImprovesSkewedBalance) {
  const std::size_t machines = 10;
  auto shards = make_shards(gen::Distribution::kRightSkewed, 50000, machines,
                            7);  // 70% of keys duplicate one value

  SortConfig with, without;
  without.use_investigator = false;
  rt::Cluster<Sorter::Msg> c1(test_cluster(machines));
  Sorter s1(c1, with);
  s1.run(shards);
  rt::Cluster<Sorter::Msg> c2(test_cluster(machines));
  Sorter s2(c2, without);
  s2.run(shards);

  EXPECT_LT(s1.stats().balance.imbalance, 1.2);
  EXPECT_GT(s2.stats().balance.imbalance, s1.stats().balance.imbalance * 1.5);
}

TEST(DistributedSort, DiscreteParetoHeavySingleValues) {
  // Harder than the paper's datasets: a discrete Pareto where *several*
  // distinct values each hold 8-29% of the mass. Duplicated-splitter
  // division alone cannot fix a heavy value that meets only one splitter;
  // the load-aware clamp (every boundary placed at its target inside its
  // feasible interval) keeps this balanced too.
  for (std::size_t machines : {5u, 10u, 16u}) {
    std::vector<std::vector<Key>> shards(machines);
    for (std::size_t r = 0; r < machines; ++r) {
      Rng rng(derive_seed(7, r));
      shards[r].resize(40000 / machines);
      for (auto& k : shards[r]) {
        double u = rng.uniform();
        while (u <= 0) u = rng.uniform();
        k = static_cast<Key>(std::min(std::pow(u, -2.0) - 1.0, 1e6));
      }
    }
    const auto input = shards;
    rt::Cluster<Sorter::Msg> cluster(test_cluster(machines));
    Sorter sorter(cluster, SortConfig{});
    sorter.run(std::move(shards));
    verify_sorted(sorter, input);
    EXPECT_LT(sorter.stats().balance.imbalance, 1.08) << "p=" << machines;
  }
}

TEST(DistributedSort, UnequalShardSizesStayBalanced) {
  // One machine holds 8x the data of another (e.g. a graph partition
  // balanced by edges, not vertices). Weighted sampling must still produce
  // balanced destinations.
  const std::size_t machines = 6;
  gen::DataGenConfig dcfg;
  dcfg.seed = 13;
  std::vector<std::vector<Key>> shards;
  Rng rng(3);
  for (std::size_t r = 0; r < machines; ++r) {
    const std::size_t size = 4000 * (1 + r * 2);  // 4k .. 44k
    std::vector<Key> shard(size);
    for (auto& k : shard) k = rng.bounded(1 << 20);
    shards.push_back(std::move(shard));
  }
  const auto input = shards;
  rt::Cluster<Sorter::Msg> cluster(test_cluster(machines));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(std::move(shards));
  verify_sorted(sorter, input);
  EXPECT_LT(sorter.stats().balance.imbalance, 1.1);
}

TEST(DistributedSort, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t& checksum) {
    auto shards = make_shards(gen::Distribution::kExponential, 20000, 6);
    rt::Cluster<Sorter::Msg> cluster(test_cluster(6));
    Sorter sorter(cluster, SortConfig{});
    sorter.run(std::move(shards));
    checksum = 0;
    for (const auto& part : sorter.partitions())
      for (const auto& item : part)
        checksum = checksum * 1099511628211ULL + item.key;
    return sorter.stats().total_time;
  };
  std::uint64_t sum1 = 0, sum2 = 0;
  const auto t1 = run_once(sum1);
  const auto t2 = run_once(sum2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(sum1, sum2);
}

TEST(DistributedSort, StepTimingsAllPopulated) {
  auto shards = make_shards(gen::Distribution::kNormal, 40000, 4);
  rt::Cluster<Sorter::Msg> cluster(test_cluster(4));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(std::move(shards));
  const auto& steps = sorter.stats().steps_max;
  EXPECT_GT(steps[Step::kLocalSort], 0);
  EXPECT_GT(steps[Step::kSampling], 0);
  EXPECT_GT(steps[Step::kSplitterSelect], 0);
  EXPECT_GT(steps[Step::kPartitionPlan], 0);
  EXPECT_GT(steps[Step::kExchange], 0);
  EXPECT_GT(steps[Step::kFinalMerge], 0);
  // Steps account for (approximately) the whole run.
  EXPECT_GE(steps.total(), sorter.stats().total_time * 9 / 10);
}

TEST(DistributedSort, AsyncExchangeNoSlowerThanBsp) {
  auto shards = make_shards(gen::Distribution::kUniform, 60000, 8);
  SortConfig async_cfg, sync_cfg;
  sync_cfg.async_exchange = false;
  rt::Cluster<Sorter::Msg> c1(test_cluster(8));
  Sorter s1(c1, async_cfg);
  s1.run(shards);
  rt::Cluster<Sorter::Msg> c2(test_cluster(8));
  Sorter s2(c2, sync_cfg);
  s2.run(shards);
  verify_sorted(s2, shards);
  EXPECT_LE(s1.stats().total_time, s2.stats().total_time);
}

TEST(DistributedSort, UnbufferedExchangeStillCorrect) {
  auto shards = make_shards(gen::Distribution::kRightSkewed, 30000, 5);
  const auto input = shards;
  SortConfig cfg;
  cfg.buffered_exchange = false;
  rt::Cluster<Sorter::Msg> cluster(test_cluster(5));
  Sorter sorter(cluster, cfg);
  sorter.run(std::move(shards));
  verify_sorted(sorter, input);
}

TEST(DistributedSort, NaiveFinalMergeAblationCorrectButSlower) {
  auto shards = make_shards(gen::Distribution::kUniform, 60000, 8);
  SortConfig balanced, naive;
  naive.balanced_final_merge = false;
  rt::Cluster<Sorter::Msg> c1(test_cluster(8, /*threads=*/32));
  Sorter s1(c1, balanced);
  s1.run(shards);
  rt::Cluster<Sorter::Msg> c2(test_cluster(8, /*threads=*/32));
  Sorter s2(c2, naive);
  s2.run(shards);
  verify_sorted(s2, shards);
  EXPECT_LT(s1.stats().steps_max[Step::kFinalMerge],
            s2.stats().steps_max[Step::kFinalMerge]);
}

TEST(DistributedSort, SampleFactorControlsSampleCount) {
  auto shards = make_shards(gen::Distribution::kUniform, 100000, 4);
  SortConfig small_cfg, big_cfg;
  small_cfg.sample_factor = 0.04;
  big_cfg.sample_factor = 1.0;
  rt::Cluster<Sorter::Msg> c1(test_cluster(4));
  Sorter s1(c1, small_cfg);
  s1.run(shards);
  rt::Cluster<Sorter::Msg> c2(test_cluster(4));
  Sorter s2(c2, big_cfg);
  s2.run(shards);
  EXPECT_LT(s1.stats().machines[1].sample_count,
            s2.stats().machines[1].sample_count);
  // X = 256KB/4 = 64KB -> 8192 u64 samples per machine at factor 1.
  EXPECT_EQ(s2.stats().machines[1].sample_count, 8192u);
}

TEST(DistributedSort, WireBytesAccounted) {
  auto shards = make_shards(gen::Distribution::kUniform, 40000, 4);
  rt::Cluster<Sorter::Msg> cluster(test_cluster(4));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(std::move(shards));
  const auto& st = sorter.stats();
  EXPECT_GT(st.wire_bytes_total, 0u);
  EXPECT_GT(st.wire_bytes_samples, 0u);
  EXPECT_LT(st.wire_bytes_samples, st.wire_bytes_total);
  // Data traffic: ~3/4 of the 40000 elements move at 8 key-bytes each
  // (provenance is reconstructed receiver-side, not shipped).
  const std::uint64_t data_bytes = st.wire_bytes_total - st.wire_bytes_samples;
  EXPECT_GT(data_bytes, 40000ull * 8 / 2);
  EXPECT_LT(data_bytes, 40000ull * 12);
}

TEST(DistributedSort, MemoryAccountingPopulated) {
  auto shards = make_shards(gen::Distribution::kUniform, 40000, 4);
  rt::Cluster<Sorter::Msg> cluster(test_cluster(4));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(std::move(shards));
  for (const auto& ms : sorter.stats().machines) {
    EXPECT_GT(ms.peak_persistent_bytes, 0u);
    EXPECT_GT(ms.peak_temp_bytes, 0u);
  }
}

TEST(DistributedSort, MoreMachinesReduceTotalTime) {
  // Strong scaling on a fixed problem: 16 machines beat 4.
  auto run_with = [](std::size_t p) {
    auto shards = make_shards(gen::Distribution::kUniform, 1 << 18, p);
    rt::Cluster<Sorter::Msg> cluster(test_cluster(p, /*threads=*/32));
    Sorter sorter(cluster, SortConfig{});
    sorter.run(std::move(shards));
    return sorter.stats().total_time;
  };
  EXPECT_LT(run_with(16), run_with(4));
}

TEST(DistributedSort, SimultaneousSortsBothCorrect) {
  const std::size_t machines = 4;
  auto a = make_shards(gen::Distribution::kUniform, 20000, machines, 1);
  auto b = make_shards(gen::Distribution::kExponential, 15000, machines, 2);
  rt::Cluster<Sorter::Msg> cluster(test_cluster(machines));
  Sorter s1(cluster, SortConfig{}, /*sort_id=*/0);
  Sorter s2(cluster, SortConfig{}, /*sort_id=*/1);
  s1.set_input(a);
  s2.set_input(b);
  const auto elapsed = sort_simultaneously<Key>(
      cluster, {&s1, &s2});
  EXPECT_GT(elapsed, 0);
  verify_sorted(s1, a);
  verify_sorted(s2, b);
}

TEST(DistributedSort, SimultaneousCheaperThanSequentialRuns) {
  const std::size_t machines = 4;
  auto a = make_shards(gen::Distribution::kUniform, 30000, machines, 1);
  auto b = make_shards(gen::Distribution::kNormal, 30000, machines, 2);

  rt::Cluster<Sorter::Msg> shared(test_cluster(machines));
  Sorter s1(shared, SortConfig{}, 0);
  Sorter s2(shared, SortConfig{}, 1);
  s1.set_input(a);
  s2.set_input(b);
  const auto together = sort_simultaneously<Key>(
      shared, {&s1, &s2});

  rt::Cluster<Sorter::Msg> c1(test_cluster(machines));
  Sorter t1(c1, SortConfig{});
  t1.run(a);
  rt::Cluster<Sorter::Msg> c2(test_cluster(machines));
  Sorter t2(c2, SortConfig{});
  t2.run(b);
  // Interleaving overlaps one sort's communication with the other's compute.
  EXPECT_LT(together, t1.stats().total_time + t2.stats().total_time);
}

// The sorter is generic over the key type: a composite struct key with a
// custom comparator (sort by score, tie-break by id).
struct ScoredId {
  std::uint32_t score = 0;
  std::uint32_t id = 0;
  friend bool operator==(const ScoredId&, const ScoredId&) = default;
};
struct ScoredLess {
  bool operator()(const ScoredId& a, const ScoredId& b) const {
    return a.score != b.score ? a.score < b.score : a.id < b.id;
  }
};

TEST(DistributedSort, StructKeysWithCustomComparator) {
  const std::size_t machines = 5;
  Rng rng(77);
  std::vector<std::vector<ScoredId>> shards(machines);
  std::uint32_t next_id = 0;
  for (auto& shard : shards) {
    shard.resize(8000);
    for (auto& rec : shard)
      rec = ScoredId{static_cast<std::uint32_t>(rng.bounded(100)), next_id++};
  }
  std::vector<ScoredId> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end(), ScoredLess{});

  rt::Cluster<SortMsg<ScoredId>> cluster(test_cluster(machines));
  DistributedSorter<ScoredId, ScoredLess> sorter(cluster, SortConfig{});
  sorter.run(shards);

  std::vector<ScoredId> got;
  for (const auto& part : sorter.partitions())
    for (const auto& item : part) got.push_back(item.key);
  ASSERT_EQ(got.size(), all.size());
  EXPECT_EQ(got, all);  // composite keys are unique: total order is exact
  EXPECT_LT(sorter.stats().balance.imbalance, 1.1);
}

class JitterSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JitterSweep, CorrectUnderMessageReordering) {
  // Latency jitter reorders message arrivals (chunks from one sender can
  // arrive out of order); the exchange must place data by explicit offsets
  // and remain correct under any interleaving.
  auto shards = make_shards(gen::Distribution::kRightSkewed, 40000, 6);
  const auto input = shards;
  rt::ClusterConfig ccfg = test_cluster(6);
  ccfg.net.jitter_ns = 20 * sim::kMicrosecond;  // >> base latency
  ccfg.net.jitter_seed = GetParam();
  rt::Cluster<Sorter::Msg> cluster(ccfg);
  SortConfig cfg;
  cfg.read_buffer_bytes = 4096;  // many small chunks: maximal reordering
  Sorter sorter(cluster, cfg);
  sorter.run(std::move(shards));
  verify_sorted(sorter, input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterSweep,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(DistributedSort, PaperScaleMachineCount) {
  // The paper's largest configuration: 52 machines, 32 threads each.
  const std::size_t machines = 52;
  auto shards = make_shards(gen::Distribution::kExponential, 1 << 18, machines);
  const auto input = shards;
  rt::Cluster<Sorter::Msg> cluster(test_cluster(machines, /*threads=*/32));
  Sorter sorter(cluster, SortConfig{});
  sorter.run(std::move(shards));
  verify_sorted(sorter, input);
  EXPECT_LT(sorter.stats().balance.imbalance, 1.2);
}

TEST(DistributedSort, FloatingPointKeys) {
  const std::size_t machines = 4;
  Rng rng(19);
  std::vector<std::vector<double>> shards(machines);
  for (auto& shard : shards) {
    shard.resize(6000);
    for (auto& k : shard) k = rng.normal(0.0, 1e6);  // negative keys included
  }
  std::vector<double> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());

  rt::Cluster<SortMsg<double>> cluster(test_cluster(machines));
  DistributedSorter<double> sorter(cluster, SortConfig{});
  sorter.run(shards);

  std::vector<double> got;
  for (const auto& part : sorter.partitions())
    for (const auto& item : part) got.push_back(item.key);
  EXPECT_EQ(got, all);
  EXPECT_LT(sorter.stats().balance.imbalance, 1.1);
}

TEST(DistributedSort, AlmostSortedInputMovesLittleData) {
  // A globally sorted ramp sharded contiguously: nearly every key already
  // lives on its destination machine, so the exchange ships almost nothing.
  const std::size_t machines = 8;
  std::vector<std::vector<Key>> sorted_shards, random_shards;
  for (std::size_t r = 0; r < machines; ++r) {
    sorted_shards.push_back(
        gen::almost_sorted_shard(80000, 1 << 20, 0.0, 3, machines, r));
    random_shards.push_back(
        gen::almost_sorted_shard(80000, 1 << 20, 1.0, 3, machines, r));
  }
  rt::Cluster<Sorter::Msg> c1(test_cluster(machines));
  Sorter s1(c1, SortConfig{});
  s1.run(sorted_shards);
  rt::Cluster<Sorter::Msg> c2(test_cluster(machines));
  Sorter s2(c2, SortConfig{});
  s2.run(random_shards);
  verify_sorted(s1, sorted_shards);
  // Sorted input sends a small fraction of what shuffled input sends.
  std::uint64_t sent_sorted = 0, sent_random = 0;
  for (const auto& ms : s1.stats().machines) sent_sorted += ms.sent_elements;
  for (const auto& ms : s2.stats().machines) sent_random += ms.sent_elements;
  EXPECT_LT(sent_sorted, sent_random / 5);
}

TEST(DistributedSort, DescendingComparator) {
  auto shards = make_shards(gen::Distribution::kUniform, 20000, 4);
  rt::Cluster<SortMsg<Key>> cluster(test_cluster(4));
  DistributedSorter<Key, std::greater<Key>> sorter(cluster, SortConfig{});
  sorter.run(shards);
  const auto& parts = sorter.partitions();
  const Key* prev_min = nullptr;
  std::size_t total = 0;
  for (const auto& part : parts) {
    for (std::size_t i = 1; i < part.size(); ++i)
      ASSERT_GE(part[i - 1].key, part[i].key);
    if (!part.empty()) {
      if (prev_min != nullptr) {
        ASSERT_GE(*prev_min, part.front().key);
      }
      prev_min = &part.back().key;
    }
    total += part.size();
  }
  EXPECT_EQ(total, 20000u);
}

// --- SortedSequence API ------------------------------------------------------

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    shards_ = make_shards(gen::Distribution::kUniform, 20000, 4, 11,
                          /*domain=*/500);  // duplicates guaranteed
    cluster_ = std::make_unique<rt::Cluster<Sorter::Msg>>(test_cluster(4));
    sorter_ = std::make_unique<Sorter>(*cluster_, SortConfig{});
    sorter_->run(shards_);
    seq_ = std::make_unique<SortedSequence<Key>>(sorter_->partitions());
  }

  std::vector<std::vector<Key>> shards_;
  std::unique_ptr<rt::Cluster<Sorter::Msg>> cluster_;
  std::unique_ptr<Sorter> sorter_;
  std::unique_ptr<SortedSequence<Key>> seq_;
};

TEST_F(ApiTest, SizeMatchesInput) { EXPECT_EQ(seq_->size(), 20000u); }

TEST_F(ApiTest, GlobalIndexingIsSorted) {
  for (std::uint64_t i = 1; i < seq_->size(); i += 97)
    EXPECT_LE(seq_->at(i - 1).key, seq_->at(i).key);
  EXPECT_LE(seq_->at(0).key, seq_->at(seq_->size() - 1).key);
}

TEST_F(ApiTest, FindLocatesFirstOccurrence) {
  // Take an existing key from the middle.
  const Key key = seq_->at(10000).key;
  const auto loc = seq_->find(key);
  ASSERT_TRUE(loc.has_value());
  const auto& item = sorter_->partitions()[loc->machine][loc->index];
  EXPECT_EQ(item.key, key);
  // It is the first occurrence: predecessor (if any) is strictly smaller.
  const auto [l, global] = seq_->lower_bound(key);
  EXPECT_EQ(l, *loc);
  if (global > 0) {
    EXPECT_LT(seq_->at(global - 1).key, key);
  }
}

TEST_F(ApiTest, FindMissingReturnsNullopt) {
  // Domain is [0, 500); 10000 is absent.
  EXPECT_FALSE(seq_->find(10000).has_value());
}

TEST_F(ApiTest, CountMatchesBruteForce) {
  std::map<Key, std::uint64_t> truth;
  for (const auto& shard : shards_)
    for (auto k : shard) ++truth[k];
  for (Key k : {Key{0}, Key{100}, Key{250}, Key{499}}) {
    const auto expect = truth.count(k) ? truth[k] : 0;
    EXPECT_EQ(seq_->count(k), expect) << "key " << k;
  }
}

TEST_F(ApiTest, TopKDescending) {
  const auto top = seq_->top_k(100);
  ASSERT_EQ(top.size(), 100u);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].key, top[i].key);
  EXPECT_EQ(top[0].key, seq_->at(seq_->size() - 1).key);
}

TEST_F(ApiTest, MachineRangesAscend) {
  std::optional<Key> prev_hi;
  for (std::size_t m = 0; m < seq_->machines(); ++m) {
    const auto range = seq_->machine_range(m);
    if (!range) continue;
    EXPECT_LE(range->first, range->second);
    if (prev_hi) {
      EXPECT_LE(*prev_hi, range->first);
    }
    prev_hi = range->second;
  }
}

// --------------------------------------------------------------- SortReport

// Table II's headline result on the right-skewed distribution: per-rank load
// stays within 1% of uniform (max/min <= 1.01) at p=10, and the flight
// recorder reports it that way.
TEST(SortReport, RightSkewedLoadMaxOverMinWithinOnePercent) {
  const std::size_t machines = 10;
  const std::size_t total_n = 100000;
  auto shards = make_shards(gen::Distribution::kRightSkewed, total_n, machines);

  rt::Cluster<Sorter::Msg> cluster(test_cluster(machines));
  SortConfig cfg;
  cfg.telemetry = true;
  Sorter sorter(cluster, cfg);
  sorter.run(std::move(shards));

  SortRunInfo info;
  info.distribution = "right-skewed";
  info.n = total_n;
  info.seed = 42;
  const SortReport rep = build_sort_report(sorter, std::move(info));

  EXPECT_EQ(rep.run.machines, machines);
  EXPECT_EQ(rep.items.total, total_n);
  EXPECT_LE(rep.items.max_over_min, 1.01);
  EXPECT_GE(rep.items.max_over_min, 1.0);
  EXPECT_EQ(rep.bytes.total, total_n * Sorter::kStoredBytesPerItem);
  EXPECT_DOUBLE_EQ(rep.bytes.max_over_min, rep.items.max_over_min);
  // Splitter boundaries track the ideal p-quantiles to the same tolerance.
  EXPECT_EQ(rep.splitters.boundary_error.size(), machines - 1);
  EXPECT_LE(rep.splitters.max_error, 0.01);
}

// The report covers every Fig. 7 step by display name, the timings are
// internally consistent, and the telemetry counters cross-check against the
// raw SortStats.
TEST(SortReport, CoversAllStepsAndMatchesStats) {
  const std::size_t machines = 4;
  const std::size_t total_n = 20000;
  auto shards = make_shards(gen::Distribution::kExponential, total_n, machines);

  rt::Cluster<Sorter::Msg> cluster(test_cluster(machines));
  SortConfig cfg;
  cfg.telemetry = true;
  Sorter sorter(cluster, cfg);
  sorter.run(std::move(shards));
  const SortReport rep = build_sort_report(sorter, SortRunInfo{});

  ASSERT_EQ(rep.phases.size(), kStepCount);
  for (std::size_t i = 0; i < kStepCount; ++i) {
    const Step s = static_cast<Step>(i);
    EXPECT_EQ(rep.phases[i].name, step_name(s));
    EXPECT_LE(rep.phases[i].min_ns, rep.phases[i].mean_ns);
    EXPECT_LE(rep.phases[i].mean_ns, static_cast<double>(rep.phases[i].max_ns));
    EXPECT_EQ(rep.phases[i].max_ns, sorter.stats().steps_max[s]);
  }
  EXPECT_EQ(rep.total_time_ns, sorter.stats().total_time);

  // The merged registry agrees with the raw stats and the fabric.
  const auto& m = rep.metrics;
  EXPECT_EQ(m.counter_value("sort.load.items"), total_n);
  std::uint64_t sent = 0;
  for (const auto& ms : sorter.stats().machines) sent += ms.sent_elements;
  EXPECT_EQ(m.counter_value("sort.exchange.items_sent"), sent);
  EXPECT_GT(rep.network.bytes_sent, 0u);
  EXPECT_EQ(rep.network.messages_dropped, 0u);
  EXPECT_GT(rep.pool.leases, 0u);
  EXPECT_DOUBLE_EQ(
      rep.pool.hit_rate,
      static_cast<double>(rep.pool.reuses) / static_cast<double>(rep.pool.leases));

  // And the JSON serialization is a complete, non-trivial document.
  const std::string json = rep.to_json();
  for (const char* needle :
       {"\"phases\"", "\"local-sort\"", "\"send/receive\"", "\"final-merge\"",
        "\"load\"", "\"splitters\"", "\"network\"", "\"pool\"", "\"metrics\""})
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
}

// Telemetry off: the sort still runs, per-rank registries stay empty, and
// the report's registry-backed sections read zero while the stats-backed
// sections stay populated.
TEST(SortReport, TelemetryOffLeavesRegistriesEmpty) {
  const std::size_t machines = 3;
  auto shards = make_shards(gen::Distribution::kUniform, 9000, machines);
  const auto input = shards;

  rt::Cluster<Sorter::Msg> cluster(test_cluster(machines));
  SortConfig cfg;
  cfg.telemetry = false;
  Sorter sorter(cluster, cfg);
  sorter.run(std::move(shards));
  verify_sorted(sorter, input);

  for (std::size_t r = 0; r < machines; ++r)
    EXPECT_TRUE(sorter.metrics(r).counters().empty()) << "rank " << r;
  const SortReport rep = build_sort_report(sorter, SortRunInfo{});
  EXPECT_EQ(rep.network.bytes_sent, 0u);
  EXPECT_EQ(rep.items.total, 9000u);
  EXPECT_GT(rep.total_time_ns, 0);
}

}  // namespace
}  // namespace pgxd::core
