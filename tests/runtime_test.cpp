// Tests for the runtime layer: cost model, memory tracker, buffered writer
// (data-manager request buffers), comm manager, and the cluster harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "runtime/buffered_writer.hpp"
#include "runtime/cluster.hpp"
#include "runtime/comm.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/machine.hpp"
#include "runtime/memory.hpp"

namespace pgxd::rt {
namespace {

// --- CostModel ------------------------------------------------------------

TEST(CostModel, MonotoneInN) {
  CostModel m;
  EXPECT_LT(m.sort_time(1000), m.sort_time(10000));
  EXPECT_LT(m.merge_time(1000), m.merge_time(10000));
  EXPECT_EQ(m.sort_time(0), 0);
  EXPECT_EQ(m.sort_time(1), 0);
}

TEST(CostModel, ParallelSpeedsUp) {
  CostModel m;
  const sim::SimTime serial = m.sort_time(1 << 20);
  const sim::SimTime p8 = m.parallel(serial, 8);
  const sim::SimTime p32 = m.parallel(serial, 32);
  EXPECT_LT(p8, serial);
  EXPECT_LT(p32, p8);
  // Sublinear: 32 threads give less than 32x.
  EXPECT_GT(p32, serial / 32);
}

TEST(CostModel, EffectiveWorkers) {
  CostModel m;
  m.parallel_efficiency = 0.5;
  EXPECT_DOUBLE_EQ(m.effective_workers(1), 1.0);
  EXPECT_DOUBLE_EQ(m.effective_workers(2), 1.5);
  EXPECT_DOUBLE_EQ(m.effective_workers(32), 16.5);
}

TEST(CostModel, BalancedMergeLevels) {
  CostModel m;
  m.task_overhead_ns = 0;
  // 8 runs -> 3 levels; 2 runs -> 1 level; time scales with level count.
  const auto t2 = m.balanced_merge_time(1 << 20, 2, 1);
  const auto t8 = m.balanced_merge_time(1 << 20, 8, 1);
  EXPECT_NEAR(static_cast<double>(t8), 3.0 * static_cast<double>(t2), 3.0);
  EXPECT_EQ(m.balanced_merge_time(1 << 20, 1, 8), 0);
}

TEST(CostModel, BalancedBeatsNaiveKwayForManyRuns) {
  CostModel m;
  // With 32 runs and 32 threads, the parallel Fig. 2 tree must beat one
  // sequential 32-way heap merge.
  EXPECT_LT(m.balanced_merge_time(1 << 22, 32, 32),
            m.naive_kway_merge_time(1 << 22, 32));
}

TEST(CostModel, LocalParallelSortScalesWithThreads) {
  CostModel m;
  const auto t1 = m.local_parallel_sort_time(1 << 22, 1);
  const auto t32 = m.local_parallel_sort_time(1 << 22, 32);
  EXPECT_LT(t32, t1);
}

TEST(CostModel, AdaptiveSortTime) {
  CostModel m;
  // Fully sorted input (one run) costs a scan plus one merge level floor;
  // more runs cost more, approaching the comparison-sort regime.
  const auto sorted_cost = m.adaptive_sort_time(1 << 20, 1);
  const auto few_runs = m.adaptive_sort_time(1 << 20, 8);
  const auto many_runs = m.adaptive_sort_time(1 << 20, 1 << 15);
  EXPECT_LT(sorted_cost, few_runs);
  EXPECT_LT(few_runs, many_runs);
  // With n/minrun runs, adaptive cost lands near the full sort cost.
  EXPECT_GT(many_runs * 2, m.sort_time(1 << 20));
  EXPECT_EQ(m.adaptive_sort_time(0, 1), 0);
  EXPECT_EQ(m.adaptive_sort_time(1, 5), 0);
}

TEST(CostModel, CalibrateProducesPositiveConstants) {
  const CostModel m = calibrate(1 << 17);
  EXPECT_GT(m.sort_ns_per_elem_log, 0.0);
  EXPECT_GT(m.merge_ns_per_elem, 0.0);
  EXPECT_GT(m.copy_ns_per_elem, 0.0);
  EXPECT_GT(m.search_ns_per_probe, 0.0);
  // Sanity: constants land within two orders of magnitude of the defaults.
  EXPECT_LT(m.sort_ns_per_elem_log, 100.0);
  EXPECT_LT(m.merge_ns_per_elem, 160.0);
}

// --- MemoryTracker ------------------------------------------------------------

TEST(MemoryTracker, TracksPeaksSeparately) {
  MemoryTracker mem;
  mem.alloc_persistent(100);
  mem.alloc_temp(50);
  mem.alloc_temp(30);
  mem.free_temp(50);
  mem.alloc_persistent(20);
  EXPECT_EQ(mem.persistent(), 120u);
  EXPECT_EQ(mem.temp(), 30u);
  EXPECT_EQ(mem.peak_persistent(), 120u);
  EXPECT_EQ(mem.peak_temp(), 80u);
  EXPECT_EQ(mem.peak_total(), 180u);  // 100 + 80
}

TEST(MemoryTracker, OverfreeAborts) {
  MemoryTracker mem;
  mem.alloc_temp(10);
  EXPECT_DEATH(mem.free_temp(11), "temp free");
}

TEST(MemoryTracker, TempAllocRaii) {
  MemoryTracker mem;
  {
    TempAlloc a(mem, 64);
    EXPECT_EQ(mem.temp(), 64u);
    {
      TempAlloc b(mem, 36);
      EXPECT_EQ(mem.temp(), 100u);
    }
    EXPECT_EQ(mem.temp(), 64u);
  }
  EXPECT_EQ(mem.temp(), 0u);
  EXPECT_EQ(mem.peak_temp(), 100u);
}

// --- BufferedWriter ------------------------------------------------------------

TEST(BufferedWriter, FlushesExactlyAtCapacity) {
  std::vector<std::pair<std::size_t, std::vector<int>>> emitted;
  BufferedWriter<int> w(2, /*buffer_bytes=*/4 * sizeof(int),
                        [&](std::size_t dst, std::vector<int> v) {
                          emitted.emplace_back(dst, std::move(v));
                        });
  EXPECT_EQ(w.capacity_elements(), 4u);
  const std::vector<int> data{1, 2, 3, 4, 5, 6, 7, 8, 9};
  w.write(0, data);
  EXPECT_EQ(emitted.size(), 2u);  // two full buffers of 4
  EXPECT_EQ(w.pending(0), 1u);    // the 9th element
  w.flush_all();
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted[0].second, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(emitted[1].second, (std::vector<int>{5, 6, 7, 8}));
  EXPECT_EQ(emitted[2].second, (std::vector<int>{9}));
  EXPECT_EQ(w.flushes(), 3u);
}

TEST(BufferedWriter, PerDestinationIsolation) {
  std::vector<std::pair<std::size_t, std::size_t>> emitted;  // (dst, count)
  BufferedWriter<int> w(3, 2 * sizeof(int),
                        [&](std::size_t dst, std::vector<int> v) {
                          emitted.emplace_back(dst, v.size());
                        });
  w.write_one(0, 1);
  w.write_one(1, 2);
  w.write_one(0, 3);  // fills dst 0
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0], (std::pair<std::size_t, std::size_t>{0, 2}));
  w.flush_all();
  EXPECT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[1], (std::pair<std::size_t, std::size_t>{1, 1}));
}

TEST(BufferedWriter, ElementsPreservedAcrossChunks) {
  std::vector<int> all;
  BufferedWriter<int> w(1, 16 * sizeof(int),
                        [&](std::size_t, std::vector<int> v) {
                          all.insert(all.end(), v.begin(), v.end());
                        });
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  w.write(0, data);
  w.flush_all();
  EXPECT_EQ(all, data);
}

// --- Comm + Cluster ------------------------------------------------------------

using IntComm = Comm<std::vector<int>>;

ClusterConfig tiny_cluster(std::size_t machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = 4;
  cfg.net.link_bandwidth_Bps = 1e9;
  cfg.net.latency = 100;
  cfg.net.per_message_overhead = 10;
  return cfg;
}

TEST(Comm, PostAndRecvRoundTrip) {
  Cluster<std::vector<int>> cluster(tiny_cluster(2));
  std::vector<int> received;
  sim::SimTime recv_time = -1;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    auto& comm = cluster.comm();
    if (m.rank() == 0) {
      comm.post(0, 1, /*tag=*/7, {1, 2, 3}, /*bytes=*/3 * 4);
    } else {
      auto msg = co_await comm.recv(1, 7);
      received = msg.payload;
      recv_time = cluster.simulator().now();
      EXPECT_EQ(msg.src, 0u);
      EXPECT_EQ(msg.bytes, 12u);
    }
    co_return;
  });
  EXPECT_EQ(received, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(recv_time, 10 + 12 + 100 + 12);
}

// Regression for a GCC 12 miscompilation: an aggregate-initialized
// temporary payload inside a `co_await comm.send(...)` full-expression was
// double-owned (the temporary and the coroutine frame copy shared the
// vector buffer — double free). Payload/message types now carry
// user-declared constructors; this test routes prvalue payloads through
// blocking sends and validates the delivered contents. Run under ASan to
// get the full signal.
TEST(Comm, PrvaluePayloadRegression) {
  Cluster<std::vector<int>> cluster(tiny_cluster(4));
  std::vector<int> total;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    auto& comm = cluster.comm();
    if (m.rank() != 0) {
      // Prvalue payload built directly in the co_await expression.
      co_await comm.send(m.rank(), 0, 5,
                         std::vector<int>(60, static_cast<int>(m.rank())),
                         480);
    } else {
      for (int i = 0; i < 3; ++i) {
        auto msg = co_await comm.recv(0, 5);
        // Hold the payload across another suspension before reading it.
        co_await cluster.simulator().delay(50);
        total.insert(total.end(), msg.payload.begin(), msg.payload.end());
      }
    }
    co_return;
  });
  ASSERT_EQ(total.size(), 180u);
  long sum = 0;
  for (int x : total) sum += x;
  EXPECT_EQ(sum, 60 * (1 + 2 + 3));
}

TEST(Comm, LocalPostDeliversInstantly) {
  Cluster<std::vector<int>> cluster(tiny_cluster(1));
  sim::SimTime recv_time = -1;
  cluster.run([&](Machine&) -> sim::Task<void> {
    auto& comm = cluster.comm();
    comm.post(0, 0, 1, {42}, 4);
    auto msg = co_await comm.recv(0, 1);
    EXPECT_EQ(msg.payload, (std::vector<int>{42}));
    recv_time = cluster.simulator().now();
    co_return;
  });
  EXPECT_EQ(recv_time, 0);
  EXPECT_EQ(cluster.fabric().total_messages(), 0u);  // never touched the wire
}

TEST(Comm, FifoPerSourceDestinationPair) {
  Cluster<std::vector<int>> cluster(tiny_cluster(2));
  std::vector<int> order;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    auto& comm = cluster.comm();
    if (m.rank() == 0) {
      for (int i = 0; i < 5; ++i) comm.post(0, 1, 3, {i}, 64);
    } else {
      for (int i = 0; i < 5; ++i) {
        auto msg = co_await comm.recv(1, 3);
        order.push_back(msg.payload[0]);
      }
    }
    co_return;
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Comm, TagsAreIndependentStreams) {
  Cluster<std::vector<int>> cluster(tiny_cluster(2));
  int tag_a = -1, tag_b = -1;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    auto& comm = cluster.comm();
    if (m.rank() == 0) {
      comm.post(0, 1, /*tag=*/1, {100}, 1000000);  // big: arrives later
      comm.post(0, 1, /*tag=*/2, {200}, 8);        // small but behind on TX
    } else {
      // Receive tag 2 first even though tag 1 was posted first.
      auto b = co_await comm.recv(1, 2);
      tag_b = b.payload[0];
      auto a = co_await comm.recv(1, 1);
      tag_a = a.payload[0];
    }
    co_return;
  });
  EXPECT_EQ(tag_a, 100);
  EXPECT_EQ(tag_b, 200);
}

TEST(Comm, RecvNGathersFromAllRanks) {
  Cluster<std::vector<int>> cluster(tiny_cluster(4));
  std::vector<int> got;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    auto& comm = cluster.comm();
    if (m.rank() != 0) {
      comm.post(m.rank(), 0, 9, {static_cast<int>(m.rank())}, 4);
    } else {
      auto msgs = co_await comm.recv_n(0, 9, 3);
      for (const auto& msg : msgs) got.push_back(msg.payload[0]);
    }
    co_return;
  });
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Cluster, BarrierSynchronizesMachines) {
  Cluster<int> cluster(tiny_cluster(4));
  std::vector<sim::SimTime> after(4, -1);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    co_await m.compute(static_cast<sim::SimTime>(100 * (m.rank() + 1)));
    co_await cluster.comm().barrier(m.rank());
    after[m.rank()] = cluster.simulator().now();
  });
  for (auto t : after) EXPECT_EQ(t, 400);
}

TEST(Cluster, RunReturnsElapsedAndIsRepeatable) {
  auto run_it = [] {
    Cluster<int> cluster(tiny_cluster(3));
    return cluster.run([&](Machine& m) -> sim::Task<void> {
      co_await m.charge_local_parallel_sort(100000);
      co_await cluster.comm().barrier(m.rank());
      co_await m.charge_copy(5000);
    });
  };
  const auto t1 = run_it();
  const auto t2 = run_it();
  EXPECT_EQ(t1, t2);
  EXPECT_GT(t1, 0);
}

TEST(Cluster, DeadlockDetectedAsNonQuiescent) {
  Cluster<int> cluster(tiny_cluster(2));
  EXPECT_DEATH(
      cluster.run([&](Machine& m) -> sim::Task<void> {
        if (m.rank() == 0) {
          // Waits forever: nobody sends on tag 99.
          co_await cluster.comm().recv(0, 99);
        }
        co_return;
      }),
      "deadlock");
}

TEST(Machine, RngStreamsDifferPerRank) {
  Cluster<int> a(tiny_cluster(2));
  EXPECT_NE(a.machine(0).rng().next(), a.machine(1).rng().next());
}

TEST(Machine, ComputeChargesAdvanceClock) {
  Cluster<int> cluster(tiny_cluster(1));
  sim::SimTime t_serial = -1, t_parallel = -1;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    const sim::SimTime serial = m.cost().sort_time(1 << 20);
    co_await m.compute(serial);
    t_serial = cluster.simulator().now();
    co_await m.compute_parallel(serial);
    t_parallel = cluster.simulator().now() - t_serial;
  });
  EXPECT_GT(t_serial, 0);
  EXPECT_LT(t_parallel, t_serial);  // 4 threads beat 1
}

}  // namespace
}  // namespace pgxd::rt
