// Tests for the exchange BufferPool and the hot path's allocation
// discipline: chunk buffers are leased/returned instead of allocated per
// message (O(p), not O(chunks), fresh allocations per sort), the sorting
// kernels themselves allocate nothing per element, and the pool stays
// correct — no aliasing, no double lease — under fault-injected
// retransmits and fabric-level duplication.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"
#include "net/fabric.hpp"
#include "runtime/cluster.hpp"
#include "runtime/memory.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/quicksort.hpp"
#include "sort/soa_merge.hpp"

// Counting allocator: global operator new/delete instrumented for the whole
// test binary; individual tests read the counter delta around the call
// under test (everything here is single-threaded unless noted).
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(size);
}
// GCC flags free() inside a replaced operator delete as a mismatched
// allocation pair; it cannot see that the paired operator new above
// allocates with malloc, so the pairing is exactly right here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace pgxd {
namespace {

using core::DistributedSorter;
using core::SortConfig;
using core::SortMsg;
using Key = std::uint64_t;
using Sorter = DistributedSorter<Key>;
using Msg = SortMsg<Key>;

// --- BufferPool unit behaviour ----------------------------------------------

TEST(BufferPool, FirstLeaseAllocatesLaterLeasesReuse) {
  rt::BufferPool<Key> pool;
  auto a = pool.acquire(100);
  EXPECT_GE(a.capacity(), 100u);
  const Key* storage = a.data();
  pool.release(std::move(a));
  auto b = pool.acquire(50);  // smaller hint: same storage is big enough
  EXPECT_EQ(b.data(), storage);
  EXPECT_TRUE(b.empty());
  pool.release(std::move(b));

  const auto& st = pool.stats();
  EXPECT_EQ(st.leases, 2u);
  EXPECT_EQ(st.fresh_allocs, 1u);
  EXPECT_EQ(st.reuses, 1u);
  EXPECT_EQ(st.returns, 2u);
  EXPECT_EQ(pool.free_buffers(), 1u);
}

TEST(BufferPool, LeasedBuffersNeverAlias) {
  rt::BufferPool<Key> pool;
  auto a = pool.acquire(10);
  auto b = pool.acquire(10);
  auto c = pool.acquire(10);
  EXPECT_NE(a.data(), b.data());
  EXPECT_NE(b.data(), c.data());
  EXPECT_NE(a.data(), c.data());
  pool.release(std::move(a));
  pool.release(std::move(b));
  pool.release(std::move(c));
  EXPECT_EQ(pool.stats().fresh_allocs, 3u);
  EXPECT_EQ(pool.stats().peak_free, 3u);
}

TEST(BufferPool, EmptyBufferReturnIsIgnored) {
  rt::BufferPool<Key> pool;
  pool.release(std::vector<Key>{});  // moved-from buffers arrive like this
  EXPECT_EQ(pool.free_buffers(), 0u);
  EXPECT_EQ(pool.stats().returns, 1u);
}

TEST(BufferPool, DuplicatedMessageCopiesAreDistinctStorage) {
  // The retransmit/duplication contract: a fabric-cloned message carries a
  // *copy* of the payload, so the receiver can release both the original
  // and the clone — distinct storage, both accepted, no aliasing.
  rt::BufferPool<Key> pool;
  auto original = pool.acquire(16);
  original.assign({1, 2, 3});
  std::vector<Key> fabric_clone = original;  // what net duplication does
  EXPECT_NE(original.data(), fabric_clone.data());
  pool.release(std::move(original));
  pool.release(std::move(fabric_clone));
  EXPECT_EQ(pool.free_buffers(), 2u);
  EXPECT_EQ(pool.stats().returns, 2u);
  // Both pooled blocks feed later leases without aliasing.
  auto a = pool.acquire(4);
  auto b = pool.acquire(4);
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(pool.stats().reuses, 2u);
  pool.release(std::move(a));
  pool.release(std::move(b));
}

TEST(BufferPool, MovedFromReleaseAfterMoveIsHarmless) {
  // A caller that releases, keeps the moved-from husk, and "releases" it
  // again must not poison the free list (capacity-0 returns are ignored).
  rt::BufferPool<Key> pool;
  auto buf = pool.acquire(8);
  buf.push_back(7);
  pool.release(std::move(buf));
  pool.release(std::move(buf));  // moved-from: ignored, not double-pooled
  EXPECT_EQ(pool.free_buffers(), 1u);
}

// --- Kernel allocation discipline -------------------------------------------

TEST(AllocationDiscipline, QuicksortAllocatesNothing) {
  Rng rng(7);
  std::vector<Key> v(200000);
  for (auto& x : v) x = rng.next();
  const std::uint64_t before = g_allocs.load();
  sort::quicksort(std::span<Key>(v));
  EXPECT_EQ(g_allocs.load(), before);  // stack offset buffers only
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(AllocationDiscipline, BalancedMergeAllocationsIndependentOfRunCount) {
  // With pre-sized scratch, a merge level's work is one reused segment
  // vector — allocations scale with levels (log runs), not with runs or
  // tasks. 64 runs merged sequentially must stay under a small fixed count.
  Rng rng(13);
  const std::size_t runs = 64, per_run = 2000;
  std::vector<Key> data(runs * per_run);
  std::vector<std::size_t> bounds(runs + 1);
  for (std::size_t r = 0; r < runs; ++r) {
    bounds[r] = r * per_run;
    for (std::size_t i = 0; i < per_run; ++i)
      data[r * per_run + i] = rng.next();
    std::sort(data.begin() + r * per_run, data.begin() + (r + 1) * per_run);
  }
  bounds[runs] = data.size();
  std::vector<Key> scratch(data.size());
  const std::uint64_t before = g_allocs.load();
  sort::balanced_merge(data, bounds, scratch);
  const std::uint64_t delta = g_allocs.load() - before;
  EXPECT_LE(delta, 40u) << "merge allocations must not scale with run count";
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(AllocationDiscipline, IndexedRunAllAllocationsIndependentOfTaskCount) {
  ThreadPool pool(2);
  pool.run_all(1, [](std::size_t) {});  // warm the pool's queue storage
  std::atomic<std::uint64_t> sum{0};
  const std::uint64_t before = g_allocs.load();
  pool.run_all(50000, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  const std::uint64_t delta = g_allocs.load() - before;
  EXPECT_LE(delta, 64u) << "run_all must allocate O(workers), not O(tasks)";
  EXPECT_EQ(sum.load(), 50000ull * 49999ull / 2);
}

// --- Exchange buffer pooling in the full sort --------------------------------

std::vector<std::vector<Key>> uniform_shards(std::size_t total_n,
                                             std::size_t machines,
                                             std::uint64_t seed = 42) {
  gen::DataGenConfig dcfg;
  dcfg.dist = gen::Distribution::kUniform;
  dcfg.domain = 1 << 20;
  dcfg.seed = seed;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, total_n, machines, r));
  return shards;
}

TEST(ExchangePool, FreshAllocationsStayNearMachineCountNotChunkCount) {
  const std::size_t p = 4;
  SortConfig cfg;
  cfg.read_buffer_bytes = 2048;  // 256 keys per chunk -> many chunks
  rt::ClusterConfig ccfg;
  ccfg.machines = p;
  ccfg.threads_per_machine = 8;
  rt::Cluster<Msg> cluster(ccfg);
  Sorter sorter(cluster, cfg);
  sorter.run(uniform_shards(80000, p));

  const auto& st = sorter.pool_stats();
  // ~80000 * 3/4 remote elements / 256 per chunk ≈ 230 chunks.
  EXPECT_GT(st.leases, 100u);
  EXPECT_LE(st.fresh_allocs, 4 * p)
      << "chunk buffers must be recycled, not allocated per chunk";
  // A clean run returns every buffer: drained mailboxes, no strays.
  EXPECT_EQ(sorter.pool_stats().returns, st.leases);
  EXPECT_EQ(cluster.comm().total_pending(), 0u);
}

TEST(ExchangePool, DisabledPoolStillSortsAndLeasesNothing) {
  const std::size_t p = 4;
  SortConfig cfg;
  cfg.read_buffer_bytes = 2048;
  cfg.use_buffer_pool = false;
  rt::ClusterConfig ccfg;
  ccfg.machines = p;
  ccfg.threads_per_machine = 8;
  rt::Cluster<Msg> cluster(ccfg);
  Sorter sorter(cluster, cfg);
  sorter.run(uniform_shards(40000, p));
  EXPECT_EQ(sorter.pool_stats().leases, 0u);
}

// Reliable delivery over a lossy, duplicating fabric: retransmits resend
// modeled bytes only and the receiver-side dedup window delivers each
// payload exactly once, so pooling stays sound — every lease is returned
// exactly once and the double-release check never fires.
TEST(ExchangePool, PoolSurvivesFaultInjectedRetransmits) {
  const std::size_t p = 5;
  SortConfig cfg;
  cfg.read_buffer_bytes = 4096;
  net::FaultConfig fc;
  fc.drop_prob = 0.08;
  fc.duplicate_prob = 0.08;
  rt::ClusterConfig ccfg;
  ccfg.machines = p;
  ccfg.threads_per_machine = 8;
  ccfg.net.faults = fc;
  ccfg.reliable.enabled = true;
  rt::Cluster<Msg> cluster(ccfg);
  Sorter sorter(cluster, cfg);
  sorter.run(uniform_shards(30000, p));  // audit_exchange checks exactly-once

  const auto& rs = cluster.comm().reliable_stats();
  EXPECT_GT(rs.retransmits, 0u);
  EXPECT_GT(rs.duplicates_suppressed, 0u);
  const auto& st = sorter.pool_stats();
  EXPECT_GT(st.leases, 0u);
  EXPECT_EQ(st.returns, st.leases);
  EXPECT_LE(st.fresh_allocs, 6 * p);
  for (const auto& ms : sorter.stats().machines)
    EXPECT_EQ(ms.duplicate_chunks, 0u);
}

// A duplicating fabric WITHOUT the reliable layer: fabric-cloned chunks
// reach the application and are returned to the pool as independent
// storage (returns > leases is legal); the aliasing check must not fire.
TEST(ExchangePool, FabricDuplicatesReturnAsIndependentBuffers) {
  const std::size_t p = 4;
  SortConfig cfg;
  cfg.read_buffer_bytes = 4096;
  net::FaultConfig fc;
  fc.duplicate_prob = 0.20;
  rt::ClusterConfig ccfg;
  ccfg.machines = p;
  ccfg.threads_per_machine = 8;
  ccfg.net.faults = fc;
  ccfg.allow_undrained = true;  // trailing duplicates may sit in mailboxes
  rt::Cluster<Msg> cluster(ccfg);
  Sorter sorter(cluster, cfg);
  sorter.run(uniform_shards(30000, p));

  std::uint64_t dup_chunks = 0;
  for (const auto& ms : sorter.stats().machines)
    dup_chunks += ms.duplicate_chunks;
  EXPECT_GT(dup_chunks, 0u);
  const auto& st = sorter.pool_stats();
  EXPECT_GT(st.returns, st.leases - st.fresh_allocs);
}

}  // namespace
}  // namespace pgxd
