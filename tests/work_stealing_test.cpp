// Tests for the work-stealing task pool (the PGX.D task-manager shape).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/work_stealing_pool.hpp"

namespace pgxd {
namespace {

TEST(WorkStealingPool, InlineWhenZeroWorkers) {
  WorkStealingPool pool(0);
  int ran = 0;
  pool.submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(WorkStealingPool, RunsEverySubmittedTask) {
  WorkStealingPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(pool.stats().executed, 1000u);
}

TEST(WorkStealingPool, NestedSubmissionCompletes) {
  WorkStealingPool pool(2);
  std::atomic<int> leaves{0};
  std::function<void(int)> fan_out = [&](int depth) {
    if (depth == 0) {
      ++leaves;
      return;
    }
    for (int c = 0; c < 3; ++c) pool.submit([&, depth] { fan_out(depth - 1); });
  };
  pool.submit([&] { fan_out(4); });
  pool.wait_idle();
  EXPECT_EQ(leaves.load(), 81);  // 3^4
}

TEST(WorkStealingPool, RunAllBarrier) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 200; ++i) tasks.push_back([&] { ++count; });
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 200);
}

TEST(WorkStealingPool, StealingHappensUnderImbalance) {
  // One long task occupies a worker while many short tasks queue behind it
  // on the same deque (nested submission stays local); other workers must
  // steal them.
  WorkStealingPool pool(3);
  std::atomic<int> count{0};
  pool.submit([&] {
    // From inside a worker: nested tasks land on this worker's deque.
    for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  // With the submitting worker blocked for 50ms, the other two workers must
  // have stolen essentially all of the nested tasks.
  EXPECT_GT(pool.stats().stolen, 50u);
}

TEST(WorkStealingPool, ManyWavesStayConsistent) {
  WorkStealingPool pool(4);
  std::atomic<long> total{0};
  for (int wave = 0; wave < 20; ++wave) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 50; ++i) tasks.push_back([&, i] { total += i; });
    pool.run_all(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 20L * (49 * 50 / 2));
}

TEST(WorkStealingPool, WaitIdleOnEmptyPool) {
  WorkStealingPool pool(2);
  pool.wait_idle();  // nothing submitted: returns immediately
  SUCCEED();
}

}  // namespace
}  // namespace pgxd
