// Tests for the discrete-event simulation kernel: deterministic ordering,
// coroutine task composition, and the synchronization primitives.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/timeout.hpp"
#include "sim/when_any.hpp"

namespace pgxd::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.5), 500 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(from_micros(2.5), 2500);
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.quiescent());
  EXPECT_EQ(sim.run(), 0);
}

Task<void> delay_then_record(Simulator& sim, SimTime dt,
                             std::vector<SimTime>& log) {
  co_await sim.delay(dt);
  log.push_back(sim.now());
}

TEST(Simulator, DelayAdvancesClock) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 150, log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 150);
  EXPECT_EQ(sim.now(), 150);
  EXPECT_TRUE(sim.quiescent());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 300, log));
  sim.spawn(delay_then_record(sim, 100, log));
  sim.spawn(delay_then_record(sim, 200, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 200, 300}));
}

Task<void> tagged_delay(Simulator& sim, SimTime dt, int tag,
                        std::vector<int>& log) {
  co_await sim.delay(dt);
  log.push_back(tag);
}

TEST(Simulator, SimultaneousEventsKeepSpawnOrder) {
  // Equal timestamps break ties by insertion sequence — determinism.
  Simulator sim;
  std::vector<int> log;
  for (int i = 0; i < 8; ++i) sim.spawn(tagged_delay(sim, 50, i, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 100, log));
  sim.spawn(delay_then_record(sim, 500, log));
  sim.run_until(250);
  EXPECT_EQ(log, (std::vector<SimTime>{100}));
  EXPECT_EQ(sim.now(), 250);
  EXPECT_FALSE(sim.quiescent());
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 500}));
  EXPECT_TRUE(sim.quiescent());
}

Task<int> compute_answer(Simulator& sim) {
  co_await sim.delay(10);
  co_return 42;
}

Task<void> await_child(Simulator& sim, int& out) {
  out = co_await compute_answer(sim);
}

TEST(Task, AwaitChildPropagatesValue) {
  Simulator sim;
  int out = 0;
  sim.spawn(await_child(sim, out));
  sim.run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(sim.now(), 10);
}

Task<int> thrower(Simulator& sim) {
  co_await sim.delay(5);
  throw std::runtime_error("boom");
}

Task<void> catcher(Simulator& sim, std::string& msg) {
  try {
    (void)co_await thrower(sim);
  } catch (const std::runtime_error& e) {
    msg = e.what();
  }
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  std::string msg;
  sim.spawn(catcher(sim, msg));
  sim.run();
  EXPECT_EQ(msg, "boom");
}

Task<void> nested_inner(Simulator& sim, std::vector<int>& log) {
  co_await sim.delay(1);
  log.push_back(2);
}

Task<void> nested_outer(Simulator& sim, std::vector<int>& log) {
  log.push_back(1);
  co_await nested_inner(sim, log);
  log.push_back(3);
}

TEST(Task, NestedAwaitRunsInOrder) {
  Simulator sim;
  std::vector<int> log;
  sim.spawn(nested_outer(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

// --- Event ---------------------------------------------------------------

Task<void> wait_event(Simulator& sim, Event& ev, std::vector<SimTime>& log) {
  co_await ev.wait();
  log.push_back(sim.now());
}

Task<void> fire_at(Simulator& sim, Event& ev, SimTime at) {
  co_await sim.delay(at);
  ev.fire();
}

TEST(Event, ReleasesAllWaitersAtFireTime) {
  Simulator sim;
  Event ev(sim);
  std::vector<SimTime> log;
  sim.spawn(wait_event(sim, ev, log));
  sim.spawn(wait_event(sim, ev, log));
  sim.spawn(wait_event(sim, ev, log));
  sim.spawn(fire_at(sim, ev, 77));
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{77, 77, 77}));
}

TEST(Event, WaitAfterFireDoesNotBlock) {
  Simulator sim;
  Event ev(sim);
  std::vector<SimTime> log;
  ev.fire();
  sim.spawn(wait_event(sim, ev, log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 0);
  EXPECT_TRUE(sim.quiescent());
}

// --- Barrier ---------------------------------------------------------------

Task<void> barrier_rounds(Simulator& sim, Barrier& bar, int id, SimTime work,
                          std::vector<std::pair<int, SimTime>>& log,
                          int rounds) {
  for (int r = 0; r < rounds; ++r) {
    co_await sim.delay(work * (id + 1));
    co_await bar.arrive();
    log.emplace_back(id, sim.now());
  }
}

TEST(Barrier, AllParticipantsLeaveAtSlowestArrival) {
  Simulator sim;
  Barrier bar(sim, 3);
  std::vector<std::pair<int, SimTime>> log;
  for (int id = 0; id < 3; ++id)
    sim.spawn(barrier_rounds(sim, bar, id, 10, log, 1));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  for (const auto& [id, t] : log) EXPECT_EQ(t, 30) << "participant " << id;
  EXPECT_TRUE(sim.quiescent());
}

TEST(Barrier, ReusableAcrossRounds) {
  // An early re-arrival in round 2 must not sneak through the barrier.
  Simulator sim;
  Barrier bar(sim, 3);
  std::vector<std::pair<int, SimTime>> log;
  for (int id = 0; id < 3; ++id)
    sim.spawn(barrier_rounds(sim, bar, id, 10, log, 3));
  sim.run();
  ASSERT_EQ(log.size(), 9u);
  // Round r completes when the slowest participant (id 2, 30ns/round) arrives.
  for (std::size_t i = 0; i < log.size(); ++i)
    EXPECT_EQ(log[i].second, 30 * (1 + static_cast<SimTime>(i / 3)));
  EXPECT_TRUE(sim.quiescent());
}

TEST(Barrier, SingleParticipantNeverBlocks) {
  Simulator sim;
  Barrier bar(sim, 1);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(barrier_rounds(sim, bar, 0, 5, log, 4));
  sim.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_TRUE(sim.quiescent());
}

// --- Semaphore ---------------------------------------------------------------

Task<void> hold_permit(Simulator& sim, Semaphore& sem, SimTime hold, int id,
                       std::vector<std::pair<int, SimTime>>& acquired) {
  co_await sem.acquire();
  acquired.emplace_back(id, sim.now());
  co_await sim.delay(hold);
  sem.release();
}

TEST(Semaphore, SerializesWhenSinglePermit) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<std::pair<int, SimTime>> acquired;
  for (int id = 0; id < 4; ++id) sim.spawn(hold_permit(sim, sem, 100, id, acquired));
  sim.run();
  ASSERT_EQ(acquired.size(), 4u);
  // FIFO: each acquires exactly when the previous holder releases.
  for (int id = 0; id < 4; ++id) {
    EXPECT_EQ(acquired[id].first, id);
    EXPECT_EQ(acquired[id].second, 100 * id);
  }
  EXPECT_EQ(sem.available(), 1u);
}

Task<void> late_thief(Simulator& sim, Semaphore& sem, SimTime at,
                      std::vector<std::pair<int, SimTime>>& acquired) {
  co_await sim.delay(at);
  co_await sem.acquire();
  acquired.emplace_back(99, sim.now());
  sem.release();
}

TEST(Semaphore, ReleasedPermitGoesToQueuedWaiterNotNewcomer) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<std::pair<int, SimTime>> acquired;
  sim.spawn(hold_permit(sim, sem, 100, 0, acquired));  // holds [0, 100)
  sim.spawn(hold_permit(sim, sem, 50, 1, acquired));   // queued at t=0
  sim.spawn(late_thief(sim, sem, 100, acquired));      // arrives as 0 releases
  sim.run();
  ASSERT_EQ(acquired.size(), 3u);
  EXPECT_EQ(acquired[1].first, 1) << "queued waiter must beat the newcomer";
  EXPECT_EQ(acquired[1].second, 100);
  EXPECT_EQ(acquired[2].first, 99);
  EXPECT_EQ(acquired[2].second, 150);
}

TEST(Semaphore, MultiplePermitsAdmitConcurrently) {
  Simulator sim;
  Semaphore sem(sim, 3);
  std::vector<std::pair<int, SimTime>> acquired;
  for (int id = 0; id < 5; ++id) sim.spawn(hold_permit(sim, sem, 100, id, acquired));
  sim.run();
  ASSERT_EQ(acquired.size(), 5u);
  EXPECT_EQ(acquired[0].second, 0);
  EXPECT_EQ(acquired[1].second, 0);
  EXPECT_EQ(acquired[2].second, 0);
  EXPECT_EQ(acquired[3].second, 100);
  EXPECT_EQ(acquired[4].second, 100);
}

// --- Channel ---------------------------------------------------------------

Task<void> producer(Simulator& sim, Channel<int>& ch, int count, SimTime gap) {
  for (int i = 0; i < count; ++i) {
    co_await sim.delay(gap);
    ch.send(i);
  }
}

Task<void> consumer(Simulator& sim, Channel<int>& ch, int count,
                    std::vector<std::pair<int, SimTime>>& got) {
  for (int i = 0; i < count; ++i) {
    int v = co_await ch.recv();
    got.emplace_back(v, sim.now());
  }
}

TEST(Channel, DeliversInSendOrderAtSendTime) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, SimTime>> got;
  sim.spawn(consumer(sim, ch, 3, got));
  sim.spawn(producer(sim, ch, 3, 10));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i].first, i);
    EXPECT_EQ(got[i].second, 10 * (i + 1));
  }
  EXPECT_TRUE(sim.quiescent());
}

TEST(Channel, BufferedValuesReadableWithoutBlocking) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.send(7);
  ch.send(8);
  EXPECT_EQ(ch.size(), 2u);
  std::vector<std::pair<int, SimTime>> got;
  sim.spawn(consumer(sim, ch, 2, got));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, 7);
  EXPECT_EQ(got[1].first, 8);
  EXPECT_EQ(got[0].second, 0);
}

Task<void> single_recv(Simulator& sim, Channel<int>& ch,
                       std::vector<std::pair<int, SimTime>>& got, SimTime at) {
  co_await sim.delay(at);
  int v = co_await ch.recv();
  got.emplace_back(v, sim.now());
}

TEST(Channel, QueuedReceiverBeatsNewcomer) {
  // A value sent while a receiver waits must go to that receiver even if a
  // second receiver shows up at the same instant.
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, SimTime>> got;
  sim.spawn(single_recv(sim, ch, got, 0));    // waits from t=0
  sim.spawn(producer(sim, ch, 1, 50));        // sends value 0 at t=50
  sim.spawn(single_recv(sim, ch, got, 50));   // arrives exactly at send time
  sim.spawn(producer(sim, ch, 1, 60));        // second value at t=60
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].second, 50);
  EXPECT_EQ(got[1].second, 60);
}

TEST(Channel, TryRecvOnlyWhenNoWaiters) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(5);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
  EXPECT_FALSE(ch.try_recv().has_value());
}

// --- Stress: many interacting processes remain deterministic ---------------

Task<void> ring_node(Simulator& sim, Channel<int>& in, Channel<int>& out,
                     int hops, std::vector<int>& log, int id) {
  for (;;) {
    int token = co_await in.recv();
    log.push_back(id);
    if (token >= hops) co_return;
    co_await sim.delay(3);
    out.send(token + 1);
  }
}

TEST(Simulator, TokenRingIsDeterministic) {
  // A token circulates a ring of 5 processes 4 full laps; both runs must
  // produce the identical visit log and final clock.
  auto run_once = [](std::vector<int>& log) {
    Simulator sim;
    constexpr int kNodes = 5;
    constexpr int kHops = 20;
    std::vector<std::unique_ptr<Channel<int>>> chans;
    for (int i = 0; i < kNodes; ++i)
      chans.push_back(std::make_unique<Channel<int>>(sim));
    for (int i = 0; i < kNodes; ++i)
      sim.spawn(ring_node(sim, *chans[i], *chans[(i + 1) % kNodes], kHops, log, i));
    chans[0]->send(0);
    sim.run();
    return sim.now();
  };
  std::vector<int> log1, log2;
  const SimTime t1 = run_once(log1);
  const SimTime t2 = run_once(log2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(log1.size(), 21u);
  EXPECT_EQ(t1, 3 * 20);
}

struct TimeoutWake {
  SimTime at;
  bool expired;
};

Task<void> await_timeout(Simulator& sim, Timeout& t,
                         std::vector<TimeoutWake>& log) {
  co_await t.wait();
  log.push_back(TimeoutWake{sim.now(), t.expired()});
}

Task<void> cancel_after(Simulator& sim, Timeout& t, SimTime dt) {
  co_await sim.delay(dt);
  t.cancel();
}

TEST(Timeout, FiresAtDeadline) {
  Simulator sim;
  Timeout t(sim, 500);
  std::vector<TimeoutWake> log;
  sim.spawn(await_timeout(sim, t, log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].at, 500);
  EXPECT_TRUE(log[0].expired);
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(sim.now(), 500);
}

TEST(Timeout, CancelWakesWaiterAtCancelInstant) {
  Simulator sim;
  Timeout t(sim, 1000);
  std::vector<TimeoutWake> log;
  sim.spawn(await_timeout(sim, t, log));
  sim.spawn(cancel_after(sim, t, 200));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].at, 200);
  EXPECT_FALSE(log[0].expired);
  EXPECT_TRUE(t.cancelled());
  // The cancelled deadline event must not drag the clock out to 1000: a
  // timer that never fired cannot affect a run's measured end time.
  EXPECT_EQ(sim.now(), 200);
  EXPECT_TRUE(sim.quiescent());
}

TEST(Timeout, CancelBeforeWaitCompletesImmediately) {
  Simulator sim;
  Timeout t(sim, 700);
  t.cancel();
  std::vector<TimeoutWake> log;
  sim.spawn(await_timeout(sim, t, log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].at, 0);
  EXPECT_FALSE(log[0].expired);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Timeout, CancelAfterExpiryIsANoOp) {
  Simulator sim;
  Timeout t(sim, 50);
  std::vector<TimeoutWake> log;
  sim.spawn(await_timeout(sim, t, log));
  sim.run();
  t.cancel();
  EXPECT_TRUE(t.expired());
  EXPECT_FALSE(t.cancelled());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].expired);
}

Task<void> race_and_record(
    Simulator& sim, std::vector<Task<void>> tasks,
    std::vector<std::pair<std::size_t, SimTime>>& log) {
  const std::size_t winner = co_await when_any(sim, std::move(tasks));
  log.push_back({winner, sim.now()});
}

TEST(WhenAny, ResumesAtFirstCompletionWithItsIndex) {
  Simulator sim;
  std::vector<SimTime> done;
  std::vector<Task<void>> tasks;
  tasks.push_back(delay_then_record(sim, 300, done));
  tasks.push_back(delay_then_record(sim, 100, done));
  tasks.push_back(delay_then_record(sim, 200, done));
  std::vector<std::pair<std::size_t, SimTime>> log;
  sim.spawn(race_and_record(sim, std::move(tasks), log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 1u);   // the 100-tick task wins
  EXPECT_EQ(log[0].second, 100);
  // Losers keep running to completion; the run reaches quiescence.
  EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(sim.now(), 300);
  EXPECT_TRUE(sim.quiescent());
}

TEST(WhenAny, TieBreaksByBatchOrder) {
  Simulator sim;
  std::vector<SimTime> done;
  std::vector<Task<void>> tasks;
  tasks.push_back(delay_then_record(sim, 100, done));
  tasks.push_back(delay_then_record(sim, 100, done));
  std::vector<std::pair<std::size_t, SimTime>> log;
  sim.spawn(race_and_record(sim, std::move(tasks), log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 0u);
  EXPECT_EQ(log[0].second, 100);
}

Task<void> timeout_vs_event(Simulator& sim, Event& ev, SimTime rto,
                            std::vector<TimeoutWake>& log) {
  Timeout t(sim, rto);
  std::vector<Task<void>> race;
  race.push_back(await_timeout(sim, t, log));
  race.push_back([](Simulator&, Event& e, Timeout& to) -> Task<void> {
    co_await e.wait();
    to.cancel();
  }(sim, ev, t));
  co_await when_any(sim, std::move(race));
  // Both racers complete (the loser is the cancelled timer's waiter, woken
  // by cancel), so the stack-allocated Timeout dies with no waiter left.
  co_await sim.delay(0);
}

TEST(Timeout, CancelArrivingAtTheDeadlineInstantIsDeterministic) {
  // The cancellation race at exactly the deadline timestamp: the deadline
  // event was scheduled first (at Timeout construction), so by (at, seq)
  // ordering it fires before the canceller's timer and the timeout counts
  // as expired — deterministically, run after run.
  auto run_once = [] {
    Simulator sim;
    Timeout t(sim, 500);
    std::vector<TimeoutWake> log;
    sim.spawn(await_timeout(sim, t, log));
    sim.spawn(cancel_after(sim, t, 500));
    sim.run();
    return std::pair<std::vector<TimeoutWake>, bool>(log, t.expired());
  };
  const auto [log1, expired1] = run_once();
  const auto [log2, expired2] = run_once();
  ASSERT_EQ(log1.size(), 1u);
  EXPECT_EQ(log1[0].at, 500);
  EXPECT_TRUE(expired1);
  EXPECT_EQ(log1[0].expired, log2[0].expired);
  EXPECT_EQ(expired1, expired2);
}

TEST(WhenAny, AckOrTimeoutPatternCancelsTheLoser) {
  Simulator sim;
  Event ack(sim);
  std::vector<TimeoutWake> log;
  sim.spawn(timeout_vs_event(sim, ack, 1000, log));
  sim.spawn([](Simulator& s, Event& e) -> Task<void> {
    co_await s.delay(40);
    e.fire();
  }(sim, ack));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].at, 40);
  EXPECT_FALSE(log[0].expired);
  EXPECT_EQ(sim.now(), 40);  // the 1000-tick deadline never fires
  EXPECT_TRUE(sim.quiescent());
}

// --- Schedule perturbation ---------------------------------------------------

Task<void> touch_at(Simulator& sim, SimTime at, int id, std::vector<int>& log) {
  co_await sim.delay(at);
  log.push_back(id);
}

std::vector<int> run_six_at_once(std::uint64_t seed) {
  Simulator sim;
  if (seed != 0) sim.set_perturbation({true, seed, 0});
  std::vector<int> log;
  for (int i = 0; i < 6; ++i) sim.spawn(touch_at(sim, 100, i, log));
  sim.run();
  return log;
}

TEST(Perturbation, PermutesSameTimestampDeliveryDeterministically) {
  // Canonical mode: same-timestamp events fire in scheduling order.
  const auto canonical = run_six_at_once(0);
  EXPECT_EQ(canonical, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  // A seed is one fixed alternative schedule: identical on re-run.
  EXPECT_EQ(run_six_at_once(3), run_six_at_once(3));
  // And the explorer genuinely explores: some small seed must permute six
  // simultaneous events away from the canonical order.
  bool shuffled = false;
  for (std::uint64_t seed = 1; seed <= 8 && !shuffled; ++seed)
    shuffled = run_six_at_once(seed) != canonical;
  EXPECT_TRUE(shuffled);
}

TEST(Perturbation, TimedDelaysKeepTheirExactDuration) {
  // Perturbation explores ordering freedom only: wake jitter stretches
  // same-instant wake-ups (including a root's spawn), but a modeled delay
  // must still take exactly its duration or perturbed runs would change
  // modeled physics, not just schedules.
  Simulator sim;
  sim.set_perturbation({true, 99, /*wake_jitter=*/25});
  SimTime elapsed = -1;
  sim.spawn([](Simulator& s, SimTime& out) -> Task<void> {
    const SimTime before = s.now();  // spawn jitter already applied here
    co_await s.delay(300);
    out = s.now() - before;
  }(sim, elapsed));
  sim.run();
  EXPECT_EQ(elapsed, 300);
}

TEST(Perturbation, WakeJitterShiftsHandoffsDeterministically) {
  // Channel wake-ups go through schedule_now, the one path wake_jitter
  // stretches; the handoff still happens, within the jitter window, at a
  // seed-reproducible instant.
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    sim.set_perturbation({true, seed, /*wake_jitter=*/10});
    Channel<int> ch(sim);
    std::vector<int> got;
    SimTime recv_at = -1;
    sim.spawn([](Simulator& s, Channel<int>& c, std::vector<int>& g,
                 SimTime& at) -> Task<void> {
      g.push_back(co_await c.recv());
      at = s.now();
    }(sim, ch, got, recv_at));
    sim.spawn([](Channel<int>& c) -> Task<void> {
      c.send(7);
      co_return;
    }(ch));
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{7}));
    return recv_at;
  };
  const SimTime a1 = run_once(5);
  const SimTime a2 = run_once(5);
  EXPECT_EQ(a1, a2);
  EXPECT_GE(a1, 0);
  // Three same-instant wake-ups stack on the path to the receive (both
  // spawns and the handoff), each jittered by at most 10.
  EXPECT_LE(a1, 30);
}

TEST(Perturbation, EnablingMidRunDies) {
  Simulator sim;
  std::vector<int> log;
  sim.spawn(touch_at(sim, 10, 0, log));
  EXPECT_DEATH(sim.set_perturbation({true, 1, 0}),
               "set_perturbation after events");
}

}  // namespace
}  // namespace pgxd::sim
