// Tests for the observability layer: JSON emitter, metrics registry
// (counters, gauges, log-linear + fixed histograms, cross-rank merge), the
// Chrome trace_event exporter (spans, flow arrows, counter graphs), the
// time-series sampler, and the critical-path analyzer.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/timeout.hpp"
#include "sim/trace.hpp"

namespace pgxd {
namespace {

// ---------------------------------------------------------------- JsonWriter

TEST(JsonWriter, NestedDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("name", "pgxd");
  w.kv("n", std::uint64_t{42});
  w.kv("ratio", 0.5);
  w.kv("ok", true);
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.kv("x", std::int64_t{-3});
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"pgxd\",\"n\":42,\"ratio\":0.5,\"ok\":true,"
            "\"list\":[1,2],\"nested\":{\"x\":-3}}");
}

TEST(JsonWriter, EscapesStrings) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriterDeath, RejectsMalformedNesting) {
  EXPECT_DEATH(
      {
        obs::JsonWriter w;
        w.begin_object();
        w.value(1.0);  // object value without a key
      },
      "without a key");
}

// ------------------------------------------------------------ Counter/Gauge

TEST(Metrics, CounterAccumulatesAndMergesByAddition) {
  obs::Counter a, b;
  a.inc();
  a.inc(4);
  b.inc(10);
  a.merge(b);
  EXPECT_EQ(a.value(), 15u);
}

TEST(Metrics, GaugeMergesByMax) {
  obs::Gauge a, b;
  a.set(3.0);
  b.set(7.0);
  a.merge(b);
  EXPECT_EQ(a.value(), 7.0);
  b.merge(a);
  EXPECT_EQ(b.value(), 7.0);
}

// -------------------------------------------------------------- LogHistogram

TEST(LogHistogram, SmallValuesAreExact) {
  obs::LogHistogram h;
  for (std::uint64_t v = 0; v < obs::LogHistogram::kSubBuckets; ++v)
    EXPECT_EQ(obs::LogHistogram::bucket_floor(v), v);
}

TEST(LogHistogram, BucketFloorWithinRelativeErrorBound) {
  // Log-linear with 32 sub-buckets per octave: floor(v) <= v and the bucket
  // width is at most v / 16, so floor(v) > v * (1 - 1/16).
  for (std::uint64_t v : {100ull, 1000ull, 123456ull, 1ull << 40,
                          (1ull << 63) + 12345ull}) {
    const std::uint64_t f = obs::LogHistogram::bucket_floor(v);
    EXPECT_LE(f, v);
    EXPECT_GT(static_cast<double>(f), static_cast<double>(v) * (1.0 - 1.0 / 16));
  }
}

TEST(LogHistogram, MomentsAndQuantiles) {
  obs::LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  // Quantile lands within one sub-bucket (1/16 relative) of the true value.
  const double p50 = static_cast<double>(h.quantile(0.5));
  EXPECT_GT(p50, 500.0 * (1.0 - 1.0 / 16));
  EXPECT_LE(p50, 500.0 * (1.0 + 1.0 / 16));
  const double p99 = static_cast<double>(h.quantile(0.99));
  EXPECT_GT(p99, 990.0 * (1.0 - 1.0 / 16));
  EXPECT_LE(p99, 1000.0);
}

TEST(LogHistogram, MergeMatchesCombinedStream) {
  obs::LogHistogram all, a, b;
  for (std::uint64_t v = 0; v < 5000; ++v) {
    const std::uint64_t x = (v * 2654435761u) % 100000;
    all.add(x);
    (v % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_EQ(a.sum(), all.sum());
  for (double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_EQ(a.quantile(q), all.quantile(q));
}

TEST(LogHistogram, WeightedAdd) {
  obs::LogHistogram h;
  h.add(10, 100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 1000u);
  EXPECT_EQ(h.quantile(0.5), 10u);
}

// ------------------------------------------------------------ FixedHistogram

TEST(FixedHistogram, ClampsOutOfRangeIntoEdgeBuckets) {
  obs::FixedHistogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(0.5);
  h.add(9.5);
  h.add(25.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);  // -5 clamps down
  EXPECT_EQ(h.bucket_count(9), 2u);  // 25 clamps up
}

TEST(FixedHistogram, MergeRequiresIdenticalLayout) {
  obs::FixedHistogram a(0.0, 1.0, 4), b(0.0, 1.0, 4);
  a.add(0.1);
  b.add(0.9);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  obs::FixedHistogram c(0.0, 2.0, 4);
  EXPECT_DEATH(a.merge(c), "");
}

// ------------------------------------------------------------------ Registry

TEST(MetricsRegistry, InstrumentsCreatedOnFirstUseWithStableRefs) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("sort.exchange.chunks_sent");
  c.inc(3);
  // Creating more instruments must not invalidate the first reference.
  for (int i = 0; i < 100; ++i)
    reg.counter("filler." + std::to_string(i)).inc();
  c.inc(2);
  EXPECT_EQ(reg.counter_value("sort.exchange.chunks_sent"), 5u);
  EXPECT_EQ(reg.counter_value("never.created"), 0u);
}

TEST(MetricsRegistry, MergeFoldsAllInstrumentKinds) {
  obs::MetricsRegistry a, b;
  a.counter("c").inc(1);
  b.counter("c").inc(2);
  b.counter("only_b").inc(7);
  a.gauge("g").set(5.0);
  b.gauge("g").set(3.0);
  a.histogram("h").add(10);
  b.histogram("h").add(1000);
  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 3u);
  EXPECT_EQ(a.counter_value("only_b"), 7u);
  EXPECT_EQ(a.gauge_value("g"), 5.0);
  EXPECT_EQ(a.histograms().at("h").count(), 2u);
  EXPECT_EQ(a.histograms().at("h").max(), 1000u);
}

TEST(MetricsRegistry, SameNameAliasesToOneInstrument) {
  // Two registrations under one name must hand back the same instrument —
  // split instruments would silently fork the count between call sites.
  obs::MetricsRegistry reg;
  EXPECT_EQ(&reg.counter("sort.load.items"), &reg.counter("sort.load.items"));
  EXPECT_EQ(&reg.gauge("pool.peak"), &reg.gauge("pool.peak"));
  EXPECT_EQ(&reg.histogram("chunk.bytes"), &reg.histogram("chunk.bytes"));
  reg.counter("sort.load.items").inc(2);
  reg.counter("sort.load.items").inc(3);
  EXPECT_EQ(reg.counter_value("sort.load.items"), 5u);
}

TEST(MetricsRegistry, MergeAllPreservesEveryInstrumentKind) {
  std::vector<obs::MetricsRegistry> ranks(3);
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    ranks[r].counter("c").inc(10 * (r + 1));
    ranks[r].gauge("g").set(static_cast<double>(r));
    ranks[r].histogram("h").add(100 * (r + 1));
  }
  const obs::MetricsRegistry merged = obs::merge_all(ranks);
  EXPECT_EQ(merged.counter_value("c"), 60u);   // sum
  EXPECT_EQ(merged.gauge_value("g"), 2.0);     // max
  EXPECT_EQ(merged.histograms().at("h").count(), 3u);
  EXPECT_EQ(merged.histograms().at("h").sum(), 600u);
}

TEST(MetricsRegistry, MergeAllAcrossRanks) {
  std::vector<obs::MetricsRegistry> ranks(4);
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    ranks[r].counter("sort.load.items").inc(100 * (r + 1));
    ranks[r].gauge("sort.memory.peak_temp_bytes")
        .set(1000.0 * static_cast<double>(r + 1));
  }
  const obs::MetricsRegistry merged = obs::merge_all(ranks);
  EXPECT_EQ(merged.counter_value("sort.load.items"), 1000u);
  EXPECT_EQ(merged.gauge_value("sort.memory.peak_temp_bytes"), 4000.0);
}

TEST(MetricsRegistry, WriteJsonEmitsEverySection) {
  obs::MetricsRegistry reg;
  reg.counter("a.b.c").inc(9);
  reg.gauge("d.e.f").set(2.5);
  reg.histogram("g.h.i").add(100);
  reg.fixed_histogram("j.k.l", 0.0, 1.0, 4).add(0.3);
  obs::JsonWriter w;
  reg.write_json(w);
  const std::string& s = w.str();
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"a.b.c\":9"), std::string::npos);
  EXPECT_NE(s.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"p99\""), std::string::npos);
  EXPECT_NE(s.find("\"fixed_histograms\""), std::string::npos);
}

// -------------------------------------------------------------- Chrome trace

TEST(ChromeTrace, EmitsMetadataAndCompleteEvents) {
  sim::Trace t;
  t.set_lane_count(3);  // lane 2 has no spans but still gets a thread name
  t.record(0, "local-sort", 0, 2000, /*bytes=*/64);
  t.record(1, "send/receive", 1000, 5000);
  const std::string json = obs::chrome_trace_json(t, "test-proc");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("test-proc"), std::string::npos);
  EXPECT_NE(json.find("rank 2"), std::string::npos);  // declared empty lane
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"local-sort\""), std::string::npos);
  // ts/dur are microseconds: the 2000ns span becomes dur 2.
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":64"), std::string::npos);
}

TEST(ChromeTrace, EmptyTraceIsStillValidDocument) {
  sim::Trace t;
  const std::string json = obs::chrome_trace_json(t);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeTrace, SpanLabelsAreJsonEscaped) {
  sim::Trace t;
  t.record(0, "odd \"label\"\nwith\\escapes", 0, 1000);
  const std::string json = obs::chrome_trace_json(t);
  EXPECT_NE(json.find("odd \\\"label\\\"\\nwith\\\\escapes"),
            std::string::npos);
  // The raw unescaped forms must not leak into the document.
  EXPECT_EQ(json.find("\nwith"), std::string::npos);
}

TEST(ChromeTrace, ManyLabelsKeepFullNames) {
  // render_gantt folds labels past 62 into the '*' glyph; the Chrome
  // export has no glyph alphabet and must keep every name verbatim.
  sim::Trace t;
  for (int i = 0; i < 70; ++i)
    t.record(0, "label" + std::to_string(i), i * 10, i * 10 + 10);
  const std::string json = obs::chrome_trace_json(t);
  for (int i : {0, 26, 52, 69})
    EXPECT_NE(json.find("\"label" + std::to_string(i) + "\""),
              std::string::npos)
        << i;
  EXPECT_EQ(json.find("\"*\""), std::string::npos);
}

TEST(ChromeTrace, FlowEdgesBecomeMatchedArrowPairs) {
  sim::Trace t;
  t.set_lane_count(2);
  t.record(0, "send/receive", 0, 500);
  t.record(1, "send/receive", 0, 500);
  t.name_tag(3, "chunk");
  t.record_flow(sim::Trace::Flow(7, 0, 1, 100, 130, 4096, 3,
                                 sim::Trace::FlowKind::kData,
                                 /*retransmit=*/true, /*duplicate=*/false));
  t.record_flow(sim::Trace::Flow(7, 1, 0, 140, 150, 16, -1,
                                 sim::Trace::FlowKind::kAck,
                                 /*retransmit=*/false, /*duplicate=*/false));
  const std::string json = obs::chrome_trace_json(t);
  // One "s"/"f" pair per edge, arrow head bound to the enclosing slice.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow.data\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow.ack\""), std::string::npos);
  // The data arrow carries the tag label and the causal metadata.
  EXPECT_NE(json.find("\"name\":\"chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ack\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"retransmit\":true"), std::string::npos);
}

TEST(ChromeTrace, TimeSeriesDumpBecomesCounterEvents) {
  sim::Trace t;
  t.record(0, "work", 0, 1000);
  obs::TimeSeriesDump dump;
  dump.interval = 100;
  obs::TimeSeriesDump::Series s;
  s.name = "rank0.mailbox_depth";
  s.capacity = 8;
  s.points.push_back(obs::TimeSeriesPoint(0, 0.0));
  s.points.push_back(obs::TimeSeriesPoint(100, 3.0));
  dump.series.push_back(std::move(s));
  const std::string json = obs::chrome_trace_json(t, "pgxd", &dump);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank0.mailbox_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  // Without a dump, no counter events appear.
  EXPECT_EQ(obs::chrome_trace_json(t).find("\"ph\":\"C\""),
            std::string::npos);
}

// ---------------------------------------------------------------- TimeSeries

TEST(TimeSeries, RingDropsOldestPastCapacity) {
  obs::TimeSeries ts(3);
  for (sim::SimTime t = 0; t < 5; ++t)
    ts.push(t * 100, static_cast<double>(t));
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.capacity(), 3u);
  EXPECT_EQ(ts.dropped(), 2u);
  // Oldest-first iteration over the surviving window.
  EXPECT_EQ(ts.at(0).t, 200);
  EXPECT_EQ(ts.at(2).t, 400);
  EXPECT_EQ(ts.at(2).v, 4.0);
}

TEST(TimeSeriesSampler, SampleOnceSnapshotsEveryProbe) {
  obs::TimeSeriesSampler sampler(/*interval=*/100, /*capacity=*/4);
  double depth = 1.0;
  sampler.add("depth", [&depth] { return depth; });
  sampler.add("constant", [] { return 42.0; });
  sampler.sample_once(0);
  depth = 5.0;
  sampler.sample_once(100);
  const obs::TimeSeriesDump dump = sampler.dump();
  ASSERT_EQ(dump.series.size(), 2u);
  EXPECT_EQ(dump.interval, 100);
  ASSERT_EQ(dump.series[0].points.size(), 2u);
  EXPECT_EQ(dump.series[0].name, "depth");
  EXPECT_EQ(dump.series[0].points[0].v, 1.0);
  EXPECT_EQ(dump.series[0].points[1].v, 5.0);
  EXPECT_EQ(dump.series[1].points[1].v, 42.0);
}

sim::Task<void> stop_sampler_at(sim::Simulator& sim, sim::SimTime at,
                                obs::TimeSeriesSampler& sampler) {
  co_await sim.delay(at);
  sampler.request_stop();
}

TEST(TimeSeriesSampler, LoopSamplesOnIntervalAndStopsCleanly) {
  sim::Simulator sim;
  obs::TimeSeriesSampler sampler(/*interval=*/100, /*capacity=*/16);
  sampler.add("clock", [&sim] { return static_cast<double>(sim.now()); });
  sampler.start(sim);
  sim.spawn(stop_sampler_at(sim, 450, sampler));
  const sim::SimTime end = sim.run();
  // Samples at 0, 100, ..., 400; the cancelled tick must not push the
  // clock to 500.
  EXPECT_EQ(end, 450);
  EXPECT_FALSE(sampler.running());
  const obs::TimeSeriesDump dump = sampler.dump();
  ASSERT_EQ(dump.series.size(), 1u);
  ASSERT_EQ(dump.series[0].points.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dump.series[0].points[i].t, static_cast<sim::SimTime>(i * 100));
    EXPECT_EQ(dump.series[0].points[i].v, static_cast<double>(i * 100));
  }
}

// -------------------------------------------------------------- CriticalPath

// Hand-built two-lane trace: lane 1's merge waits on a chunk from lane 0.
//
//   lane 0: [local-sort 0..100]   --chunk(send 70, recv 100)-->
//   lane 1: [local-sort 0..80][merge 80..220]
//
// Expected path (backward from merge end 220): merge compute (100..220],
// wire (70..100], then local-sort compute (0..70] on lane 0.
sim::Trace make_two_lane_trace() {
  sim::Trace t;
  t.record(0, "local-sort", 0, 100);
  t.record(1, "local-sort", 0, 80);
  t.record(1, "merge", 80, 220);
  t.name_tag(3, "chunk");
  t.record_flow(sim::Trace::Flow(9, 0, 1, 70, 100, 4096, 3,
                                 sim::Trace::FlowKind::kData,
                                 /*retransmit=*/false, /*duplicate=*/false));
  return t;
}

TEST(CriticalPath, WalksAcrossTheBlockingEdge) {
  const sim::Trace t = make_two_lane_trace();
  const obs::CriticalPathReport cp = obs::compute_critical_path(t);
  EXPECT_TRUE(cp.computed);
  EXPECT_EQ(cp.total_ns, 220);
  EXPECT_EQ(cp.compute_ns, 190);  // 120 merge + 70 local-sort
  EXPECT_EQ(cp.wire_ns, 30);
  EXPECT_EQ(cp.hops, 1u);
  EXPECT_EQ(cp.end_lane, 1u);
  EXPECT_EQ(cp.start_lane, 0u);
  ASSERT_EQ(cp.top_edges.size(), 1u);
  EXPECT_EQ(cp.top_edges[0].span_id, 9u);
  EXPECT_EQ(cp.top_edges[0].label, "chunk");
  // Charged segments partition the end-to-end window exactly.
  EXPECT_EQ(cp.compute_ns + cp.wire_ns, cp.total_ns);
  double share_sum = 0.0;
  for (const auto& p : cp.phases) share_sum += p.share;
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(CriticalPath, DuplicateEdgesNeverCarryThePath) {
  sim::Trace t = make_two_lane_trace();
  // A dedup-suppressed copy landing later than the real one must not
  // hijack the walk (it did not enable any work).
  t.record_flow(sim::Trace::Flow(9, 0, 1, 205, 210, 4096, 3,
                                 sim::Trace::FlowKind::kData,
                                 /*retransmit=*/true, /*duplicate=*/true));
  const obs::CriticalPathReport cp = obs::compute_critical_path(t);
  EXPECT_EQ(cp.hops, 1u);
  ASSERT_EQ(cp.top_edges.size(), 1u);
  EXPECT_EQ(cp.top_edges[0].recv, 100);
}

TEST(CriticalPath, RunEndExtendsThePathAcrossTheDrainTail) {
  sim::Trace t = make_two_lane_trace();
  // An ack landing on lane 0 after every span ended — the protocol drain.
  t.record_flow(sim::Trace::Flow(9, 1, 0, 230, 260, 16, -1,
                                 sim::Trace::FlowKind::kAck,
                                 /*retransmit=*/false, /*duplicate=*/false));
  const obs::CriticalPathReport cp =
      obs::compute_critical_path(t, /*top_k=*/5, /*run_end=*/260);
  EXPECT_EQ(cp.total_ns, 260);
  EXPECT_EQ(cp.end_lane, 0u);  // the ack's receiver owns the tail
  EXPECT_EQ(cp.compute_ns + cp.wire_ns, cp.total_ns);
  // The final ack hop is on the path now.
  bool saw_ack = false;
  for (const auto& e : cp.top_edges) saw_ack |= e.label == "ack";
  EXPECT_TRUE(saw_ack);
}

TEST(CriticalPath, EmptyTraceReportsNotComputed) {
  sim::Trace t;
  const obs::CriticalPathReport cp = obs::compute_critical_path(t);
  EXPECT_FALSE(cp.computed);
  EXPECT_EQ(cp.total_ns, 0);
}

}  // namespace
}  // namespace pgxd
