// Tests for the observability layer: JSON emitter, metrics registry
// (counters, gauges, log-linear + fixed histograms, cross-rank merge), and
// the Chrome trace_event exporter.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace pgxd {
namespace {

// ---------------------------------------------------------------- JsonWriter

TEST(JsonWriter, NestedDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("name", "pgxd");
  w.kv("n", std::uint64_t{42});
  w.kv("ratio", 0.5);
  w.kv("ok", true);
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.kv("x", std::int64_t{-3});
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"pgxd\",\"n\":42,\"ratio\":0.5,\"ok\":true,"
            "\"list\":[1,2],\"nested\":{\"x\":-3}}");
}

TEST(JsonWriter, EscapesStrings) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriterDeath, RejectsMalformedNesting) {
  EXPECT_DEATH(
      {
        obs::JsonWriter w;
        w.begin_object();
        w.value(1.0);  // object value without a key
      },
      "without a key");
}

// ------------------------------------------------------------ Counter/Gauge

TEST(Metrics, CounterAccumulatesAndMergesByAddition) {
  obs::Counter a, b;
  a.inc();
  a.inc(4);
  b.inc(10);
  a.merge(b);
  EXPECT_EQ(a.value(), 15u);
}

TEST(Metrics, GaugeMergesByMax) {
  obs::Gauge a, b;
  a.set(3.0);
  b.set(7.0);
  a.merge(b);
  EXPECT_EQ(a.value(), 7.0);
  b.merge(a);
  EXPECT_EQ(b.value(), 7.0);
}

// -------------------------------------------------------------- LogHistogram

TEST(LogHistogram, SmallValuesAreExact) {
  obs::LogHistogram h;
  for (std::uint64_t v = 0; v < obs::LogHistogram::kSubBuckets; ++v)
    EXPECT_EQ(obs::LogHistogram::bucket_floor(v), v);
}

TEST(LogHistogram, BucketFloorWithinRelativeErrorBound) {
  // Log-linear with 32 sub-buckets per octave: floor(v) <= v and the bucket
  // width is at most v / 16, so floor(v) > v * (1 - 1/16).
  for (std::uint64_t v : {100ull, 1000ull, 123456ull, 1ull << 40,
                          (1ull << 63) + 12345ull}) {
    const std::uint64_t f = obs::LogHistogram::bucket_floor(v);
    EXPECT_LE(f, v);
    EXPECT_GT(static_cast<double>(f), static_cast<double>(v) * (1.0 - 1.0 / 16));
  }
}

TEST(LogHistogram, MomentsAndQuantiles) {
  obs::LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  // Quantile lands within one sub-bucket (1/16 relative) of the true value.
  const double p50 = static_cast<double>(h.quantile(0.5));
  EXPECT_GT(p50, 500.0 * (1.0 - 1.0 / 16));
  EXPECT_LE(p50, 500.0 * (1.0 + 1.0 / 16));
  const double p99 = static_cast<double>(h.quantile(0.99));
  EXPECT_GT(p99, 990.0 * (1.0 - 1.0 / 16));
  EXPECT_LE(p99, 1000.0);
}

TEST(LogHistogram, MergeMatchesCombinedStream) {
  obs::LogHistogram all, a, b;
  for (std::uint64_t v = 0; v < 5000; ++v) {
    const std::uint64_t x = (v * 2654435761u) % 100000;
    all.add(x);
    (v % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_EQ(a.sum(), all.sum());
  for (double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_EQ(a.quantile(q), all.quantile(q));
}

TEST(LogHistogram, WeightedAdd) {
  obs::LogHistogram h;
  h.add(10, 100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 1000u);
  EXPECT_EQ(h.quantile(0.5), 10u);
}

// ------------------------------------------------------------ FixedHistogram

TEST(FixedHistogram, ClampsOutOfRangeIntoEdgeBuckets) {
  obs::FixedHistogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(0.5);
  h.add(9.5);
  h.add(25.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);  // -5 clamps down
  EXPECT_EQ(h.bucket_count(9), 2u);  // 25 clamps up
}

TEST(FixedHistogram, MergeRequiresIdenticalLayout) {
  obs::FixedHistogram a(0.0, 1.0, 4), b(0.0, 1.0, 4);
  a.add(0.1);
  b.add(0.9);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  obs::FixedHistogram c(0.0, 2.0, 4);
  EXPECT_DEATH(a.merge(c), "");
}

// ------------------------------------------------------------------ Registry

TEST(MetricsRegistry, InstrumentsCreatedOnFirstUseWithStableRefs) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("sort.exchange.chunks_sent");
  c.inc(3);
  // Creating more instruments must not invalidate the first reference.
  for (int i = 0; i < 100; ++i)
    reg.counter("filler." + std::to_string(i)).inc();
  c.inc(2);
  EXPECT_EQ(reg.counter_value("sort.exchange.chunks_sent"), 5u);
  EXPECT_EQ(reg.counter_value("never.created"), 0u);
}

TEST(MetricsRegistry, MergeFoldsAllInstrumentKinds) {
  obs::MetricsRegistry a, b;
  a.counter("c").inc(1);
  b.counter("c").inc(2);
  b.counter("only_b").inc(7);
  a.gauge("g").set(5.0);
  b.gauge("g").set(3.0);
  a.histogram("h").add(10);
  b.histogram("h").add(1000);
  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 3u);
  EXPECT_EQ(a.counter_value("only_b"), 7u);
  EXPECT_EQ(a.gauge_value("g"), 5.0);
  EXPECT_EQ(a.histograms().at("h").count(), 2u);
  EXPECT_EQ(a.histograms().at("h").max(), 1000u);
}

TEST(MetricsRegistry, MergeAllAcrossRanks) {
  std::vector<obs::MetricsRegistry> ranks(4);
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    ranks[r].counter("sort.load.items").inc(100 * (r + 1));
    ranks[r].gauge("sort.memory.peak_temp_bytes")
        .set(1000.0 * static_cast<double>(r + 1));
  }
  const obs::MetricsRegistry merged = obs::merge_all(ranks);
  EXPECT_EQ(merged.counter_value("sort.load.items"), 1000u);
  EXPECT_EQ(merged.gauge_value("sort.memory.peak_temp_bytes"), 4000.0);
}

TEST(MetricsRegistry, WriteJsonEmitsEverySection) {
  obs::MetricsRegistry reg;
  reg.counter("a.b.c").inc(9);
  reg.gauge("d.e.f").set(2.5);
  reg.histogram("g.h.i").add(100);
  reg.fixed_histogram("j.k.l", 0.0, 1.0, 4).add(0.3);
  obs::JsonWriter w;
  reg.write_json(w);
  const std::string& s = w.str();
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"a.b.c\":9"), std::string::npos);
  EXPECT_NE(s.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"p99\""), std::string::npos);
  EXPECT_NE(s.find("\"fixed_histograms\""), std::string::npos);
}

// -------------------------------------------------------------- Chrome trace

TEST(ChromeTrace, EmitsMetadataAndCompleteEvents) {
  sim::Trace t;
  t.set_lane_count(3);  // lane 2 has no spans but still gets a thread name
  t.record(0, "local-sort", 0, 2000, /*bytes=*/64);
  t.record(1, "send/receive", 1000, 5000);
  const std::string json = obs::chrome_trace_json(t, "test-proc");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("test-proc"), std::string::npos);
  EXPECT_NE(json.find("rank 2"), std::string::npos);  // declared empty lane
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"local-sort\""), std::string::npos);
  // ts/dur are microseconds: the 2000ns span becomes dur 2.
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":64"), std::string::npos);
}

TEST(ChromeTrace, EmptyTraceIsStillValidDocument) {
  sim::Trace t;
  const std::string json = obs::chrome_trace_json(t);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace pgxd
