// Tests for the Fig. 2 balanced merge handler and the full local parallel
// sort (paper step 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/parallel_sort.hpp"
#include "sort/soa_merge.hpp"

namespace pgxd::sort {
namespace {

TEST(MergeSchedule, EightRunsReproducesFigure2) {
  const auto levels = merge_schedule(8);
  ASSERT_EQ(levels.size(), 3u);
  // Level 0: (0,1) (2,3) (4,5) (6,7) — threads 1->0, 3->2, 5->4, 7->6.
  ASSERT_EQ(levels[0].size(), 4u);
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(levels[0][m].left, 2 * m);
    EXPECT_EQ(levels[0][m].right, 2 * m + 1);
  }
  // Level 1 (indices within the 4 surviving runs): (0,1) (2,3), i.e. the
  // original threads 2->0 and 6->4.
  ASSERT_EQ(levels[1].size(), 2u);
  // Level 2: final merge, original thread 4 -> 0.
  ASSERT_EQ(levels[2].size(), 1u);
}

TEST(MergeSchedule, OddRunCounts) {
  const auto levels = merge_schedule(5);
  // 5 -> 3 -> 2 -> 1: three levels with 2, 1, 1 merges.
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].size(), 2u);
  EXPECT_EQ(levels[1].size(), 1u);
  EXPECT_EQ(levels[2].size(), 1u);
}

TEST(MergeSchedule, TrivialCounts) {
  EXPECT_TRUE(merge_schedule(0).empty());
  EXPECT_TRUE(merge_schedule(1).empty());
  EXPECT_EQ(merge_schedule(2).size(), 1u);
}

std::vector<std::uint64_t> make_runs(std::size_t runs, std::size_t per_run,
                                     std::uint64_t seed,
                                     std::vector<std::size_t>& bounds) {
  Rng rng(seed);
  std::vector<std::uint64_t> data;
  bounds.clear();
  bounds.push_back(0);
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> run(per_run);
    for (auto& x : run) x = rng.bounded(1 << 20);
    std::sort(run.begin(), run.end());
    data.insert(data.end(), run.begin(), run.end());
    bounds.push_back(data.size());
  }
  return data;
}

class BalancedMergeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BalancedMergeSweep, SortsForAnyRunCount) {
  const std::size_t runs = GetParam();
  std::vector<std::size_t> bounds;
  auto data = make_runs(runs, 1000, runs + 5, bounds);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  std::vector<std::uint64_t> scratch;
  const auto stats = balanced_merge(data, bounds, scratch);
  EXPECT_EQ(data, expect);
  if (runs > 1) {
    EXPECT_EQ(stats.levels, merge_schedule(runs).size());
  }
}

INSTANTIATE_TEST_SUITE_P(RunCounts, BalancedMergeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 32));

TEST(BalancedMerge, UnevenRunSizes) {
  std::vector<std::size_t> bounds{0};
  std::vector<std::uint64_t> data;
  Rng rng(77);
  for (std::size_t len : {0u, 5u, 10000u, 1u, 300u, 0u, 42u}) {
    std::vector<std::uint64_t> run(len);
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    data.insert(data.end(), run.begin(), run.end());
    bounds.push_back(data.size());
  }
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  std::vector<std::uint64_t> scratch;
  balanced_merge(data, bounds, scratch);
  EXPECT_EQ(data, expect);
}

TEST(BalancedMerge, WithThreadPoolMatchesSequential) {
  ThreadPool pool(4);
  std::vector<std::size_t> bounds;
  auto data = make_runs(8, 50000, 9, bounds);
  auto seq = data;
  auto seq_bounds = bounds;
  std::vector<std::uint64_t> scratch1, scratch2;
  balanced_merge(seq, seq_bounds, scratch1);
  balanced_merge(data, bounds, scratch2, std::less<std::uint64_t>{}, &pool);
  EXPECT_EQ(data, seq);
}

TEST(BalancedMerge, ElementsMovedCountsLevelTraffic) {
  // 4 equal runs of 100: every level moves all 400 elements.
  std::vector<std::size_t> bounds;
  auto data = make_runs(4, 100, 13, bounds);
  std::vector<std::uint64_t> scratch;
  const auto stats = balanced_merge(data, bounds, scratch);
  EXPECT_EQ(stats.levels, 2u);
  EXPECT_EQ(stats.merges, 3u);
  EXPECT_EQ(stats.elements_moved, 800u);
}

TEST(BalancedMerge, EmptyAndSingleRun) {
  std::vector<std::uint64_t> data;
  std::vector<std::uint64_t> scratch;
  auto stats = balanced_merge(data, {0}, scratch);
  EXPECT_EQ(stats.levels, 0u);

  data = {5, 6, 7};
  stats = balanced_merge(data, {0, 3}, scratch);
  EXPECT_EQ(stats.levels, 0u);
  EXPECT_EQ(data, (std::vector<std::uint64_t>{5, 6, 7}));
}

// --- SoA (key + permutation) balanced merge ---------------------------------

// Oracle properties for balanced_merge_soa: the merged keys equal
// std::sort's result, the permutation is a true permutation that maps each
// output slot back to its input key, and equal keys keep ascending
// permutation values (the stability invariant provenance reconstruction in
// the distributed sort relies on).
void check_soa_merge(std::vector<std::uint64_t> keys,
                     std::vector<std::size_t> bounds,
                     pgxd::ThreadPool* pool = nullptr) {
  const std::vector<std::uint64_t> original = keys;
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  std::vector<std::uint32_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<std::uint64_t> key_scratch;
  std::vector<std::uint32_t> perm_scratch;
  const auto res =
      balanced_merge_soa(keys, perm, bounds, key_scratch, perm_scratch,
                         std::less<std::uint64_t>{}, pool);
  const auto& mk = res.in_scratch ? key_scratch : keys;
  const auto& mp = res.in_scratch ? perm_scratch : perm;
  ASSERT_EQ(mk.size(), original.size());
  ASSERT_EQ(mp.size(), original.size());
  ASSERT_TRUE(std::equal(mk.begin(), mk.end(), expect.begin(), expect.end()));
  std::vector<bool> seen(original.size(), false);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const std::uint32_t q = mp[i];
    ASSERT_LT(q, original.size());
    ASSERT_FALSE(seen[q]) << "permutation repeats source index " << q;
    seen[q] = true;
    ASSERT_EQ(mk[i], original[q]) << "perm does not map back to its key";
    if (i > 0 && mk[i] == mk[i - 1]) {
      ASSERT_LT(mp[i - 1], mp[i]) << "equal keys must keep ascending perm";
    }
  }
}

class SoaMergeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SoaMergeSweep, MergesAnyRunCountWithValidPermutation) {
  const std::size_t runs = GetParam();
  std::vector<std::size_t> bounds;
  auto keys = make_runs(runs, 700, runs + 19, bounds);
  check_soa_merge(std::move(keys), std::move(bounds));
}

INSTANTIATE_TEST_SUITE_P(RunCounts, SoaMergeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 32));

TEST(SoaMerge, AdversarialKeyPatterns) {
  // All-equal, two-value, and presorted runs stress the tie-stability rule.
  for (int pattern = 0; pattern < 3; ++pattern) {
    std::vector<std::size_t> bounds{0};
    std::vector<std::uint64_t> keys;
    Rng rng(100 + pattern);
    for (std::size_t r = 0; r < 6; ++r) {
      std::vector<std::uint64_t> run(500);
      for (auto& x : run) {
        if (pattern == 0) x = 7;
        else if (pattern == 1) x = rng.bounded(2);
        else x = rng.bounded(50);
      }
      std::sort(run.begin(), run.end());
      keys.insert(keys.end(), run.begin(), run.end());
      bounds.push_back(keys.size());
    }
    check_soa_merge(std::move(keys), std::move(bounds));
  }
}

TEST(SoaMerge, UnevenAndEmptyRuns) {
  std::vector<std::size_t> bounds{0};
  std::vector<std::uint64_t> keys;
  Rng rng(55);
  for (std::size_t len : {0u, 3u, 9000u, 1u, 250u, 0u, 17u}) {
    std::vector<std::uint64_t> run(len);
    for (auto& x : run) x = rng.bounded(1000);
    std::sort(run.begin(), run.end());
    keys.insert(keys.end(), run.begin(), run.end());
    bounds.push_back(keys.size());
  }
  check_soa_merge(std::move(keys), std::move(bounds));
}

TEST(SoaMerge, WithThreadPoolMatchesSequential) {
  ThreadPool pool(4);
  std::vector<std::size_t> bounds;
  auto keys = make_runs(8, 40000, 3, bounds);
  check_soa_merge(std::move(keys), std::move(bounds), &pool);
}

TEST(SoaMerge, SingleRunIsNoOpInPlace) {
  std::vector<std::uint64_t> keys{1, 2, 3};
  std::vector<std::uint32_t> perm{0, 1, 2};
  std::vector<std::uint64_t> ks;
  std::vector<std::uint32_t> ps;
  const auto res = balanced_merge_soa(keys, perm, {0, 3}, ks, ps);
  EXPECT_FALSE(res.in_scratch);
  EXPECT_EQ(res.stats.levels, 0u);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 3}));
}

// --- parallel_sort -----------------------------------------------------------

class ParallelSortSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ParallelSortSweep, MatchesStdSortAcrossChunkCounts) {
  const auto [n, chunks] = GetParam();
  Rng rng(n + chunks);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.bounded(10000);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  ThreadPool pool(3);
  std::vector<std::uint64_t> scratch;
  const auto stats =
      parallel_sort(v, scratch, std::less<std::uint64_t>{}, &pool, chunks);
  EXPECT_EQ(v, expect);
  EXPECT_GE(stats.chunks, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndChunks, ParallelSortSweep,
    ::testing::Combine(::testing::Values(0, 1, 100, 1000, 100000),
                       ::testing::Values(1, 2, 7, 8, 32)));

TEST(ParallelSort, ChunkCountClampedForTinyInputs) {
  std::vector<std::uint64_t> v{3, 1, 2};
  std::vector<std::uint64_t> scratch;
  const auto stats = parallel_sort(v, scratch, std::less<std::uint64_t>{},
                                   nullptr, 32);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(stats.chunks, 1u);
}

TEST(ParallelSort, EqualChunksProduceBalancedTree) {
  // 8 equal chunks: the Fig. 2 tree has 3 levels and 7 merges.
  std::vector<std::uint64_t> v(80000);
  Rng rng(31);
  for (auto& x : v) x = rng.next();
  std::vector<std::uint64_t> scratch;
  const auto stats =
      parallel_sort(v, scratch, std::less<std::uint64_t>{}, nullptr, 8);
  EXPECT_EQ(stats.chunks, 8u);
  EXPECT_EQ(stats.merge.levels, 3u);
  EXPECT_EQ(stats.merge.merges, 7u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(ParallelSort, DuplicateHeavyInput) {
  std::vector<std::uint64_t> v(50000);
  Rng rng(37);
  for (auto& x : v) x = rng.bounded(3);
  ThreadPool pool(2);
  std::vector<std::uint64_t> scratch;
  parallel_sort(v, scratch, std::less<std::uint64_t>{}, &pool, 8);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

}  // namespace
}  // namespace pgxd::sort
