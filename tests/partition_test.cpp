// The statistical balance-guarantee harness for the partitioning layer.
//
// Three levels of scrutiny:
//   1. Unit tests for the pure kernels in sort/partition.hpp: the AMS group
//      geometry, the member-side rank-counting and candidate-draw kernels,
//      and the master-side HistogramRefiner state machine.
//   2. A pure-logic multi-rank refinement harness that drives the refiner
//      exactly the way the sorter's master does — count round, draw round,
//      repeat — over synthetic shards, up to p = 4096 partitions, and
//      cross-checks the refiner's claimed epsilon against the splitters'
//      true global rank brackets. This is where the "to p=4096" guarantee
//      lives: no simulation needed, so the full scale is cheap to test.
//   3. End-to-end simulated sorts at p in {64, 256, 1024}: every scheme
//      stays sorted, meets its scheme-appropriate imbalance bound, and all
//      three schemes produce the identical final sorted sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/distributed_sort.hpp"
#include "core/validate.hpp"
#include "datagen/distributions.hpp"
#include "sort/partition.hpp"

namespace pgxd::sort {
namespace {

using Key = std::uint64_t;

// ---- AMS group geometry ----------------------------------------------------

TEST(AmsGeometry, GroupCountBounds) {
  EXPECT_EQ(ams_group_count(1), 1u);
  EXPECT_EQ(ams_group_count(2), 1u);
  EXPECT_EQ(ams_group_count(3), 1u);
  EXPECT_EQ(ams_group_count(4), 2u);
  EXPECT_EQ(ams_group_count(16), 4u);
  EXPECT_EQ(ams_group_count(64), 8u);
  EXPECT_EQ(ams_group_count(1024), 32u);
  EXPECT_EQ(ams_group_count(4096), 64u);
  for (std::size_t q = 4; q <= 4096; q = q * 2 + 1) {
    const std::size_t g = ams_group_count(q);
    EXPECT_GE(g, 2u) << q;
    EXPECT_LE(g, q / 2) << q;  // every group has >= 2 members
  }
}

TEST(AmsGeometry, LayoutIsContiguousAndBalanced) {
  for (std::size_t q : {4u, 5u, 9u, 17u, 64u, 100u, 1000u, 1024u, 4096u}) {
    const AmsLayout l = ams_layout(q);
    ASSERT_EQ(l.start.size(), l.groups + 1) << q;
    EXPECT_EQ(l.start.front(), 0u);
    EXPECT_EQ(l.start.back(), q);
    std::size_t min_sz = q, max_sz = 0;
    for (std::size_t g = 0; g < l.groups; ++g) {
      min_sz = std::min(min_sz, l.size(g));
      max_sz = std::max(max_sz, l.size(g));
      for (std::size_t m = l.start[g]; m < l.start[g + 1]; ++m)
        EXPECT_EQ(l.group_of(m), g) << q << " member " << m;
    }
    EXPECT_LE(max_sz - min_sz, 1u) << q;  // balanced within one member
  }
}

TEST(AmsGeometry, PartnerStaysInGroupAndSpreadsSenders) {
  const AmsLayout l = ams_layout(20);  // groups of 5
  for (std::size_t g = 0; g < l.groups; ++g) {
    std::vector<std::size_t> fan_in(l.q, 0);
    for (std::size_t s = 0; s < l.q; ++s) {
      const std::size_t p = l.partner(s, g);
      ASSERT_GE(p, l.start[g]);
      ASSERT_LT(p, l.start[g + 1]);
      ++fan_in[p];
    }
    // Round-robin: every member of the group receives q / size(g) senders
    // give or take one.
    for (std::size_t m = l.start[g]; m < l.start[g + 1]; ++m) {
      EXPECT_GE(fan_in[m], l.q / l.size(g) - 1);
      EXPECT_LE(fan_in[m], l.q / l.size(g) + 1);
    }
  }
}

// ---- Member-side kernels ---------------------------------------------------

TEST(CountRanks, MatchesBruteForce) {
  std::mt19937_64 rng(7);
  std::vector<Key> data(500);
  for (auto& k : data) k = rng() % 100;  // heavy duplication on purpose
  std::sort(data.begin(), data.end());
  std::vector<Key> probes = {0, 3, 17, 17, 42, 99, 250};
  std::sort(probes.begin(), probes.end());
  std::vector<std::uint64_t> lo, hi;
  count_ranks<Key>(data, probes, lo, hi);
  ASSERT_EQ(lo.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto below = static_cast<std::uint64_t>(
        std::count_if(data.begin(), data.end(),
                      [&](Key k) { return k < probes[i]; }));
    const auto at_or_below = static_cast<std::uint64_t>(
        std::count_if(data.begin(), data.end(),
                      [&](Key k) { return k <= probes[i]; }));
    EXPECT_EQ(lo[i], below) << "probe " << probes[i];
    EXPECT_EQ(hi[i], at_or_below) << "probe " << probes[i];
  }
}

TEST(DrawCandidates, StaysStrictlyInsideIntervals) {
  std::vector<Key> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 10 * i;
  std::vector<RefineInterval<Key>> ivs(2);
  ivs[0] = {100, 300, true, true};   // keys 110..290 qualify
  ivs[1] = {800, 0, true, false};    // keys 810.. qualify (open above)
  const auto out = draw_candidates<Key>(data, ivs, 4);
  ASSERT_FALSE(out.empty());
  for (Key k : out) {
    const bool in0 = k > 100 && k < 300;
    const bool in1 = k > 800;
    EXPECT_TRUE(in0 || in1) << k;
  }
}

TEST(DrawCandidates, RespectsPerIntervalCapAndEmptyIntervals) {
  std::vector<Key> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i;
  std::vector<RefineInterval<Key>> ivs(2);
  ivs[0] = {0, 999, true, true};
  ivs[1] = {500, 501, true, true};  // nothing strictly between 500 and 501
  const auto out = draw_candidates<Key>(data, ivs, 6);
  EXPECT_EQ(out.size(), 6u);  // cap from the wide interval, zero from empty
}

// ---- HistogramRefiner unit behaviour --------------------------------------

TEST(HistogramRefiner, AllDuplicateDataResolvesImmediately) {
  // One dup run covers every target rank: err = 0 as soon as the key is
  // certified, so one counting round suffices.
  const std::uint64_t n = 1000;
  HistogramRefiner<Key> ref(8, n, 0.05);
  auto probes = ref.seed({77, 77, 77});
  ASSERT_EQ(probes.size(), 1u);  // dups deduplicated
  ref.absorb_counts({0}, {n});
  EXPECT_TRUE(ref.done());
  const auto sp = ref.splitters();
  ASSERT_EQ(sp.size(), 7u);
  for (Key s : sp) EXPECT_EQ(s, 77u);
  EXPECT_EQ(ref.achieved_epsilon(), 0.0);
}

TEST(HistogramRefiner, ExhaustedIntervalStopsRefining) {
  // Two distinct keys, a rank gap between them, and nothing in the middle:
  // after a draw round yields nothing for the bracket the boundary must be
  // declared final instead of looping forever.
  const std::uint64_t n = 100;
  HistogramRefiner<Key> ref(2, n, 0.001);  // tol = 1, target rank 50
  auto probes = ref.seed({10, 20});
  ASSERT_EQ(probes.size(), 2u);
  ref.absorb_counts({0, 60}, {40, 100});  // brackets [0,40] and [60,100]
  ASSERT_FALSE(ref.done());               // target 50 outside both
  const auto ivs = ref.draw_intervals();
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_TRUE(ivs[0].has_lo);
  EXPECT_TRUE(ivs[0].has_hi);
  EXPECT_EQ(ivs[0].lo, 10u);
  EXPECT_EQ(ivs[0].hi, 20u);
  const auto fresh = ref.absorb_draws({});  // no key exists inside
  EXPECT_TRUE(fresh.empty());
  EXPECT_TRUE(ref.done());
  const auto sp = ref.splitters();
  ASSERT_EQ(sp.size(), 1u);
  EXPECT_TRUE(sp[0] == 10 || sp[0] == 20);  // best certified candidate
}

// ---- The multi-rank refinement harness, to p = 4096 ------------------------

struct HarnessOutcome {
  std::vector<Key> splitters;
  std::size_t rounds = 0;
  std::size_t probe_keys = 0;
  double achieved = 0.0;
  std::uint64_t tolerance = 0;
};

// Drives the refiner exactly like the sorter's master: seed with a small
// evenly spaced per-rank sample, then alternate counting rounds (exact
// global rank brackets summed across ranks) and draw rounds until done.
HarnessOutcome refine_over(const std::vector<std::vector<Key>>& ranks,
                           std::size_t parts, double eps,
                           std::size_t max_rounds) {
  std::uint64_t total_n = 0;
  for (const auto& r : ranks) total_n += r.size();
  HistogramRefiner<Key> ref(parts, total_n, eps);

  const std::size_t per_rank =
      std::max<std::size_t>(2, parts / kHistogramSampleDivisor);
  std::vector<Key> init;
  for (const auto& r : ranks)
    for (std::size_t i = 0; i < per_rank && !r.empty(); ++i)
      init.push_back(r[(i + 1) * r.size() / (per_rank + 1)]);
  auto probes = ref.seed(std::move(init));

  std::vector<std::uint64_t> lo_sum, hi_sum, lo, hi;
  while (ref.rounds() < max_rounds) {
    lo_sum.assign(probes.size(), 0);
    hi_sum.assign(probes.size(), 0);
    for (const auto& r : ranks) {
      count_ranks<Key>(r, probes, lo, hi);
      for (std::size_t i = 0; i < probes.size(); ++i) {
        lo_sum[i] += lo[i];
        hi_sum[i] += hi[i];
      }
    }
    ref.absorb_counts(lo_sum, hi_sum);
    if (ref.done()) break;
    const auto ivs = ref.draw_intervals();
    std::vector<Key> drawn;
    for (const auto& r : ranks) {
      const auto got = draw_candidates<Key>(r, ivs, kDrawPerInterval);
      drawn.insert(drawn.end(), got.begin(), got.end());
    }
    probes = ref.absorb_draws(std::move(drawn));
    if (probes.empty()) break;  // every open interval exhausted
  }
  return {ref.splitters(), ref.rounds(), ref.probe_keys(),
          ref.achieved_epsilon(), ref.tolerance()};
}

struct ScaleParam {
  std::size_t parts;
  gen::Distribution dist;
};

class RefinerScale : public ::testing::TestWithParam<ScaleParam> {};

TEST_P(RefinerScale, MeetsEpsilonAtScale) {
  const auto [parts, dist] = GetParam();
  const std::size_t machines = 32;
  const std::size_t total_n = 32 * 4096;  // 131072 keys, >= 32 per partition
  gen::DataGenConfig dcfg;
  dcfg.dist = dist;
  dcfg.domain = 1u << 20;
  dcfg.seed = 1234;
  std::vector<std::vector<Key>> ranks(machines);
  std::vector<Key> global;
  for (std::size_t r = 0; r < machines; ++r) {
    ranks[r] = gen::generate_shard(dcfg, total_n, machines, r);
    std::sort(ranks[r].begin(), ranks[r].end());
    global.insert(global.end(), ranks[r].begin(), ranks[r].end());
  }
  std::sort(global.begin(), global.end());

  const double eps = 0.05;
  const auto out = refine_over(ranks, parts, eps, /*max_rounds=*/64);

  ASSERT_EQ(out.splitters.size(), parts - 1);
  EXPECT_TRUE(
      std::is_sorted(out.splitters.begin(), out.splitters.end()));
  // The tolerance is floored at one rank; at parts close to N the floor
  // implies a larger epsilon than requested (1 rank of 32-per-partition
  // is eps = 1/16), and that floor is the real guarantee.
  const double eps_floor = 2.0 * static_cast<double>(parts) *
                           static_cast<double>(out.tolerance) /
                           static_cast<double>(global.size());
  EXPECT_LE(out.achieved, std::max(eps, eps_floor) + 1e-12)
      << "refiner claims it missed the target after " << out.rounds
      << " rounds";
  EXPECT_LE(out.rounds, 32u) << "convergence should be geometric";
  EXPECT_GE(out.rounds, 1u);
  EXPECT_GT(out.probe_keys, 0u);

  // Independent audit: the refiner's claim must hold against the true
  // global rank brackets of the splitters it returned.
  std::vector<std::uint64_t> lo, hi;
  count_ranks<Key>(global, out.splitters, lo, hi);
  for (std::size_t j = 0; j + 1 < parts; ++j) {
    const std::uint64_t target = (j + 1) * global.size() / parts;
    std::uint64_t err = 0;
    if (lo[j] > target)
      err = lo[j] - target;
    else if (hi[j] < target)
      err = target - hi[j];
    EXPECT_LE(err, out.tolerance)
        << "boundary " << j << " off by " << err << " ranks at p=" << parts;
  }
}

std::vector<ScaleParam> scale_grid() {
  std::vector<ScaleParam> out;
  for (std::size_t parts : {64u, 256u, 1024u, 4096u})
    for (auto dist : {gen::Distribution::kUniform,
                      gen::Distribution::kRightSkewed,
                      gen::Distribution::kZipf,
                      gen::Distribution::kFewDistinct})
      out.push_back({parts, dist});
  return out;
}

std::string scale_name(const ::testing::TestParamInfo<ScaleParam>& info) {
  std::string n = "P" + std::to_string(info.param.parts);
  switch (info.param.dist) {
    case gen::Distribution::kUniform: n += "Uniform"; break;
    case gen::Distribution::kRightSkewed: n += "Skewed"; break;
    case gen::Distribution::kZipf: n += "Zipf"; break;
    case gen::Distribution::kFewDistinct: n += "FewDistinct"; break;
    default: n += "Other"; break;
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(UpTo4096, RefinerScale,
                         ::testing::ValuesIn(scale_grid()), scale_name);

// Adversarial presorted input: globally sorted data dealt to the ranks in
// contiguous range slices, so each rank's local keys occupy one narrow
// disjoint band and no local sample resembles the global distribution.
// Rank-count refinement is immune — counting rounds are exact no matter
// where the keys live — and must still certify epsilon.
TEST(RefinerPresorted, ContiguousRangeShardsMeetEpsilon) {
  const std::size_t machines = 32;
  std::mt19937_64 rng(5150);
  std::vector<Key> global(131072);
  for (auto& k : global) k = rng() % (1u << 20);
  std::sort(global.begin(), global.end());
  std::vector<std::vector<Key>> ranks(machines);
  for (std::size_t r = 0; r < machines; ++r)
    ranks[r].assign(
        global.begin() +
            static_cast<std::ptrdiff_t>(r * global.size() / machines),
        global.begin() +
            static_cast<std::ptrdiff_t>((r + 1) * global.size() / machines));
  for (std::size_t parts : {256u, 1024u}) {
    const double eps = 0.05;
    const auto out = refine_over(ranks, parts, eps, /*max_rounds=*/64);
    ASSERT_EQ(out.splitters.size(), parts - 1);
    const double eps_floor = 2.0 * static_cast<double>(parts) *
                             static_cast<double>(out.tolerance) /
                             static_cast<double>(global.size());
    EXPECT_LE(out.achieved, std::max(eps, eps_floor) + 1e-12) << parts;
    std::vector<std::uint64_t> lo, hi;
    count_ranks<Key>(global, out.splitters, lo, hi);
    for (std::size_t j = 0; j + 1 < parts; ++j) {
      const std::uint64_t target = (j + 1) * global.size() / parts;
      std::uint64_t err = 0;
      if (lo[j] > target)
        err = lo[j] - target;
      else if (hi[j] < target)
        err = target - hi[j];
      EXPECT_LE(err, out.tolerance)
          << "boundary " << j << " off by " << err << " ranks at p=" << parts;
    }
  }
}

// ---- Control-volume crossover ----------------------------------------------

TEST(ControlVolume, CrossoverFavorsScalableSchemesAtLargeP) {
  const std::uint64_t key_bytes = 8, sample = 512, rounds = 3, probes = 8;
  auto total = [&](PartitionScheme s, std::uint64_t q) {
    return model_control_volume(s, q, key_bytes, sample, rounds, probes)
        .total();
  };
  // Small p: the flat scheme's O(p^2) terms are still cheap and the extra
  // machinery costs more than it saves.
  EXPECT_LE(total(PartitionScheme::kOneLevelSample, 16),
            total(PartitionScheme::kTwoLevelAms, 16));
  // Large p: both refined schemes beat the baseline on total volume, and
  // AMS kills the O(p^2) splitter/counts control plane outright (its total
  // is dominated by the benign sample term).
  auto control = [&](PartitionScheme s, std::uint64_t q) {
    const auto v =
        model_control_volume(s, q, key_bytes, sample, rounds, probes);
    return v.splitter_bytes + v.counts_bytes;
  };
  for (std::uint64_t q : {1024u, 2048u, 4096u}) {
    EXPECT_LT(total(PartitionScheme::kHistogramRefine, q),
              total(PartitionScheme::kOneLevelSample, q))
        << q;
    EXPECT_LT(total(PartitionScheme::kTwoLevelAms, q),
              total(PartitionScheme::kOneLevelSample, q))
        << q;
    EXPECT_LT(control(PartitionScheme::kTwoLevelAms, q),
              control(PartitionScheme::kOneLevelSample, q) / 10)
        << q;
  }
  // The model is monotone in q for every scheme.
  for (auto s : {PartitionScheme::kOneLevelSample,
                 PartitionScheme::kHistogramRefine,
                 PartitionScheme::kTwoLevelAms})
    for (std::uint64_t q = 64; q < 4096; q *= 2)
      EXPECT_LT(total(s, q), total(s, q * 2)) << static_cast<int>(s);
}

}  // namespace
}  // namespace pgxd::sort

// ---- End-to-end epsilon-balance under the simulated sorter ------------------

namespace pgxd::core {
namespace {

using Key = std::uint64_t;
using Sorter = DistributedSorter<Key>;
using sort::PartitionScheme;

std::vector<std::vector<Key>> shards_for(gen::Distribution dist,
                                         std::size_t total_n,
                                         std::size_t machines) {
  gen::DataGenConfig dcfg;
  dcfg.dist = dist;
  dcfg.domain = 1u << 20;
  dcfg.seed = 99;
  std::vector<std::vector<Key>> out;
  for (std::size_t r = 0; r < machines; ++r)
    out.push_back(gen::generate_shard(dcfg, total_n, machines, r));
  return out;
}

// Worst relative deviation of the output partition sizes from the ideal
// n/p — the metric the epsilon guarantee is stated in.
double imbalance(const Sorter& sorter, std::size_t total_n) {
  const auto& parts = sorter.partitions();
  const double ideal =
      static_cast<double>(total_n) / static_cast<double>(parts.size());
  std::size_t max_sz = 0;
  for (const auto& p : parts) max_sz = std::max(max_sz, p.size());
  return static_cast<double>(max_sz) / ideal - 1.0;
}

// Runs one sort and returns the concatenated output for cross-scheme
// comparison; asserts sortedness and the scheme's imbalance bound inline.
std::vector<Key> run_scheme(PartitionScheme scheme,
                            const std::vector<std::vector<Key>>& shards,
                            double max_imbalance) {
  SortConfig cfg;
  cfg.partition = scheme;
  cfg.partition_epsilon = 0.10;
  cfg.partition_max_rounds = 30;
  EXPECT_TRUE(cfg.validate().empty());

  rt::ClusterConfig ccfg;
  ccfg.machines = shards.size();
  ccfg.threads_per_machine = 2;
  rt::Cluster<Sorter::Msg> cluster(ccfg);
  Sorter sorter(cluster, cfg);
  sorter.run(shards);

  const auto report = validate_sorted(sorter.partitions(), shards);
  EXPECT_TRUE(report.ok()) << report.failure;

  std::size_t total_n = 0;
  for (const auto& s : shards) total_n += s.size();
  if (max_imbalance >= 0.0)
    EXPECT_LE(imbalance(sorter, total_n), max_imbalance)
        << "scheme " << partition_scheme_name(scheme) << " at p="
        << shards.size();

  const auto& pt = sorter.stats().partition;
  EXPECT_EQ(pt.scheme, scheme);
  if (scheme == PartitionScheme::kHistogramRefine) {
    EXPECT_GE(pt.rounds, 1u);
    EXPECT_GT(pt.probe_keys, 0u);
    EXPECT_LE(pt.achieved_epsilon, cfg.partition_epsilon + 1e-12);
  }
  if (scheme == PartitionScheme::kTwoLevelAms) {
    EXPECT_EQ(pt.groups, sort::ams_group_count(shards.size()));
    EXPECT_GT(pt.level1_items, 0u);
  }

  std::vector<Key> flat;
  for (const auto& p : sorter.partitions())
    for (const auto& item : p) flat.push_back(item.key);
  return flat;
}

struct E2eParam {
  gen::Distribution dist;
  // Scheme-appropriate bounds: one-level has no guarantee beyond sample
  // density (loose), histogram is certified to epsilon even on duplicate-
  // heavy data (the resolution round splits dup runs by count), AMS sits
  // in between. A negative bound skips the size check for the key-only
  // schemes, where few-distinct data cannot be balanced by any splitter
  // choice and the investigator's heuristic spreading is covered by the
  // sortedness + equivalence checks instead.
  double one_level;
  double histogram;
  double ams;
};

class SchemeBalance : public ::testing::TestWithParam<E2eParam> {};

TEST_P(SchemeBalance, AllSchemesBalancedAndEquivalentAtP64) {
  const auto param = GetParam();
  const std::size_t p = 64;
  const auto shards = shards_for(param.dist, 32000, p);
  const auto a =
      run_scheme(PartitionScheme::kOneLevelSample, shards, param.one_level);
  const auto b =
      run_scheme(PartitionScheme::kHistogramRefine, shards, param.histogram);
  const auto c =
      run_scheme(PartitionScheme::kTwoLevelAms, shards, param.ams);
  // The partition boundaries may differ, but the concatenated output is
  // the same sorted multiset for every scheme — bit-identical.
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, SchemeBalance,
    ::testing::Values(
        E2eParam{gen::Distribution::kUniform, 0.75, 0.25, 0.75},
        E2eParam{gen::Distribution::kRightSkewed, 0.75, 0.25, 0.75},
        E2eParam{gen::Distribution::kZipf, 1.5, 0.25, 1.5},
        E2eParam{gen::Distribution::kFewDistinct, -1.0, 0.25, -1.0}),
    [](const ::testing::TestParamInfo<E2eParam>& info) -> std::string {
      switch (info.param.dist) {
        case gen::Distribution::kUniform: return "Uniform";
        case gen::Distribution::kRightSkewed: return "Skewed";
        case gen::Distribution::kZipf: return "Zipf";
        case gen::Distribution::kFewDistinct: return "FewDistinct";
        default: return "Other" + std::to_string(info.index);
      }
    });

TEST(SchemeBalancePresorted, ContiguousShardsAllSchemesAgreeAtP64) {
  // Globally sorted input dealt as contiguous ranges — every rank's local
  // sample is unrepresentative of the global key space. One-level sampling
  // survives through the master's weighted sample pool; histogram
  // refinement stays certified because its counting rounds are exact.
  const std::size_t p = 64;
  std::mt19937_64 rng(77);
  std::vector<Key> global(32000);
  for (auto& k : global) k = rng() % (1u << 20);
  std::sort(global.begin(), global.end());
  std::vector<std::vector<Key>> shards(p);
  for (std::size_t r = 0; r < p; ++r)
    shards[r].assign(
        global.begin() + static_cast<std::ptrdiff_t>(r * global.size() / p),
        global.begin() +
            static_cast<std::ptrdiff_t>((r + 1) * global.size() / p));
  const auto a = run_scheme(PartitionScheme::kOneLevelSample, shards, 0.75);
  const auto b = run_scheme(PartitionScheme::kHistogramRefine, shards, 0.25);
  const auto c = run_scheme(PartitionScheme::kTwoLevelAms, shards, 1.0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(SchemeBalanceLarge, HistogramAndAmsAtP256) {
  const std::size_t p = 256;
  const auto shards = shards_for(gen::Distribution::kRightSkewed, 32768, p);
  const auto b = run_scheme(PartitionScheme::kHistogramRefine, shards, 0.5);
  const auto c = run_scheme(PartitionScheme::kTwoLevelAms, shards, 1.0);
  EXPECT_EQ(b, c);
}

TEST(SchemeBalanceLarge, HistogramAtP1024) {
  // The check.sh `scale` smoke case in-suite: p = 1024 simulated ranks,
  // tiny shards, histogram refinement certified to epsilon.
  const std::size_t p = 1024;
  const auto shards = shards_for(gen::Distribution::kUniform, 32768, p);
  run_scheme(PartitionScheme::kHistogramRefine, shards, 1.0);
}

}  // namespace
}  // namespace pgxd::core
