// Fixture: collectives called unconditionally, and rank branches that
// contain only point-to-point traffic — the legal shapes.
#pragma once

namespace fixture {

template <typename Comm>
sim::Task run(Comm& comm, std::size_t rank, std::size_t ranks) {
  std::uint64_t local = compute(rank);
  auto total = co_await all_reduce(comm, rank, ranks, local);
  (void)total;
  if (rank == 0) {
    comm.post(1, kTagSeed, make_frame());
  } else {
    auto env = co_await comm.recv(0, kTagSeed);
    (void)env;
  }
  comm.post(0, kTagSeed, make_frame());
  co_await comm.barrier(rank);
}

}  // namespace fixture
