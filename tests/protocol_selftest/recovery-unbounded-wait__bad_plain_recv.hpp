// Fixture: recovery region using a plain blocking recv and a barrier —
// both hang forever if the peer crashed, which is the one situation
// recovery code must survive.
#pragma once

namespace fixture {

// pgxd-protocol: recovery-path
template <typename Comm>
sim::Task recover(Comm& comm, std::size_t rank, std::size_t peer) {
  auto env = co_await comm.recv(peer, kTagCtrl);
  comm.post(peer, kTagCtrl, std::move(env.frame));
  co_await comm.barrier(rank);
}
// pgxd-protocol: end-recovery-path

}  // namespace fixture
