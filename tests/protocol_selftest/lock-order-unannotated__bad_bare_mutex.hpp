// Fixture: a std::mutex with no pgxd-lock-order annotation — cycle
// analysis cannot rank it, so the declaration itself is a violation.
#pragma once

#include <mutex>

namespace fixture {

class Pool {
 public:
  void touch() {
    std::lock_guard<std::mutex> g(mu_);
    ++uses_;
  }

 private:
  std::mutex mu_;
  std::size_t uses_ = 0;
};

}  // namespace fixture
