// Fixture: an all_reduce gated behind a rank comparison — the other
// ranks never enter the collective and everyone hangs.
#pragma once

namespace fixture {

template <typename Comm>
sim::Task run(Comm& comm, std::size_t rank, std::size_t ranks) {
  std::uint64_t local = 1;
  if (rank == 0) {
    auto total = co_await all_reduce(comm, rank, ranks, local);
    (void)total;
  }
  comm.post(0, kTagDone, make_frame());
  auto env = co_await comm.recv(0, kTagDone);
  (void)env;
}

}  // namespace fixture
