// Fixture: kTagGhost is received but never sent anywhere in the file —
// the receive can never be satisfied from this protocol's own traffic.
#pragma once

namespace fixture {

inline constexpr int kTagGhost = 3;

template <typename Comm>
void run(Comm& comm, std::size_t peer) {
  auto env = comm.recv(peer, kTagGhost);
  (void)env;
}

}  // namespace fixture
