// Fixture: every tag used as an endpoint appears on both sides; the
// stride constant participates only in tag arithmetic, never as a call
// argument, and must not be reported.
#pragma once

namespace fixture {

inline constexpr int kTagPing = 0;
inline constexpr int kTagPong = 1;
inline constexpr int kTagBulk = 2;
inline constexpr int kTagStride = 16;

template <typename Comm>
sim::Task run(Comm& comm, std::size_t rank, std::size_t peer) {
  const int base = static_cast<int>(rank) * kTagStride;
  (void)base;
  comm.post(peer, kTagPing, make_frame());
  auto env = co_await comm.recv(peer, kTagPong);
  comm.post(peer, kTagPong, std::move(env.frame));
  auto back = co_await comm.recv(peer, kTagPing);
  (void)back;
  comm.post(peer, kTagBulk, make_frame());
  if (auto got = comm.try_recv(peer, kTagBulk)) consume(*got);
}

}  // namespace fixture
