// Fixture: recovery region restricted to deadline-checked primitives —
// try_recv, recv_until, and bounded_ collective wrappers all survive a
// crashed peer.
#pragma once

namespace fixture {

// pgxd-protocol: recovery-path
template <typename Comm>
sim::Task recover(Comm& comm, std::size_t rank, std::size_t ranks,
                  std::size_t peer, sim::SimTime deadline) {
  if (auto got = comm.try_recv(peer, kTagCtrl)) consume(*got);
  auto env = co_await comm.recv_until(peer, kTagCtrl, deadline);
  if (env) comm.post(peer, kTagCtrl, std::move(env->frame));
  std::uint64_t local = 1;
  auto total = co_await bounded_all_reduce(comm, rank, ranks, local,
                                           deadline);
  (void)total;
}
// pgxd-protocol: end-recovery-path

}  // namespace fixture
