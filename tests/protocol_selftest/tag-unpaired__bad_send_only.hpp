// Fixture: kTagOrphan is posted but no receive endpoint exists in the
// file, so the tag-unpaired rule must fire.
#pragma once

namespace fixture {

inline constexpr int kTagOrphan = 7;
inline constexpr int kTagPaired = 8;

template <typename Comm>
void run(Comm& comm, std::size_t peer) {
  comm.post(peer, kTagOrphan, make_frame());
  comm.post(peer, kTagPaired, make_frame());
  auto env = comm.recv(peer, kTagPaired);
  (void)env;
}

}  // namespace fixture
