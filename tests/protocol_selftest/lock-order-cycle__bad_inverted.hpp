// Fixture: two annotated mutexes acquired in rank order in one path and
// inverted in another — the inverted acquisition must be flagged.
#pragma once

#include <mutex>

namespace fixture {

class Scheduler {
 public:
  void forward() {
    std::lock_guard<std::mutex> a(queue_mu_);
    std::lock_guard<std::mutex> b(idle_mu_);
    wake();
  }

  void inverted() {
    std::lock_guard<std::mutex> b(idle_mu_);
    std::lock_guard<std::mutex> a(queue_mu_);
    wake();
  }

 private:
  std::mutex queue_mu_;  // pgxd-lock-order: fixture-queue rank 10
  std::mutex idle_mu_;   // pgxd-lock-order: fixture-idle rank 20
};

}  // namespace fixture
