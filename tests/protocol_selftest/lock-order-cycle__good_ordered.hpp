// Fixture: nested acquisitions strictly increasing in rank, plus
// non-nested siblings at the same rank in separate scopes — all legal.
#pragma once

#include <mutex>

namespace fixture {

class Scheduler {
 public:
  void forward() {
    std::lock_guard<std::mutex> a(queue_mu_);
    {
      std::lock_guard<std::mutex> b(idle_mu_);
      wake();
    }
  }

  void siblings() {
    {
      std::lock_guard<std::mutex> a(queue_mu_);
      drain();
    }
    {
      std::unique_lock<std::mutex> b(idle_mu_);
      wake();
    }
  }

 private:
  std::mutex queue_mu_;  // pgxd-lock-order: fixture-queue rank 10
  std::mutex idle_mu_;   // pgxd-lock-order: fixture-idle rank 20
};

}  // namespace fixture
