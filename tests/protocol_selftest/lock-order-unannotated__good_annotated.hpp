// Fixture: annotated declarations, both trailing and line-above forms.
#pragma once

#include <mutex>

namespace fixture {

class Pool {
 public:
  void touch() {
    std::lock_guard<std::mutex> g(mu_);
    ++uses_;
  }

 private:
  std::mutex mu_;  // pgxd-lock-order: fixture-pool rank 10
  // pgxd-lock-order: fixture-idle rank 20
  std::mutex idle_mu_;
  std::size_t uses_ = 0;
};

}  // namespace fixture
