// Fixture: a barrier inside the else-branch of a rank comparison is just
// as rank-gated as one in the then-branch.
#pragma once

namespace fixture {

template <typename Comm>
sim::Task run(Comm& comm, std::size_t rank) {
  if (rank != 0) {
    do_local_work();
  } else {
    co_await comm.barrier(rank);
  }
}

}  // namespace fixture
