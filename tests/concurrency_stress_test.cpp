// Concurrency stress suite — the workloads scripts/check.sh runs under
// ThreadSanitizer (and ASan) to keep the thread pools, the parallel merge
// tree, and the exchange buffer pool race-free. Each test drives one
// subsystem through the interleavings TSan needs to observe to prove the
// synchronization: pool churn (construction/teardown under load), forced
// steals, shutdown-while-busy, and concurrent lease/release traffic.
//
// Workloads are sized to finish in seconds under TSan's ~10x slowdown.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/work_stealing_pool.hpp"
#include "runtime/memory.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/parallel_sort.hpp"

namespace pgxd {
namespace {

// --- ThreadPool --------------------------------------------------------------

// Construction/teardown churn with live traffic: every pool instance takes
// submissions immediately and is destroyed right after its barrier-free
// wait, so worker startup and shutdown paths run hundreds of times.
TEST(ThreadPoolStress, ChurnConstructDestroyUnderLoad) {
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(1 + round % 4);
    for (int t = 0; t < 16; ++t)
      pool.submit([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
  }
  EXPECT_EQ(total.load(), 50u * 16u);
}

// The index-based run_all overload shares one atomic cursor between the
// caller and every worker; each index must execute exactly once.
TEST(ThreadPoolStress, RunAllIndexedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 20000;
  std::vector<std::atomic<std::uint32_t>> hits(kCount);
  for (int round = 0; round < 5; ++round) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.run_all(kCount, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << "index " << i;
  }
}

// Tasks submitting tasks while the caller drains via wait_idle: the
// completion counter must account for nested work before wait_idle returns.
TEST(ThreadPoolStress, NestedSubmitCompletesBeforeWaitIdle) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> done{0};
  for (int outer = 0; outer < 64; ++outer)
    pool.submit([&pool, &done] {
      for (int inner = 0; inner < 4; ++inner)
        pool.submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); });
      done.fetch_add(1, std::memory_order_relaxed);
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64u * 5u);
}

// --- WorkStealingPool --------------------------------------------------------

// Many external producers submitting concurrently while the workers run;
// executed must equal submitted after wait_idle, with no task lost or run
// twice (the per-index tally proves exactly-once).
TEST(WorkStealingStress, ManyProducersExactlyOnce) {
  WorkStealingPool pool(4);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 500;
  std::vector<std::atomic<std::uint32_t>> hits(kProducers * kPerProducer);
  {
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p)
      producers.emplace_back([&, p] {
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          const std::size_t idx = p * kPerProducer + i;
          pool.submit([&hits, idx] {
            hits[idx].fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    for (auto& t : producers) t.join();
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << "task " << i;
  EXPECT_EQ(pool.stats().executed, kProducers * kPerProducer);
}

// Forced steals: one worker's deque receives a burst of nested tasks (a
// submitting task's children land on its own deque), so the other workers
// can only stay busy by stealing. stats() is read while quiescent.
TEST(WorkStealingStress, ForcedStealsUnderContention) {
  WorkStealingPool pool(4);
  std::atomic<std::uint64_t> ran{0};
  constexpr int kBursts = 8;
  constexpr int kBurstSize = 400;
  for (int b = 0; b < kBursts; ++b) {
    pool.submit([&pool, &ran] {
      for (int i = 0; i < kBurstSize; ++i)
        pool.submit([&ran] {
          // Enough work that thieves find the deque still populated.
          volatile std::uint32_t x = 0;
          for (int k = 0; k < 200; ++k) x = x + static_cast<std::uint32_t>(k);
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    pool.wait_idle();
  }
  EXPECT_EQ(ran.load(), static_cast<std::uint64_t>(kBursts) * (kBurstSize + 1));
  const auto st = pool.stats();
  EXPECT_EQ(st.executed, ran.load());
}

// Shutdown-while-busy: destroy the pool while tasks are queued and running.
// The destructor's contract is join-without-drain — tasks that started must
// finish (their effects visible), queued-but-unstarted tasks may be
// dropped, and nothing may crash or race. Rounds of this exercise the
// stop_/notify/join shutdown path under live traffic.
TEST(WorkStealingStress, ShutdownWhileBusyDropsButNeverRaces) {
  for (int round = 0; round < 30; ++round) {
    std::atomic<std::uint64_t> ran{0};
    {
      WorkStealingPool pool(3);
      for (int i = 0; i < 200; ++i)
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      // No wait_idle: the destructor runs with the queues still loaded.
    }
    // Whatever ran, ran to completion; the counter is coherent afterward.
    EXPECT_LE(ran.load(), 200u);
  }
}

// --- Parallel merge tree -----------------------------------------------------

// The Fig. 2 balanced merge drives ThreadPool::run_all with MergeSegment
// descriptors shared across workers; under TSan this proves the per-level
// barrier (run_all's wait) orders segment writes before the next level
// reads them.
TEST(MergeTreeStress, BalancedMergeParallelRounds) {
  ThreadPool pool(4);
  Rng rng(0x5eed5);
  for (int round = 0; round < 6; ++round) {
    const std::size_t runs = 8;
    const std::size_t per_run = 4000 + 512u * static_cast<unsigned>(round);
    const std::size_t n = runs * per_run;
    std::vector<std::uint64_t> data(n);
    for (auto& v : data) v = rng.next();
    std::vector<std::size_t> bounds(runs + 1);
    for (std::size_t r = 0; r <= runs; ++r) bounds[r] = r * per_run;
    for (std::size_t r = 0; r < runs; ++r)
      std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[r]),
                data.begin() + static_cast<std::ptrdiff_t>(bounds[r + 1]));

    std::vector<std::uint64_t> scratch;
    const auto stats =
        sort::balanced_merge(data, bounds, scratch, std::less<>{}, &pool);
    EXPECT_EQ(stats.levels, 3u);
    ASSERT_TRUE(std::is_sorted(data.begin(), data.end()));
  }
}

// End-to-end local sort (chunked quicksort + merge tree) on a shared pool,
// back to back, so worker reuse across phases is covered too.
TEST(MergeTreeStress, ParallelSortReusedPool) {
  ThreadPool pool(4);
  Rng rng(0xfeed);
  std::vector<std::uint64_t> scratch;
  for (int round = 0; round < 8; ++round) {
    std::vector<std::uint64_t> data(30000);
    for (auto& v : data) v = rng.next();
    sort::parallel_sort(data, scratch, std::less<>{}, &pool);
    ASSERT_TRUE(std::is_sorted(data.begin(), data.end()));
  }
}

// --- BufferPool --------------------------------------------------------------

// Concurrent lease/release traffic from several threads. The pool's mutex
// must keep the free list and tallies coherent: afterwards every lease is
// matched by a return, the free list holds distinct storage, and the
// aliasing check never fired (PGXD_CHECK aborts on double release).
TEST(BufferPoolStress, ConcurrentAcquireRelease) {
  rt::BufferPool<std::uint64_t> pool;
  constexpr std::size_t kThreads = 4;
  constexpr int kIters = 2000;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t)
      threads.emplace_back([&pool, t] {
        Rng rng(0xb0f + t);
        for (int i = 0; i < kIters; ++i) {
          auto buf = pool.acquire(64 + rng.bounded(64));
          buf.push_back(rng.next());
          // Hold a second lease half the time so the free list sees
          // interleaved returns, not lock-step pairs.
          if (rng.bounded(2) == 0) {
            auto buf2 = pool.acquire(32);
            buf2.push_back(buf.back());
            pool.release(std::move(buf2));
          }
          pool.release(std::move(buf));
        }
      });
    for (auto& t : threads) t.join();
  }
  const auto& st = pool.stats();
  EXPECT_EQ(st.leases, st.returns);
  EXPECT_GE(st.leases, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(pool.outstanding(), 0);
  EXPECT_GT(st.reuses, 0u);
  // Free-list storage must be pairwise distinct (the release-time aliasing
  // check enforced this throughout; draining re-verifies it end-state).
  std::vector<const void*> datas;
  while (pool.free_buffers() > 0) {
    auto buf = pool.acquire(0);
    datas.push_back(buf.data());
    buf.shrink_to_fit();  // retire the storage instead of re-pooling it
  }
  std::sort(datas.begin(), datas.end());
  EXPECT_EQ(std::adjacent_find(datas.begin(), datas.end()), datas.end());
}

}  // namespace
}  // namespace pgxd
