// Tests for the Spark sortByKey baseline: correctness, stage structure,
// the modeled overheads, and the comparisons the paper's evaluation relies
// on (PGX.D 2x-3x faster; Spark imbalance on duplicate-heavy data).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"
#include "spark/sort_by_key.hpp"

namespace pgxd::spark {
namespace {

using Key = std::uint64_t;
using Spark = SparkSortByKey<Key>;

rt::ClusterConfig test_cluster(std::size_t machines) {
  rt::ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = 8;
  return cfg;
}

std::vector<std::vector<Key>> make_shards(gen::Distribution dist,
                                          std::size_t total_n,
                                          std::size_t machines,
                                          std::uint64_t seed = 42) {
  gen::DataGenConfig dcfg;
  dcfg.dist = dist;
  dcfg.seed = seed;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, total_n, machines, r));
  return shards;
}

void verify_sorted(const Spark& spark,
                   const std::vector<std::vector<Key>>& input) {
  const auto& parts = spark.partitions();
  std::vector<Key> all_in, all_out;
  for (const auto& s : input) all_in.insert(all_in.end(), s.begin(), s.end());
  const Key* prev_max = nullptr;
  for (const auto& part : parts) {
    ASSERT_TRUE(std::is_sorted(part.begin(), part.end()));
    if (!part.empty()) {
      if (prev_max != nullptr) {
        ASSERT_LE(*prev_max, part.front());
      }
      prev_max = &part.back();
    }
    all_out.insert(all_out.end(), part.begin(), part.end());
  }
  std::sort(all_in.begin(), all_in.end());
  std::sort(all_out.begin(), all_out.end());
  ASSERT_EQ(all_in, all_out);
}

class SparkSweep : public ::testing::TestWithParam<gen::Distribution> {};

TEST_P(SparkSweep, SortsCorrectly) {
  const std::size_t machines = 6;
  auto shards = make_shards(GetParam(), 30000, machines);
  const auto input = shards;
  rt::Cluster<Spark::Msg> cluster(test_cluster(machines));
  Spark spark(cluster);
  spark.run(std::move(shards));
  verify_sorted(spark, input);
  EXPECT_GT(spark.stats().total_time, 0);
}

INSTANTIATE_TEST_SUITE_P(All, SparkSweep,
                         ::testing::ValuesIn(gen::kAllDistributions));

TEST(Spark, StageTimesPopulatedAndOrdered) {
  auto shards = make_shards(gen::Distribution::kUniform, 40000, 4);
  rt::Cluster<Spark::Msg> cluster(test_cluster(4));
  Spark spark(cluster);
  spark.run(std::move(shards));
  const auto& st = spark.stats();
  EXPECT_GT(st[Stage::kSample], 0);
  EXPECT_GT(st[Stage::kMapShuffle], 0);
  EXPECT_GT(st[Stage::kReduceSort], 0);
  EXPECT_GE(st.total_time,
            st[Stage::kSample] + st[Stage::kMapShuffle] + st[Stage::kReduceSort]);
}

TEST(Spark, StageOverheadDominatesTinyJobs) {
  // Three stages of scheduler overhead floor the runtime even for a
  // trivial input — the Spark small-job tax.
  auto shards = make_shards(gen::Distribution::kUniform, 100, 4);
  rt::Cluster<Spark::Msg> cluster(test_cluster(4));
  const SparkCostProfile profile;
  Spark spark(cluster, profile);
  spark.run(std::move(shards));
  EXPECT_GE(spark.stats().total_time, 3 * profile.stage_overhead);
}

TEST(Spark, DuplicateHeavyDataImbalanced) {
  // No investigator: the dominant duplicated value of the right-skewed
  // dataset lands on one reducer.
  auto shards = make_shards(gen::Distribution::kRightSkewed, 50000, 8);
  rt::Cluster<Spark::Msg> cluster(test_cluster(8));
  Spark spark(cluster);
  spark.run(std::move(shards));
  EXPECT_GT(spark.stats().balance.imbalance, 3.0);
}

TEST(Spark, UniformDataReasonablyBalanced) {
  auto shards = make_shards(gen::Distribution::kUniform, 50000, 8);
  rt::Cluster<Spark::Msg> cluster(test_cluster(8));
  Spark spark(cluster);
  spark.run(std::move(shards));
  // 60 samples/partition bounds the quantile error; generous margin.
  EXPECT_LT(spark.stats().balance.imbalance, 1.5);
}

TEST(Spark, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto shards = make_shards(gen::Distribution::kNormal, 20000, 4);
    rt::Cluster<Spark::Msg> cluster(test_cluster(4));
    Spark spark(cluster);
    spark.run(std::move(shards));
    return spark.stats().total_time;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Spark, PgxdBeatsSparkOnSameWorkload) {
  // The paper's headline: 2x-3x faster on the same data and cluster.
  const std::size_t machines = 8;
  const std::size_t n = 1 << 18;
  auto shards = make_shards(gen::Distribution::kUniform, n, machines);

  rt::Cluster<Spark::Msg> sc(test_cluster(machines));
  Spark spark(sc);
  spark.run(shards);

  using Pgxd = core::DistributedSorter<Key>;
  rt::Cluster<Pgxd::Msg> pc(test_cluster(machines));
  Pgxd pgxd(pc, core::SortConfig{});
  pgxd.run(shards);

  const double ratio = static_cast<double>(spark.stats().total_time) /
                       static_cast<double>(pgxd.stats().total_time);
  EXPECT_GT(ratio, 1.5) << "PGX.D should clearly beat the Spark baseline";
}

TEST(Spark, WireBytesIncludeRowOverhead) {
  auto shards = make_shards(gen::Distribution::kUniform, 40000, 4);
  rt::Cluster<Spark::Msg> cluster(test_cluster(4));
  SparkCostProfile profile;
  profile.row_overhead_factor = 2.0;
  Spark spark(cluster, profile);
  spark.run(std::move(shards));
  // ~3/4 of rows shuffle remotely at 16 wire bytes each.
  EXPECT_GT(spark.stats().wire_bytes, 40000ull * 3 / 4 * 16 / 2);
}

TEST(Spark, StageNames) {
  EXPECT_STREQ(stage_name(Stage::kSample), "sample");
  EXPECT_STREQ(stage_name(Stage::kMapShuffle), "map/shuffle-write");
  EXPECT_STREQ(stage_name(Stage::kReduceSort), "reduce/fetch+sort");
}

}  // namespace
}  // namespace pgxd::spark
