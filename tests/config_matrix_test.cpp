// Property sweep over the full SortConfig switch matrix: every combination
// of {investigator, final-merge strategy, async exchange, buffered exchange,
// SoA final merge, partition scheme} must produce a correct sort on both
// easy and adversarial data. Catches interactions between ablation paths
// that single-switch tests miss. (The buffer pool stays at its default — on
// — here; its on/off behaviour has dedicated coverage in buffer_pool_test.)
//
// Combinations SortConfig::validate rejects (two-level AMS without the
// async exchange) are asserted to be rejected rather than run: the sweep
// fails if validate() ever starts accepting a combination the engine
// cannot execute, or rejecting one it can.
#include <gtest/gtest.h>

#include <vector>

#include "core/distributed_sort.hpp"
#include "core/validate.hpp"
#include "datagen/distributions.hpp"

namespace pgxd::core {
namespace {

using Key = std::uint64_t;
using Sorter = DistributedSorter<Key>;

struct MatrixParam {
  bool investigator;
  MergeAlgo merge;
  bool async_exchange;
  bool buffered;
  bool soa_merge;
  PartitionScheme partition;
  gen::Distribution dist;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ConfigMatrix, SortsCorrectly) {
  const auto param = GetParam();
  const std::size_t machines = 6;
  gen::DataGenConfig dcfg;
  dcfg.dist = param.dist;
  dcfg.seed = 31;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, 24000, machines, r));

  SortConfig cfg;
  cfg.use_investigator = param.investigator;
  cfg.final_merge = param.merge;
  cfg.async_exchange = param.async_exchange;
  cfg.buffered_exchange = param.buffered;
  cfg.soa_final_merge = param.soa_merge;
  cfg.partition = param.partition;

  const std::string why = cfg.validate();
  const bool invalid_combo =
      param.partition == PartitionScheme::kTwoLevelAms && !param.async_exchange;
  if (invalid_combo) {
    EXPECT_FALSE(why.empty())
        << "validate() accepted two-level AMS without async exchange";
    EXPECT_NE(why.find("invalid SortConfig"), std::string::npos) << why;
    return;  // constructing the sorter would abort on this config
  }
  ASSERT_TRUE(why.empty()) << why;

  rt::ClusterConfig ccfg;
  ccfg.machines = machines;
  ccfg.threads_per_machine = 4;
  rt::Cluster<Sorter::Msg> cluster(ccfg);
  Sorter sorter(cluster, cfg);
  sorter.run(shards);

  const auto report = validate_sorted(sorter.partitions(), shards);
  EXPECT_TRUE(report.ok()) << report.failure;
  EXPECT_GT(sorter.stats().total_time, 0);
}

std::vector<MatrixParam> all_combinations() {
  std::vector<MatrixParam> out;
  for (bool inv : {true, false})
    for (auto merge : {MergeAlgo::kParallelKway, MergeAlgo::kPairwiseTree,
                       MergeAlgo::kSequentialKway})
      for (bool async_ex : {true, false})
        for (bool buf : {true, false})
          for (bool soa : {true, false})
            for (auto part : {PartitionScheme::kOneLevelSample,
                              PartitionScheme::kHistogramRefine,
                              PartitionScheme::kTwoLevelAms})
              for (auto dist : {gen::Distribution::kUniform,
                                gen::Distribution::kRightSkewed})
                out.push_back(
                    MatrixParam{inv, merge, async_ex, buf, soa, part, dist});
  return out;
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto& p = info.param;
  std::string name;
  name += p.investigator ? "Inv" : "NoInv";
  name += p.merge == MergeAlgo::kParallelKway
              ? "Kway"
              : (p.merge == MergeAlgo::kPairwiseTree ? "Tree" : "KwaySeq");
  name += p.async_exchange ? "Async" : "Bsp";
  name += p.buffered ? "Buf" : "Whole";
  name += p.soa_merge ? "Soa" : "Aos";
  name += p.partition == PartitionScheme::kOneLevelSample
              ? "OneLevel"
              : (p.partition == PartitionScheme::kHistogramRefine ? "Histogram"
                                                                  : "TwoLevel");
  name += p.dist == gen::Distribution::kUniform ? "Uniform" : "Skewed";
  return name;
}

// The knob-range guards: every reject message carries the "invalid
// SortConfig" prefix check.sh and the sweep above grep for.
TEST(ConfigValidate, RejectsOutOfRangeKnobs) {
  SortConfig cfg;
  EXPECT_TRUE(cfg.validate().empty());

  cfg.partition_epsilon = 0.0;
  EXPECT_NE(cfg.validate().find("partition_epsilon"), std::string::npos);
  cfg.partition_epsilon = 1.5;
  EXPECT_NE(cfg.validate().find("partition_epsilon"), std::string::npos);
  cfg.partition_epsilon = 0.05;

  cfg.partition_max_rounds = 0;
  EXPECT_NE(cfg.validate().find("partition_max_rounds"), std::string::npos);
  cfg.partition_max_rounds = 10;

  cfg.partition = PartitionScheme::kTwoLevelAms;
  cfg.async_exchange = false;
  EXPECT_NE(cfg.validate().find("async_exchange"), std::string::npos);
  cfg.async_exchange = true;
  EXPECT_TRUE(cfg.validate().empty());

  cfg.partition = PartitionScheme::kHistogramRefine;
  cfg.sample_factor = 0.0;
  EXPECT_NE(cfg.validate().find("sample_factor"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllSwitches, ConfigMatrix,
                         ::testing::ValuesIn(all_combinations()), matrix_name);

}  // namespace
}  // namespace pgxd::core
