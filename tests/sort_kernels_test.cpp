// Tests for merge kernels, co-ranking, quicksort, and the thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sort/merge.hpp"
#include "sort/quicksort.hpp"
#include "sort/samples.hpp"

namespace pgxd::sort {
namespace {

std::vector<std::uint64_t> random_vec(std::size_t n, std::uint64_t seed,
                                      std::uint64_t domain = ~0ULL) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = domain == ~0ULL ? rng.next() : rng.bounded(domain);
  return v;
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, InlineWhenZeroWorkers) {
  ThreadPool pool(0);
  int ran = 0;
  pool.submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // executed synchronously
}

TEST(ThreadPool, RunAllExecutesEverything) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back([&] { ++count; });
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, 3, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, WaitIdleAfterManySubmits) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

// --- merge_into / co_rank ----------------------------------------------------

TEST(MergeInto, BasicMerge) {
  const std::vector<int> a{1, 3, 5}, b{2, 4, 6};
  std::vector<int> out(6);
  merge_into<int>(a, b, out);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(MergeInto, EmptySides) {
  const std::vector<int> a{1, 2}, empty;
  std::vector<int> out(2);
  merge_into<int>(a, empty, out);
  EXPECT_EQ(out, a);
  merge_into<int>(empty, a, out);
  EXPECT_EQ(out, a);
}

struct Tagged {
  int key;
  int source;  // 0 = from a, 1 = from b
};
struct TaggedLess {
  bool operator()(const Tagged& x, const Tagged& y) const { return x.key < y.key; }
};

TEST(MergeInto, StableOnTies) {
  const std::vector<Tagged> a{{1, 0}, {2, 0}, {2, 0}};
  const std::vector<Tagged> b{{1, 1}, {2, 1}, {3, 1}};
  std::vector<Tagged> out(6);
  merge_into<Tagged, TaggedLess>(a, b, out, {});
  // Within equal keys, all a-elements precede all b-elements.
  EXPECT_EQ(out[0].source, 0);  // 1 from a
  EXPECT_EQ(out[1].source, 1);  // 1 from b
  EXPECT_EQ(out[2].source, 0);  // 2 from a
  EXPECT_EQ(out[3].source, 0);  // 2 from a
  EXPECT_EQ(out[4].source, 1);  // 2 from b
  EXPECT_EQ(out[5].source, 1);  // 3 from b
}

TEST(CoRank, SplitsMatchSequentialMergePrefix) {
  // Property: for every k, the multiset a[0..i) ∪ b[0..j) equals the first k
  // elements of the merged output.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto a = random_vec(97, seed, 50);        // heavy duplication
    auto b = random_vec(55, seed + 10, 50);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<std::uint64_t> merged(a.size() + b.size());
    merge_into<std::uint64_t>(a, b, merged);
    for (std::size_t k = 0; k <= merged.size(); ++k) {
      const std::size_t i = co_rank<std::uint64_t>(k, a, b);
      const std::size_t j = k - i;
      ASSERT_LE(i, a.size());
      ASSERT_LE(j, b.size());
      std::vector<std::uint64_t> prefix(a.begin(), a.begin() + i);
      prefix.insert(prefix.end(), b.begin(), b.begin() + j);
      std::sort(prefix.begin(), prefix.end());
      std::vector<std::uint64_t> expect(merged.begin(), merged.begin() + k);
      std::sort(expect.begin(), expect.end());
      ASSERT_EQ(prefix, expect) << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(CoRank, AllEqualElements) {
  const std::vector<int> a(10, 7), b(6, 7);
  for (std::size_t k = 0; k <= 16; ++k) {
    const std::size_t i = co_rank<int>(k, a, b);
    // Stability: take everything possible from a first.
    EXPECT_EQ(i, std::min<std::size_t>(k, 10));
  }
}

TEST(CoRank, DisjointRanges) {
  const std::vector<int> a{1, 2, 3}, b{10, 11};
  EXPECT_EQ(co_rank<int>(2, a, b), 2u);
  EXPECT_EQ(co_rank<int>(3, a, b), 3u);
  EXPECT_EQ(co_rank<int>(4, a, b), 3u);
  // And reversed: all of b sorts before a.
  const std::vector<int> c{10, 11}, d{1, 2};
  EXPECT_EQ(co_rank<int>(2, c, d), 0u);
}

class ParallelMergeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelMergeSweep, MatchesSequentialMerge) {
  const std::size_t n = GetParam();
  ThreadPool pool(3);
  auto a = random_vec(n, 42 + n, 1000);
  auto b = random_vec(n * 2 / 3 + 1, 77 + n, 1000);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::uint64_t> expect(a.size() + b.size()), got(a.size() + b.size());
  merge_into<std::uint64_t>(a, b, expect);
  parallel_merge<std::uint64_t>(a, b, got, {}, &pool, 5);
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelMergeSweep,
                         ::testing::Values(0, 1, 2, 10, 100, 4096, 10000, 50000));

// --- quicksort ------------------------------------------------------------

class QuicksortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuicksortSweep, MatchesStdSort) {
  auto v = random_vec(GetParam(), 11 + GetParam());
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  quicksort(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuicksortSweep,
                         ::testing::Values(0, 1, 2, 3, 10, 24, 25, 100, 1000,
                                           65536));

TEST(Quicksort, AdversarialPatterns) {
  // Sorted, reverse-sorted, all-equal, organ pipe, few distinct values.
  std::vector<std::vector<std::uint64_t>> inputs;
  std::vector<std::uint64_t> v(5000);
  std::iota(v.begin(), v.end(), 0);
  inputs.push_back(v);
  std::reverse(v.begin(), v.end());
  inputs.push_back(v);
  inputs.push_back(std::vector<std::uint64_t>(5000, 42));
  std::vector<std::uint64_t> pipe;
  for (std::uint64_t i = 0; i < 2500; ++i) pipe.push_back(i);
  for (std::uint64_t i = 2500; i > 0; --i) pipe.push_back(i);
  inputs.push_back(pipe);
  inputs.push_back(random_vec(5000, 9, 3));
  for (auto& in : inputs) {
    auto expect = in;
    std::sort(expect.begin(), expect.end());
    quicksort(std::span<std::uint64_t>(in));
    EXPECT_EQ(in, expect);
  }
}

// Oracle sweep: every partition-kernel configuration (block/scalar ×
// equal-fast-path on/off) against std::sort over adversarial patterns, with
// sizes crossing the 2*kPartitionBlock boundary where the block kernel's
// final short blocks kick in.
std::vector<std::uint64_t> make_pattern(const std::string& pattern,
                                        std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> v(n);
  if (pattern == "all_equal") {
    std::fill(v.begin(), v.end(), 42);
  } else if (pattern == "two_value") {
    Rng rng(seed);
    for (auto& x : v) x = rng.bounded(2);
  } else if (pattern == "organ_pipe") {
    for (std::size_t i = 0; i < n; ++i) v[i] = std::min(i, n - i);
  } else if (pattern == "presorted") {
    std::iota(v.begin(), v.end(), 0);
  } else if (pattern == "reverse") {
    for (std::size_t i = 0; i < n; ++i) v[i] = n - i;
  } else if (pattern == "random") {
    Rng rng(seed);
    for (auto& x : v) x = rng.next();
  } else if (pattern == "few_distinct") {
    Rng rng(seed);
    for (auto& x : v) x = rng.bounded(7);
  } else {
    ADD_FAILURE() << "unknown pattern " << pattern;
  }
  return v;
}

class QuicksortConfigSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool, std::string>> {};

TEST_P(QuicksortConfigSweep, OracleAcrossPatternsAndSizes) {
  const auto [block, equal_fast, pattern] = GetParam();
  const QuicksortConfig cfg{block, equal_fast};
  // Sizes straddling the insertion cutoff and the 2*kPartitionBlock = 128
  // block-partition boundary, plus sizes deep into the blocked main loop.
  for (std::size_t n : {0u, 1u, 2u, 24u, 25u, 63u, 64u, 127u, 128u, 129u,
                        191u, 192u, 300u, 1000u, 5000u}) {
    auto v = make_pattern(pattern, n, n * 31 + 7);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    quicksort(std::span<std::uint64_t>(v), std::less<std::uint64_t>{}, cfg);
    ASSERT_EQ(v, expect) << "pattern=" << pattern << " n=" << n
                         << " block=" << block << " eq=" << equal_fast;
  }
}

std::string quicksort_config_name(
    const ::testing::TestParamInfo<std::tuple<bool, bool, std::string>>& info) {
  const bool block = std::get<0>(info.param);
  const bool equal_fast = std::get<1>(info.param);
  return std::get<2>(info.param) + (block ? "_block" : "_scalar") +
         (equal_fast ? "_eqfast" : "_noeq");
}

INSTANTIATE_TEST_SUITE_P(
    Configs, QuicksortConfigSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values("all_equal", "two_value",
                                         "organ_pipe", "presorted", "reverse",
                                         "random", "few_distinct")),
    quicksort_config_name);

TEST(ThreadPool, IndexedRunAllCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10000);
  pool.run_all(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, IndexedRunAllInlineWithZeroWorkers) {
  ThreadPool pool(0);
  std::vector<int> hits(100, 0);
  pool.run_all(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, IndexedRunAllEmpty) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_all(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Quicksort, CustomComparatorDescending) {
  auto v = random_vec(1000, 5);
  quicksort(std::span<std::uint64_t>(v), std::greater<std::uint64_t>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<std::uint64_t>{}));
}

TEST(InsertionSort, SmallInputs) {
  for (std::size_t n : {0u, 1u, 2u, 5u, 23u}) {
    auto v = random_vec(n, n + 100);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    insertion_sort(std::span<std::uint64_t>(v));
    EXPECT_EQ(v, expect);
  }
}

// --- sampling ------------------------------------------------------------

TEST(RegularSamples, PositionsAreQuantiles) {
  std::vector<std::uint64_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  const auto s = regular_samples<std::uint64_t>(data, 4);
  // positions (i+1)*100/5 = 20, 40, 60, 80
  EXPECT_EQ(s, (std::vector<std::uint64_t>{20, 40, 60, 80}));
}

TEST(RegularSamples, CountGeSizeReturnsAll) {
  const std::vector<std::uint64_t> data{3, 5, 9};
  EXPECT_EQ(regular_samples<std::uint64_t>(data, 10), data);
  EXPECT_EQ(regular_samples<std::uint64_t>(data, 3), data);
}

TEST(RegularSamples, SamplesAreSortedSubset) {
  auto data = random_vec(1000, 21);
  std::sort(data.begin(), data.end());
  const auto s = regular_samples<std::uint64_t>(data, 37);
  EXPECT_EQ(s.size(), 37u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  for (auto x : s)
    EXPECT_TRUE(std::binary_search(data.begin(), data.end(), x));
}

TEST(SelectSplitters, CountAndOrder) {
  std::vector<std::uint64_t> samples(100);
  std::iota(samples.begin(), samples.end(), 0);
  const auto sp = select_splitters<std::uint64_t>(samples, 10);
  EXPECT_EQ(sp.size(), 9u);
  EXPECT_TRUE(std::is_sorted(sp.begin(), sp.end()));
  // Splitters sit at the j/10 quantiles.
  EXPECT_EQ(sp[0], 10u);
  EXPECT_EQ(sp[8], 90u);
}

TEST(SelectSplitters, SinglePartition) {
  const std::vector<std::uint64_t> samples{1, 2, 3};
  EXPECT_TRUE(select_splitters<std::uint64_t>(samples, 1).empty());
}

TEST(SelectSplittersWeighted, EqualWeightsMatchUnweighted) {
  std::vector<std::uint64_t> samples(100);
  std::iota(samples.begin(), samples.end(), 0);
  std::vector<WeightedSample<std::uint64_t>> weighted;
  for (auto s : samples) weighted.push_back({s, 3.0});
  const auto a = select_splitters<std::uint64_t>(samples, 10);
  const auto b = select_splitters_weighted<std::uint64_t>(weighted, 10);
  // Same quantile targets; boundary rounding may differ by one sample.
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j)
    EXPECT_NEAR(static_cast<double>(a[j]), static_cast<double>(b[j]), 1.0);
}

TEST(SelectSplittersWeighted, HeavyShardDominatesSplitters) {
  // Shard A: keys 0..9 with weight 1000 each (a big shard, coarsely
  // sampled); shard B: keys 1000..1099 with weight 1 each (a tiny shard,
  // densely sampled). With 2 parts, the median splitter must fall inside
  // shard A's range, not at the unweighted sample median (~key 1000).
  std::vector<WeightedSample<std::uint64_t>> pool;
  for (std::uint64_t k = 0; k < 10; ++k) pool.push_back({k, 1000.0});
  for (std::uint64_t k = 1000; k < 1100; ++k) pool.push_back({k, 1.0});
  const auto sp = select_splitters_weighted<std::uint64_t>(pool, 2);
  ASSERT_EQ(sp.size(), 1u);
  EXPECT_LT(sp[0], 10u);
}

TEST(SelectSplittersWeighted, EmptyPoolYieldsDefaults) {
  const auto sp = select_splitters_weighted<std::uint64_t>({}, 4);
  EXPECT_EQ(sp, (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(SelectSplitters, UniformSamplesGiveUniformSplitters) {
  // Splitters of a uniform sample pool should be near the true quantiles.
  auto samples = random_vec(10000, 31, 1000000);
  std::sort(samples.begin(), samples.end());
  const auto sp = select_splitters<std::uint64_t>(samples, 8);
  for (std::size_t j = 0; j < sp.size(); ++j) {
    const double expected = 1000000.0 * static_cast<double>(j + 1) / 8.0;
    EXPECT_NEAR(static_cast<double>(sp[j]), expected, 25000.0);
  }
}

}  // namespace
}  // namespace pgxd::sort
