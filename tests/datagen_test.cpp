// Tests for the Fig. 4 input generators: determinism, sharding, and the
// statistical shape of each distribution (including the duplication
// behaviour the investigator experiments rely on).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "datagen/distributions.hpp"

namespace pgxd::gen {
namespace {

std::size_t distinct_count(const std::vector<std::uint64_t>& v) {
  return std::unordered_set<std::uint64_t>(v.begin(), v.end()).size();
}

TEST(Distributions, Names) {
  EXPECT_STREQ(name(Distribution::kUniform), "uniform");
  EXPECT_STREQ(name(Distribution::kNormal), "normal");
  EXPECT_STREQ(name(Distribution::kRightSkewed), "right-skewed");
  EXPECT_STREQ(name(Distribution::kExponential), "exponential");
}

class GeneratorSweep : public ::testing::TestWithParam<Distribution> {};

TEST_P(GeneratorSweep, DeterministicAndInDomain) {
  DataGenConfig cfg;
  cfg.dist = GetParam();
  cfg.domain = 10000;
  cfg.seed = 7;
  const auto a = generate(cfg, 5000);
  const auto b = generate(cfg, 5000);
  EXPECT_EQ(a, b);
  for (auto k : a) EXPECT_LT(k, cfg.domain);
}

TEST_P(GeneratorSweep, ShardsAreIndependentOfMachineCount) {
  DataGenConfig cfg;
  cfg.dist = GetParam();
  cfg.seed = 11;
  // Shard r of p machines is always derived from stream r.
  const auto s0 = generate_shard(cfg, 1000, 4, 2);
  const auto s1 = generate_shard(cfg, 1000, 4, 2);
  EXPECT_EQ(s0, s1);
  const auto other = generate_shard(cfg, 1000, 4, 3);
  EXPECT_NE(s0, other);
}

INSTANTIATE_TEST_SUITE_P(All, GeneratorSweep,
                         ::testing::ValuesIn(kAllDistributions));

TEST(Distributions, ShardSizesSumToTotal) {
  for (std::size_t total : {0u, 1u, 999u, 1000u, 1001u}) {
    for (std::size_t p : {1u, 3u, 8u}) {
      std::size_t sum = 0;
      for (std::size_t r = 0; r < p; ++r) sum += shard_size(total, p, r);
      EXPECT_EQ(sum, total);
      // Sizes differ by at most one.
      EXPECT_LE(shard_size(total, p, 0), shard_size(total, p, p - 1) + 1);
    }
  }
}

TEST(Distributions, UniformIsFlat) {
  DataGenConfig cfg;
  cfg.dist = Distribution::kUniform;
  cfg.domain = 100;
  const auto v = generate(cfg, 100000);
  Histogram h(0, 100, 10);
  for (auto k : v) h.add(static_cast<double>(k));
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_GT(h.count(b), 9000u);
    EXPECT_LT(h.count(b), 11000u);
  }
}

TEST(Distributions, NormalIsCenteredAndSymmetric) {
  DataGenConfig cfg;
  cfg.dist = Distribution::kNormal;
  cfg.domain = 1 << 20;
  const auto v = generate(cfg, 100000);
  RunningStats st;
  for (auto k : v) st.add(static_cast<double>(k));
  const double mid = static_cast<double>(cfg.domain) / 2;
  EXPECT_NEAR(st.mean(), mid, mid * 0.01);
  EXPECT_NEAR(st.stddev(), static_cast<double>(cfg.domain) / 8,
              static_cast<double>(cfg.domain) / 8 * 0.05);
}

TEST(Distributions, RightSkewedMassAtLowValues) {
  DataGenConfig cfg;
  cfg.dist = Distribution::kRightSkewed;
  cfg.domain = 1 << 20;
  const auto v = generate(cfg, 100000);
  std::size_t low = 0;
  for (auto k : v) low += (k < cfg.domain / 10);
  // u^6: P(X < domain/10) = (0.1)^(1/6) ~ 0.68.
  EXPECT_GT(low, 60000u);
  // Mean far below the midpoint.
  RunningStats st;
  for (auto k : v) st.add(static_cast<double>(k));
  EXPECT_LT(st.mean(), static_cast<double>(cfg.domain) / 4);
}

TEST(Distributions, ExponentialTailDecays) {
  DataGenConfig cfg;
  cfg.dist = Distribution::kExponential;
  cfg.domain = 1 << 20;
  const auto v = generate(cfg, 100000);
  RunningStats st;
  for (auto k : v) st.add(static_cast<double>(k));
  // Mean ~ domain/16.
  EXPECT_NEAR(st.mean(), static_cast<double>(cfg.domain) / 16,
              static_cast<double>(cfg.domain) / 16 * 0.05);
  std::size_t above_half = 0;
  for (auto k : v) above_half += (k > cfg.domain / 2);
  EXPECT_LT(above_half, 100u);  // e^-8 tail
}

TEST(Distributions, SkewedDistributionsDuplicateHeavily) {
  // At a small domain, right-skewed and exponential concentrate onto far
  // fewer distinct values than uniform — the duplication property the
  // investigator experiments need.
  constexpr std::size_t kN = 50000;
  DataGenConfig cfg;
  cfg.domain = 1 << 16;
  cfg.dist = Distribution::kUniform;
  const auto uni = distinct_count(generate(cfg, kN));
  cfg.dist = Distribution::kRightSkewed;
  const auto skew = distinct_count(generate(cfg, kN));
  cfg.dist = Distribution::kExponential;
  const auto expo = distinct_count(generate(cfg, kN));
  EXPECT_LT(skew, uni / 2);
  EXPECT_LT(expo, uni / 2);
}

TEST(AlmostSorted, FullySortedAtZeroDisorder) {
  const auto v = generate_almost_sorted(10000, 1 << 20, 0.0, 5);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(v.front(), 0u);
  EXPECT_EQ(v.back(), (1u << 20) - 1);
}

TEST(AlmostSorted, DisorderScalesInversions) {
  auto count_descents = [](const std::vector<std::uint64_t>& v) {
    std::size_t d = 0;
    for (std::size_t i = 1; i < v.size(); ++i) d += (v[i] < v[i - 1]);
    return d;
  };
  const auto mild = generate_almost_sorted(50000, 1 << 20, 0.01, 5);
  const auto heavy = generate_almost_sorted(50000, 1 << 20, 0.5, 5);
  EXPECT_GT(count_descents(mild), 0u);
  EXPECT_GT(count_descents(heavy), count_descents(mild) * 5);
}

TEST(AlmostSorted, ShardsTileTheGlobalSequence) {
  const auto full = generate_almost_sorted(999, 1 << 16, 0.1, 9);
  std::vector<std::uint64_t> stitched;
  for (std::size_t r = 0; r < 4; ++r) {
    const auto shard = almost_sorted_shard(999, 1 << 16, 0.1, 9, 4, r);
    stitched.insert(stitched.end(), shard.begin(), shard.end());
  }
  EXPECT_EQ(stitched, full);
}

TEST(AlmostSorted, EmptyAndSingle) {
  EXPECT_TRUE(generate_almost_sorted(0, 100, 0.5, 1).empty());
  const auto one = generate_almost_sorted(1, 100, 0.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Distributions, SeedChangesOutput) {
  DataGenConfig a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(generate(a, 100), generate(b, 100));
}

}  // namespace
}  // namespace pgxd::gen
