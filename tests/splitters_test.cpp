// Unit tests for partition planning: plain binary-search bounds and the
// duplicate-splitter investigator (Fig. 3).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/splitters.hpp"

namespace pgxd::core {
namespace {

TEST(PlanPartition, DistinctSplittersMatchLowerBounds) {
  std::vector<int> keys(100);
  std::iota(keys.begin(), keys.end(), 0);
  const std::vector<int> splitters{25, 50, 75};
  for (bool inv : {false, true}) {
    const auto plan = plan_partition<int>(keys, splitters, inv);
    EXPECT_EQ(plan.bounds, (std::vector<std::size_t>{0, 25, 50, 75, 100}));
    EXPECT_EQ(plan.duplicate_groups, 0u);
  }
}

TEST(PlanPartition, SearchCounts) {
  std::vector<int> keys(100);
  std::iota(keys.begin(), keys.end(), 0);
  const std::vector<int> dup{50, 50, 50, 50};
  // Without the investigator: one search per splitter.
  EXPECT_EQ(plan_partition<int>(keys, dup, false).searches, 4u);
  // With it: lower+upper bound for the single distinct group.
  const auto plan = plan_partition<int>(keys, dup, true);
  EXPECT_EQ(plan.searches, 2u);
  EXPECT_EQ(plan.duplicate_groups, 1u);
}

TEST(PlanPartition, Figure3bWithoutInvestigatorCollapses) {
  // All keys equal the duplicated splitter: the naive plan sends everything
  // to one destination.
  const std::vector<int> keys(1000, 7);
  const std::vector<int> splitters{7, 7, 7};  // 4 destinations
  const auto plan = plan_partition<int>(keys, splitters, false);
  const auto sizes = plan_sizes(plan);
  // lower_bound(7) == 0 for all: destination 0..2 get nothing, 3 gets all.
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{0, 0, 0, 1000}));
}

TEST(PlanPartition, Figure3cInvestigatorDividesEqually) {
  const std::vector<int> keys(1000, 7);
  const std::vector<int> splitters{7, 7, 7};
  const auto plan = plan_partition<int>(keys, splitters, true);
  const auto sizes = plan_sizes(plan);
  // The duplicate run is split equally across all four destinations the
  // duplicated group touches — Table II's equal-share behaviour.
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{250, 250, 250, 250}));
}

TEST(PlanPartition, MixedDistinctAndDuplicateGroups) {
  // keys: 200 zeros, 600 fives, 200 nines.
  std::vector<int> keys;
  keys.insert(keys.end(), 200, 0);
  keys.insert(keys.end(), 600, 5);
  keys.insert(keys.end(), 200, 9);
  const std::vector<int> splitters{5, 5, 5, 9};  // 5 destinations
  const auto plan = plan_partition<int>(keys, splitters, true);
  const auto sizes = plan_sizes(plan);
  ASSERT_EQ(sizes.size(), 5u);
  // Load-aware division: the run of fives is split so every destination's
  // *total* lands at the 200-element target, heads included.
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{200, 200, 200, 200, 200}));
  EXPECT_EQ(plan.duplicate_groups, 1u);
}

TEST(PlanPartition, EmptyKeysAndNoSplitters) {
  const std::vector<int> none;
  const auto plan = plan_partition<int>(none, none, true);
  EXPECT_EQ(plan.bounds, (std::vector<std::size_t>{0, 0}));

  std::vector<int> keys{1, 2, 3};
  const auto p2 = plan_partition<int>(keys, none, true);
  EXPECT_EQ(p2.bounds, (std::vector<std::size_t>{0, 3}));
}

TEST(PlanPartition, SplittersOutsideKeyRange) {
  const std::vector<int> keys{10, 11, 12};
  const std::vector<int> splitters{1, 2, 20, 30};
  for (bool inv : {false, true}) {
    const auto plan = plan_partition<int>(keys, splitters, inv);
    const auto sizes = plan_sizes(plan);
    // Everything lands between splitter 2 and splitter 20 -> destination 2.
    EXPECT_EQ(sizes, (std::vector<std::uint64_t>{0, 0, 3, 0, 0}));
  }
}

TEST(PlanPartition, BoundsAlwaysCoverAllKeys) {
  // Property: for random keys and random (sorted) splitters, bounds are
  // monotone and partition the full range, with and without investigator.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> keys(500);
    for (auto& k : keys) k = rng.bounded(20);  // heavy duplication
    std::sort(keys.begin(), keys.end());
    std::vector<std::uint64_t> splitters(7);
    for (auto& s : splitters) s = rng.bounded(20);
    std::sort(splitters.begin(), splitters.end());
    for (bool inv : {false, true}) {
      const auto plan = plan_partition<std::uint64_t>(keys, splitters, inv);
      ASSERT_EQ(plan.bounds.front(), 0u);
      ASSERT_EQ(plan.bounds.back(), keys.size());
      ASSERT_TRUE(std::is_sorted(plan.bounds.begin(), plan.bounds.end()));
    }
  }
}

TEST(PlanPartition, RangeRespectsSplitterSemantics) {
  // Destination j must only receive keys k with splitter[j-1] <= k (< next
  // distinct splitter group's value when no duplication is in play).
  Rng rng(5);
  std::vector<std::uint64_t> keys(2000);
  for (auto& k : keys) k = rng.bounded(1000);  // few duplicates
  std::sort(keys.begin(), keys.end());
  std::vector<std::uint64_t> splitters{100, 300, 500, 900};
  const auto plan = plan_partition<std::uint64_t>(keys, splitters, true);
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t i = plan.bounds[j]; i < plan.bounds[j + 1]; ++i) {
      if (j > 0) {
        EXPECT_GE(keys[i], splitters[j - 1]);
      }
      if (j < 4) {
        EXPECT_LE(keys[i], splitters[j]);
      }
    }
  }
}

TEST(PlanPartition, InvestigatorBalancesSkewedKeys) {
  // 98% of keys share one value; splitters drawn from the keys themselves
  // (as sample sort would). The investigator plan must be far more balanced
  // than the naive plan. (Keys strictly below/above the duplicated value are
  // pinned to the boundary destinations by splitter semantics, so the head
  // fraction bounds the residual imbalance — Table II's real datasets have
  // sub-percent heads.)
  Rng rng(31);
  std::vector<std::uint64_t> keys(10000);
  for (auto& k : keys) k = rng.bounded(50) == 0 ? rng.bounded(100) : 55;
  std::sort(keys.begin(), keys.end());
  // Regular splitters from the sorted keys (8 destinations).
  std::vector<std::uint64_t> splitters;
  for (std::size_t j = 1; j < 8; ++j) splitters.push_back(keys[j * keys.size() / 8]);

  const auto naive = balance_report(plan_sizes(
      plan_partition<std::uint64_t>(keys, splitters, false)));
  const auto fixed = balance_report(plan_sizes(
      plan_partition<std::uint64_t>(keys, splitters, true)));
  EXPECT_GT(naive.imbalance, 4.0);   // one destination hoards the duplicates
  EXPECT_LT(fixed.imbalance, 1.15);  // near-perfect split
}

}  // namespace
}  // namespace pgxd::core
