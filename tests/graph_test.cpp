// Tests for the graph substrate: CSR construction, RMAT / power-law
// generation, PGX.D-style partitioning (ghost nodes, edge chunks), and the
// twitter-like key generator behind Fig. 8 / Table III.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/stats.hpp"
#include "graph/csr.hpp"
#include "graph/generate.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/twitter.hpp"

namespace pgxd::graph {
namespace {

TEST(Csr, FromEdgesBasic) {
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {2, 0}};
  const auto g = CsrGraph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 2u);
  const auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2}));
  const auto in = g.in_degrees();
  EXPECT_EQ(in, (std::vector<std::uint64_t>{2, 1, 2}));
}

TEST(Csr, EmptyGraph) {
  const auto g = CsrGraph::from_edges(4, {});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(g.out_degree(v), 0u);
}

TEST(Rmat, EdgeCountAndRangeRespected) {
  RmatConfig cfg;
  cfg.num_vertices = 1 << 10;
  cfg.num_edges = 20000;
  const auto edges = rmat_edges(cfg);
  EXPECT_EQ(edges.size(), 20000u);
  for (const auto& e : edges) {
    EXPECT_LT(e.src, cfg.num_vertices);
    EXPECT_LT(e.dst, cfg.num_vertices);
  }
}

TEST(Rmat, DeterministicPerSeed) {
  RmatConfig cfg;
  cfg.num_vertices = 256;
  cfg.num_edges = 1000;
  const auto a = rmat_edges(cfg);
  const auto b = rmat_edges(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

TEST(Rmat, DegreeDistributionIsSkewed) {
  RmatConfig cfg;
  cfg.num_vertices = 1 << 12;
  cfg.num_edges = 1 << 16;
  const auto g = rmat_graph(cfg);
  std::uint64_t max_deg = 0;
  std::size_t zeros = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.out_degree(v));
    zeros += (g.out_degree(v) == 0);
  }
  const double mean = static_cast<double>(g.num_edges()) / g.num_vertices();
  // Power-law: hubs far above the mean and many isolated vertices.
  EXPECT_GT(static_cast<double>(max_deg), mean * 20);
  EXPECT_GT(zeros, g.num_vertices() / 10);
}

TEST(PowerlawDegrees, RangeAndSkew) {
  const auto d = powerlaw_degrees(100000, 2.1, 1000000, 3);
  std::uint64_t max_d = 0;
  std::size_t ones = 0;
  for (auto x : d) {
    ASSERT_GE(x, 1u);
    ASSERT_LE(x, 1000000u);
    max_d = std::max(max_d, x);
    ones += (x == 1);
  }
  EXPECT_GT(ones, 40000u);         // most vertices have tiny degree
  EXPECT_GT(max_d, 10000u);        // and hubs exist
}

TEST(Partition, BlocksCoverAllVerticesOnce) {
  RmatConfig cfg;
  cfg.num_vertices = 1 << 10;
  cfg.num_edges = 1 << 14;
  const auto g = rmat_graph(cfg);
  for (std::size_t machines : {1u, 3u, 8u}) {
    const auto p = partition_by_edges(g, machines);
    ASSERT_EQ(p.block_start.size(), machines + 1);
    EXPECT_EQ(p.block_start.front(), 0u);
    EXPECT_EQ(p.block_start.back(), g.num_vertices());
    EXPECT_TRUE(std::is_sorted(p.block_start.begin(), p.block_start.end()));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto m = p.vertex_owner[v];
      EXPECT_GE(v, p.block_start[m]);
      EXPECT_LT(v, p.block_start[m + 1]);
    }
  }
}

TEST(Partition, EdgeBalanceWithinFactorTwo) {
  RmatConfig cfg;
  cfg.num_vertices = 1 << 12;
  cfg.num_edges = 1 << 17;
  const auto g = rmat_graph(cfg);
  const std::size_t machines = 8;
  const auto p = partition_by_edges(g, machines);
  const auto row = g.row_ptr();
  std::vector<std::uint64_t> per_machine;
  for (std::size_t m = 0; m < machines; ++m)
    per_machine.push_back(row[p.block_start[m + 1]] - row[p.block_start[m]]);
  const auto r = pgxd::balance_report(per_machine);
  // Hub vertices bound what contiguous partitioning can do; RMAT hubs are
  // large but not > half the edges here.
  EXPECT_LT(r.imbalance, 2.0);
}

TEST(Ghosts, CountsAreConsistent) {
  RmatConfig cfg;
  cfg.num_vertices = 1 << 10;
  cfg.num_edges = 1 << 14;
  const auto g = rmat_graph(cfg);
  const auto p = partition_by_edges(g, 4);
  const auto total = total_ghost_stats(g, p);
  // Ghosting can only reduce messages: distinct endpoints <= crossing edges.
  EXPECT_LE(total.ghost_vertices, total.crossing_edges);
  EXPECT_GE(total.message_reduction, 1.0);
  // Per-machine stats sum to the totals.
  std::uint64_t crossing = 0;
  for (std::size_t m = 0; m < 4; ++m)
    crossing += ghost_stats(g, p, m).crossing_edges;
  EXPECT_EQ(crossing, total.crossing_edges);
}

TEST(Ghosts, SingleMachineHasNoCrossingEdges) {
  const auto g = rmat_graph({.num_vertices = 128, .num_edges = 1000});
  const auto p = partition_by_edges(g, 1);
  const auto s = total_ghost_stats(g, p);
  EXPECT_EQ(s.crossing_edges, 0u);
  EXPECT_EQ(s.ghost_vertices, 0u);
}

TEST(EdgeChunks, CoverMachineEdgesExactly) {
  RmatConfig cfg;
  cfg.num_vertices = 1 << 10;
  cfg.num_edges = 1 << 14;
  const auto g = rmat_graph(cfg);
  const auto p = partition_by_edges(g, 4);
  const auto row = g.row_ptr();
  for (std::size_t m = 0; m < 4; ++m) {
    const auto chunks = edge_chunks(g, p, m, 8);
    const std::uint64_t lo = row[p.block_start[m]];
    const std::uint64_t hi = row[p.block_start[m + 1]];
    if (hi == lo) {
      EXPECT_TRUE(chunks.empty());
      continue;
    }
    ASSERT_FALSE(chunks.empty());
    EXPECT_EQ(chunks.front().first_offset, lo);
    EXPECT_EQ(chunks.back().last_offset, hi);
    for (std::size_t c = 1; c < chunks.size(); ++c)
      EXPECT_EQ(chunks[c].first_offset, chunks[c - 1].last_offset);
    // Chunks are near-equal in edge count.
    for (const auto& ch : chunks) {
      EXPECT_LE(ch.last_offset - ch.first_offset, (hi - lo) / 8 + 2);
      EXPECT_LE(ch.first_vertex, ch.last_vertex);
    }
  }
}

TEST(GraphIo, EdgeListRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = dir / "pgxd_io_test_edges.txt";
  RmatConfig cfg;
  cfg.num_vertices = 256;
  cfg.num_edges = 2000;
  const auto edges = rmat_edges(cfg);
  write_edge_list(path, edges);
  const auto g = read_edge_list(path, cfg.num_vertices);
  const auto expect = CsrGraph::from_edges(cfg.num_vertices, edges);
  ASSERT_EQ(g.num_vertices(), expect.num_vertices());
  ASSERT_EQ(g.num_edges(), expect.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = expect.neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()));
  }
  std::filesystem::remove(path);
}

TEST(GraphIo, EdgeListInfersVertexCountAndSkipsComments) {
  const auto path =
      std::filesystem::temp_directory_path() / "pgxd_io_test_comments.txt";
  {
    std::ofstream out(path);
    out << "# header comment\n\n0 5\n5 2\n\n# tail\n2 0\n";
  }
  const auto g = read_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 6u);  // max id 5 -> 6 vertices
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 1u);
  std::filesystem::remove(path);
}

TEST(GraphIo, CsrBinaryRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "pgxd_io_test_csr.bin";
  RmatConfig cfg;
  cfg.num_vertices = 512;
  cfg.num_edges = 4000;
  const auto g = rmat_graph(cfg);
  write_csr_binary(path, g);
  const auto back = read_csr_binary(path);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = back.neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()));
  }
  std::filesystem::remove(path);
}

TEST(GraphIo, RejectsWrongMagic) {
  const auto path =
      std::filesystem::temp_directory_path() / "pgxd_io_test_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a csr file at all";
  }
  EXPECT_DEATH((void)read_csr_binary(path), "not a pgxd CSR");
  std::filesystem::remove(path);
}

TEST(Twitter, KeysInTableIIIDomain) {
  TwitterConfig cfg;
  cfg.total_keys = 20000;
  const auto keys = twitter_shard(cfg, 4, 1);
  for (auto k : keys) EXPECT_LE(k, kTwitterKeyMax);
}

TEST(Twitter, DegreeToKeyMonotoneAndBounded) {
  const std::uint64_t max_deg = 1000000;
  std::uint64_t prev = 0;
  for (std::uint64_t d : {1ULL, 2ULL, 10ULL, 1000ULL, 1000000ULL}) {
    const auto k = degree_to_key(d, max_deg);
    EXPECT_GE(k, prev);
    EXPECT_LE(k, kTwitterKeyMax);
    prev = k;
  }
  EXPECT_EQ(degree_to_key(1, max_deg), 0u);
  // Degrees above the cap clamp to the top of the domain.
  EXPECT_GE(degree_to_key(max_deg, max_deg), kTwitterKeyMax * 95 / 100);
}

TEST(Twitter, DuplicateRichButNoDominantKey) {
  TwitterConfig cfg;
  cfg.total_keys = 50000;
  const auto keys = twitter_shard(cfg, 1, 0);
  std::unordered_map<std::uint64_t, std::size_t> freq;
  for (auto k : keys) ++freq[k];
  // Duplicate-rich: far fewer distinct values than keys.
  EXPECT_LT(freq.size(), keys.size() / 4);
  // ...but no single value dominates (the paper's Spark baseline loses only
  // ~2.6x on Twitter, so the dataset cannot collapse onto one reducer).
  std::size_t top = 0;
  for (const auto& [k, c] : freq) top = std::max(top, c);
  EXPECT_LT(top, keys.size() / 20);
  // Low keys still carry most of the mass (power-law degrees).
  std::size_t low = 0;
  for (auto k : keys) low += (k < kTwitterKeyMax / 4);
  EXPECT_GT(low, keys.size() / 2);
}

TEST(Twitter, ShardsDeterministicAndDistinct) {
  TwitterConfig cfg;
  cfg.total_keys = 10000;
  const auto a = twitter_shard(cfg, 4, 2);
  const auto b = twitter_shard(cfg, 4, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, twitter_shard(cfg, 4, 3));
}

}  // namespace
}  // namespace pgxd::graph
