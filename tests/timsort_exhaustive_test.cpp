// Exhaustive small-input validation of TimSort (and the other kernels):
// every permutation of n <= 8 distinct elements and every 0/1 sequence of
// length <= 14 must sort correctly and stably. The 0-1 sequences are the
// classic comparator-network completeness check; permutations catch
// index/boundary bugs in run detection and the merge machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "sort/quicksort.hpp"
#include "sort/radix_sort.hpp"
#include "sort/timsort.hpp"

namespace pgxd::sort {
namespace {

TEST(TimsortExhaustive, AllPermutationsUpTo8) {
  for (std::size_t n = 0; n <= 8; ++n) {
    std::vector<int> base(n);
    std::iota(base.begin(), base.end(), 0);
    std::vector<int> perm = base;
    do {
      auto v = perm;
      timsort(std::span<int>(v));
      ASSERT_EQ(v, base) << "n=" << n;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

TEST(TimsortExhaustive, AllZeroOneSequencesUpTo14) {
  for (std::size_t n = 1; n <= 14; ++n) {
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
      std::vector<int> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = (bits >> i) & 1;
      auto expect = v;
      std::sort(expect.begin(), expect.end());
      timsort(std::span<int>(v));
      ASSERT_EQ(v, expect) << "n=" << n << " bits=" << bits;
    }
  }
}

struct Tagged {
  int key;
  int tag;
};

TEST(TimsortExhaustive, StabilityOnAllTaggedZeroOneSequencesUpTo10) {
  for (std::size_t n = 2; n <= 10; ++n) {
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
      std::vector<Tagged> v(n);
      for (std::size_t i = 0; i < n; ++i)
        v[i] = Tagged{static_cast<int>((bits >> i) & 1), static_cast<int>(i)};
      auto expect = v;
      std::stable_sort(expect.begin(), expect.end(),
                       [](const Tagged& a, const Tagged& b) {
                         return a.key < b.key;
                       });
      timsort(std::span<Tagged>(v), [](const Tagged& a, const Tagged& b) {
        return a.key < b.key;
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(v[i].key, expect[i].key) << "n=" << n << " bits=" << bits;
        ASSERT_EQ(v[i].tag, expect[i].tag)
            << "stability broken: n=" << n << " bits=" << bits;
      }
    }
  }
}

TEST(QuicksortExhaustive, AllPermutationsUpTo8) {
  for (std::size_t n = 0; n <= 8; ++n) {
    std::vector<int> base(n);
    std::iota(base.begin(), base.end(), 0);
    std::vector<int> perm = base;
    do {
      auto v = perm;
      quicksort(std::span<int>(v));
      ASSERT_EQ(v, base) << "n=" << n;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

TEST(QuicksortExhaustive, AllZeroOneSequencesUpTo14) {
  for (std::size_t n = 1; n <= 14; ++n) {
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
      std::vector<int> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = (bits >> i) & 1;
      auto expect = v;
      std::sort(expect.begin(), expect.end());
      quicksort(std::span<int>(v));
      ASSERT_EQ(v, expect) << "n=" << n << " bits=" << bits;
    }
  }
}

TEST(RadixSortExhaustive, AllPermutationsUpTo8) {
  for (std::size_t n = 0; n <= 8; ++n) {
    std::vector<std::uint64_t> base(n);
    std::iota(base.begin(), base.end(), 0);
    std::vector<std::uint64_t> perm = base;
    do {
      auto v = perm;
      radix_sort(v);
      ASSERT_EQ(v, base) << "n=" << n;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

// Insertion sort is the base case of both quicksort and TimSort; test it
// exhaustively too (it is also used standalone for tiny inputs).
TEST(InsertionSortExhaustive, AllPermutationsUpTo7) {
  for (std::size_t n = 0; n <= 7; ++n) {
    std::vector<int> base(n);
    std::iota(base.begin(), base.end(), 0);
    std::vector<int> perm = base;
    do {
      auto v = perm;
      insertion_sort(std::span<int>(v));
      ASSERT_EQ(v, base) << "n=" << n;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

}  // namespace
}  // namespace pgxd::sort
