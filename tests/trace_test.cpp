// Tests for the span tracer and its Gantt rendering, plus the sorter's
// trace integration (spans, cross-rank flow edges, critical path).
#include <gtest/gtest.h>

#include <string>

#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"
#include "obs/critical_path.hpp"
#include "sim/trace.hpp"

namespace pgxd {
namespace {

TEST(Trace, RecordsSpans) {
  sim::Trace t;
  t.record(0, "work", 0, 100);
  t.record(1, "wait", 50, 150);
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].label, "work");
  EXPECT_EQ(t.spans()[1].lane, 1u);
  t.clear();
  EXPECT_TRUE(t.spans().empty());
}

TEST(Trace, EmptyGantt) {
  sim::Trace t;
  EXPECT_EQ(t.render_gantt(), "(no spans)\n");
}

TEST(Trace, GanttLayout) {
  sim::Trace t;
  t.record(0, "alpha", 0, 50);
  t.record(0, "beta", 50, 100);
  t.record(1, "alpha", 0, 100);
  const std::string g = t.render_gantt(20);
  // Legend lists labels in first-appearance order.
  EXPECT_NE(g.find("A = alpha"), std::string::npos);
  EXPECT_NE(g.find("B = beta"), std::string::npos);
  // Two lanes rendered.
  EXPECT_NE(g.find("m00 |"), std::string::npos);
  EXPECT_NE(g.find("m01 |"), std::string::npos);
  // Lane 0: first half A, second half B; lane 1 all A.
  const auto l0 = g.find("m00 |") + 5;
  EXPECT_EQ(g[l0], 'A');
  EXPECT_EQ(g[l0 + 19], 'B');
  const auto l1 = g.find("m01 |") + 5;
  EXPECT_EQ(g[l1], 'A');
  EXPECT_EQ(g[l1 + 19], 'A');
}

TEST(Trace, SpanKeepsByteMetadata) {
  sim::Trace t;
  t.record(0, "exchange", 0, 100, /*bytes=*/4096);
  t.record(0, "merge", 100, 200);
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].bytes, 4096u);
  EXPECT_EQ(t.spans()[1].bytes, 0u);
}

TEST(Trace, DeclaredEmptyLanesStillRender) {
  sim::Trace t;
  t.set_lane_count(4);
  t.record(1, "work", 0, 100);  // lanes 0, 2, 3 have no spans
  EXPECT_EQ(t.lane_count(), 4u);
  const std::string g = t.render_gantt(20);
  for (const char* lane : {"m00 |", "m01 |", "m02 |", "m03 |"})
    EXPECT_NE(g.find(lane), std::string::npos) << lane;
}

TEST(Trace, LaneCountGrowsWithRecordedLanes) {
  sim::Trace t;
  t.set_lane_count(2);
  t.record(5, "work", 0, 10);  // recording beyond the declared count wins
  EXPECT_EQ(t.lane_count(), 6u);
  t.clear();
  EXPECT_EQ(t.lane_count(), 0u);
}

TEST(Trace, ManyLabelsShareOverflowGlyphInsteadOfGarbage) {
  sim::Trace t;
  // 70 distinct labels: 62 get their own glyph (A-Z, a-z, 0-9), the rest
  // share '*' and the legend says so.
  for (int i = 0; i < 70; ++i)
    t.record(0, "label" + std::to_string(i), i * 10, i * 10 + 10);
  const std::string g = t.render_gantt(280);
  EXPECT_NE(g.find("A = label0"), std::string::npos);
  EXPECT_NE(g.find("a = label26"), std::string::npos);
  EXPECT_NE(g.find("0 = label52"), std::string::npos);
  EXPECT_NE(g.find("* ="), std::string::npos);
  // No control characters or punctuation drift past the glyph alphabet.
  for (char c : g)
    EXPECT_TRUE(c == '\n' || (c >= 0x20 && c < 0x7f)) << static_cast<int>(c);
}

TEST(Trace, ZeroLengthSpanStillVisible) {
  sim::Trace t;
  t.record(0, "blip", 10, 10);
  t.record(0, "base", 0, 100);
  const std::string g = t.render_gantt(50);
  EXPECT_NE(g.find('A'), std::string::npos);
}

TEST(Trace, RejectsBackwardSpan) {
  sim::Trace t;
  EXPECT_DEATH(t.record(0, "bad", 100, 50), "end >= begin");
}

TEST(Trace, RecordsFlowsAndTagNames) {
  sim::Trace t;
  t.name_tag(3, "chunk");
  EXPECT_EQ(t.tag_label(3), "chunk");
  EXPECT_EQ(t.tag_label(99), "tag 99");  // unnamed tags stay legible
  t.record_flow(sim::Trace::Flow(11, 0, 1, 100, 150, 256, 3,
                                 sim::Trace::FlowKind::kData,
                                 /*retransmit=*/false, /*duplicate=*/false));
  ASSERT_EQ(t.flows().size(), 1u);
  EXPECT_EQ(t.flows()[0].span_id, 11u);
  EXPECT_EQ(t.flows()[0].recv, 150);
  t.clear();
  EXPECT_TRUE(t.flows().empty());
  EXPECT_EQ(t.tag_label(3), "tag 3");  // clear() drops names too
}

TEST(Trace, RejectsBackwardFlow) {
  sim::Trace t;
  EXPECT_DEATH(t.record_flow(sim::Trace::Flow(
                   1, 0, 1, 150, 100, 0, 3, sim::Trace::FlowKind::kData,
                   false, false)),
               "recv >= f.send");
}

TEST(Trace, SorterEmitsSixSpansPerMachine) {
  using Sorter = core::DistributedSorter<std::uint64_t>;
  const std::size_t machines = 3;
  gen::DataGenConfig dcfg;
  std::vector<std::vector<std::uint64_t>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, 9000, machines, r));

  rt::ClusterConfig ccfg;
  ccfg.machines = machines;
  ccfg.threads_per_machine = 4;
  rt::Cluster<Sorter::Msg> cluster(ccfg);
  sim::Trace trace;
  Sorter sorter(cluster, core::SortConfig{});
  sorter.set_trace(&trace);
  sorter.run(shards);

  EXPECT_EQ(trace.spans().size(), machines * core::kStepCount);
  // Spans within a lane are contiguous and ordered.
  for (std::size_t lane = 0; lane < machines; ++lane) {
    sim::SimTime prev_end = 0;
    for (const auto& s : trace.spans()) {
      if (s.lane != lane) continue;
      EXPECT_EQ(s.begin, prev_end);
      prev_end = s.end;
    }
  }
  const std::string g = trace.render_gantt(60);
  EXPECT_NE(g.find("local-sort"), std::string::npos);
  EXPECT_NE(g.find("send/receive"), std::string::npos);
}

TEST(Trace, SorterRecordsFlowEdgesWithNamedTags) {
  using Sorter = core::DistributedSorter<std::uint64_t>;
  const std::size_t machines = 4;
  gen::DataGenConfig dcfg;
  std::vector<std::vector<std::uint64_t>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, 20000, machines, r));

  rt::ClusterConfig ccfg;
  ccfg.machines = machines;
  ccfg.threads_per_machine = 4;
  rt::Cluster<Sorter::Msg> cluster(ccfg);
  sim::Trace trace;
  Sorter sorter(cluster, core::SortConfig{});
  sorter.set_trace(&trace);
  sorter.run(shards);

  // Every exchanged frame left a causal edge: samples up, splitters down,
  // counts and chunks across.
  EXPECT_FALSE(trace.flows().empty());
  bool saw_chunk = false, saw_samples = false;
  for (const auto& f : trace.flows()) {
    EXPECT_LE(f.send, f.recv);
    EXPECT_LT(f.src, machines);
    EXPECT_LT(f.dst, machines);
    EXPECT_GT(f.span_id, 0u);  // stamped by Comm before the fabric
    const std::string label = trace.tag_label(f.tag);
    saw_chunk |= label == "chunk";
    saw_samples |= label == "samples";
  }
  EXPECT_TRUE(saw_chunk);
  EXPECT_TRUE(saw_samples);
}

TEST(Trace, CriticalPathReconcilesWithSorterClock) {
  using Sorter = core::DistributedSorter<std::uint64_t>;
  const std::size_t machines = 4;
  gen::DataGenConfig dcfg;
  dcfg.dist = gen::Distribution::kExponential;
  std::vector<std::vector<std::uint64_t>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, 40000, machines, r));

  rt::ClusterConfig ccfg;
  ccfg.machines = machines;
  ccfg.threads_per_machine = 4;
  rt::Cluster<Sorter::Msg> cluster(ccfg);
  sim::Trace trace;
  Sorter sorter(cluster, core::SortConfig{});
  sorter.set_trace(&trace);
  sorter.run(shards);

  const obs::CriticalPathReport cp = obs::compute_critical_path(
      trace, /*top_k=*/5, sorter.stats().total_time);
  EXPECT_TRUE(cp.computed);
  // The walk charges contiguous segments back to t=0, so the path total is
  // exactly the run's end-to-end time — the SortReport invariant the
  // validator enforces at 1%.
  EXPECT_EQ(cp.total_ns, sorter.stats().total_time);
  EXPECT_EQ(cp.compute_ns + cp.wire_ns, cp.total_ns);
  EXPECT_GT(cp.hops, 0u);
  EXPECT_FALSE(cp.top_edges.empty());
}

}  // namespace
}  // namespace pgxd
