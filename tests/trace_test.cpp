// Tests for the span tracer and its Gantt rendering, plus the sorter's
// trace integration.
#include <gtest/gtest.h>

#include <string>

#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"
#include "sim/trace.hpp"

namespace pgxd {
namespace {

TEST(Trace, RecordsSpans) {
  sim::Trace t;
  t.record(0, "work", 0, 100);
  t.record(1, "wait", 50, 150);
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].label, "work");
  EXPECT_EQ(t.spans()[1].lane, 1u);
  t.clear();
  EXPECT_TRUE(t.spans().empty());
}

TEST(Trace, EmptyGantt) {
  sim::Trace t;
  EXPECT_EQ(t.render_gantt(), "(no spans)\n");
}

TEST(Trace, GanttLayout) {
  sim::Trace t;
  t.record(0, "alpha", 0, 50);
  t.record(0, "beta", 50, 100);
  t.record(1, "alpha", 0, 100);
  const std::string g = t.render_gantt(20);
  // Legend lists labels in first-appearance order.
  EXPECT_NE(g.find("A = alpha"), std::string::npos);
  EXPECT_NE(g.find("B = beta"), std::string::npos);
  // Two lanes rendered.
  EXPECT_NE(g.find("m00 |"), std::string::npos);
  EXPECT_NE(g.find("m01 |"), std::string::npos);
  // Lane 0: first half A, second half B; lane 1 all A.
  const auto l0 = g.find("m00 |") + 5;
  EXPECT_EQ(g[l0], 'A');
  EXPECT_EQ(g[l0 + 19], 'B');
  const auto l1 = g.find("m01 |") + 5;
  EXPECT_EQ(g[l1], 'A');
  EXPECT_EQ(g[l1 + 19], 'A');
}

TEST(Trace, ZeroLengthSpanStillVisible) {
  sim::Trace t;
  t.record(0, "blip", 10, 10);
  t.record(0, "base", 0, 100);
  const std::string g = t.render_gantt(50);
  EXPECT_NE(g.find('A'), std::string::npos);
}

TEST(Trace, RejectsBackwardSpan) {
  sim::Trace t;
  EXPECT_DEATH(t.record(0, "bad", 100, 50), "end >= begin");
}

TEST(Trace, SorterEmitsSixSpansPerMachine) {
  using Sorter = core::DistributedSorter<std::uint64_t>;
  const std::size_t machines = 3;
  gen::DataGenConfig dcfg;
  std::vector<std::vector<std::uint64_t>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, 9000, machines, r));

  rt::ClusterConfig ccfg;
  ccfg.machines = machines;
  ccfg.threads_per_machine = 4;
  rt::Cluster<Sorter::Msg> cluster(ccfg);
  sim::Trace trace;
  Sorter sorter(cluster, core::SortConfig{});
  sorter.set_trace(&trace);
  sorter.run(shards);

  EXPECT_EQ(trace.spans().size(), machines * core::kStepCount);
  // Spans within a lane are contiguous and ordered.
  for (std::size_t lane = 0; lane < machines; ++lane) {
    sim::SimTime prev_end = 0;
    for (const auto& s : trace.spans()) {
      if (s.lane != lane) continue;
      EXPECT_EQ(s.begin, prev_end);
      prev_end = s.end;
    }
  }
  const std::string g = trace.render_gantt(60);
  EXPECT_NE(g.find("local-sort"), std::string::npos);
  EXPECT_NE(g.find("send/receive"), std::string::npos);
}

}  // namespace
}  // namespace pgxd
