// Tests for the common toolkit: RNG determinism and distribution sanity,
// statistics, histograms, balance reports, CLI parsing, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace pgxd {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.bounded(kBound)];
  for (auto c : counts) {
    EXPECT_GT(c, kSamples / 10 * 0.9);
    EXPECT_LT(c, kSamples / 10 * 1.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  RunningStats st;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    st.add(u);
  }
  EXPECT_NEAR(st.mean(), 0.5, 0.01);
  EXPECT_NEAR(st.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.05);
  EXPECT_NEAR(st.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.exponential(2.0));
  EXPECT_NEAR(st.mean(), 0.5, 0.01);
  EXPECT_GE(st.min(), 0.0);
}

TEST(DeriveSeed, IndependentStreams) {
  const auto s0 = derive_seed(42, 0);
  const auto s1 = derive_seed(42, 1);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(derive_seed(42, 0), s0);  // stable
}

TEST(RunningStats, BasicMoments) {
  RunningStats st;
  for (double x : {1.0, 2.0, 3.0, 4.0}) st.add(x);
  EXPECT_EQ(st.count(), 4u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_DOUBLE_EQ(st.variance(), 1.25);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 4.0);
  EXPECT_DOUBLE_EQ(st.sum(), 10.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(RunningStats, QuantileExactWhileWithinReservoir) {
  RunningStats st;
  for (int i = 100; i >= 1; --i) st.add(i);  // 1..100, reverse order
  ASSERT_LE(st.count(), RunningStats::kReservoirCapacity);
  EXPECT_DOUBLE_EQ(st.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(st.quantile(1.0), 100.0);
  EXPECT_NEAR(st.quantile(0.5), 50.5, 0.51);
  EXPECT_NEAR(st.quantile(0.25), 25.75, 0.76);
}

TEST(RunningStats, QuantileEmptyStreamIsZero) {
  RunningStats st;
  EXPECT_DOUBLE_EQ(st.quantile(0.5), 0.0);
}

TEST(RunningStats, QuantileApproximatesLongStream) {
  // 100k uniform values: the 256-sample reservoir's median should land
  // within a few percent of the true median (binomial sampling error,
  // ~1/sqrt(256) ≈ 6%; allow 3 sigma).
  Rng rng(17);
  RunningStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.uniform());
  EXPECT_NEAR(st.quantile(0.5), 0.5, 0.19);
  EXPECT_NEAR(st.quantile(0.9), 0.9, 0.12);
  EXPECT_DOUBLE_EQ(st.quantile(0.0), st.min());
  EXPECT_DOUBLE_EQ(st.quantile(1.0), st.max());
}

TEST(RunningStats, QuantileDeterministicForSameSequence) {
  RunningStats a, b;
  Rng r1(5), r2(5);
  for (int i = 0; i < 10000; ++i) a.add(r1.uniform());
  for (int i = 0; i < 10000; ++i) b.add(r2.uniform());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.99), b.quantile(0.99));
}

TEST(RunningStats, MergeThenQuantileAgreesWithQuantileOfWholeStream) {
  // Satellite check: splitting one stream over 8 partial stats and merging
  // must give quantiles consistent with a single stats fed the whole
  // stream, within reservoir sampling error.
  Rng rng(23);
  RunningStats whole;
  std::vector<RunningStats> parts(8);
  for (int i = 0; i < 80000; ++i) {
    const double x = rng.uniform();
    whole.add(x);
    parts[i % 8].add(x);
  }
  RunningStats merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), whole.count());
  for (double q : {0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(merged.quantile(q), q, 0.19) << "q=" << q;
    EXPECT_NEAR(merged.quantile(q), whole.quantile(q), 0.30) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(merged.quantile(1.0), whole.quantile(1.0));
  EXPECT_DOUBLE_EQ(merged.quantile(0.0), whole.quantile(0.0));
}

TEST(RunningStats, MergeSmallReservoirsIsExactConcatenation) {
  RunningStats a, b;
  for (double x : {1.0, 2.0, 3.0}) a.add(x);
  for (double x : {4.0, 5.0}) b.add(x);
  a.merge(b);  // 5 values total, far under capacity: quantiles are exact
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 5.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 1.75);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 7.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);   // clamps into last bucket
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add_n(0.5, 10);
  h.add_n(1.5, 5);
  const std::string s = h.render(10);
  EXPECT_NE(s.find("##########"), std::string::npos);
  EXPECT_NE(s.find("#####"), std::string::npos);
}

TEST(BalanceReport, PerfectBalance) {
  const std::vector<std::uint64_t> sizes{100, 100, 100, 100};
  const auto r = balance_report(sizes);
  EXPECT_EQ(r.total, 400u);
  EXPECT_DOUBLE_EQ(r.imbalance, 1.0);
  EXPECT_EQ(r.spread, 0u);
  EXPECT_DOUBLE_EQ(r.min_share, 0.25);
  EXPECT_DOUBLE_EQ(r.max_share, 0.25);
}

TEST(BalanceReport, SkewDetected) {
  const std::vector<std::uint64_t> sizes{10, 10, 10, 70};
  const auto r = balance_report(sizes);
  EXPECT_DOUBLE_EQ(r.imbalance, 70.0 / 25.0);
  EXPECT_EQ(r.spread, 60u);
  EXPECT_DOUBLE_EQ(r.max_share, 0.7);
}

TEST(BalanceReport, EmptyInput) {
  const auto r = balance_report({});
  EXPECT_EQ(r.partitions, 0u);
  EXPECT_EQ(r.total, 0u);
}

TEST(Flags, ParsesTypedValues) {
  Flags f;
  f.declare("n", "element count", "1024");
  f.declare("ratio", "a ratio", "0.5");
  f.declare("name", "a name", "x");
  f.declare("on", "a bool", "false");
  const char* argv[] = {"prog", "--n=4096", "--ratio", "2.5", "--on=true", "pos"};
  f.parse(6, const_cast<char**>(argv));
  EXPECT_EQ(f.u64("n"), 4096u);
  EXPECT_DOUBLE_EQ(f.f64("ratio"), 2.5);
  EXPECT_EQ(f.str("name"), "x");  // default preserved
  EXPECT_TRUE(f.boolean("on"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos");
  EXPECT_TRUE(f.has("n"));
  EXPECT_FALSE(f.has("name"));
}

TEST(Flags, BareBooleanDoesNotEatTheNextFlag) {
  // `--recovery --crash=...` must parse as {recovery=true, crash=...}: the
  // old parser consumed `--crash=...` as recovery's *value*, silently
  // dropping both flags.
  Flags f;
  f.declare("recovery", "a bool", "false");
  f.declare("crash", "a schedule", "");
  f.declare("tail", "a trailing bool", "false");
  const char* argv[] = {"prog", "--recovery", "--crash=2@150", "--tail"};
  f.parse(4, const_cast<char**>(argv));
  EXPECT_TRUE(f.boolean("recovery"));
  EXPECT_EQ(f.str("crash"), "2@150");
  EXPECT_TRUE(f.boolean("tail"));  // bare flag at end of argv
}

TEST(Flags, ListParsing) {
  Flags f;
  f.declare("procs", "processor counts", "8,16,32");
  const char* argv[] = {"prog"};
  f.parse(1, const_cast<char**>(argv));
  EXPECT_EQ(f.u64_list("procs"), (std::vector<std::uint64_t>{8, 16, 32}));
}

TEST(Table, RendersAlignedColumns) {
  Table t({"proc", "share"});
  t.row({"0", "9.998%"});
  t.row({"1", "10.002%"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| proc |"), std::string::npos);
  EXPECT_NE(s.find("9.998%"), std::string::npos);
  // Separator lines appear 3 times (top, below header, bottom).
  std::size_t seps = 0, pos = 0;
  while ((pos = s.find("\n+", pos)) != std::string::npos) {
    ++seps;
    pos += 2;
  }
  EXPECT_EQ(seps + (s.rfind("+", 0) == 0 ? 1 : 0), 3u);
}

TEST(Table, RenderCsv) {
  Table t({"name", "value"});
  t.row({"plain", "1"});
  t.row({"with,comma", "2"});
  t.row({"with\"quote", "3"});
  const std::string csv = t.render_csv();
  EXPECT_EQ(csv,
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",2\n"
            "\"with\"\"quote\",3\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_pct(0.09998), "9.998%");
  EXPECT_EQ(Table::fmt_bytes(256 * 1024), "256.00 KiB");
  EXPECT_EQ(Table::fmt_bytes(3), "3 B");
  EXPECT_EQ(Table::fmt_time_s(1.5, 2), "1.50 s");
}

}  // namespace
}  // namespace pgxd
