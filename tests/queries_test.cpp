// Tests for when_all and the in-simulation distributed query engine
// (find / count / top_k over sorted distributed data).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/distributed_sort.hpp"
#include "core/queries.hpp"
#include "datagen/distributions.hpp"
#include "sim/when_all.hpp"

namespace pgxd {
namespace {

// --- when_all ---------------------------------------------------------------

sim::Task<void> sleep_and_mark(sim::Simulator& sim, sim::SimTime dt,
                               std::vector<sim::SimTime>& log) {
  co_await sim.delay(dt);
  log.push_back(sim.now());
}

sim::Task<void> join_three(sim::Simulator& sim, std::vector<sim::SimTime>& log,
                           sim::SimTime& joined_at) {
  std::vector<sim::Task<void>> tasks;
  tasks.push_back(sleep_and_mark(sim, 30, log));
  tasks.push_back(sleep_and_mark(sim, 10, log));
  tasks.push_back(sleep_and_mark(sim, 20, log));
  co_await sim::when_all(sim, std::move(tasks));
  joined_at = sim.now();
}

TEST(WhenAll, CompletesAtSlowestMember) {
  sim::Simulator sim;
  std::vector<sim::SimTime> log;
  sim::SimTime joined_at = -1;
  sim.spawn(join_three(sim, log, joined_at));
  sim.run();
  EXPECT_EQ(log, (std::vector<sim::SimTime>{10, 20, 30}));
  EXPECT_EQ(joined_at, 30);
  EXPECT_TRUE(sim.quiescent());
}

sim::Task<void> join_empty(sim::Simulator& sim, bool& done) {
  co_await sim::when_all(sim, {});
  done = true;
}

TEST(WhenAll, EmptyListCompletesImmediately) {
  sim::Simulator sim;
  bool done = false;
  sim.spawn(join_empty(sim, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0);
}

// --- DistributedQueries -----------------------------------------------------

using Key = std::uint64_t;
using Sorter = core::DistributedSorter<Key>;
using Queries = core::DistributedQueries<Key>;

class QueriesTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kMachines = 6;

  void SetUp() override {
    gen::DataGenConfig dcfg;
    dcfg.dist = gen::Distribution::kUniform;
    dcfg.domain = 300;  // guarantees duplicates
    dcfg.seed = 5;
    for (std::size_t r = 0; r < kMachines; ++r)
      shards_.push_back(gen::generate_shard(dcfg, 30000, kMachines, r));

    rt::ClusterConfig ccfg;
    ccfg.machines = kMachines;
    ccfg.threads_per_machine = 8;
    sort_cluster_ = std::make_unique<rt::Cluster<Sorter::Msg>>(ccfg);
    sorter_ = std::make_unique<Sorter>(*sort_cluster_, core::SortConfig{});
    sorter_->run(shards_);

    query_cluster_ = std::make_unique<rt::Cluster<Queries::Msg>>(ccfg);
    queries_ = std::make_unique<Queries>(*query_cluster_,
                                         sorter_->partitions());
    seq_ = std::make_unique<core::SortedSequence<Key>>(sorter_->partitions());
  }

  std::vector<std::vector<Key>> shards_;
  std::unique_ptr<rt::Cluster<Sorter::Msg>> sort_cluster_;
  std::unique_ptr<Sorter> sorter_;
  std::unique_ptr<rt::Cluster<Queries::Msg>> query_cluster_;
  std::unique_ptr<Queries> queries_;
  std::unique_ptr<core::SortedSequence<Key>> seq_;
};

TEST_F(QueriesTest, FindMatchesHostSideApi) {
  for (Key k : {Key{0}, Key{150}, Key{299}}) {
    const auto in_sim = queries_->find(k);
    const auto host = seq_->find(k);
    ASSERT_EQ(in_sim.found.has_value(), host.has_value()) << "key " << k;
    if (host) {
      EXPECT_EQ(in_sim.found->machine, host->machine);
      EXPECT_EQ(in_sim.found->index, host->index);
    }
    EXPECT_GT(in_sim.elapsed, 0);  // broadcast + reply latency is modeled
  }
}

TEST_F(QueriesTest, FindMissingKey) {
  const auto r = queries_->find(100000);
  EXPECT_FALSE(r.found.has_value());
}

TEST_F(QueriesTest, CountMatchesBruteForce) {
  std::map<Key, std::uint64_t> truth;
  for (const auto& shard : shards_)
    for (auto k : shard) ++truth[k];
  for (Key k : {Key{1}, Key{42}, Key{299}, Key{500}}) {
    const auto r = queries_->count(k);
    EXPECT_EQ(r.count, truth.count(k) ? truth[k] : 0) << "key " << k;
  }
}

TEST_F(QueriesTest, TopKMatchesGlobalSort) {
  std::vector<Key> all;
  for (const auto& shard : shards_) all.insert(all.end(), shard.begin(), shard.end());
  std::sort(all.begin(), all.end(), std::greater<>());
  const auto r = queries_->top_k(50);
  ASSERT_EQ(r.top.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(r.top[i], all[i]) << i;
}

TEST_F(QueriesTest, TopKLargerThanDataset) {
  const auto r = queries_->top_k(1u << 20);
  EXPECT_EQ(r.top.size(), 30000u);  // the whole (30000-key) dataset
  EXPECT_TRUE(std::is_sorted(r.top.begin(), r.top.end(), std::greater<>()));
}

TEST_F(QueriesTest, QuantileMatchesGlobalIndexing) {
  core::SortedSequence<Key> seq(sorter_->partitions());
  for (double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    const auto r = queries_->quantile(q);
    ASSERT_TRUE(r.found.has_value()) << "q=" << q;
    ASSERT_EQ(r.top.size(), 1u);
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(seq.size() - 1) + 0.5);
    EXPECT_EQ(r.top[0], seq.at(target).key) << "q=" << q;
    EXPECT_GT(r.elapsed, 0);
  }
}

TEST_F(QueriesTest, QueriesAreCheapRelativeToSort) {
  const auto r = queries_->find(42);
  EXPECT_LT(r.elapsed, sorter_->stats().total_time / 5);
}

}  // namespace
}  // namespace pgxd
