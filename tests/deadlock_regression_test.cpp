// Regression suite for the shared-pool deadlock (two-level AMS scoped
// exchanges contending on the cluster-wide BufferPool) and the schedule
// perturbation explorer that hunts for ordering-dependent wedges.
//
// SortConfig::scoped_pending_guard is the fix: scoped senders only park in
// the pool-backpressure receive while data frames are actually pending for
// them. With the guard disabled the deadlock comes back, and these tests
// pin the whole detection chain: the run aborts at the instant it wedges,
// the wait-for graph names the pool-wait cycle, a committed perturbation
// seed reproduces the same wedge from an alternative schedule, and clean
// configurations survive perturbation without a single false positive.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/distributed_sort.hpp"
#include "core/sort_report.hpp"
#include "datagen/distributions.hpp"
#include "runtime/cluster.hpp"

namespace pgxd {
namespace {

using core::DistributedSorter;
using core::PartitionScheme;
using core::SortConfig;
using core::SortMsg;
using Key = std::uint64_t;
using Sorter = DistributedSorter<Key>;
using Msg = SortMsg<Key>;

// The committed reproduction seed: one alternative same-timestamp delivery
// order under which the unguarded backpressure loop also wedges. Found by
// the --perturb sweep in scripts/check.sh analyze; keep in sync with it.
constexpr std::uint64_t kReproSeed = 7;

// 3x3 AMS groups + small chunks: several scoped exchanges share the pool
// and drain it, the exact contention the pending guard exists for.
constexpr std::size_t kMachines = 9;
constexpr std::size_t kTotalKeys = 60000;

std::vector<std::vector<Key>> ams_shards() {
  gen::DataGenConfig dcfg;
  dcfg.dist = gen::Distribution::kUniform;
  dcfg.domain = 1 << 20;
  dcfg.seed = 42;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < kMachines; ++r)
    shards.push_back(gen::generate_shard(dcfg, kTotalKeys, kMachines, r));
  return shards;
}

SortConfig ams_config(bool pending_guard) {
  SortConfig cfg;
  cfg.partition = PartitionScheme::kTwoLevelAms;
  cfg.read_buffer_bytes = 2048;  // 256-key chunks: heavy pool traffic
  cfg.scoped_pending_guard = pending_guard;
  return cfg;
}

rt::ClusterConfig ams_cluster() {
  rt::ClusterConfig ccfg;
  ccfg.machines = kMachines;
  ccfg.threads_per_machine = 8;
  return ccfg;
}

// One finished run, kept alive so tests can inspect the sorter and the
// cluster's wait graph after the fact. Member order matters: the sorter
// borrows the cluster, so it is declared (and thus destroyed) last-first.
struct AmsRun {
  std::unique_ptr<rt::Cluster<Msg>> cluster;
  std::unique_ptr<Sorter> sorter;
  sim::SimTime elapsed = 0;
};

AmsRun run_ams(const SortConfig& cfg, std::uint64_t perturb_seed) {
  AmsRun r;
  r.cluster = std::make_unique<rt::Cluster<Msg>>(ams_cluster());
  if (perturb_seed != 0)
    r.cluster->simulator().set_perturbation(
        {true, perturb_seed, /*wake_jitter=*/50});
  r.sorter = std::make_unique<Sorter>(*r.cluster, cfg);
  r.sorter->run(ams_shards());
  r.elapsed = r.cluster->simulator().now();
  return r;
}

void expect_sorted_output(const Sorter& sorter) {
  std::size_t total = 0;
  Key prev = 0;
  bool first = true;
  for (const auto& part : sorter.partitions()) {
    total += part.size();
    for (const auto& item : part) {
      if (!first) {
        EXPECT_LE(prev, item.key);
      }
      prev = item.key;
      first = false;
    }
  }
  EXPECT_EQ(total, kTotalKeys);
}

// --- The regression itself ---------------------------------------------------

TEST(PoolDeadlockRegression, UnguardedBackpressureWedgesAndNamesThePool) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The wait-for graph must (a) abort instead of hanging, and (b) name the
  // pool annotation on the cycling data-tag waits — the diagnostic that
  // distinguishes "pool starvation" from a plain lost message.
  EXPECT_DEATH(run_ams(ams_config(/*pending_guard=*/false), 0),
               "deadlocked.*buffer-pool");
}

TEST(PoolDeadlockRegression, CommittedPerturbationSeedReproducesTheWedge) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The explorer's committed seed drives an alternative delivery order
  // into the same wedge: the bug is schedule-dependent, and this pins a
  // second, independent route to it.
  EXPECT_DEATH(run_ams(ams_config(/*pending_guard=*/false), kReproSeed),
               "deadlocked.*buffer-pool");
}

TEST(PoolDeadlockRegression, PendingGuardKeepsTheSameConfigLive) {
  const AmsRun r = run_ams(ams_config(/*pending_guard=*/true), 0);
  expect_sorted_output(*r.sorter);
  const auto& ws = r.sorter->wait_stats();
  EXPECT_EQ(ws.deadlocks, 0u);
  EXPECT_GT(ws.mailbox_waits, 0u);  // the graph was live, not bypassed
  EXPECT_GT(ws.holds_added, 0u);    // pool/mailbox hold edges registered
  const auto& ps = r.sorter->pool_stats();
  EXPECT_EQ(ps.returns, ps.leases);  // every buffer came home
}

// --- Perturbation explorer ---------------------------------------------------

TEST(PerturbationExplorer, CleanConfigSurvivesASeedSweep) {
  // Zero false positives: the guarded sort must complete and validate
  // under every explored schedule. Each seed is one deterministic
  // alternative ordering, so a wedge here would be reproducible.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const AmsRun r = run_ams(ams_config(/*pending_guard=*/true), seed);
    expect_sorted_output(*r.sorter);
    EXPECT_EQ(r.sorter->wait_stats().deadlocks, 0u) << "seed " << seed;
  }
}

TEST(PerturbationExplorer, SameSeedSameSchedule) {
  // A perturbed run is still a deterministic simulation: re-running the
  // seed reproduces the elapsed time exactly (which is how a failure found
  // by the sweep becomes a committed regression).
  const auto t1 = run_ams(ams_config(true), kReproSeed).elapsed;
  const auto t2 = run_ams(ams_config(true), kReproSeed).elapsed;
  EXPECT_EQ(t1, t2);
}

TEST(PerturbationExplorer, DifferentSeedsExploreDifferentSchedules) {
  const auto t0 = run_ams(ams_config(true), 0).elapsed;
  const auto t1 = run_ams(ams_config(true), 1).elapsed;
  const auto t2 = run_ams(ams_config(true), 42).elapsed;
  // Wake jitter shifts mailbox handoffs, so distinct seeds should land on
  // distinct elapsed times; all must still sort correctly (checked above).
  EXPECT_TRUE(t0 != t1 || t1 != t2)
      << "perturbation produced the canonical schedule for every seed";
}

// --- Report plumbing ---------------------------------------------------------

TEST(WaitReport, CleanRunExportsWaitStats) {
  const AmsRun r = run_ams(ams_config(true), 0);
  const core::SortReport rep =
      core::build_sort_report(*r.sorter, core::SortRunInfo{});
  EXPECT_EQ(rep.waits.deadlocks, 0u);
  EXPECT_GT(rep.waits.mailbox_waits, 0u);
  EXPECT_GT(rep.waits.deadlock_checks + rep.waits.mailbox_waits, 0u);
  EXPECT_LE(rep.waits.max_blocked, kMachines);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"waits\""), std::string::npos);
  EXPECT_NE(json.find("\"mailbox_waits\""), std::string::npos);
}

}  // namespace
}  // namespace pgxd
