// Tests for the loser-tree k-way merge kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/kway_merge.hpp"

namespace pgxd::sort {
namespace {

std::vector<std::uint64_t> make_runs(std::size_t runs, std::size_t per_run,
                                     std::uint64_t seed,
                                     std::vector<std::size_t>& bounds,
                                     std::uint64_t domain = 1 << 20) {
  Rng rng(seed);
  std::vector<std::uint64_t> data;
  bounds.assign(1, 0);
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> run(per_run);
    for (auto& x : run) x = rng.bounded(domain);
    std::sort(run.begin(), run.end());
    data.insert(data.end(), run.begin(), run.end());
    bounds.push_back(data.size());
  }
  return data;
}

class KwayMergeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KwayMergeSweep, SortsForAnyRunCount) {
  const std::size_t runs = GetParam();
  std::vector<std::size_t> bounds;
  auto data = make_runs(runs, 700, runs + 3, bounds);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  std::vector<std::uint64_t> scratch;
  const auto stats = kway_merge(data, bounds, scratch);
  EXPECT_EQ(data, expect);
  EXPECT_EQ(stats.runs, runs);
}

INSTANTIATE_TEST_SUITE_P(RunCounts, KwayMergeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 33));

TEST(KwayMerge, UnevenAndEmptyRuns) {
  std::vector<std::size_t> bounds{0};
  std::vector<std::uint64_t> data;
  Rng rng(5);
  for (std::size_t len : {0u, 17u, 4000u, 0u, 1u, 250u}) {
    std::vector<std::uint64_t> run(len);
    for (auto& x : run) x = rng.next();
    std::sort(run.begin(), run.end());
    data.insert(data.end(), run.begin(), run.end());
    bounds.push_back(data.size());
  }
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  std::vector<std::uint64_t> scratch;
  kway_merge(data, bounds, scratch);
  EXPECT_EQ(data, expect);
}

struct Rec {
  int key;
  int run;
};
struct RecLess {
  bool operator()(const Rec& a, const Rec& b) const { return a.key < b.key; }
};

TEST(KwayMerge, StableAcrossRuns) {
  // Equal keys from lower-indexed runs must come out first.
  std::vector<Rec> data;
  std::vector<std::size_t> bounds{0};
  for (int r = 0; r < 4; ++r) {
    for (int k : {1, 5, 5, 9}) data.push_back(Rec{k, r});
    bounds.push_back(data.size());
  }
  std::vector<Rec> scratch;
  kway_merge(data, bounds, scratch, RecLess{});
  int prev_key = -1, prev_run = -1;
  for (const auto& rec : data) {
    ASSERT_GE(rec.key, prev_key);
    if (rec.key == prev_key) {
      ASSERT_GE(rec.run, prev_run);
    }
    prev_key = rec.key;
    prev_run = rec.run;
  }
}

TEST(KwayMerge, ComparisonCountIsNLogK) {
  std::vector<std::size_t> bounds;
  auto data = make_runs(16, 4000, 9, bounds);
  std::vector<std::uint64_t> scratch;
  const auto stats = kway_merge(data, bounds, scratch);
  // One root-to-leaf replay (log2 16 = 4 comparisons) per element, plus the
  // build; allow slack for sentinel comparisons.
  const auto n = 16u * 4000u;
  EXPECT_LE(stats.comparisons, n * 5);
  EXPECT_GE(stats.comparisons, n * 3);
}

TEST(KwayMerge, AllEqualKeys) {
  std::vector<std::uint64_t> data(3000, 7);
  const std::vector<std::size_t> bounds{0, 1000, 2000, 3000};
  std::vector<std::uint64_t> scratch;
  kway_merge(data, bounds, scratch);
  EXPECT_TRUE(std::all_of(data.begin(), data.end(),
                          [](auto x) { return x == 7; }));
}

TEST(KwayMerge, EmptyInput) {
  std::vector<std::uint64_t> data;
  std::vector<std::uint64_t> scratch;
  const auto stats = kway_merge(data, {0}, scratch);
  EXPECT_EQ(stats.runs, 0u);
}

TEST(KwayMerge, MatchesBalancedMergeResult) {
  // The two merge strategies must agree (both stable over run order).
  std::vector<std::size_t> bounds;
  auto a = make_runs(9, 2500, 21, bounds, /*domain=*/50);  // heavy ties
  auto b = a;
  auto bounds_b = bounds;
  std::vector<std::uint64_t> s1, s2;
  kway_merge(a, bounds, s1);
  ::pgxd::sort::balanced_merge(b, bounds_b, s2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pgxd::sort
