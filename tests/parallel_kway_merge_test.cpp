// Tests for the single-pass parallel k-way merge: the multisequence
// selection (kway_select), bit-identical agreement with the Fig. 2 pairwise
// tree on both planes (keys AND permutation — provenance rides the perm),
// and the per-range split under a real thread pool (TSan coverage).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/kway_merge.hpp"
#include "sort/parallel_kway_merge.hpp"
#include "sort/soa_merge.hpp"

namespace pgxd::sort {
namespace {

struct RunSet {
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> bounds;
};

RunSet make_runs(std::size_t runs, std::size_t max_per_run, std::uint64_t seed,
                 std::uint64_t domain = 1 << 20, bool allow_empty = true) {
  Rng rng(seed);
  RunSet rs;
  rs.bounds.assign(1, 0);
  for (std::size_t r = 0; r < runs; ++r) {
    const std::size_t len =
        allow_empty ? rng.bounded(max_per_run + 1)
                    : 1 + rng.bounded(max_per_run);
    std::vector<std::uint64_t> run(len);
    for (auto& x : run) x = rng.bounded(domain);
    std::sort(run.begin(), run.end());
    rs.keys.insert(rs.keys.end(), run.begin(), run.end());
    rs.bounds.push_back(rs.keys.size());
  }
  return rs;
}

// Reference: the Fig. 2 pairwise SoA tree, whose output (both planes) the
// parallel k-way merge must reproduce bit for bit.
void reference_merge(const RunSet& rs, std::vector<std::uint64_t>& keys,
                     std::vector<std::uint32_t>& perm) {
  keys = rs.keys;
  perm.resize(keys.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<std::uint64_t> ks;
  std::vector<std::uint32_t> ps;
  auto bounds = rs.bounds;
  const auto res = balanced_merge_soa(keys, perm, std::move(bounds), ks, ps);
  if (res.in_scratch) {
    keys.swap(ks);
    perm.swap(ps);
  }
}

TEST(KwaySelect, PrefixMatchesStableMerge) {
  // cursor(k) must carve exactly the first k elements of the stable merge,
  // ties dealt to the lower run — checked against the reference merge's
  // permutation plane at every 97th rank.
  const RunSet rs = make_runs(7, 600, 11, /*domain=*/64);  // heavy ties
  std::vector<std::uint64_t> mkeys;
  std::vector<std::uint32_t> mperm;
  reference_merge(rs, mkeys, mperm);
  const std::size_t n = rs.keys.size();
  for (std::size_t k = 0; k <= n; k += 97) {
    const auto cur = kway_select(rs.keys.data(), rs.bounds, k);
    std::size_t total = 0;
    for (std::size_t r = 0; r + 1 < rs.bounds.size(); ++r) {
      ASSERT_GE(cur[r], rs.bounds[r]);
      ASSERT_LE(cur[r], rs.bounds[r + 1]);
      total += cur[r] - rs.bounds[r];
    }
    ASSERT_EQ(total, k);
    // The selected set must be exactly the pre-merge positions of the
    // stable merge's first k elements.
    std::vector<bool> selected(n, false);
    for (std::size_t r = 0; r + 1 < rs.bounds.size(); ++r)
      for (std::size_t i = rs.bounds[r]; i < cur[r]; ++i) selected[i] = true;
    for (std::size_t i = 0; i < k; ++i)
      ASSERT_TRUE(selected[mperm[i]]) << "rank " << i << " of prefix " << k;
  }
}

class ParallelKwaySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(ParallelKwaySweep, BitIdenticalToPairwiseTree) {
  const auto [runs, domain] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RunSet rs = make_runs(runs, 1200, seed * 131 + runs, domain);
    std::vector<std::uint64_t> want_keys;
    std::vector<std::uint32_t> want_perm;
    reference_merge(rs, want_keys, want_perm);

    std::vector<std::uint32_t> perm(rs.keys.size());
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t ranges : {std::size_t{1}, std::size_t{4}, std::size_t{7}}) {
      std::vector<std::uint64_t> got_keys;
      std::vector<std::uint32_t> got_perm;
      const auto stats = parallel_kway_merge_soa(
          rs.keys, perm, rs.bounds, got_keys, got_perm, Less{},
          /*pool=*/nullptr, ranges);
      EXPECT_EQ(got_keys, want_keys);
      EXPECT_EQ(got_perm, want_perm);
      EXPECT_EQ(stats.runs, runs);
      EXPECT_LE(stats.ranges, std::max<std::size_t>(1, ranges));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RunsByDomain, ParallelKwaySweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 8, 16, 32,
                                                      52),
                       // full-width, tie-heavy, and single-value keys
                       ::testing::Values(std::uint64_t{1} << 40,
                                         std::uint64_t{40}, std::uint64_t{1})));

TEST(ParallelKwayMerge, PresortedAndEmptyRuns) {
  // Presorted: run r's keys all below run r+1's (splitters land on run
  // boundaries); plus interleaved empty runs.
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> bounds{0};
  Rng rng(3);
  std::uint64_t base = 0;
  for (std::size_t len : {0u, 900u, 0u, 0u, 2500u, 1u, 700u, 0u}) {
    std::vector<std::uint64_t> run(len);
    for (auto& x : run) x = base + rng.bounded(1000);
    std::sort(run.begin(), run.end());
    keys.insert(keys.end(), run.begin(), run.end());
    bounds.push_back(keys.size());
    base += 1000;
  }
  const RunSet rs{keys, bounds};
  std::vector<std::uint64_t> want_keys;
  std::vector<std::uint32_t> want_perm;
  reference_merge(rs, want_keys, want_perm);
  std::vector<std::uint32_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<std::uint64_t> got_keys;
  std::vector<std::uint32_t> got_perm;
  parallel_kway_merge_soa(keys, perm, bounds, got_keys, got_perm, Less{},
                          nullptr, /*ranges=*/5);
  EXPECT_EQ(got_keys, want_keys);
  EXPECT_EQ(got_perm, want_perm);
}

TEST(ParallelKwayMerge, AosMatchesSequentialKway) {
  const RunSet rs = make_runs(9, 2000, 17, /*domain=*/50);  // heavy ties
  auto seq = rs.keys;
  std::vector<std::uint64_t> scratch;
  kway_merge(seq, rs.bounds, scratch);
  std::vector<std::uint64_t> par;
  const auto stats = parallel_kway_merge(rs.keys, rs.bounds, par, Less{},
                                         nullptr, /*ranges=*/6);
  EXPECT_EQ(par, seq);
  EXPECT_GT(stats.select_rounds, 0u);
}

TEST(ParallelKwayMerge, EmptyAndSingleRun) {
  std::vector<std::uint64_t> empty, out;
  auto stats = parallel_kway_merge(empty, {0}, out);
  EXPECT_EQ(stats.runs, 0u);
  EXPECT_TRUE(out.empty());

  std::vector<std::uint64_t> one{3, 5, 9};
  stats = parallel_kway_merge(one, {0, 3}, out);
  EXPECT_EQ(out, one);
  EXPECT_EQ(stats.ranges, 1u);
}

TEST(ParallelKwayMerge, RangeClampKeepsPiecesCoarse) {
  // Tiny inputs must not shatter into per-element ranges.
  const RunSet rs = make_runs(4, 40, 23, 1 << 10, /*allow_empty=*/false);
  std::vector<std::uint64_t> out;
  const auto stats =
      parallel_kway_merge(rs.keys, rs.bounds, out, Less{}, nullptr, 64);
  EXPECT_EQ(stats.ranges, 1u);
  auto expect = rs.keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out, expect);
}

TEST(ParallelKwayMergeStress, PoolMatchesSequential) {
  // The per-range split under a real pool: TSan-visible concurrency over
  // disjoint destination slices, repeated across shapes.
  ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    // >= 2 * kMinMergePiece elements guaranteed, so the split engages.
    Rng rng(41 + seed);
    RunSet rs;
    rs.bounds.assign(1, 0);
    for (std::size_t r = 0; r < 5 + seed; ++r) {
      std::vector<std::uint64_t> run(2000 + rng.bounded(2000));
      for (auto& x : run) x = rng.bounded(std::uint64_t{1} << (4 + seed));
      std::sort(run.begin(), run.end());
      rs.keys.insert(rs.keys.end(), run.begin(), run.end());
      rs.bounds.push_back(rs.keys.size());
    }
    std::vector<std::uint64_t> want;
    parallel_kway_merge(rs.keys, rs.bounds, want);  // sequential
    std::vector<std::uint32_t> perm(rs.keys.size());
    std::iota(perm.begin(), perm.end(), 0u);
    std::vector<std::uint64_t> got;
    std::vector<std::uint64_t> got_keys;
    std::vector<std::uint32_t> got_perm;
    const auto aos = parallel_kway_merge(rs.keys, rs.bounds, got, Less{},
                                         &pool);
    const auto soa = parallel_kway_merge_soa(rs.keys, perm, rs.bounds,
                                             got_keys, got_perm, Less{},
                                             &pool);
    EXPECT_EQ(got, want);
    EXPECT_EQ(got_keys, want);
    EXPECT_GT(aos.ranges, 1u);
    EXPECT_GT(soa.ranges, 1u);
    for (std::size_t i = 0; i < got_perm.size(); ++i)
      EXPECT_EQ(rs.keys[got_perm[i]], got_keys[i]);
  }
}

}  // namespace
}  // namespace pgxd::sort
