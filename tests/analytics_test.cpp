// Tests for the distributed graph analytics (PageRank, connected
// components) against single-node references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "analytics/components.hpp"
#include "analytics/pagerank.hpp"
#include "analytics/sssp.hpp"
#include "graph/generate.hpp"

namespace pgxd::analytics {
namespace {

rt::ClusterConfig cluster_cfg(std::size_t machines) {
  rt::ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = 4;
  return cfg;
}

graph::CsrGraph test_graph(std::uint64_t seed = 7) {
  graph::RmatConfig gcfg;
  gcfg.num_vertices = 1 << 10;
  gcfg.num_edges = 1 << 13;
  gcfg.seed = seed;
  return graph::rmat_graph(gcfg);
}

// --- PageRank ----------------------------------------------------------------

class PageRankSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PageRankSweep, MatchesReferenceAcrossMachineCounts) {
  const std::size_t machines = GetParam();
  const auto g = test_graph();
  const auto part = graph::partition_by_edges(g, machines);
  rt::Cluster<PageRankMsg> cluster(cluster_cfg(machines));
  DistributedPageRank pr(cluster, g, part);
  const auto ranks = pr.run();
  const auto expect = pagerank_reference(g, 20, 0.85);
  ASSERT_EQ(ranks.size(), expect.size());
  for (std::size_t v = 0; v < ranks.size(); ++v)
    ASSERT_NEAR(ranks[v], expect[v], 1e-12) << "vertex " << v;
  EXPECT_GT(pr.stats().total_time, 0);
}

INSTANTIATE_TEST_SUITE_P(Machines, PageRankSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(PageRank, RanksSumToOneIsh) {
  const auto g = test_graph(9);
  const auto part = graph::partition_by_edges(g, 4);
  rt::Cluster<PageRankMsg> cluster(cluster_cfg(4));
  DistributedPageRank pr(cluster, g, part);
  const auto ranks = pr.run();
  double sum = 0;
  for (auto r : ranks) sum += r;
  // Dangling vertices leak rank mass; with RMAT's many zero-degree
  // vertices the sum settles below 1 but must stay positive and bounded.
  EXPECT_GT(sum, 0.1);
  EXPECT_LE(sum, 1.0 + 1e-9);
}

TEST(PageRank, HubsOutrankLeaves) {
  const auto g = test_graph(11);
  const auto part = graph::partition_by_edges(g, 4);
  rt::Cluster<PageRankMsg> cluster(cluster_cfg(4));
  DistributedPageRank pr(cluster, g, part);
  const auto ranks = pr.run();
  const auto in_deg = g.in_degrees();
  // The most-cited vertex must outrank any zero-in-degree vertex.
  const auto hub = static_cast<std::size_t>(
      std::max_element(in_deg.begin(), in_deg.end()) - in_deg.begin());
  for (std::size_t v = 0; v < ranks.size(); ++v)
    if (in_deg[v] == 0) {
      ASSERT_GT(ranks[hub], ranks[v]);
    }
}

TEST(PageRank, GhostAggregationReducesWireBytes) {
  const auto g = test_graph(13);
  const auto part = graph::partition_by_edges(g, 8);

  PageRankConfig with, without;
  without.ghost_aggregation = false;
  with.iterations = without.iterations = 5;

  rt::Cluster<PageRankMsg> c1(cluster_cfg(8));
  DistributedPageRank pr1(c1, g, part, with);
  const auto r1 = pr1.run();
  rt::Cluster<PageRankMsg> c2(cluster_cfg(8));
  DistributedPageRank pr2(c2, g, part, without);
  const auto r2 = pr2.run();

  // Same math, different message shapes.
  for (std::size_t v = 0; v < r1.size(); ++v) ASSERT_NEAR(r1[v], r2[v], 1e-12);
  // RMAT crossing edges greatly outnumber distinct ghost targets.
  EXPECT_LT(pr1.stats().wire_bytes, pr2.stats().wire_bytes / 2);
  EXPECT_LE(pr1.stats().total_time, pr2.stats().total_time);
}

TEST(PageRank, DeterministicAcrossRuns) {
  const auto g = test_graph(15);
  const auto part = graph::partition_by_edges(g, 4);
  auto run_once = [&] {
    rt::Cluster<PageRankMsg> cluster(cluster_cfg(4));
    DistributedPageRank pr(cluster, g, part);
    pr.run();
    return pr.stats().total_time;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- Connected components ------------------------------------------------------

class ComponentsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ComponentsSweep, MatchesReference) {
  const std::size_t machines = GetParam();
  const auto g = test_graph(21);
  const auto part = graph::partition_by_edges(g, machines);
  rt::Cluster<ComponentsMsg> cluster(cluster_cfg(machines));
  DistributedComponents cc(cluster, g, part);
  const auto labels = cc.run();
  const auto expect = components_reference(g);
  ASSERT_EQ(labels.size(), expect.size());
  for (std::size_t v = 0; v < labels.size(); ++v)
    ASSERT_EQ(labels[v], expect[v]) << "vertex " << v;
  EXPECT_GT(cc.stats().rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(Machines, ComponentsSweep,
                         ::testing::Values(1, 3, 8));

TEST(Components, DisconnectedCliques) {
  // Three disjoint triangles plus isolated vertices.
  std::vector<graph::Edge> edges;
  for (graph::VertexId base : {0u, 3u, 6u}) {
    edges.push_back({base, base + 1});
    edges.push_back({base + 1, base + 2});
    edges.push_back({base + 2, base});
  }
  const auto g = graph::CsrGraph::from_edges(12, edges);
  const auto part = graph::partition_by_edges(g, 4);
  rt::Cluster<ComponentsMsg> cluster(cluster_cfg(4));
  DistributedComponents cc(cluster, g, part);
  const auto labels = cc.run();
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[4], 3u);
  EXPECT_EQ(labels[8], 6u);
  for (graph::VertexId v = 9; v < 12; ++v) EXPECT_EQ(labels[v], v);
}

TEST(Components, PathSpanningAllMachines) {
  // A single path 0-1-2-...-63: the worst case for label propagation
  // (labels travel one hop per round) across machine boundaries.
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 0; v + 1 < 64; ++v) edges.push_back({v, v + 1});
  const auto g = graph::CsrGraph::from_edges(64, edges);
  const auto part = graph::partition_by_edges(g, 8);
  rt::Cluster<ComponentsMsg> cluster(cluster_cfg(8));
  DistributedComponents cc(cluster, g, part);
  const auto labels = cc.run();
  for (auto l : labels) EXPECT_EQ(l, 0u);
  EXPECT_GT(cc.stats().rounds, 2u);  // needed multiple propagation rounds
}

TEST(Components, ConvergesEarlyOnTinyGraph) {
  std::vector<graph::Edge> edges{{0, 1}};
  const auto g = graph::CsrGraph::from_edges(4, edges);
  const auto part = graph::partition_by_edges(g, 2);
  rt::Cluster<ComponentsMsg> cluster(cluster_cfg(2));
  DistributedComponents cc(cluster, g, part, /*max_rounds=*/100);
  const auto labels = cc.run();
  EXPECT_EQ(labels[1], 0u);
  EXPECT_LT(cc.stats().rounds, 5u);
}

TEST(Components, LabelsArePartitionRepresentatives) {
  // Every label must be the minimum vertex id of its component; labels form
  // an equivalence relation consistent with the edges.
  const auto g = test_graph(23);
  const auto part = graph::partition_by_edges(g, 6);
  rt::Cluster<ComponentsMsg> cluster(cluster_cfg(6));
  DistributedComponents cc(cluster, g, part);
  const auto labels = cc.run();
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(labels[v], v);
    EXPECT_EQ(labels[labels[v]], labels[v]);  // representative is fixed point
    for (const auto u : g.neighbors(v)) EXPECT_EQ(labels[u], labels[v]);
  }
}

// --- Single-source shortest paths ---------------------------------------------

class SsspSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SsspSweep, MatchesDijkstra) {
  const std::size_t machines = GetParam();
  const auto g = test_graph(31);
  const auto part = graph::partition_by_edges(g, machines);
  rt::Cluster<SsspMsg> cluster(cluster_cfg(machines));
  DistributedSssp sssp(cluster, g, part, /*source=*/0);
  const auto dist = sssp.run();
  const auto expect = sssp_reference(g, 0);
  ASSERT_EQ(dist.size(), expect.size());
  for (std::size_t v = 0; v < dist.size(); ++v)
    ASSERT_EQ(dist[v], expect[v]) << "vertex " << v;
  EXPECT_GT(sssp.stats().rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(Machines, SsspSweep, ::testing::Values(1, 4, 8));

TEST(Sssp, SourceIsZeroAndUnreachableStaysMax) {
  std::vector<graph::Edge> edges{{0, 1}, {1, 2}};
  const auto g = graph::CsrGraph::from_edges(5, edges);
  const auto part = graph::partition_by_edges(g, 2);
  rt::Cluster<SsspMsg> cluster(cluster_cfg(2));
  DistributedSssp sssp(cluster, g, part, 0);
  const auto dist = sssp.run();
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], edge_weight(0, 1));
  EXPECT_EQ(dist[2], edge_weight(0, 1) + edge_weight(1, 2));
  EXPECT_EQ(dist[3], kUnreachable);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(Sssp, PathGraphNeedsManyRounds) {
  // Relaxations travel one hop per round across machine boundaries.
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 0; v + 1 < 48; ++v) edges.push_back({v, v + 1});
  const auto g = graph::CsrGraph::from_edges(48, edges);
  const auto part = graph::partition_by_edges(g, 6);
  rt::Cluster<SsspMsg> cluster(cluster_cfg(6));
  DistributedSssp sssp(cluster, g, part, 0);
  const auto dist = sssp.run();
  const auto expect = sssp_reference(g, 0);
  EXPECT_EQ(dist, expect);
  EXPECT_GT(sssp.stats().rounds, 3u);
}

TEST(Sssp, EdgeWeightsDeterministicAndBounded) {
  for (graph::VertexId s = 0; s < 20; ++s)
    for (graph::VertexId d = 0; d < 20; ++d) {
      const auto w = edge_weight(s, d);
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, 100u);
      EXPECT_EQ(w, edge_weight(s, d));
    }
}

}  // namespace
}  // namespace pgxd::analytics
