// Tests for the result validator: it must accept correct output and
// pinpoint each class of corruption.
#include <gtest/gtest.h>

#include <vector>

#include "core/distributed_sort.hpp"
#include "core/validate.hpp"
#include "datagen/distributions.hpp"

namespace pgxd::core {
namespace {

using Key = std::uint64_t;
using Sorter = DistributedSorter<Key>;
using ItemT = Item<Key>;

class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gen::DataGenConfig dcfg;
    dcfg.seed = 3;
    for (std::size_t r = 0; r < 4; ++r)
      input_.push_back(gen::generate_shard(dcfg, 8000, 4, r));

    rt::ClusterConfig ccfg;
    ccfg.machines = 4;
    ccfg.threads_per_machine = 4;
    rt::Cluster<Sorter::Msg> cluster(ccfg);
    Sorter sorter(cluster, SortConfig{});
    sorter.run(input_);
    parts_ = sorter.partitions();
  }

  std::vector<std::vector<Key>> input_;
  std::vector<std::vector<ItemT>> parts_;
};

TEST_F(ValidateTest, AcceptsCorrectOutput) {
  const auto report = validate_sorted(parts_, input_);
  EXPECT_TRUE(report.ok()) << report.failure;
  EXPECT_TRUE(report.partitions_sorted);
  EXPECT_TRUE(report.globally_ordered);
  EXPECT_TRUE(report.permutation_ok);
  EXPECT_TRUE(report.provenance_ok);
  EXPECT_TRUE(report.failure.empty());
}

TEST_F(ValidateTest, DetectsLocalDisorder) {
  std::swap(parts_[1][10], parts_[1][500]);
  const auto report = validate_sorted(parts_, input_);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.partitions_sorted);
  EXPECT_NE(report.failure.find("partition 1"), std::string::npos);
}

TEST_F(ValidateTest, DetectsGlobalDisorder) {
  // Swap whole partitions: each remains sorted, global order breaks.
  std::swap(parts_[0], parts_[3]);
  const auto report = validate_sorted(parts_, input_);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.globally_ordered);
}

TEST_F(ValidateTest, DetectsLostElement) {
  parts_[2].pop_back();
  const auto report = validate_sorted(parts_, input_);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.failure.find("elements"), std::string::npos);
}

TEST_F(ValidateTest, DetectsMutatedKey) {
  // Replace a key with one that keeps order locally but breaks the
  // multiset (duplicate an adjacent value).
  auto& part = parts_[2];
  ASSERT_GT(part.size(), 2u);
  part[1].key = part[0].key;
  const auto report = validate_sorted(parts_, input_);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.permutation_ok);
}

TEST_F(ValidateTest, DetectsBrokenProvenanceMachine) {
  parts_[0][0].prov.prev_machine = 99;
  const auto report = validate_sorted(parts_, input_);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.failure.find("machine 99"), std::string::npos);
}

TEST_F(ValidateTest, DetectsBrokenProvenanceIndex) {
  parts_[0][0].prov.prev_index = 1u << 30;
  const auto report = validate_sorted(parts_, input_);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.failure.find("out of range"), std::string::npos);
}

TEST(Validate, EmptyEverything) {
  const std::vector<std::vector<ItemT>> parts(3);
  const std::vector<std::vector<Key>> input(3);
  const auto report = validate_sorted(parts, input);
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace pgxd::core
