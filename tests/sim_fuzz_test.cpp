// Randomized stress tests for the simulation kernel: many interacting
// processes with random structure must conserve messages, terminate, and
// replay identically. These are the invariants every engine built on the
// kernel silently depends on.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/when_all.hpp"

namespace pgxd::sim {
namespace {

struct FuzzWorld {
  explicit FuzzWorld(Simulator& s) : sim(s) {}
  Simulator& sim;
  std::vector<std::unique_ptr<Channel<std::uint64_t>>> channels;
  std::uint64_t sent_sum = 0;
  std::uint64_t received_sum = 0;
  std::uint64_t received_count = 0;
  std::vector<std::uint64_t> trace;
};

Task<void> fuzz_consumer(FuzzWorld& w, std::uint64_t seed, std::size_t ch,
                         int messages) {
  Rng rng(seed);
  for (int i = 0; i < messages; ++i) {
    const std::uint64_t v = co_await w.channels[ch]->recv();
    w.received_sum += v;
    ++w.received_count;
    w.trace.push_back(v ^ (w.sim.now() << 16));
    if (rng.bounded(3) == 0)
      co_await w.sim.delay(static_cast<SimTime>(rng.bounded(20)));
  }
}

// Builds a random producer/consumer graph where per-channel send and
// receive counts match, so the system must terminate with everything
// consumed.
struct FuzzResult {
  std::uint64_t checksum;
  SimTime end_time;
  std::uint64_t events;
};

FuzzResult run_fuzz(std::uint64_t seed) {
  Rng rng(seed);
  Simulator sim;
  FuzzWorld w(sim);
  const std::size_t n_channels = 2 + rng.bounded(6);
  for (std::size_t c = 0; c < n_channels; ++c)
    w.channels.push_back(std::make_unique<Channel<std::uint64_t>>(sim));

  // Random messages per channel; producers distribute across channels, so
  // plan exact per-channel quotas first.
  std::vector<int> per_channel(n_channels);
  for (auto& q : per_channel) q = static_cast<int>(rng.bounded(40));

  // One producer per channel sends exactly that channel's quota (keeps the
  // bookkeeping exact while the *timing* interleaving stays random).
  for (std::size_t c = 0; c < n_channels; ++c) {
    struct OneChannel {
      static Task<void> produce(FuzzWorld& world, std::uint64_t s,
                                std::size_t ch, int count) {
        Rng r(s);
        for (int i = 0; i < count; ++i) {
          co_await world.sim.delay(static_cast<SimTime>(r.bounded(50)));
          const std::uint64_t value = r.bounded(1000);
          world.sent_sum += value;
          world.channels[ch]->send(value);
        }
      }
    };
    sim.spawn(OneChannel::produce(w, derive_seed(seed, c), c, per_channel[c]));
    // Split the channel's consumption among 1-3 consumers.
    int remaining = per_channel[c];
    const std::size_t consumers = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < consumers && remaining > 0; ++k) {
      const int take = (k + 1 == consumers)
                           ? remaining
                           : static_cast<int>(rng.bounded(remaining + 1));
      if (take > 0)
        sim.spawn(fuzz_consumer(w, derive_seed(seed, 100 + c * 10 + k), c, take));
      remaining -= take;
    }
    if (remaining > 0)
      sim.spawn(fuzz_consumer(w, derive_seed(seed, 999 + c), c, remaining));
  }

  sim.run();
  EXPECT_TRUE(sim.quiescent()) << "seed " << seed;
  EXPECT_EQ(w.sent_sum, w.received_sum) << "seed " << seed;

  std::uint64_t checksum = w.received_count;
  for (auto t : w.trace) checksum = checksum * 1099511628211ULL + t;
  return FuzzResult{checksum, sim.now(), sim.events_processed()};
}

class SimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFuzz, ConservesAndTerminates) { run_fuzz(GetParam()); }

TEST_P(SimFuzz, ReplaysIdentically) {
  const auto a = run_fuzz(GetParam());
  const auto b = run_fuzz(GetParam());
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- Barrier fuzz: random arrival patterns over many rounds -----------------

Task<void> barrier_worker(Simulator& sim, Barrier& bar, std::uint64_t seed,
                          int rounds, std::vector<int>& round_of_release) {
  Rng rng(seed);
  for (int r = 0; r < rounds; ++r) {
    co_await sim.delay(static_cast<SimTime>(rng.bounded(100)));
    co_await bar.arrive();
    round_of_release.push_back(r);
  }
}

TEST(BarrierFuzz, RoundsNeverInterleave) {
  for (std::uint64_t seed : {7ULL, 11ULL, 23ULL}) {
    Simulator sim;
    constexpr int kWorkers = 9;
    constexpr int kRounds = 25;
    Barrier bar(sim, kWorkers);
    std::vector<int> releases;
    for (int wkr = 0; wkr < kWorkers; ++wkr)
      sim.spawn(barrier_worker(sim, bar, derive_seed(seed, wkr), kRounds,
                               releases));
    sim.run();
    ASSERT_TRUE(sim.quiescent());
    ASSERT_EQ(releases.size(), kWorkers * kRounds);
    // All releases of round r precede any of round r+1.
    for (std::size_t i = 0; i < releases.size(); ++i)
      EXPECT_EQ(releases[i], static_cast<int>(i / kWorkers));
  }
}

// --- Semaphore fuzz: mutual exclusion under random hold times ---------------

Task<void> sem_worker(Simulator& sim, Semaphore& sem, std::uint64_t seed,
                      int rounds, int& inside, int& max_inside,
                      std::size_t permits) {
  Rng rng(seed);
  for (int r = 0; r < rounds; ++r) {
    co_await sim.delay(static_cast<SimTime>(rng.bounded(30)));
    co_await sem.acquire();
    ++inside;
    max_inside = std::max(max_inside, inside);
    EXPECT_LE(static_cast<std::size_t>(inside), permits);
    co_await sim.delay(static_cast<SimTime>(1 + rng.bounded(10)));
    --inside;
    sem.release();
  }
}

TEST(SemaphoreFuzz, NeverExceedsPermits) {
  for (std::size_t permits : {1u, 2u, 5u}) {
    Simulator sim;
    Semaphore sem(sim, permits);
    int inside = 0, max_inside = 0;
    for (int wkr = 0; wkr < 12; ++wkr)
      sim.spawn(sem_worker(sim, sem, derive_seed(permits, wkr), 20, inside,
                           max_inside, permits));
    sim.run();
    EXPECT_TRUE(sim.quiescent());
    EXPECT_EQ(inside, 0);
    EXPECT_EQ(static_cast<std::size_t>(max_inside), permits)
        << "semaphore underutilized — permits " << permits;
    EXPECT_EQ(sem.available(), permits);
  }
}

// --- when_all fuzz: nested fork/join trees ----------------------------------

Task<void> fork_join_tree(Simulator& sim, std::uint64_t seed, int depth,
                          int& leaves) {
  if (depth == 0) {
    Rng rng(seed);
    co_await sim.delay(static_cast<SimTime>(rng.bounded(40)));
    ++leaves;
    co_return;
  }
  Rng rng(seed);
  const std::size_t fanout = 1 + rng.bounded(3);
  std::vector<Task<void>> children;
  for (std::size_t c = 0; c < fanout; ++c)
    children.push_back(
        fork_join_tree(sim, derive_seed(seed, c), depth - 1, leaves));
  co_await when_all(sim, std::move(children));
}

TEST(WhenAllFuzz, NestedTreesJoinCompletely) {
  for (std::uint64_t seed : {3ULL, 17ULL, 31ULL}) {
    Simulator sim;
    int leaves = 0;
    sim.spawn(fork_join_tree(sim, seed, 4, leaves));
    sim.run();
    EXPECT_TRUE(sim.quiescent());
    EXPECT_GE(leaves, 1);
  }
}

}  // namespace
}  // namespace pgxd::sim

// --- Partition-scheme replay fuzz -------------------------------------------
//
// The sorter end-to-end on the DES: the same seed must reproduce every
// partitioning decision bit-for-bit for each scheme — the splitters, the
// histogram round count, the partition stats, the simulated end time, and
// the sorted output itself. Any hidden nondeterminism (map iteration,
// arrival-order dependence in the level-1 merge, stale-probe handling)
// breaks this immediately.
namespace pgxd::core {
namespace {

using SKey = std::uint64_t;
using SorterT = DistributedSorter<SKey>;

struct PartitionFingerprint {
  std::vector<SKey> splitters;
  std::uint64_t rounds = 0;
  std::uint64_t probe_keys = 0;
  std::uint64_t groups = 0;
  std::uint64_t level1_items = 0;
  double achieved_epsilon = 0.0;
  sim::SimTime total = 0;
  std::uint64_t output_checksum = 0;
};

PartitionFingerprint run_partition_replay(std::uint64_t seed,
                                          PartitionScheme scheme) {
  const std::size_t machines = 9;
  const std::size_t n = 18'000;
  gen::DataGenConfig dcfg;
  dcfg.dist = (seed % 2) ? gen::Distribution::kZipf
                         : gen::Distribution::kRightSkewed;
  dcfg.seed = seed;
  std::vector<std::vector<SKey>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(gen::generate_shard(dcfg, n, machines, r));

  SortConfig cfg;
  cfg.partition = scheme;
  cfg.partition_epsilon = 0.08;

  rt::ClusterConfig ccfg;
  ccfg.machines = machines;
  ccfg.threads_per_machine = 2;
  ccfg.seed = seed;
  rt::Cluster<SorterT::Msg> cluster(ccfg);
  SorterT sorter(cluster, cfg);
  sorter.run(std::move(shards));

  PartitionFingerprint fp;
  const auto& st = sorter.stats();
  fp.splitters = st.splitters;
  fp.rounds = st.partition.rounds;
  fp.probe_keys = st.partition.probe_keys;
  fp.groups = st.partition.groups;
  fp.level1_items = st.partition.level1_items;
  fp.achieved_epsilon = st.partition.achieved_epsilon;
  fp.total = st.total_time;
  for (const auto& part : sorter.partitions())
    for (const auto& item : part)
      fp.output_checksum = fp.output_checksum * 1099511628211ULL + item.key;
  return fp;
}

void expect_identical(const PartitionFingerprint& a,
                      const PartitionFingerprint& b) {
  EXPECT_EQ(a.splitters, b.splitters);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.probe_keys, b.probe_keys);
  EXPECT_EQ(a.groups, b.groups);
  EXPECT_EQ(a.level1_items, b.level1_items);
  EXPECT_EQ(a.achieved_epsilon, b.achieved_epsilon);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.output_checksum, b.output_checksum);
}

class PartitionReplayFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionReplayFuzz, HistogramRefineReplaysIdentically) {
  const auto a =
      run_partition_replay(GetParam(), PartitionScheme::kHistogramRefine);
  const auto b =
      run_partition_replay(GetParam(), PartitionScheme::kHistogramRefine);
  expect_identical(a, b);
  EXPECT_GE(a.rounds, 1u);
  EXPECT_EQ(a.groups, 1u);
}

TEST_P(PartitionReplayFuzz, TwoLevelAmsReplaysIdentically) {
  const auto a =
      run_partition_replay(GetParam(), PartitionScheme::kTwoLevelAms);
  const auto b =
      run_partition_replay(GetParam(), PartitionScheme::kTwoLevelAms);
  expect_identical(a, b);
  EXPECT_GT(a.groups, 1u);
  EXPECT_GT(a.level1_items, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionReplayFuzz,
                         ::testing::Values(1, 7, 42));

}  // namespace
}  // namespace pgxd::core
