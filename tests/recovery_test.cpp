// Crash-stop building blocks under test, one layer below the sorter's
// recovery supervisor: fail-fast reliable sends to dead peers, the
// heartbeat failure detector (suspicion, clears, watchdog-bounded loops),
// deadline-aware collectives with abort broadcast, deadline receives, and
// Cluster::run_on over a shrunk membership. The end-to-end kill-a-rank
// chaos matrix lives in fault_injection_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "net/fabric.hpp"
#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"
#include "runtime/errors.hpp"
#include "sim/time.hpp"

namespace pgxd::rt {
namespace {

using Payload = std::vector<int>;

ClusterConfig tiny(std::size_t machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.threads_per_machine = 2;
  return cfg;
}

// ---- Fail-fast reliable delivery ---------------------------------------

TEST(FailFast, SendToDeadPeerThrowsPeerUnreachable) {
  ClusterConfig cfg = tiny(2);
  cfg.reliable.enabled = true;
  cfg.reliable.fail_fast = true;
  cfg.reliable.initial_rto = 200 * sim::kMicrosecond;
  cfg.reliable.max_rto = 1 * sim::kMillisecond;
  cfg.reliable.max_attempts = 3;
  cfg.net.faults.crashes = {net::CrashEvent{1, 0}};
  Cluster<Payload> cluster(cfg);
  bool first_threw = false, second_threw = false;
  sim::SimTime first_failed_at = 0, second_failed_at = 0;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() != 0) co_return;
    auto& comm = cluster.comm();
    try {
      Payload keys{1, 2, 3};
      co_await comm.send(0, 1, /*tag=*/7, std::move(keys), 24);
    } catch (const PeerUnreachableError&) {
      first_threw = true;
    }
    first_failed_at = cluster.simulator().now();
    try {
      Payload keys{4};
      co_await comm.send(0, 1, /*tag=*/7, std::move(keys), 8);
    } catch (const PeerUnreachableError&) {
      second_threw = true;
    }
    second_failed_at = cluster.simulator().now();
  });
  EXPECT_TRUE(first_threw);
  EXPECT_TRUE(second_threw);
  EXPECT_GT(first_failed_at, 0);  // the first send rode out a retry ladder
  EXPECT_TRUE(cluster.comm().is_unreachable(1));
  EXPECT_EQ(cluster.comm().reliable_stats().peer_unreachable, 2u);
  // The second send failed at the source: no fresh retry ladder.
  EXPECT_LT(second_failed_at - first_failed_at, cfg.reliable.initial_rto);
}

TEST(FailFast, PostToUnreachablePeerDropsSilently) {
  ClusterConfig cfg = tiny(2);
  cfg.reliable.enabled = true;
  cfg.reliable.fail_fast = true;
  cfg.reliable.initial_rto = 200 * sim::kMicrosecond;
  cfg.reliable.max_attempts = 2;
  cfg.net.faults.crashes = {net::CrashEvent{1, 0}};
  cfg.allow_undrained = true;  // the abandoned post's bookkeeping frame
  Cluster<Payload> cluster(cfg);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() != 0) co_return;
    auto& comm = cluster.comm();
    try {
      Payload keys{9};
      co_await comm.send(0, 1, /*tag=*/3, std::move(keys), 8);
    } catch (const PeerUnreachableError&) {
    }
    // Fire-and-forget to a peer already marked unreachable: no throw, no
    // retry ladder — the post is dropped at the source.
    Payload more{10};
    comm.post(0, 1, /*tag=*/3, std::move(more), 8);
    co_return;
  });
  EXPECT_TRUE(cluster.comm().is_unreachable(1));
  EXPECT_GE(cluster.comm().reliable_stats().peer_unreachable, 1u);
}

TEST(FailFast, SuspicionShortCircuitsTheRetryLadder) {
  ClusterConfig cfg = tiny(3);
  cfg.reliable.enabled = true;
  cfg.reliable.fail_fast = true;
  cfg.reliable.initial_rto = 1 * sim::kMillisecond;
  cfg.reliable.max_attempts = 40;  // full ladder would take tens of ms
  cfg.detector.enabled = true;
  cfg.detector.interval = 100 * sim::kMicrosecond;
  cfg.detector.timeout = 500 * sim::kMicrosecond;
  cfg.net.faults.crashes = {net::CrashEvent{2, 0}};
  Cluster<Payload> cluster(cfg);
  sim::SimTime send_started = 0, send_failed = 0;
  bool threw = false;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() != 0) co_return;
    // Let the detector accumulate silence from the dead rank first.
    co_await cluster.simulator().delay(1 * sim::kMillisecond);
    send_started = cluster.simulator().now();
    try {
      Payload keys{1};
      co_await cluster.comm().send(0, 2, /*tag=*/5, std::move(keys), 8);
    } catch (const PeerUnreachableError&) {
      threw = true;
    }
    send_failed = cluster.simulator().now();
  });
  EXPECT_TRUE(threw);
  // Suspicion is consulted at the first retry boundary: the send gives up
  // after roughly one RTO (plus jitter), not the 40-attempt budget.
  EXPECT_LT(send_failed - send_started, 2 * cfg.reliable.initial_rto);
}

// A rank blocked on a recv whose sender was abandoned shows up in the
// quiescence diagnostic together with the unreachable-peer report.
TEST(FailFast, QuiescenceDiagnosticNamesUnreachablePeers) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto doomed = [] {
    ClusterConfig cfg = tiny(3);
    cfg.reliable.enabled = true;
    cfg.reliable.fail_fast = true;
    cfg.reliable.initial_rto = 200 * sim::kMicrosecond;
    cfg.reliable.max_attempts = 2;
    cfg.net.faults.crashes = {net::CrashEvent{2, 0}};
    Cluster<Payload> cluster(cfg);
    cluster.run([&cluster](Machine& m) -> sim::Task<void> {
      if (m.rank() != 0) co_return;
      try {
        Payload keys{1};
        co_await cluster.comm().send(0, 2, /*tag=*/5, std::move(keys), 8);
      } catch (const PeerUnreachableError&) {
      }
      // Waits forever: the answer would have come from the dead rank.
      co_await cluster.comm().recv(0, /*tag=*/6);
    });
  };
  EXPECT_DEATH(doomed(), "peers marked unreachable");
}

// ---- Heartbeat failure detector ----------------------------------------

TEST(Detector, SuspectsACrashedPeerAndOnlyThatPeer) {
  ClusterConfig cfg = tiny(3);
  cfg.detector.enabled = true;
  cfg.detector.interval = 100 * sim::kMicrosecond;
  cfg.detector.timeout = 500 * sim::kMicrosecond;
  cfg.net.faults.crashes = {net::CrashEvent{2, 1 * sim::kMillisecond}};
  Cluster<Payload> cluster(cfg);
  bool suspects_dead = false, suspects_live = true;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    co_await cluster.simulator().delay(3 * sim::kMillisecond);
    if (m.rank() == 0) {
      suspects_dead = cluster.detector()->suspects(0, 2);
      suspects_live = cluster.detector()->suspects(0, 1);
    }
  });
  EXPECT_TRUE(suspects_dead);
  EXPECT_FALSE(suspects_live);
  const DetectorStats& ds = cluster.detector()->stats();
  EXPECT_GE(ds.suspicions, 1u);
  EXPECT_GT(ds.heartbeats_sent, 0u);
  EXPECT_GT(ds.heartbeats_delivered, 0u);
}

TEST(Detector, BlackoutSuspicionClearsWhenTheFabricHeals) {
  ClusterConfig cfg = tiny(3);
  cfg.detector.enabled = true;
  cfg.detector.interval = 100 * sim::kMicrosecond;
  cfg.detector.timeout = 400 * sim::kMicrosecond;
  // One 1ms blackout window at the start of the run, then a clean fabric.
  cfg.net.faults.blackout_period = 10 * sim::kMillisecond;
  cfg.net.faults.blackout_duration = 1 * sim::kMillisecond;
  Cluster<Payload> cluster(cfg);
  bool suspected_during = false, suspected_after = true;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    co_await cluster.simulator().delay(800 * sim::kMicrosecond);
    if (m.rank() == 0)
      suspected_during = cluster.detector()->suspects(0, 1);
    co_await cluster.simulator().delay(1200 * sim::kMicrosecond);
    if (m.rank() == 0)
      suspected_after = cluster.detector()->suspects(0, 1);
  });
  EXPECT_TRUE(suspected_during);   // false positive while frames are lost
  EXPECT_FALSE(suspected_after);   // heartbeats resumed; suspicion cleared
  EXPECT_GE(cluster.detector()->stats().clears, 1u);
}

TEST(Detector, RejectsNonsensicalConfig) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto build = [](sim::SimTime interval, sim::SimTime timeout,
                  sim::SimTime watchdog) {
    ClusterConfig cfg;
    cfg.machines = 2;
    cfg.threads_per_machine = 2;
    cfg.detector.enabled = true;
    cfg.detector.interval = interval;
    cfg.detector.timeout = timeout;
    cfg.detector.watchdog = watchdog;
    Cluster<Payload> cluster(cfg);
  };
  EXPECT_DEATH(build(0, sim::kMillisecond, sim::kSecond),
               "interval must be > 0");
  EXPECT_DEATH(build(sim::kMillisecond, 100, sim::kSecond),
               "timeout must be >= interval");
  EXPECT_DEATH(build(sim::kMillisecond, 5 * sim::kMillisecond,
                     2 * sim::kMillisecond),
               "watchdog must exceed timeout");
}

// ---- Deadline-aware collectives ----------------------------------------

TEST(BoundedCollectives, HealthyBroadcastMatchesPlain) {
  Cluster<Payload> cluster(tiny(4));
  std::vector<std::optional<Payload>> got(4);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    Payload value = m.rank() == 1 ? Payload{7, 8, 9} : Payload{};
    auto r = co_await bounded_broadcast(
        cluster.comm(), m.rank(), /*root=*/1, /*tag=*/1, /*abort_tag=*/2,
        std::move(value), 12, /*deadline=*/50 * sim::kMillisecond);
    got[m.rank()] = std::move(r);
  });
  for (const auto& v : got) {
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, (Payload{7, 8, 9}));
  }
}

TEST(BoundedCollectives, DeadRootBroadcastResolvesNulloptAtTheDeadline) {
  ClusterConfig cfg = tiny(4);
  cfg.allow_undrained = true;  // abort frames outlive the resolved ranks
  Cluster<Payload> cluster(cfg);
  const sim::SimTime deadline = 2 * sim::kMillisecond;
  std::vector<std::optional<Payload>> got(4, Payload{});
  std::vector<sim::SimTime> resolved_at(4, 0);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() == 1) co_return;  // the root's process is gone
    Payload value;
    auto r = co_await bounded_broadcast(cluster.comm(), m.rank(), /*root=*/1,
                                        /*tag=*/1, /*abort_tag=*/2,
                                        std::move(value), 12, deadline);
    got[m.rank()] = std::move(r);
    resolved_at[m.rank()] = cluster.simulator().now();
  });
  for (std::size_t r : {0u, 2u, 3u}) {
    EXPECT_FALSE(got[r].has_value()) << "rank " << r;
    EXPECT_LE(resolved_at[r], deadline + kBoundedPoll) << "rank " << r;
  }
}

TEST(BoundedCollectives, GatherContributorsPostAndGoPastADeadMember) {
  ClusterConfig cfg = tiny(4);
  cfg.allow_undrained = true;
  Cluster<Payload> cluster(cfg);
  const sim::SimTime deadline = 2 * sim::kMillisecond;
  std::optional<std::vector<Payload>> root_got = std::vector<Payload>{};
  std::vector<sim::SimTime> resolved_at(4, 0);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() == 3) co_return;  // one contribution never comes
    Payload mine{static_cast<int>(m.rank())};
    auto r = co_await bounded_gather(cluster.comm(), m.rank(), /*root=*/0,
                                     /*tag=*/1, /*abort_tag=*/2,
                                     std::move(mine), 4, deadline);
    resolved_at[m.rank()] = cluster.simulator().now();
    if (m.rank() == 0) root_got = std::move(r);
  });
  EXPECT_FALSE(root_got.has_value());
  EXPECT_LE(resolved_at[0], deadline + kBoundedPoll);
  // Contributors posted and resolved immediately — a wedged root (or, here,
  // a missing member at the root) cannot stall them.
  EXPECT_LT(resolved_at[1], deadline);
  EXPECT_LT(resolved_at[2], deadline);
}

TEST(BoundedCollectives, AllToAllCollapsesOnAMissingMember) {
  ClusterConfig cfg = tiny(4);
  cfg.allow_undrained = true;
  Cluster<Payload> cluster(cfg);
  const sim::SimTime deadline = 2 * sim::kMillisecond;
  std::vector<std::optional<std::vector<Payload>>> got(4, std::vector<Payload>{});
  std::vector<sim::SimTime> resolved_at(4, 0);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    if (m.rank() == 2) co_return;
    std::vector<Payload> values(4);
    for (std::size_t d = 0; d < 4; ++d)
      values[d] = Payload{static_cast<int>(m.rank() * 10 + d)};
    std::vector<std::uint64_t> bytes(4, 4);
    auto r = co_await bounded_all_to_all(cluster.comm(), m.rank(), /*tag=*/1,
                                         /*abort_tag=*/2, std::move(values),
                                         std::move(bytes), deadline);
    got[m.rank()] = std::move(r);
    resolved_at[m.rank()] = cluster.simulator().now();
  });
  // The first rank to hit the deadline broadcast an abort; everyone
  // resolved nullopt within one poll of it rather than at their own pace.
  for (std::size_t r : {0u, 1u, 3u}) {
    EXPECT_FALSE(got[r].has_value()) << "rank " << r;
    EXPECT_LE(resolved_at[r], deadline + kBoundedPoll) << "rank " << r;
  }
}

TEST(BoundedCollectives, HealthyAllToAllMatchesPlain) {
  Cluster<Payload> cluster(tiny(3));
  std::vector<std::optional<std::vector<Payload>>> got(3);
  cluster.run([&](Machine& m) -> sim::Task<void> {
    std::vector<Payload> values(3);
    for (std::size_t d = 0; d < 3; ++d)
      values[d] = Payload{static_cast<int>(m.rank() * 10 + d)};
    std::vector<std::uint64_t> bytes(3, 4);
    auto r = co_await bounded_all_to_all(
        cluster.comm(), m.rank(), /*tag=*/1, /*abort_tag=*/2,
        std::move(values), std::move(bytes),
        /*deadline=*/50 * sim::kMillisecond);
    got[m.rank()] = std::move(r);
  });
  for (std::size_t r = 0; r < 3; ++r) {
    ASSERT_TRUE(got[r].has_value());
    for (std::size_t s = 0; s < 3; ++s)
      EXPECT_EQ((*got[r])[s],
                (Payload{static_cast<int>(s * 10 + r)}));
  }
}

// ---- Deadline receive --------------------------------------------------

TEST(RecvUntil, ResolvesNulloptExactlyAtTheDeadlineThenDeliversLate) {
  Cluster<Payload> cluster(tiny(2));
  const sim::SimTime deadline = 200 * sim::kMicrosecond;
  bool timed_out = false;
  sim::SimTime timeout_at = 0, arrival_at = 0;
  Payload delivered;
  cluster.run([&](Machine& m) -> sim::Task<void> {
    auto& comm = cluster.comm();
    if (m.rank() == 0) {
      co_await cluster.simulator().delay(500 * sim::kMicrosecond);
      Payload keys{11, 22};
      co_await comm.send(0, 1, /*tag=*/5, std::move(keys), 8);
    } else {
      auto got = co_await comm.recv_until(1, /*tag=*/5, deadline);
      timed_out = !got.has_value();
      timeout_at = cluster.simulator().now();
      auto msg = co_await comm.recv(1, /*tag=*/5);
      arrival_at = cluster.simulator().now();
      delivered = std::move(msg.payload);
    }
  });
  EXPECT_TRUE(timed_out);
  // Timing neutrality: the timed wait neither fires early nor drifts.
  EXPECT_EQ(timeout_at, deadline);
  EXPECT_GE(arrival_at, 500 * sim::kMicrosecond);
  EXPECT_EQ(delivered, (Payload{11, 22}));
}

// ---- Shrunk-membership runs --------------------------------------------

TEST(ClusterRunOn, SpawnsOnlyTheGivenRanks) {
  Cluster<Payload> cluster(tiny(4));
  std::vector<int> ran(4, 0);
  std::vector<std::size_t> subset{0, 2, 3};
  cluster.run_on(subset, [&ran](Machine& m) -> sim::Task<void> {
    ran[m.rank()] = 1;
    co_return;
  });
  EXPECT_EQ(ran, (std::vector<int>{1, 0, 1, 1}));
}

TEST(ClusterRunOn, SurvivorsCommunicateAroundTheMissingRank) {
  Cluster<Payload> cluster(tiny(3));
  std::vector<std::size_t> subset{0, 2};  // rank 1 is out of the membership
  Payload got;
  cluster.run_on(subset, [&](Machine& m) -> sim::Task<void> {
    auto& comm = cluster.comm();
    if (m.rank() == 0) {
      Payload keys{5, 6};
      co_await comm.send(0, 2, /*tag=*/4, std::move(keys), 8);
    } else {
      auto msg = co_await comm.recv(2, /*tag=*/4);
      got = std::move(msg.payload);
    }
  });
  EXPECT_EQ(got, (Payload{5, 6}));
}

}  // namespace
}  // namespace pgxd::rt
