// Tests for the LSD radix sort kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "sort/radix_sort.hpp"

namespace pgxd::sort {
namespace {

class RadixSortSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(RadixSortSweep, MatchesStdSort) {
  const auto [n, domain] = GetParam();
  Rng rng(n + domain);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = domain ? rng.bounded(domain) : rng.next();
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  radix_sort(v);
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDomains, RadixSortSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 100, 10000, 100000),
                       ::testing::Values(0ULL, 2ULL, 256ULL, 1ULL << 20)));

TEST(RadixSort, PassCountTracksSignificantBits) {
  Rng rng(5);
  std::vector<std::uint64_t> v(10000);
  for (auto& x : v) x = rng.bounded(1 << 16);  // 16 significant bits
  const auto stats = radix_sort(v);
  EXPECT_LE(stats.passes, 2u);  // two 8-bit passes
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(RadixSort, SkipsConstantDigitPasses) {
  // All keys share the same low byte: the first pass is trivial.
  Rng rng(9);
  std::vector<std::uint64_t> v(5000);
  for (auto& x : v) x = (rng.bounded(1 << 8) << 8) | 0x42;
  const auto stats = radix_sort(v);
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(RadixSort, WideDigits) {
  Rng rng(11);
  std::vector<std::uint64_t> v(50000);
  for (auto& x : v) x = rng.bounded(1ULL << 32);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  radix_sort(v, /*significant_bits=*/0, /*pass_bits=*/11);
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, SixtyFourBitKeys) {
  Rng rng(13);
  std::vector<std::uint64_t> v(30000);
  for (auto& x : v) x = rng.next();
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  const auto stats = radix_sort(v);
  EXPECT_EQ(v, expect);
  EXPECT_LE(stats.passes, 8u);
}

TEST(RadixSort, AllEqual) {
  std::vector<std::uint64_t> v(1000, 77);
  const auto stats = radix_sort(v);
  EXPECT_EQ(stats.passes, 0u);  // every digit is constant
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](auto x) { return x == 77; }));
}

TEST(RadixSort, AlreadySorted) {
  std::vector<std::uint64_t> v(10000);
  std::iota(v.begin(), v.end(), 0);
  auto expect = v;
  radix_sort(v);
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, Uint32Keys) {
  Rng rng(17);
  std::vector<std::uint32_t> v(20000);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.next());
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  radix_sort(v);
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, ScratchReuseAcrossCalls) {
  std::vector<std::uint64_t> scratch;
  Rng rng(19);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::uint64_t> v(1000 * (round + 1));
    for (auto& x : v) x = rng.bounded(1 << 20);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    radix_sort(v, scratch);
    EXPECT_EQ(v, expect);
  }
}

}  // namespace
}  // namespace pgxd::sort
