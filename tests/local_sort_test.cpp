// Tests for the strategy-selectable local sort: radix/comparison equality,
// the adaptive crossover's decisions, comparator gating, and the SIMD
// block-partition's equivalence with the scalar classify loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "sort/local_sort.hpp"
#include "sort/quicksort.hpp"
#include "sort/simd_partition.hpp"

namespace pgxd::sort {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed,
                                       std::uint64_t domain = 0) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = domain ? rng.bounded(domain) : rng.next();
  return v;
}

TEST(LocalSort, RadixAndComparisonAgree) {
  for (std::uint64_t domain : {std::uint64_t{0}, std::uint64_t{1} << 32,
                               std::uint64_t{100}}) {
    auto a = random_keys(50000, 7 + domain, domain);
    auto b = a;
    const auto sa = local_sort(a, LocalSortAlgo::kComparison);
    const auto sb = local_sort(b, LocalSortAlgo::kRadix);
    EXPECT_FALSE(sa.used_radix);
    EXPECT_TRUE(sb.used_radix);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  }
}

TEST(LocalSort, AdaptivePicksRadixForNarrowKeys) {
  // 32 significant bits -> 4 passes; 4 * 3.8 < log2(n) * 1.6 from n = 2^13
  // up, so a large narrow-key shard goes radix.
  auto v = random_keys(1 << 15, 3, std::uint64_t{1} << 32);
  const auto stats = local_sort(v, LocalSortAlgo::kAdaptive);
  EXPECT_TRUE(stats.used_radix);
  EXPECT_LE(stats.significant_bits, 32u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(LocalSort, AdaptiveKeepsComparisonSortForSmallShards) {
  auto v = random_keys(4000, 5, std::uint64_t{1} << 16);
  const auto stats = local_sort(v, LocalSortAlgo::kAdaptive);
  EXPECT_FALSE(stats.used_radix);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(LocalSort, AdaptiveKeepsComparisonSortForFullWidthMidSizes) {
  // 64-bit-wide keys need 8 passes: 8 * 3.8 = 30.4 beats log2(n) * 1.6
  // only past n ~ 2^19, so a 2^16 shard stays on the comparison sort.
  auto v = random_keys(1 << 16, 9);
  const auto stats = local_sort(v, LocalSortAlgo::kAdaptive);
  EXPECT_FALSE(stats.used_radix);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(LocalSort, CustomComparatorAlwaysComparison) {
  // Radix on raw bits would sort ascending; a greater-than comparator must
  // route to the comparison path even when radix is demanded.
  auto v = random_keys(20000, 11, std::uint64_t{1} << 20);
  const auto stats =
      local_sort(v, LocalSortAlgo::kRadix, std::greater<std::uint64_t>{});
  EXPECT_FALSE(stats.used_radix);
  EXPECT_TRUE(std::is_sorted(v.rbegin(), v.rend()));
}

TEST(LocalSort, SignedKeysAlwaysComparison) {
  Rng rng(13);
  std::vector<std::int64_t> v(20000);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next());
  const auto stats = local_sort(v, LocalSortAlgo::kRadix);
  EXPECT_FALSE(stats.used_radix);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(LocalSort, EmptyAndTiny) {
  std::vector<std::uint64_t> v;
  EXPECT_FALSE(local_sort(v, LocalSortAlgo::kRadix).used_radix);
  v = {9};
  EXPECT_FALSE(local_sort(v, LocalSortAlgo::kRadix).used_radix);
  v = {9, 3};
  EXPECT_TRUE(local_sort(v, LocalSortAlgo::kRadix).used_radix);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{3, 9}));
}

TEST(SimdPartition, MatchesScalarPartition) {
  // The SIMD classify must produce exactly the same sorted output as the
  // scalar block partition on identical input, across distributions that
  // stress the pivot (uniform, tie-heavy, presorted, sawtooth).
  QuicksortConfig simd_on;
  simd_on.simd_partition = true;
  QuicksortConfig simd_off;
  simd_off.simd_partition = false;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (int shape = 0; shape < 4; ++shape) {
      std::vector<std::uint64_t> v;
      switch (shape) {
        case 0: v = random_keys(100000, seed); break;
        case 1: v = random_keys(100000, seed, 30); break;
        case 2:
          v = random_keys(100000, seed);
          std::sort(v.begin(), v.end());
          break;
        default:
          v.resize(100000);
          for (std::size_t i = 0; i < v.size(); ++i) v[i] = i % 1000;
      }
      auto a = v;
      auto b = v;
      quicksort(std::span<std::uint64_t>(a), Less{}, simd_on);
      quicksort(std::span<std::uint64_t>(b), Less{}, simd_off);
      EXPECT_EQ(a, b);
      EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    }
  }
}

#if PGXD_SIMD_PARTITION_X86
TEST(SimdPartition, ClassifyKernelsMatchScalar) {
  // Direct kernel check at every count in [0, 64] and both directions,
  // including ties on the pivot (>= left, < right — matching the scalar
  // loops in partition_right_block).
  const auto isa = simd::partition_isa();
  if (isa == simd::PartitionIsa::kScalar) GTEST_SKIP() << "no SSE4.2/AVX2";
  Rng rng(21);
  for (std::size_t count = 0; count <= 64; ++count) {
    std::vector<std::uint64_t> block(count ? count : 1);
    for (auto& x : block) x = rng.bounded(8);  // many pivot ties
    const std::uint64_t pivot = 4;
    std::uint8_t got[64], want[64];
    // Left block: offsets with data[i] >= pivot.
    std::size_t wn = 0;
    for (std::size_t i = 0; i < count; ++i) {
      want[wn] = static_cast<std::uint8_t>(i);
      wn += block[i] >= pivot;
    }
    std::size_t gn = simd::classify_ge(isa, block.data(), count, pivot, got);
    ASSERT_EQ(gn, wn) << "count=" << count;
    EXPECT_TRUE(std::equal(got, got + gn, want)) << "count=" << count;
    // Right block: offsets with end[-1 - i] < pivot.
    wn = 0;
    for (std::size_t i = 0; i < count; ++i) {
      want[wn] = static_cast<std::uint8_t>(i);
      wn += block[count - 1 - i] < pivot;
    }
    gn = simd::classify_lt_rev(isa, block.data() + count, count, pivot, got);
    ASSERT_EQ(gn, wn) << "count=" << count;
    EXPECT_TRUE(std::equal(got, got + gn, want)) << "count=" << count;
  }
}
#endif

}  // namespace
}  // namespace pgxd::sort
