// Simultaneous sorts: the library "is able to sort different data
// simultaneously" (Sec. IV) — two independent datasets sort in one cluster
// run, interleaving one sort's communication with the other's compute.
// Compares the co-scheduled run against two back-to-back runs.
#include <cstdio>

#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"

using Key = std::uint64_t;
using Sorter = pgxd::core::DistributedSorter<Key>;

namespace {

std::vector<std::vector<Key>> shards_for(pgxd::gen::Distribution dist,
                                         std::size_t n, std::size_t machines,
                                         std::uint64_t seed) {
  pgxd::gen::DataGenConfig cfg;
  cfg.dist = dist;
  cfg.seed = seed;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < machines; ++r)
    shards.push_back(pgxd::gen::generate_shard(cfg, n, machines, r));
  return shards;
}

pgxd::rt::ClusterConfig cluster_cfg(std::size_t machines) {
  pgxd::rt::ClusterConfig cfg;
  cfg.machines = machines;
  return cfg;
}

}  // namespace

int main() {
  constexpr std::size_t kMachines = 12;
  constexpr std::size_t kKeys = 1 << 20;
  const auto metrics = shards_for(pgxd::gen::Distribution::kExponential, kKeys,
                                  kMachines, 1);
  const auto ids = shards_for(pgxd::gen::Distribution::kUniform, kKeys,
                              kMachines, 2);

  // Two sorts, one simulation: distinct sort_ids keep their message tag
  // spaces apart.
  pgxd::rt::Cluster<Sorter::Msg> shared(cluster_cfg(kMachines));
  Sorter sort_a(shared, pgxd::core::SortConfig{}, /*sort_id=*/0);
  Sorter sort_b(shared, pgxd::core::SortConfig{}, /*sort_id=*/1);
  sort_a.set_input(metrics);
  sort_b.set_input(ids);
  const auto together =
      pgxd::core::sort_simultaneously<Key>(shared,
                                                           {&sort_a, &sort_b});

  // The same two sorts, back to back on fresh clusters.
  pgxd::rt::Cluster<Sorter::Msg> c1(cluster_cfg(kMachines));
  Sorter seq_a(c1, pgxd::core::SortConfig{});
  seq_a.run(metrics);
  pgxd::rt::Cluster<Sorter::Msg> c2(cluster_cfg(kMachines));
  Sorter seq_b(c2, pgxd::core::SortConfig{});
  seq_b.run(ids);
  const auto apart =
      seq_a.stats().total_time + seq_b.stats().total_time;

  std::printf("two datasets of %d keys each on %zu machines:\n", 1 << 20,
              kMachines);
  std::printf("  back-to-back runs: %.4f simulated ms\n",
              pgxd::sim::to_seconds(apart) * 1e3);
  std::printf("  simultaneous run:  %.4f simulated ms (%.1f%% saved by "
              "overlapping\n  one sort's communication with the other's "
              "compute)\n",
              pgxd::sim::to_seconds(together) * 1e3,
              100.0 * (1.0 - pgxd::sim::to_seconds(together) /
                                 pgxd::sim::to_seconds(apart)));

  // Both results are complete and balanced.
  std::printf("  dataset A balance %.3f, dataset B balance %.3f\n",
              sort_a.stats().balance.imbalance,
              sort_b.stats().balance.imbalance);
  return 0;
}
