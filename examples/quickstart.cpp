// Quickstart: sort 1M uniform keys across 8 simulated machines and query
// the result.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The three core objects:
//   rt::Cluster<Msg>        — the simulated machines + network,
//   core::DistributedSorter — the PGX.D sorting pipeline,
//   core::SortedSequence    — queries over the distributed sorted result.
#include <cstdio>

#include "core/api.hpp"
#include "core/distributed_sort.hpp"
#include "datagen/distributions.hpp"

using Key = std::uint64_t;
using Sorter = pgxd::core::DistributedSorter<Key>;

int main() {
  constexpr std::size_t kMachines = 8;
  constexpr std::size_t kTotalKeys = 1'000'000;

  // 1. A cluster: 8 machines x 32 worker threads on a 6 GB/s fabric.
  pgxd::rt::ClusterConfig cluster_cfg;
  cluster_cfg.machines = kMachines;
  cluster_cfg.threads_per_machine = 32;
  pgxd::rt::Cluster<Sorter::Msg> cluster(cluster_cfg);

  // 2. Input shards: each machine starts with its local slice of the data.
  pgxd::gen::DataGenConfig data_cfg;
  data_cfg.dist = pgxd::gen::Distribution::kUniform;
  data_cfg.seed = 1;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < kMachines; ++r)
    shards.push_back(pgxd::gen::generate_shard(data_cfg, kTotalKeys, kMachines, r));

  // 3. Sort. All defaults: investigator on, balanced merging, async exchange.
  Sorter sorter(cluster, pgxd::core::SortConfig{});
  sorter.run(shards);

  const auto& stats = sorter.stats();
  std::printf("sorted %zu keys on %zu machines in %.4f simulated ms\n",
              kTotalKeys, kMachines,
              pgxd::sim::to_seconds(stats.total_time) * 1e3);
  std::printf("load balance: min %.3f%%  max %.3f%% of the data per machine\n",
              stats.balance.min_share * 100, stats.balance.max_share * 100);
  std::printf("wire traffic: %.2f MiB total\n",
              static_cast<double>(stats.wire_bytes_total) / (1 << 20));

  // 4. Query the distributed result.
  pgxd::core::SortedSequence<Key> seq(sorter.partitions());
  const Key median = seq.at(seq.size() / 2).key;
  std::printf("median key: %llu\n", static_cast<unsigned long long>(median));
  const auto loc = seq.find(median);
  if (loc) {
    std::printf("first occurrence of the median lives on machine %zu, index %zu\n",
                loc->machine, loc->index);
  }
  const auto top = seq.top_k(3);
  std::printf("top-3 keys: %llu %llu %llu\n",
              static_cast<unsigned long long>(top[0].key),
              static_cast<unsigned long long>(top[1].key),
              static_cast<unsigned long long>(top[2].key));

  // 5. Provenance: every element knows where it came from.
  const auto& first = sorter.partitions()[0].front();
  std::printf("global minimum came from machine %u (sorted-local index %llu)\n",
              first.prov.prev_machine,
              static_cast<unsigned long long>(first.prov.prev_index));
  return 0;
}
