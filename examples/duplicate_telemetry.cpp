// Duplicate-heavy scenario: sorting telemetry severity codes where one
// value dominates — the workload class that breaks naive sample sort
// (Fig. 3b) and that the investigator (Fig. 3c) fixes. Runs the same sort
// with the investigator on and off and prints the per-machine loads.
#include <cstdio>

#include "common/rng.hpp"
#include "core/api.hpp"
#include "core/distributed_sort.hpp"

using Key = std::uint64_t;
using Sorter = pgxd::core::DistributedSorter<Key>;

namespace {

// 80% of telemetry events are severity 200 ("OK"); the rest spread over a
// small code space — a textbook "many duplicated data entries" dataset.
std::vector<std::vector<Key>> telemetry_shards(std::size_t machines,
                                               std::size_t per_machine) {
  std::vector<std::vector<Key>> shards(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    pgxd::Rng rng(pgxd::derive_seed(7, m));
    shards[m].resize(per_machine);
    for (auto& k : shards[m])
      k = rng.uniform() < 0.8 ? 200 : rng.bounded(600);
  }
  return shards;
}

void run_with(bool investigator, std::size_t machines,
              const std::vector<std::vector<Key>>& shards) {
  pgxd::rt::ClusterConfig ccfg;
  ccfg.machines = machines;
  pgxd::rt::Cluster<Sorter::Msg> cluster(ccfg);
  pgxd::core::SortConfig scfg;
  scfg.use_investigator = investigator;
  Sorter sorter(cluster, scfg);
  sorter.run(shards);

  std::printf("investigator %s: per-machine loads:", investigator ? "ON " : "OFF");
  for (const auto& part : sorter.partitions())
    std::printf(" %zu", part.size());
  std::printf("\n  imbalance %.2fx, total %.4f simulated ms\n",
              sorter.stats().balance.imbalance,
              pgxd::sim::to_seconds(sorter.stats().total_time) * 1e3);

  if (investigator) {
    pgxd::core::SortedSequence<Key> seq(sorter.partitions());
    std::printf("  severity-200 events: %llu (spread across machines",
                static_cast<unsigned long long>(seq.count(200)));
    // Which machines hold code 200? Walk the per-machine ranges.
    for (std::size_t m = 0; m < seq.machines(); ++m) {
      const auto range = seq.machine_range(m);
      if (range && range->first <= 200 && 200 <= range->second)
        std::printf(" %zu", m);
    }
    std::printf(")\n");
  }
}

}  // namespace

int main() {
  constexpr std::size_t kMachines = 10;
  constexpr std::size_t kPerMachine = 100'000;
  const auto shards = telemetry_shards(kMachines, kPerMachine);

  std::printf("telemetry: %zu machines x %zu events, 80%% duplicates of one "
              "code\n\n", kMachines, kPerMachine);
  run_with(false, kMachines, shards);
  std::printf("\n");
  run_with(true, kMachines, shards);
  std::printf("\nWithout the investigator every duplicate of the dominant "
              "code lands on one\nmachine (Fig. 3b); with it the run is "
              "divided so all loads equalize (Fig. 3c).\n");
  return 0;
}
