// End-to-end graph analytics pipeline — the workflow the paper's
// introduction motivates: run PageRank on a distributed graph, then use the
// distributed sort to rank all vertices by score and pull the top
// influencers, all on the same simulated cluster.
#include <cmath>
#include <cstdio>

#include "analytics/pagerank.hpp"
#include "core/api.hpp"
#include "core/distributed_sort.hpp"
#include "graph/generate.hpp"
#include "graph/partition.hpp"

using Key = std::uint64_t;
using Sorter = pgxd::core::DistributedSorter<Key>;

namespace {

// Order-preserving encoding of (pagerank score, vertex id) into one u64:
// top 40 bits quantized score, low 24 bits vertex id.
Key rank_key(double score, pgxd::graph::VertexId v) {
  const auto q = static_cast<Key>(score * (1ull << 39));
  return (q << 24) | (v & 0xffffffu);
}

}  // namespace

int main() {
  constexpr std::size_t kMachines = 16;

  pgxd::graph::RmatConfig gcfg;
  gcfg.num_vertices = 1 << 16;
  gcfg.num_edges = 1 << 20;
  gcfg.seed = 1;
  const auto graph = pgxd::graph::rmat_graph(gcfg);
  const auto part = pgxd::graph::partition_by_edges(graph, kMachines);
  std::printf("graph: %u vertices, %llu edges on %zu machines\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()), kMachines);

  // Phase 1: distributed PageRank.
  pgxd::rt::ClusterConfig ccfg;
  ccfg.machines = kMachines;
  pgxd::rt::Cluster<pgxd::analytics::PageRankMsg> pr_cluster(ccfg);
  pgxd::analytics::DistributedPageRank pr(pr_cluster, graph, part);
  const auto scores = pr.run();
  std::printf("pagerank: %u iterations in %.4f simulated ms, %.2f MiB of "
              "contribution traffic\n",
              pr.stats().iterations,
              pgxd::sim::to_seconds(pr.stats().total_time) * 1e3,
              static_cast<double>(pr.stats().wire_bytes) / (1 << 20));

  // Phase 2: distributed sort by (score, vertex).
  std::vector<std::vector<Key>> shards(kMachines);
  for (std::size_t m = 0; m < kMachines; ++m)
    for (auto v = part.block_start[m]; v < part.block_start[m + 1]; ++v)
      shards[m].push_back(rank_key(scores[v], v));

  pgxd::rt::Cluster<Sorter::Msg> sort_cluster(ccfg);
  Sorter sorter(sort_cluster, pgxd::core::SortConfig{});
  sorter.run(shards);
  std::printf("sort: %.4f simulated ms, imbalance %.3f\n",
              pgxd::sim::to_seconds(sorter.stats().total_time) * 1e3,
              sorter.stats().balance.imbalance);

  // Phase 3: the top influencers, straight off the sorted tail.
  pgxd::core::SortedSequence<Key> seq(sorter.partitions());
  std::printf("top-5 vertices by PageRank:\n");
  for (const auto& item : seq.top_k(5)) {
    const auto v = static_cast<pgxd::graph::VertexId>(item.key & 0xffffffu);
    std::printf("  v%-8u score %.6f  (out-degree %llu)\n", v, scores[v],
                static_cast<unsigned long long>(graph.out_degree(v)));
  }
  return 0;
}
