// Graph-analytics scenario (the paper's motivating use case): generate a
// twitter-like power-law graph, partition it PGX.D-style across machines
// (ghost nodes + edge chunks), rank all vertices by degree with the
// distributed sort, and retrieve the top influencers — "retrieving top
// values from their graph data" (Sec. III).
//
// The sort key is the composite (degree << 32) | vertex_id: globally
// unique, so the ranking is total and the top-k result identifies the hub
// vertices themselves.
#include <cstdio>

#include "core/api.hpp"
#include "core/distributed_sort.hpp"
#include "graph/csr.hpp"
#include "graph/generate.hpp"
#include "graph/partition.hpp"

using Key = std::uint64_t;
using Sorter = pgxd::core::DistributedSorter<Key>;

namespace {

Key rank_key(std::uint64_t degree, pgxd::graph::VertexId v) {
  return (degree << 32) | v;
}

}  // namespace

int main() {
  constexpr std::size_t kMachines = 16;

  // A twitter-like RMAT graph: heavy-tailed degrees, a few huge hubs.
  pgxd::graph::RmatConfig gcfg;
  gcfg.num_vertices = 1 << 17;
  gcfg.num_edges = 1 << 21;
  gcfg.seed = 42;
  const auto graph = pgxd::graph::rmat_graph(gcfg);
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // PGX.D data-manager partitioning: contiguous vertex blocks balanced by
  // edge count, ghost-node selection, and edge chunks for the task manager.
  const auto part = pgxd::graph::partition_by_edges(graph, kMachines);
  const auto ghosts = pgxd::graph::total_ghost_stats(graph, part);
  std::printf("partitioning: %llu crossing edges, %llu ghost vertices "
              "(%.1fx message reduction from ghosting)\n",
              static_cast<unsigned long long>(ghosts.crossing_edges),
              static_cast<unsigned long long>(ghosts.ghost_vertices),
              ghosts.message_reduction);
  const auto chunks = pgxd::graph::edge_chunks(graph, part, 0, 32);
  std::printf("machine 0 splits its edges into %zu near-equal chunks\n",
              chunks.size());

  // Each machine's shard: (degree, vertex) rank keys for the vertices it
  // owns under the graph partition.
  std::vector<std::vector<Key>> shards(kMachines);
  for (std::size_t m = 0; m < kMachines; ++m) {
    for (auto v = part.block_start[m]; v < part.block_start[m + 1]; ++v)
      shards[m].push_back(rank_key(graph.out_degree(v), v));
  }

  // Distributed sort by (degree, vertex).
  pgxd::rt::ClusterConfig ccfg;
  ccfg.machines = kMachines;
  pgxd::rt::Cluster<Sorter::Msg> cluster(ccfg);
  Sorter sorter(cluster, pgxd::core::SortConfig{});
  sorter.run(shards);
  std::printf("ranked %u vertices in %.4f simulated ms; load imbalance "
              "factor %.3f\n",
              graph.num_vertices(),
              pgxd::sim::to_seconds(sorter.stats().total_time) * 1e3,
              sorter.stats().balance.imbalance);

  // Top influencers live at the top of the highest machine.
  pgxd::core::SortedSequence<Key> seq(sorter.partitions());
  std::printf("top-5 hubs (vertex: degree):");
  for (const auto& item : seq.top_k(5))
    std::printf("  v%llu: %llu", static_cast<unsigned long long>(item.key & 0xffffffffu),
                static_cast<unsigned long long>(item.key >> 32));
  std::printf("\n");

  // How many isolated (degree 0) vertices? Everything below rank_key(1, 0).
  const auto [loc, rank] = seq.lower_bound(rank_key(1, 0));
  (void)loc;
  std::printf("isolated vertices: %llu\n",
              static_cast<unsigned long long>(rank));
  return 0;
}
