// Interactive-analytics scenario: sort once, then serve point lookups,
// multiplicity counts and top-k queries against the distributed sorted
// data — with the query latency measured on the same simulated fabric as
// the sort, showing why "sort once, query many times" pays off.
#include <cstdio>

#include "core/distributed_sort.hpp"
#include "core/queries.hpp"
#include "datagen/distributions.hpp"

using Key = std::uint64_t;
using Sorter = pgxd::core::DistributedSorter<Key>;
using Queries = pgxd::core::DistributedQueries<Key>;

int main() {
  constexpr std::size_t kMachines = 32;
  constexpr std::size_t kKeys = 1 << 21;

  pgxd::gen::DataGenConfig dcfg;
  dcfg.dist = pgxd::gen::Distribution::kExponential;
  dcfg.domain = 1 << 16;  // response-time-like values with duplicates
  dcfg.seed = 9;
  std::vector<std::vector<Key>> shards;
  for (std::size_t r = 0; r < kMachines; ++r)
    shards.push_back(pgxd::gen::generate_shard(dcfg, kKeys, kMachines, r));

  pgxd::rt::ClusterConfig ccfg;
  ccfg.machines = kMachines;
  pgxd::rt::Cluster<Sorter::Msg> sort_cluster(ccfg);
  Sorter sorter(sort_cluster, pgxd::core::SortConfig{});
  sorter.run(shards);
  const double sort_ms = pgxd::sim::to_seconds(sorter.stats().total_time) * 1e3;
  std::printf("sorted %zu keys on %zu machines: %.4f simulated ms\n\n", kKeys,
              kMachines, sort_ms);

  pgxd::rt::Cluster<Queries::Msg> query_cluster(ccfg);
  Queries queries(query_cluster, sorter.partitions());

  // Point lookup: broadcast + per-machine binary search + gather.
  const auto found = queries.find(1000);
  std::printf("find(1000): %s, latency %.4f ms (%.1fx cheaper than the sort)\n",
              found.found ? "hit" : "miss",
              pgxd::sim::to_seconds(found.elapsed) * 1e3,
              sort_ms / (pgxd::sim::to_seconds(found.elapsed) * 1e3));

  // Multiplicity: how many requests took exactly 0 time units?
  const auto zeros = queries.count(0);
  std::printf("count(0): %llu duplicates, latency %.4f ms\n",
              static_cast<unsigned long long>(zeros.count),
              pgxd::sim::to_seconds(zeros.elapsed) * 1e3);

  // Tail latencies: the 10 slowest responses.
  const auto top = queries.top_k(10);
  std::printf("top-10 (slowest responses):");
  for (auto k : top.top) std::printf(" %llu", static_cast<unsigned long long>(k));
  std::printf("\n  latency %.4f ms — only k*p candidate keys travel, not the "
              "dataset\n", pgxd::sim::to_seconds(top.elapsed) * 1e3);
  return 0;
}
