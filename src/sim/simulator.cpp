#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace pgxd::sim {

namespace {
// The simulator whose step() is currently on the stack. Single-threaded
// simulation; thread_local only so independent simulators on different
// threads don't interfere.
thread_local Simulator* g_current_simulator = nullptr;
}  // namespace

Simulator* Simulator::current() { return g_current_simulator; }

namespace detail {

void PromiseBase::reclaim_root(Simulator* sim, std::coroutine_handle<> h,
                               PromiseBase& promise) {
  sim->reclaim(h, promise);
}

void PromiseBase::schedule_continuation(std::coroutine_handle<> c) {
  Simulator* sim = Simulator::current();
  PGXD_CHECK_MSG(sim != nullptr,
                 "a sim::Task completed outside of a simulator step");
  sim->schedule_now(c);
}

}  // namespace detail

Simulator::~Simulator() {
  // Destroy still-suspended root frames (their nested child frames are
  // destroyed transitively through the Task members they hold).
  for (auto h : roots_)
    if (h) h.destroy();
}

void Simulator::schedule_at(SimTime at, std::coroutine_handle<> h) {
  PGXD_CHECK_MSG(at >= now_, "scheduling into the past");
  PGXD_CHECK(h != nullptr);
  const std::uint64_t pri = perturb_.enabled ? perturb_rng_.next() : 0;
  queue_.push(Scheduled{at, pri, next_seq_++, h});
}

std::uint64_t Simulator::schedule_cancellable(SimTime at,
                                              std::coroutine_handle<> h) {
  const std::uint64_t ticket = next_seq_;
  schedule_at(at, h);
  cancellable_live_.insert(ticket);
  return ticket;
}

bool Simulator::cancel(std::uint64_t ticket) {
  if (cancellable_live_.erase(ticket) == 0) return false;
  cancelled_.insert(ticket);
  return true;
}

void Simulator::spawn(Task<void> task) {
  auto h = task.release();
  PGXD_CHECK_MSG(h != nullptr, "spawning an empty task");
  h.promise().owner = this;
  roots_.push_back(h);
  ++live_roots_;
  schedule_now(h);
}

void Simulator::reclaim(std::coroutine_handle<> h, detail::PromiseBase& promise) {
  if (promise.exception) {
    // A root process died with no awaiter to receive the exception. The
    // simulation state is unreliable from here on; fail loudly.
    try {
      std::rethrow_exception(promise.exception);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sim: unhandled exception in root process: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr, "sim: unhandled non-standard exception in root process\n");
    }
    std::abort();
  }
  reclaimed_.push_back(h);
  PGXD_CHECK(live_roots_ > 0);
  --live_roots_;
}

void Simulator::drain_reclaimed() {
  for (auto h : reclaimed_) {
    auto it = std::find(roots_.begin(), roots_.end(), h);
    PGXD_CHECK_MSG(it != roots_.end(), "reclaimed frame is not a known root");
    *it = roots_.back();
    roots_.pop_back();
    h.destroy();
  }
  reclaimed_.clear();
}

void Simulator::step(const Scheduled& ev) {
  now_ = ev.at;
  ++events_processed_;
  Simulator* const prev = g_current_simulator;
  g_current_simulator = this;
  ev.handle.resume();
  g_current_simulator = prev;
  drain_reclaimed();
}

SimTime Simulator::run() {
  while (!queue_.empty() && !stop_requested_) {
    Scheduled ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.seq)) continue;  // cancelled timer: never fires
    cancellable_live_.erase(ev.seq);
    step(ev);
  }
  return now_;
}

SimTime Simulator::run_until(SimTime t) {
  PGXD_CHECK(t >= now_);
  while (!queue_.empty() && queue_.top().at <= t && !stop_requested_) {
    Scheduled ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.seq)) continue;
    cancellable_live_.erase(ev.seq);
    step(ev);
  }
  now_ = t;
  return now_;
}

}  // namespace pgxd::sim
