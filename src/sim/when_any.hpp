// when_any: run a batch of sim::Task<void> concurrently inside a parent
// coroutine and resume the parent as soon as the FIRST member completes,
// returning its index. The companion of when_all for race-shaped waits
// ("ack or timeout", "first replica to answer").
//
// The losing tasks keep running as detached processes — the Task model has
// no preemption — and must complete on their own for the simulation to
// reach quiescence. Give long-lived losers cancellable state (e.g. a
// sim::Timeout the winner's continuation cancels) so they wind down
// promptly instead of holding the clock hostage.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace pgxd::sim {

namespace detail {

struct AnyState {
  explicit AnyState(Simulator& sim) : first(sim) {}
  bool done = false;
  std::size_t winner = 0;
  Event first;
};

inline Task<void> run_and_race(Task<void> task, std::size_t index,
                               std::shared_ptr<AnyState> state) {
  co_await std::move(task);
  if (!state->done) {
    state->done = true;
    state->winner = index;
    state->first.fire();
  }
}

}  // namespace detail

// Runs all tasks concurrently; completes when the first one finishes and
// returns its index. Ties (same-instant completions) go to the task whose
// completion event was scheduled first — deterministic like everything
// else. Exceptions in member tasks are fatal (they escape a root process).
inline Task<std::size_t> when_any(Simulator& sim,
                                  std::vector<Task<void>> tasks) {
  PGXD_CHECK_MSG(!tasks.empty(), "when_any over an empty batch");
  auto state = std::make_shared<detail::AnyState>(sim);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    sim.spawn(detail::run_and_race(std::move(tasks[i]), i, state));
  co_await state->first.wait();
  co_return state->winner;
}

}  // namespace pgxd::sim
