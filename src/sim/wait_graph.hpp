// Runtime wait-for graph for deadlock detection in the DES.
//
// Every *indefinite* blocking await in the runtime registers a typed wait
// edge here — who waits, and on what resource (a mailbox identified by
// rank+tag, the cluster barrier, a buffer pool) — and removes it on resume.
// Resource *hold* edges point the other way: which processes can still
// satisfy a resource (the peers that owe a receiver data, the ranks a
// barrier is still waiting for, the ranks holding pool buffers).
//
// Timed waits (recv_until, Timeout-driven polls) never register: they wake
// on their own and must not count as blocked.
//
// Detection model. A cycle alone does not prove a deadlock while messages
// are in flight or third parties can still act, so the graph is
// deliberately conservative: it declares a deadlock only when
//   (a) every live process is blocked on a registered wait edge, and
//   (b) no wait edge is satisfiable — the per-resource probe (wired by the
//       Comm layer) sees no queued value, no handed-but-unresumed value,
//       and no message in flight toward it.
// Under (a)+(b) no future event can wake anyone: timers only wake timed
// waits (which are not registered) and completed processes act no more, so
// the verdict is sound — clean runs can never false-positive. Hold edges
// are then used to *name* the cycle (rank -> resource -> rank -> ...)
// deterministically, starting from the lowest blocked rank and always
// following the lowest-numbered blocked holder.
//
// The check runs incrementally — at every begin_wait and process
// completion, the two transitions that can complete condition (a) — so a
// deadlocked simulation aborts at the instant it wedges instead of idling
// to quiescence behind heartbeat or sampler timers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace pgxd::sim {

// A resource a process can block on. `a`/`b` discriminate instances within
// a kind (mailbox: owner rank + tag; pool/barrier: instance id).
struct WaitResource {
  enum class Kind : std::uint8_t { kMailbox = 0, kBarrier = 1, kPool = 2 };

  Kind kind = Kind::kMailbox;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  static WaitResource mailbox(std::size_t rank, int tag) {
    return WaitResource{Kind::kMailbox, rank,
                        static_cast<std::uint64_t>(static_cast<long long>(tag))};
  }
  static WaitResource barrier(std::uint64_t id = 0) {
    return WaitResource{Kind::kBarrier, id, 0};
  }
  static WaitResource pool(std::uint64_t id = 0) {
    return WaitResource{Kind::kPool, id, 0};
  }

  bool operator==(const WaitResource& o) const {
    return kind == o.kind && a == o.a && b == o.b;
  }
  bool operator<(const WaitResource& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (a != o.a) return a < o.a;
    return b < o.b;
  }

  std::string label() const {
    switch (kind) {
      case Kind::kMailbox:
        return "mailbox(rank " + std::to_string(a) + ", tag " +
               std::to_string(static_cast<long long>(b)) + ")";
      case Kind::kBarrier:
        return "barrier";
      case Kind::kPool:
        return "buffer-pool " + std::to_string(a);
    }
    return "?";
  }
};

class WaitGraph {
 public:
  static constexpr std::size_t kNoToken = static_cast<std::size_t>(-1);

  // Per-kind wait-edge counters plus detection bookkeeping, exported into
  // the SortReport's deadlock block.
  struct Stats {
    std::uint64_t mailbox_waits = 0;
    std::uint64_t barrier_waits = 0;
    std::uint64_t pool_waits = 0;
    std::uint64_t holds_added = 0;
    std::uint64_t deadlock_checks = 0;
    std::uint64_t deadlocks = 0;
    std::size_t max_blocked = 0;  // peak simultaneously-blocked processes
  };

  struct Deadlock {
    // The named cycle, empty when the stuck set closes no hold-edge cycle
    // (hold edges are best-effort annotations). steps[i] waits on
    // resources[i], which is held by steps[i+1 mod n].
    std::vector<std::size_t> cycle_ranks;
    std::vector<WaitResource> cycle_resources;
    std::vector<std::size_t> blocked;  // every blocked rank, ascending
    std::string description;
  };

  // ---- process lifecycle (driven by the cluster harness) -----------------

  // A process is "live" between spawn and done; detection requires every
  // live process to be blocked. Re-spawning a done process (recovery
  // attempts re-run ranks) revives it.
  void process_spawned(std::size_t rank) {
    auto [it, inserted] = state_.try_emplace(rank, State{});
    if (!inserted && it->second.live) return;
    it->second.live = true;
    ++live_;
  }

  void process_done(std::size_t rank) {
    auto it = state_.find(rank);
    PGXD_CHECK_MSG(it != state_.end() && it->second.live,
                   "process_done for a process never spawned");
    it->second.live = false;
    PGXD_CHECK(live_ > 0);
    --live_;
    maybe_detect();
  }

  std::size_t live() const { return live_; }
  std::size_t blocked() const { return blocked_; }

  // ---- wait edges --------------------------------------------------------

  // Registers a wait edge and returns a token for end_wait. `annotation`
  // edges describe a secondary reason a process is parked (the sorter's
  // pool-backpressure recv also waits, semantically, on the pool); they
  // enrich cycle naming but never count toward blocked-ness and are never
  // probed for satisfiability.
  std::size_t begin_wait(std::size_t rank, WaitResource res,
                         bool annotation = false) {
    std::size_t token;
    if (!free_.empty()) {
      token = free_.back();
      free_.pop_back();
    } else {
      token = edges_.size();
      edges_.emplace_back();
    }
    Edge& e = edges_[token];
    e.rank = rank;
    e.res = res;
    e.annotation = annotation;
    e.active = true;
    switch (res.kind) {
      case WaitResource::Kind::kMailbox: ++stats_.mailbox_waits; break;
      case WaitResource::Kind::kBarrier: ++stats_.barrier_waits; break;
      case WaitResource::Kind::kPool: ++stats_.pool_waits; break;
    }
    if (!annotation) {
      auto& st = state_[rank];
      if (st.waits++ == 0) ++blocked_;
      stats_.max_blocked = std::max(stats_.max_blocked, blocked_);
      maybe_detect();
    }
    return token;
  }

  void end_wait(std::size_t token) {
    PGXD_CHECK_MSG(token < edges_.size() && edges_[token].active,
                   "end_wait on an inactive wait edge");
    Edge& e = edges_[token];
    e.active = false;
    if (!e.annotation) {
      auto& st = state_[e.rank];
      PGXD_CHECK(st.waits > 0);
      if (--st.waits == 0) {
        PGXD_CHECK(blocked_ > 0);
        --blocked_;
      }
    }
    free_.push_back(token);
  }

  // ---- hold edges (who can satisfy a resource) ---------------------------

  void add_hold(WaitResource res, std::size_t rank) {
    ++holds_[res][rank];
    ++stats_.holds_added;
  }

  // Counted; a no-op below zero so best-effort callers (duplicate chunks,
  // recovery re-sends) can over-remove safely.
  void remove_hold(WaitResource res, std::size_t rank) {
    auto it = holds_.find(res);
    if (it == holds_.end()) return;
    auto rit = it->second.find(rank);
    if (rit == it->second.end()) return;
    if (--rit->second <= 0) it->second.erase(rit);
    if (it->second.empty()) holds_.erase(it);
  }

  void clear_holds(WaitResource res) { holds_.erase(res); }

  // ---- detection ---------------------------------------------------------

  // Satisfiability oracle for non-annotation resources: "can this resource
  // still be satisfied without any currently-blocked process acting?"
  // Wired by the Comm layer (queued + handed + in-flight messages for
  // mailboxes; constant false for barriers). Absent probe => unsatisfiable,
  // which suits unit tests driving the graph directly.
  void set_satisfiable_probe(std::function<bool(const WaitResource&)> probe) {
    probe_ = std::move(probe);
  }

  // Invoked at most once, at the instant a deadlock is established. The
  // cluster harness uses it to stop the simulator mid-run.
  void set_on_deadlock(std::function<void(const Deadlock&)> handler) {
    on_deadlock_ = std::move(handler);
  }

  const std::optional<Deadlock>& deadlock() const { return deadlock_; }
  const Stats& stats() const { return stats_; }

  // Deterministic listing of every active wait edge, sorted by (rank,
  // resource): "rank 2 waits on tag 9 (1 recv); rank 3 waits at the
  // barrier". Annotation edges ride along in brackets.
  std::string report() const {
    std::string out;
    for (const auto& [rank, primary, annots] : sorted_waits()) {
      if (!out.empty()) out += ";";
      out += " rank " + std::to_string(rank) + " waits on ";
      out += wait_phrase(primary);
      for (const WaitResource& a : annots)
        out += " [also blocked on " + a.label() + "]";
    }
    if (out.empty()) out = " (none)";
    return out;
  }

 private:
  struct Edge {
    std::size_t rank = 0;
    WaitResource res{};
    bool annotation = false;
    bool active = false;
  };

  struct State {
    bool live = false;
    int waits = 0;  // active non-annotation edges
  };

  static std::string wait_phrase(const WaitResource& r) {
    // Mailbox edges keep the historical "waits on tag T" phrasing the
    // chaos-suite diagnostics assert on.
    if (r.kind == WaitResource::Kind::kMailbox)
      return "tag " + std::to_string(static_cast<long long>(r.b)) +
             " (1 recv)";
    if (r.kind == WaitResource::Kind::kBarrier) return "the barrier";
    return r.label();
  }

  // (rank, primary wait resource, annotation resources), sorted.
  std::vector<std::tuple<std::size_t, WaitResource, std::vector<WaitResource>>>
  sorted_waits() const {
    std::map<std::size_t,
             std::pair<std::vector<WaitResource>, std::vector<WaitResource>>>
        by_rank;
    for (const Edge& e : edges_) {
      if (!e.active) continue;
      auto& [primaries, annots] = by_rank[e.rank];
      (e.annotation ? annots : primaries).push_back(e.res);
    }
    std::vector<std::tuple<std::size_t, WaitResource, std::vector<WaitResource>>>
        out;
    for (auto& [rank, lists] : by_rank) {
      auto& [primaries, annots] = lists;
      std::sort(primaries.begin(), primaries.end());
      std::sort(annots.begin(), annots.end());
      for (const WaitResource& p : primaries) {
        out.emplace_back(rank, p, annots);
        annots = {};  // annotations print once per rank
      }
    }
    return out;
  }

  // The lowest-numbered active non-annotation resource `rank` waits on,
  // plus its sorted annotations.
  std::optional<WaitResource> primary_wait(std::size_t rank) const {
    std::optional<WaitResource> best;
    for (const Edge& e : edges_)
      if (e.active && !e.annotation && e.rank == rank)
        if (!best || e.res < *best) best = e.res;
    return best;
  }

  std::vector<WaitResource> annotations(std::size_t rank) const {
    std::vector<WaitResource> out;
    for (const Edge& e : edges_)
      if (e.active && e.annotation && e.rank == rank) out.push_back(e.res);
    std::sort(out.begin(), out.end());
    return out;
  }

  bool is_blocked(std::size_t rank) const {
    auto it = state_.find(rank);
    return it != state_.end() && it->second.waits > 0;
  }

  // Lowest blocked holder of `res`, if any.
  std::optional<std::size_t> blocked_holder(const WaitResource& res) const {
    auto it = holds_.find(res);
    if (it == holds_.end()) return std::nullopt;
    for (const auto& [rank, count] : it->second)
      if (count > 0 && is_blocked(rank)) return rank;
    return std::nullopt;
  }

  void maybe_detect() {
    if (deadlock_) return;  // report the first wedge only
    if (live_ == 0 || blocked_ != live_) return;
    ++stats_.deadlock_checks;
    for (const Edge& e : edges_)
      if (e.active && !e.annotation && probe_ && probe_(e.res))
        return;  // a queued/handed/in-flight message can still wake someone
    ++stats_.deadlocks;
    deadlock_ = build_deadlock();
    if (on_deadlock_) on_deadlock_(*deadlock_);
  }

  Deadlock build_deadlock() const {
    Deadlock d;
    for (const auto& [rank, st] : state_)
      if (st.waits > 0) d.blocked.push_back(rank);
    // Walk rank -> primary resource -> lowest blocked holder until a rank
    // repeats; the slice from its first occurrence is the named cycle.
    if (!d.blocked.empty()) {
      std::vector<std::size_t> path_ranks;
      std::vector<WaitResource> path_res;
      std::map<std::size_t, std::size_t> seen_at;
      std::size_t cur = d.blocked.front();
      while (seen_at.find(cur) == seen_at.end()) {
        auto res = primary_wait(cur);
        if (!res) break;
        auto next = blocked_holder(*res);
        if (!next) break;
        seen_at[cur] = path_ranks.size();
        path_ranks.push_back(cur);
        path_res.push_back(*res);
        cur = *next;
      }
      if (auto it = seen_at.find(cur); it != seen_at.end()) {
        d.cycle_ranks.assign(path_ranks.begin() + it->second, path_ranks.end());
        d.cycle_resources.assign(path_res.begin() + it->second, path_res.end());
      }
    }
    d.description = describe(d);
    return d;
  }

  std::string describe(const Deadlock& d) const {
    std::string out;
    if (!d.cycle_ranks.empty()) {
      out = "wait-for cycle:";
      for (std::size_t i = 0; i < d.cycle_ranks.size(); ++i) {
        const std::size_t r = d.cycle_ranks[i];
        out += " rank " + std::to_string(r) + " waits on " +
               d.cycle_resources[i].label();
        for (const WaitResource& a : annotations(r))
          out += " [also blocked on " + a.label() + "]";
        const std::size_t next = d.cycle_ranks[(i + 1) % d.cycle_ranks.size()];
        out += " <- held by rank " + std::to_string(next) + ";";
      }
      out.pop_back();
    } else {
      out = "no satisfiable wait edge remains (no hold edges close a cycle)";
    }
    out += "; blocked receives:" + report();
    return out;
  }

  std::vector<Edge> edges_;
  std::vector<std::size_t> free_;
  std::map<std::size_t, State> state_;
  std::map<WaitResource, std::map<std::size_t, int>> holds_;
  std::size_t live_ = 0;
  std::size_t blocked_ = 0;
  std::function<bool(const WaitResource&)> probe_;
  std::function<void(const Deadlock&)> on_deadlock_;
  std::optional<Deadlock> deadlock_;
  Stats stats_;
};

}  // namespace pgxd::sim
