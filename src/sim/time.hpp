// Simulated time: signed 64-bit nanoseconds.
//
// Integer time keeps the event queue total order exact (no FP rounding drift
// between runs or platforms); helpers convert to/from seconds at the edges.
#pragma once

#include <cstdint>

namespace pgxd::sim {

using SimTime = std::int64_t;  // nanoseconds since simulation start

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr SimTime from_micros(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kMicrosecond));
}

}  // namespace pgxd::sim
