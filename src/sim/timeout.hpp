// Cancellable timeout: a one-shot timer that a single process can await.
//
// `co_await t.wait()` resumes the waiter when the deadline arrives — or
// immediately, at the cancelling instant, if cancel() runs first.
// Cancellation removes the queued deadline event from the simulator
// entirely, so an abandoned timeout neither resumes anyone at the deadline
// nor advances the clock to it: a run's end time is unaffected by timers
// that never fired. expired() distinguishes the two wake-up reasons.
//
// This is the primitive behind the reliable-delivery retransmission timer
// (runtime/comm.hpp): the ack handler cancels the in-flight attempt's
// timeout, waking the sender's retry loop at the ack's arrival instant.
#pragma once

#include <coroutine>

#include "common/assert.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace pgxd::sim {

class Timeout {
 public:
  Timeout(Simulator& sim, SimTime dt) : sim_(sim), deadline_(sim.now() + dt) {
    PGXD_CHECK_MSG(dt >= 0, "negative timeout");
  }
  Timeout(const Timeout&) = delete;
  Timeout& operator=(const Timeout&) = delete;
  ~Timeout() {
    PGXD_CHECK_MSG(waiter_ == nullptr, "Timeout destroyed while awaited");
  }

  SimTime deadline() const { return deadline_; }
  // The deadline actually arrived (as opposed to a cancel() wake-up).
  bool expired() const { return expired_; }
  bool cancelled() const { return cancelled_; }

  // Cancels the timeout; idempotent, and a no-op after expiry. If a
  // process is suspended in wait(), it is woken at the current instant
  // (through the event queue, like every wake-up) with expired() == false.
  void cancel() {
    if (expired_ || cancelled_) return;
    cancelled_ = true;
    if (waiter_ != nullptr) {
      sim_.cancel(ticket_);
      sim_.schedule_now(waiter_);
    }
  }

  // One-shot, single waiter: resumes at the deadline or upon cancel(),
  // whichever comes first (immediately if either already happened).
  auto wait() {
    struct Awaiter {
      Timeout& t;
      bool await_ready() const noexcept { return t.cancelled_ || t.expired_; }
      void await_suspend(std::coroutine_handle<> h) {
        PGXD_CHECK_MSG(t.waiter_ == nullptr, "Timeout supports one waiter");
        t.waiter_ = h;
        t.ticket_ = t.sim_.schedule_cancellable(t.deadline_, h);
      }
      void await_resume() noexcept {
        t.waiter_ = nullptr;
        if (!t.cancelled_) t.expired_ = true;
      }
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  SimTime deadline_;
  std::coroutine_handle<> waiter_;
  std::uint64_t ticket_ = 0;
  bool expired_ = false;
  bool cancelled_ = false;
};

}  // namespace pgxd::sim
