// when_all: run a batch of sim::Task<void> concurrently inside a parent
// coroutine and resume the parent when every one has completed. The member
// tasks are spawned as independent processes that signal a shared latch;
// this keeps the single-continuation Task model (a Task can only be
// awaited by one parent) while supporting fork/join structure.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace pgxd::sim {

namespace detail {

struct Latch {
  explicit Latch(Simulator& sim, std::size_t count)
      : remaining(count), done(sim) {}
  std::size_t remaining;
  Event done;
};

inline Task<void> run_and_count(Task<void> task,
                                std::shared_ptr<Latch> latch) {
  co_await std::move(task);
  PGXD_CHECK(latch->remaining > 0);
  if (--latch->remaining == 0) latch->done.fire();
}

}  // namespace detail

// Runs all tasks concurrently; completes when the last one finishes.
// Exceptions in member tasks are fatal (they escape a root process).
inline Task<void> when_all(Simulator& sim, std::vector<Task<void>> tasks) {
  if (tasks.empty()) co_return;
  auto latch = std::make_shared<detail::Latch>(sim, tasks.size());
  for (auto& t : tasks)
    sim.spawn(detail::run_and_count(std::move(t), latch));
  co_await latch->done.wait();
}

}  // namespace pgxd::sim
