// Coroutine task type for discrete-event simulation processes.
//
// A sim::Task<T> is a lazily-started coroutine. It is resumed either by the
// Simulator (after a timed or synchronization await) or by a parent task
// `co_await`ing it (symmetric transfer on completion). A task spawned as a
// root process (Simulator::spawn) is owned by the simulator, which destroys
// the frame after completion.
//
// Exceptions thrown inside a task propagate to the awaiting parent; an
// exception escaping a root task aborts the simulation with a message
// (a simulator with a broken invariant must not keep producing numbers).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "common/assert.hpp"

namespace pgxd::sim {

class Simulator;

namespace detail {

// State shared by Task<T> and Task<void> promises.
struct PromiseBase {
  std::coroutine_handle<> continuation;  // parent waiting on us, if any
  std::exception_ptr exception;
  Simulator* owner = nullptr;  // set for root tasks; simulator reclaims frame
  bool done = false;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    // The continuation is *scheduled*, never resumed inline. Resuming it
    // here (symmetric transfer) would let the awaiting parent run — and
    // destroy this frame at the end of its co_await full-expression —
    // while this frame's resume chain is still on the C++ stack. Routing
    // the wake-up through the event queue guarantees a frame is only
    // destroyed from a fresh simulator step.
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      p.done = true;
      if (p.continuation) {
        PromiseBase::schedule_continuation(p.continuation);
        return std::noop_coroutine();
      }
      // Root task: hand the frame back to the simulator for destruction.
      if (p.owner) PromiseBase::reclaim_root(p.owner, h, p);
      return std::noop_coroutine();
    }

    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }

 private:
  // Defined in simulator.cpp to avoid a circular include.
  static void reclaim_root(Simulator* sim, std::coroutine_handle<> h,
                           PromiseBase& promise);
  // Schedules `c` on the currently-stepping simulator at the current time.
  static void schedule_continuation(std::coroutine_handle<> c);
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  // Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  // when the task completes, yielding its value.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;

      bool await_ready() const noexcept { return child.promise().done; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // start the child now
      }
      T await_resume() {
        if (child.promise().exception)
          std::rethrow_exception(child.promise().exception);
        return std::move(child.promise().value);
      }
    };
    PGXD_CHECK_MSG(handle_ != nullptr, "awaiting a moved-from task");
    return Awaiter{handle_};
  }

  // Used by Simulator::spawn; transfers frame ownership to the simulator.
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

  bool valid() const { return handle_ != nullptr; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;

      bool await_ready() const noexcept { return child.promise().done; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() {
        if (child.promise().exception)
          std::rethrow_exception(child.promise().exception);
      }
    };
    PGXD_CHECK_MSG(handle_ != nullptr, "awaiting a moved-from task");
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

  bool valid() const { return handle_ != nullptr; }

 private:
  friend class Simulator;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace pgxd::sim
