// Span tracing for simulations: engines record (lane, label, begin, end)
// spans — one lane per machine — optionally tagged with metadata (bytes
// moved), and the collector renders an ASCII Gantt chart. The obs layer
// exports the same spans as a Chrome trace_event JSON file
// (obs/chrome_trace.hpp) for chrome://tracing / Perfetto. Used by the
// timeline bench to show how the asynchronous exchange overlaps steps
// across machines, and handy when debugging any engine.
//
// Beyond spans, a trace also collects cross-lane *flow edges*: one record
// per physical frame the comm layer lands on a receiver, carrying the
// sender-assigned span id, send/receive instants, and fault-fabric
// provenance (retransmit? redundant duplicate?). Flows are what make the
// trace causal — the Chrome export draws them as arrows between rank
// lanes, and obs::compute_critical_path walks them to find the dependency
// chain that bounded end-to-end latency. The comm layer records them
// (runtime/comm.hpp::set_trace); this layer only stores.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace pgxd::sim {

class Trace {
 public:
  struct Span {
    std::size_t lane;
    std::string label;
    SimTime begin;
    SimTime end;
    // Optional metadata: bytes this span moved (0 = not applicable). Shown
    // as span args in the Chrome trace export.
    std::uint64_t bytes = 0;
  };

  // What a flow edge's frame carried: application data or a protocol ack.
  enum class FlowKind : std::uint8_t { kData = 0, kAck = 1 };

  // One physical frame that reached a receiver. `span_id` identifies the
  // logical message (stable across retransmits and fabric duplicates), so
  // grouping edges by id reconstructs the delivery history of one send:
  // under reliable delivery exactly one edge per id has duplicate == false
  // (the copy the dedup window admitted to the mailbox).
  struct Flow {
    std::uint64_t span_id = 0;
    std::size_t src = 0;  // sender lane
    std::size_t dst = 0;  // receiver lane
    SimTime send = 0;     // instant the frame left the sender
    SimTime recv = 0;     // instant it landed on the receiver
    std::uint64_t bytes = 0;
    int tag = 0;               // engine tag; -1 for protocol acks
    FlowKind kind = FlowKind::kData;
    bool retransmit = false;  // frame was a retransmission (attempt > 0)
    bool duplicate = false;   // redundant copy: dedup-suppressed or a
                              // fabric duplicate of an already-landed frame

    Flow() = default;
    Flow(std::uint64_t id, std::size_t src_in, std::size_t dst_in,
         SimTime send_in, SimTime recv_in, std::uint64_t bytes_in, int tag_in,
         FlowKind kind_in, bool retransmit_in, bool duplicate_in)
        : span_id(id), src(src_in), dst(dst_in), send(send_in), recv(recv_in),
          bytes(bytes_in), tag(tag_in), kind(kind_in),
          retransmit(retransmit_in), duplicate(duplicate_in) {}
  };

  void record(std::size_t lane, std::string label, SimTime begin, SimTime end,
              std::uint64_t bytes = 0) {
    PGXD_CHECK(end >= begin);
    spans_.push_back(Span{lane, std::move(label), begin, end, bytes});
  }

  void record_flow(Flow f) {
    PGXD_CHECK(f.recv >= f.send);
    flows_.push_back(std::move(f));
  }

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Flow>& flows() const { return flows_; }

  // Human label for an engine tag (e.g. "chunk" for the sorter's data
  // tag), used by exports in place of the bare integer. Unnamed tags fall
  // back to "tag <n>".
  void name_tag(int tag, std::string label) {
    tag_names_[tag] = std::move(label);
  }
  std::string tag_label(int tag) const {
    auto it = tag_names_.find(tag);
    return it != tag_names_.end() ? it->second : "tag " + std::to_string(tag);
  }

  void clear() {
    spans_.clear();
    flows_.clear();
    tag_names_.clear();
    lane_count_ = 0;
  }

  // Declares the total number of lanes (machines), so lanes that recorded
  // no spans still render as empty rows — without this, a rank with no
  // activity would silently drop off the end of the chart and the trace
  // export, making per-rank charts disagree with the cluster size.
  void set_lane_count(std::size_t n) { lane_count_ = n; }
  // Lanes to render: the declared count or the highest recorded lane + 1,
  // whichever is larger (interior empty lanes always render either way).
  std::size_t lane_count() const {
    std::size_t n = lane_count_;
    for (const auto& s : spans_) n = std::max(n, s.lane + 1);
    return n;
  }

  // One row per lane; spans drawn with one glyph per distinct label (in
  // first-appearance order), '.' for idle. Overlapping spans in a lane keep
  // the later glyph. A legend precedes the chart. The glyph alphabet is
  // A-Z, a-z, 0-9; labels beyond 62 share the '*' glyph (the legend says
  // so) instead of walking off into punctuation.
  std::string render_gantt(std::size_t width = 100) const {
    const std::size_t lanes = lane_count();
    if (spans_.empty() && lanes == 0) return "(no spans)\n";

    SimTime t_min = 0, t_max = 1;
    if (!spans_.empty()) {
      t_min = spans_.front().begin;
      t_max = spans_.front().end;
      for (const auto& s : spans_) {
        t_min = std::min(t_min, s.begin);
        t_max = std::max(t_max, s.end);
      }
      if (t_max == t_min) t_max = t_min + 1;
    }

    // Stable label -> glyph mapping in first-appearance order.
    static constexpr char kGlyphs[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    static constexpr std::size_t kGlyphCount = sizeof(kGlyphs) - 1;
    static constexpr char kOverflowGlyph = '*';
    std::map<std::string, char> glyph_of;
    std::string legend;
    bool overflowed = false;
    for (const auto& s : spans_) {
      if (glyph_of.count(s.label)) continue;
      const std::size_t idx = glyph_of.size();
      const char g = idx < kGlyphCount ? kGlyphs[idx] : kOverflowGlyph;
      glyph_of[s.label] = g;
      if (idx < kGlyphCount) {
        legend += "  ";
        legend += g;
        legend += " = " + s.label + "\n";
      } else {
        overflowed = true;
      }
    }
    if (overflowed)
      legend += std::string("  ") + kOverflowGlyph +
                " = (labels beyond the " + std::to_string(kGlyphCount) +
                "-glyph alphabet share this mark)\n";

    std::vector<std::string> rows(lanes, std::string(width, '.'));
    auto col = [&](SimTime t) {
      const auto c = static_cast<std::size_t>(
          static_cast<double>(t - t_min) / static_cast<double>(t_max - t_min) *
          static_cast<double>(width));
      return std::min(c, width - 1);
    };
    for (const auto& s : spans_) {
      const char ch = glyph_of[s.label];
      for (std::size_t c = col(s.begin); c <= col(s.end); ++c)
        rows[s.lane][c] = ch;
    }

    std::string out = "legend:\n" + legend;
    char buf[64];
    std::snprintf(buf, sizeof buf, "time: %.6f .. %.6f s\n", to_seconds(t_min),
                  to_seconds(t_max));
    out += buf;
    for (std::size_t lane = 0; lane < rows.size(); ++lane) {
      std::snprintf(buf, sizeof buf, "m%02zu |", lane);
      out += buf;
      out += rows[lane];
      out += "|\n";
    }
    return out;
  }

 private:
  std::vector<Span> spans_;
  std::vector<Flow> flows_;
  std::map<int, std::string> tag_names_;
  std::size_t lane_count_ = 0;
};

}  // namespace pgxd::sim
