// Span tracing for simulations: engines record (lane, label, begin, end)
// spans — one lane per machine — optionally tagged with metadata (bytes
// moved), and the collector renders an ASCII Gantt chart. The obs layer
// exports the same spans as a Chrome trace_event JSON file
// (obs/chrome_trace.hpp) for chrome://tracing / Perfetto. Used by the
// timeline bench to show how the asynchronous exchange overlaps steps
// across machines, and handy when debugging any engine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace pgxd::sim {

class Trace {
 public:
  struct Span {
    std::size_t lane;
    std::string label;
    SimTime begin;
    SimTime end;
    // Optional metadata: bytes this span moved (0 = not applicable). Shown
    // as span args in the Chrome trace export.
    std::uint64_t bytes = 0;
  };

  void record(std::size_t lane, std::string label, SimTime begin, SimTime end,
              std::uint64_t bytes = 0) {
    PGXD_CHECK(end >= begin);
    spans_.push_back(Span{lane, std::move(label), begin, end, bytes});
  }

  const std::vector<Span>& spans() const { return spans_; }
  void clear() {
    spans_.clear();
    lane_count_ = 0;
  }

  // Declares the total number of lanes (machines), so lanes that recorded
  // no spans still render as empty rows — without this, a rank with no
  // activity would silently drop off the end of the chart and the trace
  // export, making per-rank charts disagree with the cluster size.
  void set_lane_count(std::size_t n) { lane_count_ = n; }
  // Lanes to render: the declared count or the highest recorded lane + 1,
  // whichever is larger (interior empty lanes always render either way).
  std::size_t lane_count() const {
    std::size_t n = lane_count_;
    for (const auto& s : spans_) n = std::max(n, s.lane + 1);
    return n;
  }

  // One row per lane; spans drawn with one glyph per distinct label (in
  // first-appearance order), '.' for idle. Overlapping spans in a lane keep
  // the later glyph. A legend precedes the chart. The glyph alphabet is
  // A-Z, a-z, 0-9; labels beyond 62 share the '*' glyph (the legend says
  // so) instead of walking off into punctuation.
  std::string render_gantt(std::size_t width = 100) const {
    const std::size_t lanes = lane_count();
    if (spans_.empty() && lanes == 0) return "(no spans)\n";

    SimTime t_min = 0, t_max = 1;
    if (!spans_.empty()) {
      t_min = spans_.front().begin;
      t_max = spans_.front().end;
      for (const auto& s : spans_) {
        t_min = std::min(t_min, s.begin);
        t_max = std::max(t_max, s.end);
      }
      if (t_max == t_min) t_max = t_min + 1;
    }

    // Stable label -> glyph mapping in first-appearance order.
    static constexpr char kGlyphs[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    static constexpr std::size_t kGlyphCount = sizeof(kGlyphs) - 1;
    static constexpr char kOverflowGlyph = '*';
    std::map<std::string, char> glyph_of;
    std::string legend;
    bool overflowed = false;
    for (const auto& s : spans_) {
      if (glyph_of.count(s.label)) continue;
      const std::size_t idx = glyph_of.size();
      const char g = idx < kGlyphCount ? kGlyphs[idx] : kOverflowGlyph;
      glyph_of[s.label] = g;
      if (idx < kGlyphCount) {
        legend += "  ";
        legend += g;
        legend += " = " + s.label + "\n";
      } else {
        overflowed = true;
      }
    }
    if (overflowed)
      legend += std::string("  ") + kOverflowGlyph +
                " = (labels beyond the " + std::to_string(kGlyphCount) +
                "-glyph alphabet share this mark)\n";

    std::vector<std::string> rows(lanes, std::string(width, '.'));
    auto col = [&](SimTime t) {
      const auto c = static_cast<std::size_t>(
          static_cast<double>(t - t_min) / static_cast<double>(t_max - t_min) *
          static_cast<double>(width));
      return std::min(c, width - 1);
    };
    for (const auto& s : spans_) {
      const char ch = glyph_of[s.label];
      for (std::size_t c = col(s.begin); c <= col(s.end); ++c)
        rows[s.lane][c] = ch;
    }

    std::string out = "legend:\n" + legend;
    char buf[64];
    std::snprintf(buf, sizeof buf, "time: %.6f .. %.6f s\n", to_seconds(t_min),
                  to_seconds(t_max));
    out += buf;
    for (std::size_t lane = 0; lane < rows.size(); ++lane) {
      std::snprintf(buf, sizeof buf, "m%02zu |", lane);
      out += buf;
      out += rows[lane];
      out += "|\n";
    }
    return out;
  }

 private:
  std::vector<Span> spans_;
  std::size_t lane_count_ = 0;
};

}  // namespace pgxd::sim
