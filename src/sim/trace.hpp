// Span tracing for simulations: engines record (lane, label, begin, end)
// spans — one lane per machine — and the collector renders an ASCII Gantt
// chart. Used by the timeline bench to show how the asynchronous exchange
// overlaps steps across machines, and handy when debugging any engine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace pgxd::sim {

class Trace {
 public:
  struct Span {
    std::size_t lane;
    std::string label;
    SimTime begin;
    SimTime end;
  };

  void record(std::size_t lane, std::string label, SimTime begin, SimTime end) {
    PGXD_CHECK(end >= begin);
    spans_.push_back(Span{lane, std::move(label), begin, end});
  }

  const std::vector<Span>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  // One row per lane; spans drawn with one letter per distinct label (in
  // first-appearance order), '.' for idle. Overlapping spans in a lane keep
  // the later letter. A legend precedes the chart.
  std::string render_gantt(std::size_t width = 100) const {
    if (spans_.empty()) return "(no spans)\n";
    SimTime t_min = spans_.front().begin, t_max = spans_.front().end;
    std::size_t max_lane = 0;
    for (const auto& s : spans_) {
      t_min = std::min(t_min, s.begin);
      t_max = std::max(t_max, s.end);
      max_lane = std::max(max_lane, s.lane);
    }
    if (t_max == t_min) t_max = t_min + 1;

    // Stable label -> letter mapping.
    std::map<std::string, char> letter_of;
    std::string legend;
    char next = 'A';
    for (const auto& s : spans_) {
      if (letter_of.count(s.label)) continue;
      letter_of[s.label] = next;
      legend += "  ";
      legend += next;
      legend += " = " + s.label + "\n";
      next = next == 'Z' ? 'a' : static_cast<char>(next + 1);
    }

    std::vector<std::string> rows(max_lane + 1, std::string(width, '.'));
    auto col = [&](SimTime t) {
      const auto c = static_cast<std::size_t>(
          static_cast<double>(t - t_min) / static_cast<double>(t_max - t_min) *
          static_cast<double>(width));
      return std::min(c, width - 1);
    };
    for (const auto& s : spans_) {
      const char ch = letter_of[s.label];
      for (std::size_t c = col(s.begin); c <= col(s.end); ++c)
        rows[s.lane][c] = ch;
    }

    std::string out = "legend:\n" + legend;
    char buf[64];
    std::snprintf(buf, sizeof buf, "time: %.6f .. %.6f s\n", to_seconds(t_min),
                  to_seconds(t_max));
    out += buf;
    for (std::size_t lane = 0; lane < rows.size(); ++lane) {
      std::snprintf(buf, sizeof buf, "m%02zu |", lane);
      out += buf;
      out += rows[lane];
      out += "|\n";
    }
    return out;
  }

 private:
  std::vector<Span> spans_;
};

}  // namespace pgxd::sim
