// Synchronization primitives for simulation processes.
//
// All wake-ups are routed through Simulator::schedule_* — a primitive never
// resumes a waiter inline — so event ordering stays deterministic and a
// firing process keeps running until its own next suspension point, exactly
// like a SimPy-style kernel.
//
// Semaphore and Channel use *direct handoff*: a released permit or sent
// value destined for a queued waiter is handed to that waiter's awaiter
// object rather than returned to the shared pool, so a process that calls
// acquire()/recv() between the wake-up being scheduled and the waiter
// actually resuming cannot steal it.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace pgxd::sim {

// One-shot event with any number of waiters. Waiting after fire() completes
// immediately.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) sim_.schedule_now(h);
    waiters_.clear();
  }

  bool fired() const { return fired_; }

  auto wait() {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.fired_; }
      void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool fired_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Cyclic barrier over a fixed number of participants; reusable across
// rounds. The last arriver of a round does not suspend; it releases the
// round's waiters and continues.
class Barrier {
 public:
  Barrier(Simulator& sim, std::size_t participants)
      : sim_(sim), participants_(participants) {
    PGXD_CHECK(participants > 0);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  auto arrive() {
    struct Awaiter {
      Barrier& b;
      bool await_ready() const noexcept { return false; }
      // Returning false resumes immediately (last arriver path).
      bool await_suspend(std::coroutine_handle<> h) {
        ++b.arrived_;
        if (b.arrived_ == b.participants_) {
          b.arrived_ = 0;
          for (auto w : b.waiters_) b.sim_.schedule_now(w);
          b.waiters_.clear();
          return false;
        }
        b.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t waiting() const { return arrived_; }

 private:
  Simulator& sim_;
  std::size_t participants_;
  std::size_t arrived_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Counted semaphore with FIFO grant order and direct handoff.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t permits) : sim_(sim), permits_(permits) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct [[nodiscard]] AcquireAwaiter {
    Semaphore& s;
    std::coroutine_handle<> handle;
    bool granted = false;  // permit handed directly by release()

    bool await_ready() const noexcept {
      return s.permits_ > 0 && s.waiters_.empty();
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      s.waiters_.push_back(this);
    }
    void await_resume() noexcept {
      if (granted) return;  // handed off; pool untouched
      PGXD_DCHECK(s.permits_ > 0);
      --s.permits_;
    }
  };

  AcquireAwaiter acquire() { return AcquireAwaiter{*this, {}, false}; }

  void release() {
    if (!waiters_.empty()) {
      AcquireAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->granted = true;
      sim_.schedule_now(w->handle);
      return;
    }
    ++permits_;
  }

  std::size_t available() const { return permits_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::size_t permits_;
  std::deque<AcquireAwaiter*> waiters_;
};

// RAII permit for Semaphore within a coroutine scope.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& s) : sem_(&s) {}
  SemaphoreGuard(SemaphoreGuard&& o) noexcept : sem_(std::exchange(o.sem_, nullptr)) {}
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(SemaphoreGuard&&) = delete;
  ~SemaphoreGuard() {
    if (sem_) sem_->release();
  }

 private:
  Semaphore* sem_;
};

// Unbounded FIFO channel. send() never suspends; recv() suspends until a
// value is available. Values are delivered in send order; receivers are
// served in arrival order, each receiving its value by direct handoff.
//
// recv_until(deadline) is the timed variant: it resolves to the next value
// or, if none arrives by the absolute deadline, to std::nullopt. The
// deadline is a cancellable simulator event — a receive satisfied before
// its deadline cancels the timer, and a cancelled timer never advances the
// clock, so timed receives on the fast path are timing-neutral.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Queued-receiver record shared by the plain and timed awaiters. send()
  // hands the value into `handed`; a non-zero `ticket` names the waiter's
  // pending deadline event, which send() cancels on handoff (the cancel
  // always succeeds: a waiter whose timer fired has already removed itself
  // from the queue before anyone could observe it).
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> handed;
    std::uint64_t ticket = 0;
  };

  struct [[nodiscard]] RecvAwaiter {
    Channel& ch;
    Waiter w;

    bool await_ready() const noexcept {
      return !ch.values_.empty() && ch.waiters_.empty();
    }
    void await_suspend(std::coroutine_handle<> h) {
      w.handle = h;
      ch.waiters_.push_back(&w);
    }
    T await_resume() {
      if (w.handed) {
        PGXD_DCHECK(ch.handed_pending_ > 0);
        --ch.handed_pending_;
        return std::move(*w.handed);
      }
      PGXD_CHECK_MSG(!ch.values_.empty(), "channel resumed without a value");
      T v = std::move(ch.values_.front());
      ch.values_.pop_front();
      return v;
    }
  };

  struct [[nodiscard]] RecvUntilAwaiter {
    Channel& ch;
    SimTime deadline;
    Waiter w;

    bool await_ready() const noexcept {
      return (!ch.values_.empty() && ch.waiters_.empty()) ||
             deadline <= ch.sim_.now();
    }
    void await_suspend(std::coroutine_handle<> h) {
      w.handle = h;
      ch.waiters_.push_back(&w);
      w.ticket = ch.sim_.schedule_cancellable(deadline, h);
    }
    std::optional<T> await_resume() {
      if (w.handed) {
        PGXD_DCHECK(ch.handed_pending_ > 0);
        --ch.handed_pending_;
        return std::move(w.handed);
      }
      // Woken by the deadline (still queued): leave empty-handed.
      auto it = std::find(ch.waiters_.begin(), ch.waiters_.end(), &w);
      if (it != ch.waiters_.end()) {
        ch.waiters_.erase(it);
        return std::nullopt;
      }
      // Never suspended: take a ready value if one is claimable, else the
      // deadline had already passed on entry.
      if (!ch.values_.empty() && ch.waiters_.empty()) {
        std::optional<T> v = std::move(ch.values_.front());
        ch.values_.pop_front();
        return v;
      }
      return std::nullopt;
    }
  };

  void send(T value) {
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      if (w->ticket != 0) {
        const bool pending = sim_.cancel(w->ticket);
        PGXD_CHECK_MSG(pending, "timed channel receiver woken twice");
        w->ticket = 0;
      }
      w->handed = std::move(value);
      ++handed_pending_;
      sim_.schedule_now(w->handle);
      return;
    }
    values_.push_back(std::move(value));
  }

  RecvAwaiter recv() { return RecvAwaiter{*this, Waiter{}}; }

  RecvUntilAwaiter recv_until(SimTime deadline) {
    return RecvUntilAwaiter{*this, deadline, Waiter{}};
  }

  std::optional<T> try_recv() {
    if (values_.empty() || !waiters_.empty()) return std::nullopt;
    T v = std::move(values_.front());
    values_.pop_front();
    return v;
  }

  // Discards all unclaimed values (queued receivers, if any, stay queued).
  // The recovery supervisor's between-attempts reset: messages from an
  // aborted attempt must not leak into the next one.
  void clear() { values_.clear(); }

  // Unclaimed values (not counting values already handed to waking receivers).
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  // Receivers currently suspended in recv() (diagnostics: a non-empty
  // waiter list at the end of a run names who is blocked on what).
  std::size_t waiting() const { return waiters_.size(); }
  // Values handed directly to a woken-but-not-yet-resumed receiver. The
  // wait-for graph's satisfiability probe needs these: the receiver's wait
  // edge is still registered during the handoff-to-resume window, and a
  // handed value proves it is about to wake.
  std::size_t handed_pending() const { return handed_pending_; }

 private:
  Simulator& sim_;
  std::deque<T> values_;
  std::deque<Waiter*> waiters_;
  std::size_t handed_pending_ = 0;
};

}  // namespace pgxd::sim
