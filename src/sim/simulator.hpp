// Discrete-event simulator core.
//
// Single-threaded and deterministic: runnable events are totally ordered by
// (timestamp, insertion sequence), so two runs with the same seeds produce
// identical traces. Processes are sim::Task coroutines; all wake-ups —
// delays, channel sends, barrier releases — go through the event queue
// rather than resuming inline, which keeps the ordering discipline in one
// place.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace pgxd::sim {

// Schedule-perturbation explorer (off by default). When enabled, events
// scheduled for the same timestamp are delivered in a seeded-random order
// instead of insertion order, and schedule_now() wake-ups — channel
// handoffs, barrier releases, cancellation wakes — are jittered by a
// seeded uniform draw from [0, wake_jitter]. Each seed yields one fully
// deterministic alternative schedule, so an ordering bug found by the fuzz
// sweep reproduces from its seed alone. Timed events (delay, deadlines)
// keep their exact timestamps: perturbation explores *ordering* freedom
// the simulation semantics already permit, not clock skew.
struct PerturbConfig {
  bool enabled = false;
  std::uint64_t seed = 0;
  SimTime wake_jitter = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  SimTime now() const { return now_; }

  // Schedules a suspended coroutine to be resumed at absolute time `at`.
  // This is the single wake-up entry point used by all awaitables.
  void schedule_at(SimTime at, std::coroutine_handle<> h);
  // Same-instant wake-up; the only scheduling path the perturbation mode's
  // wake jitter applies to (timed events keep exact timestamps).
  void schedule_now(std::coroutine_handle<> h) {
    schedule_at(now_ + wake_jitter(), h);
  }

  // Must be set before the first event is scheduled (the tiebreak keys of
  // already-queued events cannot be rewritten).
  void set_perturbation(const PerturbConfig& cfg) {
    PGXD_CHECK_MSG(queue_.empty() && next_seq_ == 0,
                   "set_perturbation after events were scheduled");
    PGXD_CHECK_MSG(cfg.wake_jitter >= 0, "negative wake_jitter");
    perturb_ = cfg;
    perturb_rng_ = Rng(cfg.seed);
  }
  const PerturbConfig& perturbation() const { return perturb_; }

  // Asks run()/run_until() to return before the next event. Used by the
  // wait-for graph to abort a detected deadlock at the wedge instant
  // instead of idling behind heartbeat timers.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  // Like schedule_at, but returns a ticket that can remove the wake-up
  // before it fires (see cancel). Timeout builds on this so an abandoned
  // deadline neither resumes its waiter nor advances the clock to it.
  std::uint64_t schedule_cancellable(SimTime at, std::coroutine_handle<> h);

  // Removes a cancellable wake-up. Returns true if it was still pending
  // (it will now never fire); false if it already fired or was cancelled.
  bool cancel(std::uint64_t ticket);

  // Registers a root process; it starts at the current time. The simulator
  // owns the coroutine frame from this point on.
  void spawn(Task<void> task);

  // Timed suspension: `co_await sim.delay(dt)`.
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulator& sim;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_at(sim.now_ + dt, h);
      }
      void await_resume() const noexcept {}
    };
    PGXD_CHECK_MSG(dt >= 0, "negative delay");
    return Awaiter{*this, dt};
  }

  // Runs until no events remain. Returns the final simulated time. Processes
  // still suspended on synchronization objects are left suspended (their
  // frames are destroyed with the simulator); use `quiescent()` to detect
  // that situation in tests.
  SimTime run();

  // Runs events with timestamp <= t, then sets now() = t.
  SimTime run_until(SimTime t);

  // True when every spawned root process has run to completion.
  bool quiescent() const { return live_roots_ == 0; }

  // The simulator currently executing an event (null outside step()). Used
  // by task final-awaiters to schedule their continuations.
  static Simulator* current();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const {
    return queue_.size() - cancelled_.size();
  }

 private:
  friend struct detail::PromiseBase;

  struct Scheduled {
    SimTime at;
    // Same-timestamp tiebreak: 0 in normal runs (insertion order via seq),
    // a seeded-random key under perturbation (seq still breaks pri ties,
    // keeping the order total and deterministic per seed).
    std::uint64_t pri;
    std::uint64_t seq;
    std::coroutine_handle<> handle;

    bool operator>(const Scheduled& o) const {
      if (at != o.at) return at > o.at;
      if (pri != o.pri) return pri > o.pri;
      return seq > o.seq;
    }
  };

  SimTime wake_jitter() {
    if (!perturb_.enabled || perturb_.wake_jitter == 0) return 0;
    return static_cast<SimTime>(perturb_rng_.bounded(
        static_cast<std::uint64_t>(perturb_.wake_jitter) + 1));
  }

  void reclaim(std::coroutine_handle<> h, detail::PromiseBase& promise);
  void drain_reclaimed();
  void step(const Scheduled& ev);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t live_roots_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>> queue_;
  // Cancellation is lazy: a cancelled seq stays in the heap and is skipped
  // (without advancing the clock) when it reaches the top.
  std::unordered_set<std::uint64_t> cancellable_live_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::vector<std::coroutine_handle<>> reclaimed_;
  std::vector<std::coroutine_handle<>> roots_;  // frames owned by the simulator
  PerturbConfig perturb_;
  Rng perturb_rng_{0};
  bool stop_requested_ = false;
};

}  // namespace pgxd::sim
