// Discrete-event simulator core.
//
// Single-threaded and deterministic: runnable events are totally ordered by
// (timestamp, insertion sequence), so two runs with the same seeds produce
// identical traces. Processes are sim::Task coroutines; all wake-ups —
// delays, channel sends, barrier releases — go through the event queue
// rather than resuming inline, which keeps the ordering discipline in one
// place.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace pgxd::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  SimTime now() const { return now_; }

  // Schedules a suspended coroutine to be resumed at absolute time `at`.
  // This is the single wake-up entry point used by all awaitables.
  void schedule_at(SimTime at, std::coroutine_handle<> h);
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  // Like schedule_at, but returns a ticket that can remove the wake-up
  // before it fires (see cancel). Timeout builds on this so an abandoned
  // deadline neither resumes its waiter nor advances the clock to it.
  std::uint64_t schedule_cancellable(SimTime at, std::coroutine_handle<> h);

  // Removes a cancellable wake-up. Returns true if it was still pending
  // (it will now never fire); false if it already fired or was cancelled.
  bool cancel(std::uint64_t ticket);

  // Registers a root process; it starts at the current time. The simulator
  // owns the coroutine frame from this point on.
  void spawn(Task<void> task);

  // Timed suspension: `co_await sim.delay(dt)`.
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulator& sim;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_at(sim.now_ + dt, h);
      }
      void await_resume() const noexcept {}
    };
    PGXD_CHECK_MSG(dt >= 0, "negative delay");
    return Awaiter{*this, dt};
  }

  // Runs until no events remain. Returns the final simulated time. Processes
  // still suspended on synchronization objects are left suspended (their
  // frames are destroyed with the simulator); use `quiescent()` to detect
  // that situation in tests.
  SimTime run();

  // Runs events with timestamp <= t, then sets now() = t.
  SimTime run_until(SimTime t);

  // True when every spawned root process has run to completion.
  bool quiescent() const { return live_roots_ == 0; }

  // The simulator currently executing an event (null outside step()). Used
  // by task final-awaiters to schedule their continuations.
  static Simulator* current();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const {
    return queue_.size() - cancelled_.size();
  }

 private:
  friend struct detail::PromiseBase;

  struct Scheduled {
    SimTime at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;

    bool operator>(const Scheduled& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void reclaim(std::coroutine_handle<> h, detail::PromiseBase& promise);
  void drain_reclaimed();
  void step(const Scheduled& ev);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t live_roots_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>> queue_;
  // Cancellation is lazy: a cancelled seq stays in the heap and is skipped
  // (without advancing the clock) when it reaches the top.
  std::unordered_set<std::uint64_t> cancellable_live_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::vector<std::coroutine_handle<>> reclaimed_;
  std::vector<std::coroutine_handle<>> roots_;  // frames owned by the simulator
};

}  // namespace pgxd::sim
