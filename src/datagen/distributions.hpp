// Input datasets of Fig. 4: uniform, normal, right-skewed, and exponential
// key distributions.
//
// The right-skewed and exponential generators deliberately produce heavy
// duplication ("dataset containing many duplicated data entries"): they
// concentrate mass on a small set of distinct values, which is what makes
// naive splitter selection collapse (Fig. 3b) and what the investigator
// (Fig. 3c) exists to fix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace pgxd::gen {

enum class Distribution {
  kUniform,
  kNormal,
  kRightSkewed,
  kExponential,
  // Heavy-tailed rank-frequency (log-uniform over the domain's magnitude):
  // most mass lands on small keys, with every order of magnitude equally
  // populated — the classic stress case for equidistant sampling.
  kZipf,
  // Adversarial for splitter selection: only a handful of distinct keys,
  // with 80% of the mass on one of them. Any partitioning scheme that does
  // not split duplicate runs (the investigator's job) collapses here.
  kFewDistinct,
};

// The Fig. 4 set — the paper's four input datasets. Sweeps that reproduce
// paper figures iterate exactly these.
inline constexpr Distribution kAllDistributions[] = {
    Distribution::kUniform, Distribution::kNormal, Distribution::kRightSkewed,
    Distribution::kExponential};

// The Fig. 4 set plus the partitioning stress cases; the balance-guarantee
// test matrix and pgxd_sim iterate these.
inline constexpr Distribution kAllDistributionsExtended[] = {
    Distribution::kUniform,     Distribution::kNormal,
    Distribution::kRightSkewed, Distribution::kExponential,
    Distribution::kZipf,        Distribution::kFewDistinct};

const char* name(Distribution d);

struct DataGenConfig {
  Distribution dist = Distribution::kUniform;
  // Size of the distinct-value domain keys are drawn into. Smaller domains
  // mean more duplication for every distribution.
  std::uint64_t domain = 1u << 24;
  std::uint64_t seed = 42;
};

// Draws one key.
std::uint64_t draw(const DataGenConfig& cfg, Rng& rng);

// Generates n keys.
std::vector<std::uint64_t> generate(const DataGenConfig& cfg, std::size_t n);

// Deterministic per-machine shard: machine `rank` of `machines` holds
// total_n/machines keys (the first total_n % machines ranks hold one more),
// drawn from an independent per-rank stream so any rank's shard can be
// generated without materializing the rest.
std::vector<std::uint64_t> generate_shard(const DataGenConfig& cfg,
                                          std::size_t total_n,
                                          std::size_t machines,
                                          std::size_t rank);

// Number of keys shard `rank` receives under generate_shard's split.
std::size_t shard_size(std::size_t total_n, std::size_t machines,
                       std::size_t rank);

// Partially sorted data: an ascending ramp over [0, domain) with a fraction
// `disorder` of positions swapped with random partners. disorder = 0 is
// fully sorted; 1.0 approaches a random permutation. The workload TimSort
// is adaptive on (the paper: "it performs better when the data is
// partially sorted").
std::vector<std::uint64_t> generate_almost_sorted(std::size_t n,
                                                  std::uint64_t domain,
                                                  double disorder,
                                                  std::uint64_t seed);

// Per-machine shard of an almost-sorted *global* sequence: machine r holds
// the r-th contiguous slice, so the global concatenation is the almost-
// sorted ramp.
std::vector<std::uint64_t> almost_sorted_shard(std::size_t total_n,
                                               std::uint64_t domain,
                                               double disorder,
                                               std::uint64_t seed,
                                               std::size_t machines,
                                               std::size_t rank);

}  // namespace pgxd::gen
