#include "datagen/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace pgxd::gen {

const char* name(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kNormal: return "normal";
    case Distribution::kRightSkewed: return "right-skewed";
    case Distribution::kExponential: return "exponential";
    case Distribution::kZipf: return "zipf";
    case Distribution::kFewDistinct: return "few-distinct";
  }
  return "unknown";
}

std::uint64_t draw(const DataGenConfig& cfg, Rng& rng) {
  const auto domain = static_cast<double>(cfg.domain);
  switch (cfg.dist) {
    case Distribution::kUniform:
      return rng.bounded(cfg.domain);
    case Distribution::kNormal: {
      // Centered at domain/2 with sigma = domain/8; ~0.006% clamps.
      const double x = rng.normal(domain / 2.0, domain / 8.0);
      const double clamped = std::clamp(x, 0.0, domain - 1.0);
      return static_cast<std::uint64_t>(clamped);
    }
    case Distribution::kRightSkewed: {
      // Fig. 4c / Table II shape: 70% of entries duplicate one low value
      // (Table II's right-skewed row shows 8 of 10 processors holding an
      // exactly-equal share — a single duplicate run spanning most
      // splitters), the rest follows a continuous low-concentrated tail.
      const double u = rng.uniform();
      if (u < 0.7) return cfg.domain / 64;
      const double t = (u - 0.7) / 0.3;
      const double x = domain * std::pow(t, 6.0);
      return static_cast<std::uint64_t>(std::min(x, domain - 1.0));
    }
    case Distribution::kExponential: {
      // Mean at domain/16; clamp the tail into the last key.
      const double x = rng.exponential(16.0 / domain);
      return static_cast<std::uint64_t>(std::min(x, domain - 1.0));
    }
    case Distribution::kZipf: {
      // Log-uniform: exp(U * ln(domain)) spreads mass evenly across orders
      // of magnitude, so half of all keys land below sqrt(domain).
      const double x = std::exp(rng.uniform() * std::log(domain));
      return static_cast<std::uint64_t>(std::min(x, domain - 1.0));
    }
    case Distribution::kFewDistinct: {
      // Five distinct keys spread across the domain; 80% of draws hit the
      // middle one, so its duplicate run spans most splitter positions.
      const double u = rng.uniform();
      if (u < 0.8) return cfg.domain / 2;
      const auto which = static_cast<std::uint64_t>((u - 0.8) / 0.05);
      const std::uint64_t step = std::max<std::uint64_t>(1, cfg.domain / 5);
      return std::min(which * step + step / 3, cfg.domain - 1);
    }
  }
  PGXD_CHECK_MSG(false, "unreachable distribution");
  return 0;
}

std::vector<std::uint64_t> generate(const DataGenConfig& cfg, std::size_t n) {
  Rng rng(cfg.seed);
  std::vector<std::uint64_t> out(n);
  for (auto& x : out) x = draw(cfg, rng);
  return out;
}

std::vector<std::uint64_t> generate_almost_sorted(std::size_t n,
                                                  std::uint64_t domain,
                                                  double disorder,
                                                  std::uint64_t seed) {
  PGXD_CHECK(disorder >= 0.0 && disorder <= 1.0);
  PGXD_CHECK(domain >= 1);
  std::vector<std::uint64_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = n > 1 ? static_cast<std::uint64_t>(
                         static_cast<double>(i) / static_cast<double>(n - 1) *
                         static_cast<double>(domain - 1))
                   : 0;
  Rng rng(seed);
  const auto swaps = static_cast<std::size_t>(disorder * static_cast<double>(n));
  for (std::size_t s = 0; s < swaps; ++s) {
    const std::size_t a = rng.bounded(n);
    const std::size_t b = rng.bounded(n);
    std::swap(out[a], out[b]);
  }
  return out;
}

std::vector<std::uint64_t> almost_sorted_shard(std::size_t total_n,
                                               std::uint64_t domain,
                                               double disorder,
                                               std::uint64_t seed,
                                               std::size_t machines,
                                               std::size_t rank) {
  // Materialize the global sequence so swaps can cross shard boundaries,
  // then cut out this machine's contiguous slice.
  const auto full = generate_almost_sorted(total_n, domain, disorder, seed);
  std::size_t begin = 0;
  for (std::size_t r = 0; r < rank; ++r) begin += shard_size(total_n, machines, r);
  const std::size_t len = shard_size(total_n, machines, rank);
  return std::vector<std::uint64_t>(full.begin() + begin, full.begin() + begin + len);
}

std::size_t shard_size(std::size_t total_n, std::size_t machines,
                       std::size_t rank) {
  PGXD_CHECK(machines > 0);
  PGXD_CHECK(rank < machines);
  return total_n / machines + (rank < total_n % machines ? 1 : 0);
}

std::vector<std::uint64_t> generate_shard(const DataGenConfig& cfg,
                                          std::size_t total_n,
                                          std::size_t machines,
                                          std::size_t rank) {
  Rng rng(derive_seed(cfg.seed, rank));
  const std::size_t n = shard_size(total_n, machines, rank);
  std::vector<std::uint64_t> out(n);
  for (auto& x : out) x = draw(cfg, rng);
  return out;
}

}  // namespace pgxd::gen
