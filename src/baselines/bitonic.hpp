// Distributed block-bitonic sort (Batcher) — the Sec. II comparator.
//
// Classic hypercube schedule: every machine keeps a sorted block; in round
// (k, j) machine r compare-splits its whole block with partner r^j, keeping
// the lower or upper half according to the bitonic direction bit. The
// defining cost the paper criticizes is visible by construction: every
// round exchanges the *entire* block, so wire traffic is
// O(n * log^2(p) / p) per machine versus sample sort's O(n / p).
//
// Requires: power-of-two machine count and equal block sizes (the classical
// block-comparator correctness condition via the 0-1 principle).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "runtime/cluster.hpp"
#include "sort/merge.hpp"

namespace pgxd::baselines {

struct BitonicStats {
  sim::SimTime total_time = 0;
  std::uint64_t wire_bytes = 0;
  std::size_t rounds = 0;
};

template <typename Key, typename Comp = std::less<Key>>
class BitonicSorter {
 public:
  struct Msg {
    std::vector<Key> keys;
    std::size_t round = 0;

    // User-declared constructors are load-bearing; see the note on
    // rt::Message about GCC 12 and aggregate temporaries in co_await.
    Msg() = default;
    Msg(std::vector<Key> k, std::size_t r) : keys(std::move(k)), round(r) {}
  };
  using Cluster = rt::Cluster<Msg>;

  explicit BitonicSorter(Cluster& cluster, Comp comp = {})
      : cluster_(cluster), comp_(comp) {
    output_.resize(cluster.size());
  }

  void run(std::vector<std::vector<Key>> shards) {
    const std::size_t p = cluster_.size();
    PGXD_CHECK(shards.size() == p);
    PGXD_CHECK_MSG(std::has_single_bit(p), "bitonic needs 2^k machines");
    for (std::size_t r = 1; r < p; ++r)
      PGXD_CHECK_MSG(shards[r].size() == shards[0].size(),
                     "bitonic needs equal block sizes");
    input_ = std::move(shards);
    stats_ = BitonicStats{};
    stats_.total_time = cluster_.run(
        [this](rt::Machine& m) { return machine_program(m); });
    stats_.wire_bytes = wire_bytes_;
  }

  const std::vector<std::vector<Key>>& partitions() const { return output_; }
  const BitonicStats& stats() const { return stats_; }

 private:
  sim::Task<void> machine_program(rt::Machine& m) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();

    std::vector<Key> block = std::move(input_[rank]);
    const std::size_t bn = block.size();
    std::sort(block.begin(), block.end(), comp_);
    co_await m.charge_local_parallel_sort(bn);

    std::size_t round = 0;
    for (std::size_t k = 2; k <= p; k <<= 1) {
      for (std::size_t j = k >> 1; j > 0; j >>= 1, ++round) {
        const std::size_t partner = rank ^ j;
        const bool ascending = (rank & k) == 0;
        const bool keep_low = ascending == (rank < partner);

        const std::uint64_t bytes = bn * sizeof(Key);
        wire_bytes_ += bytes;
        comm.post(rank, partner, static_cast<int>(round),
                  Msg{block, round}, bytes);
        auto msg = co_await comm.recv(rank, static_cast<int>(round));
        PGXD_CHECK(msg.payload.round == round);

        // Compare-split: merge the two sorted blocks, keep our half.
        std::vector<Key> merged(2 * bn);
        sort::merge_into<Key, Comp>(block, msg.payload.keys, merged, comp_);
        co_await m.compute_parallel(m.cost().merge_time(2 * bn));
        if (keep_low)
          block.assign(merged.begin(), merged.begin() + bn);
        else
          block.assign(merged.end() - bn, merged.end());
      }
    }
    if (rank == 0) stats_.rounds = round;
    output_[rank] = std::move(block);
    co_return;
  }

  Cluster& cluster_;
  Comp comp_;
  std::vector<std::vector<Key>> input_;
  std::vector<std::vector<Key>> output_;
  BitonicStats stats_;
  std::uint64_t wire_bytes_ = 0;
};

}  // namespace pgxd::baselines
