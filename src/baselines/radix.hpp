// Partitioned parallel radix sort (Lee et al., JPDC'02 style) — the second
// Sec. II comparator.
//
// One exchange pass: machines build a global histogram over the top
// `high_bits` of the keys, the master assigns contiguous bucket ranges to
// machines to balance counts, data moves once, then each machine
// radix-sorts locally. The weakness the paper calls out is structural:
// bucket granularity. Duplicate-heavy data piles into single buckets that
// cannot be split (a bucket's keys are indistinguishable at the chosen
// digit), so skew translates directly into load imbalance — unlike the
// sample sort investigator, which splits equal-key runs freely.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "runtime/cluster.hpp"
#include "sort/radix_sort.hpp"

namespace pgxd::baselines {

struct RadixConfig {
  unsigned high_bits = 12;  // 4096 buckets for the partitioning digit
  unsigned radix_pass_bits = 8;  // LSD pass width for the local sort charge
};

struct RadixStats {
  sim::SimTime total_time = 0;
  std::uint64_t wire_bytes = 0;
  pgxd::BalanceReport balance;
};

// Key must be an unsigned integer type.
template <typename Key = std::uint64_t>
class RadixSorter {
 public:
  struct Msg {
    std::vector<Key> keys;
    std::vector<std::uint64_t> counts;  // histograms / assignments
    Key max_key = 0;

    // User-declared constructors are load-bearing; see the note on
    // rt::Message about GCC 12 and aggregate temporaries in co_await.
    Msg() = default;
    Msg(std::vector<Key> k, std::vector<std::uint64_t> c, Key m)
        : keys(std::move(k)), counts(std::move(c)), max_key(m) {}
  };
  using Cluster = rt::Cluster<Msg>;

  static constexpr int kTagMax = 0;
  static constexpr int kTagHist = 1;
  static constexpr int kTagAssign = 2;
  static constexpr int kTagData = 3;

  explicit RadixSorter(Cluster& cluster, RadixConfig cfg = {})
      : cluster_(cluster), cfg_(cfg) {
    static_assert(std::is_unsigned_v<Key>, "radix sort needs unsigned keys");
    output_.resize(cluster.size());
  }

  void run(std::vector<std::vector<Key>> shards) {
    PGXD_CHECK(shards.size() == cluster_.size());
    input_ = std::move(shards);
    stats_ = RadixStats{};
    stats_.total_time = cluster_.run(
        [this](rt::Machine& m) { return machine_program(m); });
    stats_.wire_bytes = wire_bytes_;
    std::vector<std::uint64_t> sizes;
    for (const auto& part : output_) sizes.push_back(part.size());
    stats_.balance = pgxd::balance_report(sizes);
  }

  const std::vector<std::vector<Key>>& partitions() const { return output_; }
  const RadixStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kMaster = 0;

  sim::Task<void> machine_program(rt::Machine& m) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const auto& in = input_[rank];
    const std::size_t n = in.size();
    const std::size_t buckets = std::size_t{1} << cfg_.high_bits;

    // Agree on the digit position: master reduces local maxima.
    Key local_max = 0;
    for (const auto& k : in) local_max = std::max(local_max, k);
    co_await m.charge_copy(n);
    unsigned shift = 0;
    if (rank != kMaster) {
      comm.post(rank, kMaster, kTagMax, Msg{{}, {}, local_max}, sizeof(Key));
      wire_bytes_ += sizeof(Key);
    } else {
      Key global_max = local_max;
      for (std::size_t i = 0; i + 1 < p; ++i) {
        auto msg = co_await comm.recv(kMaster, kTagMax);
        global_max = std::max(global_max, msg.payload.max_key);
      }
      const unsigned width =
          global_max ? static_cast<unsigned>(std::bit_width(global_max)) : 1;
      master_shift_ = width > cfg_.high_bits ? width - cfg_.high_bits : 0;
      for (std::size_t dst = 0; dst < p; ++dst) {
        comm.post(kMaster, dst, kTagAssign, Msg{{}, {master_shift_}, 0}, 8);
        if (dst != kMaster) wire_bytes_ += 8;
      }
    }
    {
      auto msg = co_await comm.recv(rank, kTagAssign);
      shift = static_cast<unsigned>(msg.payload.counts[0]);
    }

    // Local histogram over the partitioning digit.
    std::vector<std::uint64_t> hist(buckets, 0);
    for (const auto& k : in) ++hist[static_cast<std::size_t>(k >> shift)];
    co_await m.charge_copy(n);

    // Master sums histograms and greedily assigns contiguous bucket ranges
    // with (approximately) total/p keys each.
    std::vector<std::uint64_t> owner_of_bucket;
    if (rank != kMaster) {
      const std::uint64_t bytes = buckets * 8;
      wire_bytes_ += bytes;
      co_await comm.send(rank, kMaster, kTagHist, Msg{{}, hist, 0}, bytes);
      auto msg = co_await comm.recv(rank, kTagAssign);
      owner_of_bucket = std::move(msg.payload.counts);
    } else {
      std::vector<std::uint64_t> global = hist;
      for (std::size_t i = 0; i + 1 < p; ++i) {
        auto msg = co_await comm.recv(kMaster, kTagHist);
        for (std::size_t b = 0; b < buckets; ++b)
          global[b] += msg.payload.counts[b];
      }
      std::uint64_t total = 0;
      for (auto c : global) total += c;
      owner_of_bucket.assign(buckets, p - 1);
      std::uint64_t acc = 0;
      std::size_t machine = 0;
      for (std::size_t b = 0; b < buckets; ++b) {
        owner_of_bucket[b] = machine;
        acc += global[b];
        // Close this machine's range once it reaches its fair share.
        while (machine + 1 < p && acc * p >= total * (machine + 1)) ++machine;
      }
      co_await m.compute(m.cost().copy_time(buckets * p));
      for (std::size_t dst = 0; dst < p; ++dst) {
        const std::uint64_t bytes = buckets * 8;
        if (dst != kMaster) wire_bytes_ += bytes;
        comm.post(kMaster, dst, kTagAssign, Msg{{}, owner_of_bucket, 0}, bytes);
      }
      if (rank == kMaster) {
        auto msg = co_await comm.recv(kMaster, kTagAssign);
        owner_of_bucket = std::move(msg.payload.counts);
      }
    }

    // Scatter rows to their bucket owners (single exchange pass; one message
    // per destination, empty ones included so receivers know when to stop).
    std::vector<std::vector<Key>> outgoing(p);
    for (const auto& k : in)
      outgoing[owner_of_bucket[static_cast<std::size_t>(k >> shift)]].push_back(k);
    co_await m.charge_copy(n);
    auto& out = output_[rank];
    out = std::move(outgoing[rank]);
    for (std::size_t step = 1; step < p; ++step) {
      const std::size_t dst = (rank + step) % p;
      const std::uint64_t bytes = outgoing[dst].size() * sizeof(Key);
      wire_bytes_ += bytes;
      comm.post(rank, dst, kTagData, Msg{std::move(outgoing[dst]), {}, 0}, bytes);
    }
    for (std::size_t i = 0; i + 1 < p; ++i) {
      auto msg = co_await comm.recv(rank, kTagData);
      out.insert(out.end(), msg.payload.keys.begin(), msg.payload.keys.end());
      co_await m.charge_copy(msg.payload.keys.size());
    }

    // Local LSD radix sort of the received keys (real kernel), one
    // count+scatter pass per radix_pass_bits digit.
    std::vector<Key> scratch;
    const auto rstats =
        sort::radix_sort(out, scratch, /*significant_bits=*/0,
                         cfg_.radix_pass_bits);
    co_await m.compute_parallel(
        m.cost().copy_time(out.size()) *
        static_cast<sim::SimTime>(std::max(1u, rstats.passes) * 2));
    co_return;
  }

  Cluster& cluster_;
  RadixConfig cfg_;
  std::vector<std::vector<Key>> input_;
  std::vector<std::vector<Key>> output_;
  RadixStats stats_;
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t master_shift_ = 0;
};

}  // namespace pgxd::baselines
