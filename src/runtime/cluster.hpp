// Cluster harness: wires a Simulator, a Fabric, per-machine Machine state,
// and a Comm instance, and runs one coroutine per machine to completion.
// Every distributed engine in this repository (the PGX.D sort, the Spark
// baseline, bitonic and radix comparators) executes inside a Cluster.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "runtime/comm.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/failure_detector.hpp"
#include "runtime/machine.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/wait_graph.hpp"

namespace pgxd::rt {

struct ClusterConfig {
  std::size_t machines = 8;
  unsigned threads_per_machine = 32;  // Table I: 2 sockets x 8 cores, 32 HW threads used
  net::NetConfig net{};
  CostModel cost{};
  std::uint64_t seed = 0x5eed;
  // Ack/retry/backoff delivery (off by default: the clean path is
  // byte-identical to a Comm without the reliable layer).
  ReliableConfig reliable{};
  // Permit messages left in mailboxes at the end of a run. Only legitimate
  // for engines that tolerate fabric-level duplicates at the application
  // layer (trailing duplicate copies can arrive after the receive loops
  // are done); everything else should drain every mailbox.
  bool allow_undrained = false;
  // Heartbeat failure detector (off by default). When enabled, the cluster
  // runs one heartbeat process per rank alongside the machine programs,
  // wires detector suspicion into the Comm layer's fail-fast retransmit
  // loops, and stops the heartbeats when the last program completes.
  DetectorConfig detector{};
};

template <typename Payload>
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg)
      : cfg_(cfg), fabric_(sim_, cfg.machines, cfg.net),
        comm_(sim_, fabric_, cfg.reliable) {
    PGXD_CHECK(cfg.machines >= 1);
    machines_.reserve(cfg.machines);
    for (std::size_t r = 0; r < cfg.machines; ++r)
      machines_.push_back(std::make_unique<Machine>(
          sim_, cfg_.cost, r, cfg.threads_per_machine, cfg.seed));
    if (cfg_.detector.enabled) {
      detector_ =
          std::make_unique<FailureDetector>(sim_, fabric_, cfg_.detector);
      comm_.set_suspicion_hook(
          [det = detector_.get()](std::size_t observer, std::size_t peer) {
            return det->suspects(observer, peer);
          });
    }
    // Wait-for graph: every blocking recv/barrier registers an edge; the
    // moment every live program is blocked with no satisfiable edge the
    // graph stops the simulator, and run_on reports the named cycle
    // instead of idling to quiescence behind heartbeat timers.
    comm_.set_wait_graph(&graph_);
    graph_.set_on_deadlock(
        [this](const sim::WaitGraph::Deadlock&) { sim_.request_stop(); });
  }

  const ClusterConfig& config() const { return cfg_; }
  sim::Simulator& simulator() { return sim_; }
  net::Fabric& fabric() { return fabric_; }
  const net::Fabric& fabric() const { return fabric_; }
  Comm<Payload>& comm() { return comm_; }
  const Comm<Payload>& comm() const { return comm_; }
  Machine& machine(std::size_t rank) { return *machines_[rank]; }
  std::size_t size() const { return machines_.size(); }
  // Null unless ClusterConfig::detector.enabled.
  FailureDetector* detector() { return detector_.get(); }
  sim::WaitGraph& wait_graph() { return graph_; }
  const sim::WaitGraph& wait_graph() const { return graph_; }

  // Attaches a time-series sampler: its loop starts with each run_on and
  // is stopped (timer cancelled, clock untouched) when the last spawned
  // program completes — the same lifecycle as the failure detector, so an
  // idle sampler never delays quiescence. nullptr detaches. The caller
  // owns the sampler and reads it back after the run.
  void set_sampler(obs::TimeSeriesSampler* sampler) { sampler_ = sampler; }

  // Telemetry export for one rank: its NIC counters plus the comm layer's
  // protocol counters. Per-rank registries merged across the cluster yield
  // fabric-wide totals.
  void export_metrics(obs::MetricsRegistry& reg, std::size_t rank) const {
    fabric_.export_metrics(reg, rank);
    if (rank == 0) {
      comm_.export_metrics(reg);  // cluster-wide, count once
      if (detector_) detector_->export_metrics(reg);
    }
  }

  // Spawns factory(machine) for every rank and runs the simulation to
  // quiescence. Returns the elapsed simulated time of this run.
  sim::SimTime run(const std::function<sim::Task<void>(Machine&)>& factory) {
    std::vector<std::size_t> ranks(machines_.size());
    for (std::size_t r = 0; r < ranks.size(); ++r) ranks[r] = r;
    return run_on(ranks, factory);
  }

  // Spawns factory(machine) for the given subset of ranks only — the
  // recovery supervisor's re-run over a shrunk membership — and runs the
  // simulation to quiescence. With the failure detector enabled, heartbeat
  // loops (re)start for the whole cluster and are stopped once the last
  // spawned program completes; detector processes are therefore invisible
  // to quiescence accounting beyond that point.
  sim::SimTime run_on(const std::vector<std::size_t>& ranks,
                      const std::function<sim::Task<void>(Machine&)>& factory) {
    PGXD_CHECK(!ranks.empty());
    const sim::SimTime start = sim_.now();
    remaining_programs_ = ranks.size();
    if (detector_) detector_->start();
    if (sampler_) sampler_->start(sim_);
    for (std::size_t r : ranks) {
      PGXD_CHECK(r < machines_.size());
      graph_.process_spawned(r);
      sim_.spawn(wrap_completion(r, factory(*machines_[r])));
    }
    sim_.run();
    if (graph_.deadlock()) {
      std::string diag =
          "cluster run deadlocked — every live machine process is blocked "
          "with no satisfiable wait edge; " +
          graph_.deadlock()->description;
      if (comm_.any_unreachable())
        diag += "; peers marked unreachable:" + comm_.unreachable_report();
      PGXD_CHECK_MSG(false, diag.c_str());
    }
    if (!sim_.quiescent()) {
      std::string diag =
          "cluster run ended with blocked machine processes (deadlock: a "
          "recv without a matching send, or the fabric lost a message?); "
          "blocked receives:" +
          comm_.blocked_report();
      if (comm_.any_unreachable())
        diag += "; peers marked unreachable:" + comm_.unreachable_report();
      PGXD_CHECK_MSG(false, diag.c_str());
    }
    if (!cfg_.allow_undrained && comm_.total_pending() > 0) {
      const std::string diag =
          "cluster run ended with undrained mailboxes (stray messages "
          "nobody received):" +
          comm_.stray_report();
      PGXD_CHECK_MSG(false, diag.c_str());
    }
    return sim_.now() - start;
  }

 private:
  // Non-coroutine wrapper (GCC 12: a prvalue Task argument bound to a
  // coroutine by-value parameter miscompiles; materialize it here and
  // forward an xvalue).
  sim::Task<void> wrap_completion(std::size_t rank, sim::Task<void> program) {
    return wrap_completion_impl(rank, std::move(program));
  }

  // Counts program completions so the detector's heartbeat loops stop as
  // soon as the last machine program finishes (not at some wall-clock
  // horizon). An exception escaping `program` aborts the simulation as
  // before — engines that want crash tolerance install their own catching
  // wrapper underneath this one.
  sim::Task<void> wrap_completion_impl(std::size_t rank,
                                       sim::Task<void> program) {
    co_await std::move(program);
    // A finished program can no longer act; this transition can complete
    // the "everyone left is blocked" condition, so the graph re-checks.
    graph_.process_done(rank);
    PGXD_CHECK(remaining_programs_ > 0);
    if (--remaining_programs_ == 0) {
      if (detector_) detector_->request_stop();
      if (sampler_) sampler_->request_stop();
    }
  }

  ClusterConfig cfg_;
  sim::Simulator sim_;
  net::Fabric fabric_;
  Comm<Payload> comm_;
  sim::WaitGraph graph_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::unique_ptr<FailureDetector> detector_;
  obs::TimeSeriesSampler* sampler_ = nullptr;
  std::size_t remaining_programs_ = 0;
};

}  // namespace pgxd::rt
