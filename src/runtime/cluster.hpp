// Cluster harness: wires a Simulator, a Fabric, per-machine Machine state,
// and a Comm instance, and runs one coroutine per machine to completion.
// Every distributed engine in this repository (the PGX.D sort, the Spark
// baseline, bitonic and radix comparators) executes inside a Cluster.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "runtime/comm.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/machine.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace pgxd::rt {

struct ClusterConfig {
  std::size_t machines = 8;
  unsigned threads_per_machine = 32;  // Table I: 2 sockets x 8 cores, 32 HW threads used
  net::NetConfig net{};
  CostModel cost{};
  std::uint64_t seed = 0x5eed;
  // Ack/retry/backoff delivery (off by default: the clean path is
  // byte-identical to a Comm without the reliable layer).
  ReliableConfig reliable{};
  // Permit messages left in mailboxes at the end of a run. Only legitimate
  // for engines that tolerate fabric-level duplicates at the application
  // layer (trailing duplicate copies can arrive after the receive loops
  // are done); everything else should drain every mailbox.
  bool allow_undrained = false;
};

template <typename Payload>
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg)
      : cfg_(cfg), fabric_(sim_, cfg.machines, cfg.net),
        comm_(sim_, fabric_, cfg.reliable) {
    PGXD_CHECK(cfg.machines >= 1);
    machines_.reserve(cfg.machines);
    for (std::size_t r = 0; r < cfg.machines; ++r)
      machines_.push_back(std::make_unique<Machine>(
          sim_, cfg_.cost, r, cfg.threads_per_machine, cfg.seed));
  }

  const ClusterConfig& config() const { return cfg_; }
  sim::Simulator& simulator() { return sim_; }
  net::Fabric& fabric() { return fabric_; }
  const net::Fabric& fabric() const { return fabric_; }
  Comm<Payload>& comm() { return comm_; }
  const Comm<Payload>& comm() const { return comm_; }
  Machine& machine(std::size_t rank) { return *machines_[rank]; }
  std::size_t size() const { return machines_.size(); }

  // Telemetry export for one rank: its NIC counters plus the comm layer's
  // protocol counters. Per-rank registries merged across the cluster yield
  // fabric-wide totals.
  void export_metrics(obs::MetricsRegistry& reg, std::size_t rank) const {
    fabric_.export_metrics(reg, rank);
    if (rank == 0) comm_.export_metrics(reg);  // cluster-wide, count once
  }

  // Spawns factory(machine) for every rank and runs the simulation to
  // quiescence. Returns the elapsed simulated time of this run.
  sim::SimTime run(
      const std::function<sim::Task<void>(Machine&)>& factory) {
    const sim::SimTime start = sim_.now();
    for (auto& m : machines_) sim_.spawn(factory(*m));
    sim_.run();
    if (!sim_.quiescent()) {
      const std::string diag =
          "cluster run ended with blocked machine processes (deadlock: a "
          "recv without a matching send, or the fabric lost a message?); "
          "blocked receives:" +
          comm_.blocked_report();
      PGXD_CHECK_MSG(false, diag.c_str());
    }
    if (!cfg_.allow_undrained && comm_.total_pending() > 0) {
      const std::string diag =
          "cluster run ended with undrained mailboxes (stray messages "
          "nobody received):" +
          comm_.stray_report();
      PGXD_CHECK_MSG(false, diag.c_str());
    }
    return sim_.now() - start;
  }

 private:
  ClusterConfig cfg_;
  sim::Simulator sim_;
  net::Fabric fabric_;
  Comm<Payload> comm_;
  std::vector<std::unique_ptr<Machine>> machines_;
};

}  // namespace pgxd::rt
