// Data-manager request buffers (Sec. III "Data Manager").
//
// PGX.D accumulates small remote writes into fixed-size request buffers
// (256 KB by default), flushing a buffer when it fills or when the worker
// thread finishes its scheduled tasks. The sorting method inherits this:
// the data exchange streams each outgoing range as a sequence of
// buffer-sized messages, which is what lets receivers start merging /
// placing data while senders are still sending.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace pgxd::rt {

inline constexpr std::uint64_t kDefaultBufferBytes = 256 * 1024;

template <typename T>
class BufferedWriter {
 public:
  // `emit(dst, elements)` is called with each full (or flushed) buffer.
  using Emit = std::function<void(std::size_t dst, std::vector<T> elements)>;

  BufferedWriter(std::size_t destinations, std::uint64_t buffer_bytes, Emit emit)
      : capacity_elems_(std::max<std::uint64_t>(1, buffer_bytes / sizeof(T))),
        buffers_(destinations), emit_(std::move(emit)) {
    PGXD_CHECK(emit_ != nullptr);
  }

  std::uint64_t capacity_elements() const { return capacity_elems_; }

  // Appends elements destined for `dst`, emitting full buffers as they fill.
  void write(std::size_t dst, std::span<const T> elements) {
    PGXD_CHECK(dst < buffers_.size());
    auto& buf = buffers_[dst];
    std::size_t offset = 0;
    while (offset < elements.size()) {
      const std::size_t room = capacity_elems_ - buf.size();
      const std::size_t take = std::min(room, elements.size() - offset);
      buf.insert(buf.end(), elements.begin() + offset,
                 elements.begin() + offset + take);
      offset += take;
      if (buf.size() == capacity_elems_) flush(dst);
    }
  }

  void write_one(std::size_t dst, const T& element) {
    write(dst, std::span<const T>(&element, 1));
  }

  // Sends whatever is pending for `dst` (no-op when empty).
  void flush(std::size_t dst) {
    PGXD_CHECK(dst < buffers_.size());
    auto& buf = buffers_[dst];
    if (buf.empty()) return;
    std::vector<T> out;
    out.swap(buf);
    buf.reserve(capacity_elems_);
    ++flushes_;
    emit_(dst, std::move(out));
  }

  // "…or the worker thread has completed all its scheduled tasks."
  void flush_all() {
    for (std::size_t d = 0; d < buffers_.size(); ++d) flush(d);
  }

  std::size_t pending(std::size_t dst) const { return buffers_[dst].size(); }
  std::uint64_t flushes() const { return flushes_; }

 private:
  std::uint64_t capacity_elems_;
  std::vector<std::vector<T>> buffers_;
  Emit emit_;
  std::uint64_t flushes_ = 0;
};

}  // namespace pgxd::rt
