// Communication manager — the runtime's message layer over the simulated
// fabric, mirroring PGX.D's communication manager (Sec. III).
//
// Semantics the sorting algorithm relies on:
//   * post() is asynchronous: the sender keeps computing while the transfer
//     proceeds as its own simulation process ("reading/writing data from/to
//     the remote processors asynchronously").
//   * Per (src, dst) message order is FIFO (TX and RX ports are FIFO and
//     fabric latency is constant).
//   * recv(rank, tag) waits only for the next message of that tag — there
//     is no global barrier hidden in the receive path.
//
// The payload type is a template parameter; each engine (the PGX.D sort,
// the Spark baseline, the comparator baselines) instantiates Comm with its
// own message variant.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace pgxd::rt {

// NOTE: every message/payload type in this codebase carries user-declared
// constructors instead of being a plain aggregate. This is load-bearing:
// GCC 12 miscompiles aggregate-initialized temporaries that live across a
// co_await suspension (the temporary and its moved-to frame copy end up
// sharing ownership — double free). A user-declared constructor routes the
// temporary through normal init paths, which are handled correctly. See
// tests/runtime_test.cpp: Comm.PrvaluePayloadRegression.
template <typename Payload>
struct Message {
  std::size_t src = 0;
  int tag = 0;
  std::uint64_t bytes = 0;  // modeled wire size
  Payload payload{};

  Message() = default;
  Message(std::size_t src_in, int tag_in, std::uint64_t bytes_in, Payload p)
      : src(src_in), tag(tag_in), bytes(bytes_in), payload(std::move(p)) {}
};

template <typename Payload>
class Comm {
 public:
  using Msg = Message<Payload>;

  Comm(sim::Simulator& sim, net::Fabric& fabric)
      : sim_(sim), fabric_(fabric), machines_(fabric.machines()),
        barrier_(sim, fabric.machines()), mailboxes_(fabric.machines()) {}

  std::size_t machines() const { return machines_; }
  sim::Simulator& simulator() { return sim_; }
  net::Fabric& fabric() { return fabric_; }

  // Asynchronous send: returns immediately; the payload is delivered to
  // dst's mailbox when the simulated transfer completes. Local (src == dst)
  // posts deliver at the current instant without touching the fabric.
  void post(std::size_t src, std::size_t dst, int tag, Payload payload,
            std::uint64_t bytes) {
    PGXD_CHECK(src < machines_ && dst < machines_);
    Msg msg{src, tag, bytes, std::move(payload)};
    if (src == dst) {
      mailbox(dst, tag).send(std::move(msg));
      return;
    }
    sim_.spawn(deliver(src, dst, tag, std::move(msg)));
  }

  // Blocking send: completes when the payload has been delivered.
  //
  // Deliberately a non-coroutine wrapper: GCC 12 miscompiles *prvalue*
  // arguments bound to coroutine by-value parameters (the temporary and the
  // frame copy end up sharing ownership — double free). Materializing the
  // argument as this function's named parameter and forwarding an xvalue
  // into the coroutine sidesteps that; see tests/sim_test.cpp's
  // PrvaluePayloadRegression.
  sim::Task<void> send(std::size_t src, std::size_t dst, int tag,
                       Payload payload, std::uint64_t bytes) {
    return send_impl(src, dst, tag, std::move(payload), bytes);
  }

  // Next message for (rank, tag); FIFO within the tag.
  auto recv(std::size_t rank, int tag) {
    PGXD_CHECK(rank < machines_);
    return mailbox(rank, tag).recv();
  }

  // Receives `count` messages of `tag`, in arrival order.
  sim::Task<std::vector<Msg>> recv_n(std::size_t rank, int tag,
                                     std::size_t count) {
    std::vector<Msg> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(co_await mailbox(rank, tag).recv());
    co_return out;
  }

  // Full-cluster barrier (used between paper steps where required, and
  // heavily by the Spark baseline's stage boundaries).
  auto barrier() { return barrier_.arrive(); }

  std::size_t pending(std::size_t rank, int tag) {
    return mailbox(rank, tag).size();
  }

 private:
  sim::Task<void> send_impl(std::size_t src, std::size_t dst, int tag,
                            Payload payload, std::uint64_t bytes) {
    PGXD_CHECK(src < machines_ && dst < machines_);
    Msg msg{src, tag, bytes, std::move(payload)};
    if (src != dst) co_await fabric_.transfer(src, dst, bytes);
    mailbox(dst, tag).send(std::move(msg));
  }

  // Only ever invoked with xvalue `msg` (see send() for why).
  sim::Task<void> deliver(std::size_t src, std::size_t dst, int tag, Msg msg) {
    co_await fabric_.transfer(src, dst, msg.bytes);
    mailbox(dst, tag).send(std::move(msg));
  }

  sim::Channel<Msg>& mailbox(std::size_t rank, int tag) {
    auto& slot = mailboxes_[rank][tag];
    if (!slot) slot = std::make_unique<sim::Channel<Msg>>(sim_);
    return *slot;
  }

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  std::size_t machines_;
  sim::Barrier barrier_;
  std::vector<std::map<int, std::unique_ptr<sim::Channel<Msg>>>> mailboxes_;
};

}  // namespace pgxd::rt
