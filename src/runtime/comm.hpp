// Communication manager — the runtime's message layer over the simulated
// fabric, mirroring PGX.D's communication manager (Sec. III).
//
// Semantics the sorting algorithm relies on:
//   * post() is asynchronous: the sender keeps computing while the transfer
//     proceeds as its own simulation process ("reading/writing data from/to
//     the remote processors asynchronously").
//   * In the default (unreliable) mode, per (src, dst) message order is
//     FIFO (TX and RX ports are FIFO and fabric latency is constant).
//   * recv(rank, tag) waits only for the next message of that tag — there
//     is no global barrier hidden in the receive path.
//
// Reliable mode (ReliableConfig::enabled) layers an ack/retry/backoff
// protocol on top of a faulty fabric (net::FaultConfig):
//   * every remote message is stamped with a per-(src,dst) sequence number;
//   * the receiver acks every arriving data frame (including duplicates —
//     a duplicate usually means the previous ack was lost) and suppresses
//     redelivery through a per-pair dedup window, so the mailbox sees each
//     message exactly once;
//   * the sender retransmits on an RTO timer with capped exponential
//     backoff until acked (sim::Timeout — the ack handler cancels the
//     pending timer, so a completed message leaves no stray clock events);
//   * a message that exhausts its retry budget aborts the run loudly.
// Retransmission breaks per-pair FIFO ordering — engines running over a
// lossy fabric must tolerate reordering (the sort's data chunks carry
// explicit offsets for exactly this reason).
//
// The payload type is a template parameter; each engine (the PGX.D sort,
// the Spark baseline, the comparator baselines) instantiates Comm with its
// own message variant.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "net/frame.hpp"
#include "runtime/errors.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/timeout.hpp"
#include "sim/trace.hpp"
#include "sim/wait_graph.hpp"

namespace pgxd::rt {

// NOTE: every message/payload type in this codebase carries user-declared
// constructors instead of being a plain aggregate. This is load-bearing:
// GCC 12 miscompiles aggregate-initialized temporaries that live across a
// co_await suspension (the temporary and its moved-to frame copy end up
// sharing ownership — double free). A user-declared constructor routes the
// temporary through normal init paths, which are handled correctly. See
// tests/runtime_test.cpp: Comm.PrvaluePayloadRegression.
template <typename Payload>
struct Message {
  std::size_t src = 0;
  int tag = 0;
  std::uint64_t bytes = 0;  // modeled wire size
  // Trace context: sender-assigned span id + transmission attempt, stamped
  // by Comm on every remote message (local loopbacks stay unstamped).
  net::FrameHeader hdr{};
  Payload payload{};

  Message() = default;
  Message(std::size_t src_in, int tag_in, std::uint64_t bytes_in, Payload p)
      : src(src_in), tag(tag_in), bytes(bytes_in), payload(std::move(p)) {}
};

// Reliable-delivery protocol parameters.
struct ReliableConfig {
  bool enabled = false;
  // First retransmission timeout; doubles per attempt up to max_rto.
  sim::SimTime initial_rto = 1 * sim::kMillisecond;
  sim::SimTime max_rto = 20 * sim::kMillisecond;
  // Transmissions (first + retries) before the run aborts.
  int max_attempts = 40;
  // Modeled wire size of an ack frame.
  std::uint64_t ack_wire_bytes = 16;
  // Each armed RTO is stretched by uniform [0, backoff_jitter * rto),
  // drawn from a dedicated seeded stream. Without jitter, the doubling
  // backoff phase-locks with periodic fault windows (every retry of a
  // message can land inside the same blackout, forever); with it, retries
  // walk out of the window. Deterministic: same seed, same jitter.
  double backoff_jitter = 0.5;
  std::uint64_t seed = 0xac4;
  // Crash tolerance: when true, a message that exhausts its retry budget —
  // or whose destination the failure detector suspects dead — gives up
  // with a PeerUnreachable outcome (awaited sends throw
  // PeerUnreachableError, posts drop silently) instead of aborting the
  // whole run, and the destination is marked unreachable so later sends
  // fail at the source without burning a retry ladder each. Off by
  // default: on a merely-lossy fabric, budget exhaustion is a
  // configuration bug and should stay loud.
  bool fail_fast = false;
};

struct ReliableStats {
  std::uint64_t frames_sent = 0;  // first transmissions
  std::uint64_t retransmits = 0;
  std::uint64_t retransmitted_bytes = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;  // ack frames that survived the fabric
  std::uint64_t duplicates_suppressed = 0;  // receiver-side dedup hits
  // Fail-fast outcomes: sends abandoned because the destination exhausted
  // its retry budget, was suspected dead, or was already marked
  // unreachable (counted once per abandoned message).
  std::uint64_t peer_unreachable = 0;
};

template <typename Payload>
class Comm {
 public:
  using Msg = Message<Payload>;

  Comm(sim::Simulator& sim, net::Fabric& fabric, ReliableConfig rcfg = {})
      : sim_(sim), fabric_(fabric), machines_(fabric.machines()), rcfg_(rcfg),
        barrier_(sim, fabric.machines()), mailboxes_(fabric.machines()),
        inflight_(machines_ * machines_), next_seq_(machines_ * machines_, 0),
        dedup_(machines_ * machines_), unreachable_(fabric.machines(), 0),
        inflight_to_(fabric.machines()), at_barrier_(fabric.machines(), 0) {
    PGXD_CHECK(rcfg_.initial_rto > 0 && rcfg_.max_rto >= rcfg_.initial_rto);
    PGXD_CHECK(rcfg_.max_attempts >= 1);
    PGXD_CHECK(rcfg_.backoff_jitter >= 0.0);
    backoff_rng_ = Rng(rcfg_.seed);
  }

  std::size_t machines() const { return machines_; }
  sim::Simulator& simulator() { return sim_; }
  net::Fabric& fabric() { return fabric_; }
  const net::Fabric& fabric() const { return fabric_; }
  const ReliableConfig& reliable_config() const { return rcfg_; }
  const ReliableStats& reliable_stats() const { return rstats_; }

  // Telemetry export: the reliable-delivery protocol counters as
  // comm.reliable.* (zeros when the reliable layer is off — the schema
  // stays stable either way). Comm-wide, not per-rank: the ack/retry state
  // machine is shared across the cluster's pairs.
  void export_metrics(obs::MetricsRegistry& reg) const {
    reg.counter("comm.reliable.frames_sent").inc(rstats_.frames_sent);
    reg.counter("comm.reliable.retransmits").inc(rstats_.retransmits);
    reg.counter("comm.reliable.retransmitted_bytes")
        .inc(rstats_.retransmitted_bytes);
    reg.counter("comm.reliable.acks_sent").inc(rstats_.acks_sent);
    reg.counter("comm.reliable.acks_received").inc(rstats_.acks_received);
    reg.counter("comm.reliable.duplicates_suppressed")
        .inc(rstats_.duplicates_suppressed);
    reg.counter("comm.reliable.peer_unreachable").inc(rstats_.peer_unreachable);
  }

  // Failure-detector integration: the hook answers "does `observer`
  // currently suspect `peer` crashed?". Consulted by fail-fast retransmit
  // loops so a send to a suspected-dead peer gives up at the next retry
  // instead of riding out the whole budget.
  void set_suspicion_hook(
      std::function<bool(std::size_t, std::size_t)> hook) {
    suspects_ = std::move(hook);
  }

  // Causal tracing: when a trace is installed, every physical frame that
  // lands on a receiver (data frames, retransmitted and duplicated copies,
  // ack frames) records a sim::Trace::Flow edge carrying the sender's span
  // id. nullptr detaches; recording costs one branch when detached.
  void set_trace(sim::Trace* trace) { trace_ = trace; }

  // Deadlock analysis: when a wait-for graph is attached, every blocking
  // recv registers a mailbox wait edge, barrier(rank) registers a barrier
  // wait edge plus the not-yet-arrived hold set, and the graph's
  // satisfiability probe is wired to this comm's live message accounting
  // (queued + handed + in-flight toward a mailbox). nullptr detaches.
  void set_wait_graph(sim::WaitGraph* graph) {
    graph_ = graph;
    if (graph_ == nullptr) return;
    graph_->set_satisfiable_probe([this](const sim::WaitResource& res) {
      switch (res.kind) {
        case sim::WaitResource::Kind::kMailbox:
          return unconsumed(static_cast<std::size_t>(res.a),
                            static_cast<int>(static_cast<long long>(res.b))) >
                 0;
        case sim::WaitResource::Kind::kBarrier:
          // A released-but-not-yet-resumed waiter's edge is about to clear.
          return barrier_release_pending_ > 0;
        default:
          return false;
      }
    });
    // Until a rank arrives at the barrier it is what the barrier waits for.
    for (std::size_t r = 0; r < machines_; ++r)
      graph_->add_hold(sim::WaitResource::barrier(), r);
  }
  sim::WaitGraph* wait_graph() { return graph_; }

  // Messages that can still satisfy a blocked recv(rank, tag): queued in
  // the mailbox, handed to a woken-but-unresumed receiver, or in flight
  // from any sender (posted but not yet landed, lost, or abandoned).
  std::size_t unconsumed(std::size_t rank, int tag) {
    PGXD_CHECK(rank < machines_);
    auto& ch = mailbox(rank, tag);
    std::size_t n = ch.size() + ch.handed_pending();
    auto it = inflight_to_[rank].find(tag);
    if (it != inflight_to_[rank].end())
      n += static_cast<std::size_t>(it->second);
    return n;
  }

  // Raises RankCrashedError when `rank` is crash-stopped right now — the
  // DES analogue of the process dying mid-instruction. Every comm
  // operation a rank initiates passes through this, so a crashed rank's
  // program unwinds at its next communication instead of computing into
  // the void.
  void throw_if_crashed(std::size_t rank) const {
    if (fabric_.down(rank, sim_.now()))
      throw RankCrashedError(rank, sim_.now());
  }

  bool is_unreachable(std::size_t dst) const {
    return unreachable_[dst] != 0;
  }
  bool any_unreachable() const {
    return std::any_of(unreachable_.begin(), unreachable_.end(),
                       [](char u) { return u != 0; });
  }

  // Names peers marked unreachable by fail-fast sends, for Cluster::run's
  // end-of-run diagnostics.
  std::string unreachable_report() const {
    std::string out;
    for (std::size_t dst = 0; dst < unreachable_.size(); ++dst)
      if (unreachable_[dst] != 0) out += " rank " + std::to_string(dst);
    return out;
  }

  // Asynchronous send: returns immediately; the payload is delivered to
  // dst's mailbox when the simulated transfer completes (in reliable mode:
  // when the first surviving copy arrives). Local (src == dst) posts
  // deliver at the current instant without touching the fabric.
  void post(std::size_t src, std::size_t dst, int tag, Payload payload,
            std::uint64_t bytes) {
    PGXD_CHECK(src < machines_ && dst < machines_);
    throw_if_crashed(src);
    Msg msg{src, tag, bytes, std::move(payload)};
    if (src == dst) {
      mailbox(dst, tag).send(std::move(msg));
      return;
    }
    msg.hdr.span_id = ++next_span_;
    if (rcfg_.enabled) {
      if (rcfg_.fail_fast && unreachable_[dst] != 0) {
        // The destination is already known dead: drop at the source
        // instead of burning a full retry ladder per message.
        ++rstats_.peer_unreachable;
        return;
      }
      note_inflight(dst, tag);
      sim_.spawn(post_send_proc(src, dst, tag,
                                enqueue(src, dst, std::move(msg), bytes)));
      return;
    }
    note_inflight(dst, tag);
    sim_.spawn(deliver(src, dst, tag, std::move(msg)));
  }

  // Blocking send: completes when the payload has been delivered (reliable
  // mode: when the delivery has been acknowledged).
  //
  // Deliberately a non-coroutine wrapper: GCC 12 miscompiles *prvalue*
  // arguments bound to coroutine by-value parameters (the temporary and the
  // frame copy end up sharing ownership — double free). Materializing the
  // argument as this function's named parameter and forwarding an xvalue
  // into the coroutine sidesteps that; see tests/sim_test.cpp's
  // PrvaluePayloadRegression.
  sim::Task<void> send(std::size_t src, std::size_t dst, int tag,
                       Payload payload, std::uint64_t bytes) {
    return send_impl(src, dst, tag, std::move(payload), bytes);
  }

  // Blocking receive registering a wait edge for the duration of the
  // suspension (when a wait-for graph is attached). Wrapping the channel
  // awaiter keeps sync.hpp graph-free; the edge brackets exactly the
  // suspended window — an immediately-ready receive registers nothing.
  struct [[nodiscard]] TrackedRecvAwaiter {
    typename sim::Channel<Msg>::RecvAwaiter inner;
    sim::WaitGraph* graph;
    std::size_t rank;
    int tag;
    std::size_t token = sim::WaitGraph::kNoToken;

    bool await_ready() const noexcept { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) {
      inner.await_suspend(h);
      // Registered last: the detection pass triggered by begin_wait must
      // observe the channel's waiter bookkeeping already in place.
      if (graph != nullptr)
        token = graph->begin_wait(rank, sim::WaitResource::mailbox(rank, tag));
    }
    Msg await_resume() {
      if (token != sim::WaitGraph::kNoToken) graph->end_wait(token);
      return inner.await_resume();
    }
  };

  // Next message for (rank, tag); FIFO within the tag.
  TrackedRecvAwaiter recv(std::size_t rank, int tag) {
    PGXD_CHECK(rank < machines_);
    return TrackedRecvAwaiter{mailbox(rank, tag).recv(), graph_, rank, tag};
  }

  // Deadline-bounded receive: resolves to the next message of `tag`, or to
  // std::nullopt if none arrived by the absolute sim-time `deadline`. A
  // receive satisfied before its deadline cancels the timer without
  // advancing the clock, so polling loops built on this are timing-neutral
  // on the fast path.
  auto recv_until(std::size_t rank, int tag, sim::SimTime deadline) {
    PGXD_CHECK(rank < machines_);
    return mailbox(rank, tag).recv_until(deadline);
  }

  // Non-blocking receive: the next queued message of `tag`, if any.
  std::optional<Msg> try_recv(std::size_t rank, int tag) {
    PGXD_CHECK(rank < machines_);
    return mailbox(rank, tag).try_recv();
  }

  // Receives `count` messages of `tag`, in arrival order.
  sim::Task<std::vector<Msg>> recv_n(std::size_t rank, int tag,
                                     std::size_t count) {
    std::vector<Msg> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(co_await recv(rank, tag));
    co_return out;
  }

  // Barrier arrival with wait-graph bookkeeping: a suspended arriver trades
  // its "not yet arrived" hold for a barrier wait edge; the last arriver
  // re-arms every rank's hold for the next round and marks the released
  // waiters satisfiable until each has actually resumed (the barrier
  // analogue of Channel's handed-value window).
  struct [[nodiscard]] TrackedBarrierAwaiter {
    Comm& comm;
    std::size_t rank;
    std::size_t token = sim::WaitGraph::kNoToken;
    bool suspended = false;

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      comm.note_barrier_arrival(rank);
      auto inner = comm.barrier_.arrive();
      if (!inner.await_suspend(h)) {
        // Last arriver: the round releases and this rank keeps running.
        comm.note_barrier_release();
        return false;
      }
      suspended = true;
      // Registered last, so a detection pass triggered by begin_wait sees
      // the barrier's arrival bookkeeping already in place.
      if (comm.graph_ != nullptr)
        token = comm.graph_->begin_wait(rank, sim::WaitResource::barrier());
      return true;
    }
    void await_resume() {
      if (token != sim::WaitGraph::kNoToken) comm.graph_->end_wait(token);
      if (suspended) {
        PGXD_DCHECK(comm.barrier_release_pending_ > 0);
        --comm.barrier_release_pending_;
      }
    }
  };

  // Full-cluster barrier (used between paper steps where required, and
  // heavily by the Spark baseline's stage boundaries). The rank names the
  // arriver for deadlock diagnostics.
  TrackedBarrierAwaiter barrier(std::size_t rank) {
    PGXD_CHECK(rank < machines_);
    return TrackedBarrierAwaiter{*this, rank};
  }

  std::size_t pending(std::size_t rank, int tag) {
    return mailbox(rank, tag).size();
  }

  // Messages delivered to `rank` but not yet received, across all tags —
  // the sampler's per-rank mailbox-depth probe.
  std::size_t pending_total(std::size_t rank) const {
    PGXD_CHECK(rank < machines_);
    std::size_t n = 0;
    for (const auto& [tag, ch] : mailboxes_[rank]) n += ch->size();
    return n;
  }

  // Messages delivered but never received, across all ranks and tags. A
  // clean engine drains every mailbox; leftovers hide protocol bugs.
  std::size_t total_pending() const {
    std::size_t n = 0;
    for (const auto& boxes : mailboxes_)
      for (const auto& [tag, ch] : boxes) n += ch->size();
    return n;
  }

  // Names the receives still blocked after a run — which ranks are stuck
  // waiting on which tags — for the cluster's deadlock diagnostics.
  std::string blocked_report() const {
    std::string out;
    for (std::size_t rank = 0; rank < mailboxes_.size(); ++rank)
      for (const auto& [tag, ch] : mailboxes_[rank])
        if (ch->waiting() > 0)
          out += " rank " + std::to_string(rank) + " waits on tag " +
                 std::to_string(tag) + " (" + std::to_string(ch->waiting()) +
                 " recv)";
    if (barrier_.waiting() > 0) {
      std::string ranks;
      for (std::size_t r = 0; r < at_barrier_.size(); ++r)
        if (at_barrier_[r] != 0) ranks += " " + std::to_string(r);
      out += " [" + std::to_string(barrier_.waiting()) +
             " rank(s) stuck at the barrier" +
             (ranks.empty() ? std::string{} : ":" + ranks) + "]";
    }
    if (out.empty()) out = " (none — processes are blocked elsewhere)";
    return out;
  }

  // Between-attempts reset for the recovery supervisor: discards every
  // undelivered mailbox message and forgets unreachable markings, so an
  // aborted attempt's stragglers cannot contaminate the re-run. Only valid
  // at quiescence (no receiver may still be waiting).
  void drain_mailboxes() {
    for (auto& boxes : mailboxes_)
      for (auto& [tag, ch] : boxes) {
        PGXD_CHECK_MSG(ch->waiting() == 0,
                       "drain_mailboxes with a receiver still blocked");
        ch->clear();
      }
    std::fill(unreachable_.begin(), unreachable_.end(), char{0});
  }

  // Names mailboxes holding undelivered messages after a run.
  std::string stray_report() const {
    std::string out;
    for (std::size_t rank = 0; rank < mailboxes_.size(); ++rank)
      for (const auto& [tag, ch] : mailboxes_[rank])
        if (!ch->empty())
          out += " rank " + std::to_string(rank) + " tag " +
                 std::to_string(tag) + " (" + std::to_string(ch->size()) +
                 " msg)";
    return out;
  }

 private:
  // Sender-side record of an unacknowledged message. The payload stays
  // here until the first accepted delivery (the receiver dedups, so
  // retransmits never need it again — only the modeled byte count rides
  // subsequent attempts).
  struct InFlight {
    Msg msg;
    std::uint64_t bytes = 0;
    bool acked = false;
    bool delivered = false;  // payload handed to the receiver's mailbox
    sim::Timeout* timer = nullptr;  // current attempt's RTO, cancellable

    InFlight(Msg m, std::uint64_t b) : msg(std::move(m)), bytes(b) {}
  };

  // Receiver-side exactly-once filter: per (src,dst) pair, a watermark of
  // contiguously-seen sequence numbers plus the out-of-order set above it
  // (compacted as the gap fills), so memory stays proportional to the
  // reorder window, not the message count.
  struct DedupWindow {
    std::uint64_t next_expected = 0;
    std::set<std::uint64_t> above;

    bool accept(std::uint64_t seq) {
      if (seq < next_expected) return false;
      if (!above.insert(seq).second) return false;
      auto it = above.begin();
      while (it != above.end() && *it == next_expected) {
        it = above.erase(it);
        ++next_expected;
      }
      return true;
    }
  };

  std::size_t pair_index(std::size_t src, std::size_t dst) const {
    return src * machines_ + dst;
  }

  std::uint64_t enqueue(std::size_t src, std::size_t dst, Msg msg,
                        std::uint64_t bytes) {
    const std::size_t pi = pair_index(src, dst);
    const std::uint64_t seq = next_seq_[pi]++;
    inflight_[pi].emplace(seq, std::make_shared<InFlight>(std::move(msg), bytes));
    return seq;
  }

  sim::Task<void> send_impl(std::size_t src, std::size_t dst, int tag,
                            Payload payload, std::uint64_t bytes) {
    PGXD_CHECK(src < machines_ && dst < machines_);
    throw_if_crashed(src);
    Msg msg{src, tag, bytes, std::move(payload)};
    if (src == dst) {
      mailbox(dst, tag).send(std::move(msg));
      co_return;
    }
    msg.hdr.span_id = ++next_span_;
    if (rcfg_.enabled) {
      if (rcfg_.fail_fast && unreachable_[dst] != 0) {
        ++rstats_.peer_unreachable;
        throw PeerUnreachableError(src, dst);
      }
      note_inflight(dst, tag);
      const bool acked = co_await reliable_send_proc(
          src, dst, tag, enqueue(src, dst, std::move(msg), bytes));
      if (!acked) {
        // Either the sender itself died mid-protocol or the destination is
        // unreachable — surface whichever the awaiting program can act on.
        throw_if_crashed(src);
        throw PeerUnreachableError(src, dst);
      }
      co_return;
    }
    note_inflight(dst, tag);
    co_await deliver(src, dst, tag, std::move(msg));
  }

  // Void adapter so post() can spawn the bool-returning retransmit loop as
  // a root process (fire-and-forget posts ignore the outcome; the
  // unreachable marking and stats carry the signal instead).
  sim::Task<void> post_send_proc(std::size_t src, std::size_t dst, int tag,
                                 std::uint64_t seq) {
    (void)co_await reliable_send_proc(src, dst, tag, seq);
  }

  // Only ever invoked with xvalue `msg` (see send() for why).
  //
  // Unreliable mode maps fault outcomes straight onto the mailbox: a
  // duplicated message arrives twice (engines that opt into a duplicating
  // fabric without reliable delivery must dedup at the application layer)
  // and a dropped message is simply lost — the resulting blocked receive
  // surfaces in Cluster::run's quiescence diagnostics.
  sim::Task<void> deliver(std::size_t src, std::size_t dst, int tag, Msg msg) {
    const sim::SimTime sent_at = sim_.now();
    const net::Delivery d = co_await fabric_.transfer(src, dst, msg.bytes);
    if (!d.delivered()) {
      note_settled(dst, tag);  // lost on the fabric; nothing will arrive
      co_return;
    }
    for (int c = 1; c < d.copies; ++c) {
      Msg copy = msg;
      record_flow_edge(msg.hdr.span_id, src, dst, tag,
                       sim::Trace::FlowKind::kData, msg.bytes, sent_at,
                       /*retransmit=*/false, /*duplicate=*/true);
      mailbox(dst, tag).send(std::move(copy));
    }
    record_flow_edge(msg.hdr.span_id, src, dst, tag,
                     sim::Trace::FlowKind::kData, msg.bytes, sent_at,
                     /*retransmit=*/false, /*duplicate=*/false);
    mailbox(dst, tag).send(std::move(msg));
    note_settled(dst, tag);  // landed: the mailbox now accounts for it
  }

  // The ack/retry state machine for one message: transmit, arm the RTO,
  // retransmit with doubled (capped) RTO until the ack arrives. The ack
  // handler cancels the armed timer, so the loop wakes at the ack instant
  // and the cancelled deadline never advances the clock. Returns true when
  // the message was acked; false when it was abandoned — because the
  // sender itself crash-stopped mid-protocol (the frame dies with the
  // host) or, in fail-fast mode, because the destination exhausted the
  // retry budget or is suspected dead. Without fail_fast, budget
  // exhaustion aborts the run loudly.
  sim::Task<bool> reliable_send_proc(std::size_t src, std::size_t dst, int tag,
                                     std::uint64_t seq) {
    auto& slot = inflight_[pair_index(src, dst)];
    std::shared_ptr<InFlight> rec = slot.at(seq);
    sim::SimTime rto = rcfg_.initial_rto;
    for (int attempt = 0;; ++attempt) {
      if (fabric_.down(src, sim_.now())) {
        if (!rec->delivered) note_settled(dst, tag);
        slot.erase(seq);
        co_return false;
      }
      const bool give_up = rcfg_.fail_fast && attempt > 0 &&
                           (unreachable_[dst] != 0 || suspected(src, dst));
      if (attempt >= rcfg_.max_attempts || give_up) {
        PGXD_CHECK_MSG(rcfg_.fail_fast,
                       "reliable delivery exhausted its retry budget "
                       "(fabric too lossy for max_attempts/max_rto?)");
        ++rstats_.peer_unreachable;
        unreachable_[dst] = 1;
        if (!rec->delivered) note_settled(dst, tag);
        slot.erase(seq);
        co_return false;
      }
      if (attempt == 0) {
        ++rstats_.frames_sent;
      } else {
        ++rstats_.retransmits;
        rstats_.retransmitted_bytes += rec->bytes;
      }
      // The header's span id is stable across attempts (move of the payload
      // leaves the scalar header intact); the attempt rides the frame so
      // receivers can tag retransmit edges without sender state.
      rec->msg.hdr.attempt =
          static_cast<std::uint16_t>(std::min(attempt, 0xffff));
      const std::uint64_t span = rec->msg.hdr.span_id;
      const sim::SimTime sent_at = sim_.now();
      const net::Delivery d = co_await fabric_.transfer(src, dst, rec->bytes);
      for (int c = 0; c < d.copies; ++c) {
        const bool accepted = on_data_frame(src, dst, tag, seq, *rec);
        record_flow_edge(span, src, dst, tag, sim::Trace::FlowKind::kData,
                         rec->bytes, sent_at, /*retransmit=*/attempt > 0,
                         /*duplicate=*/!accepted);
      }
      if (!rec->acked) {
        sim::Timeout timer(sim_, jittered(rto));
        rec->timer = &timer;
        co_await timer.wait();
        rec->timer = nullptr;
      }
      if (rec->acked) {
        slot.erase(seq);
        co_return true;
      }
      rto = std::min<sim::SimTime>(rto * 2, rcfg_.max_rto);
    }
  }

  bool suspected(std::size_t observer, std::size_t peer) const {
    return suspects_ && suspects_(observer, peer);
  }

  // Receiver side of a data frame (same address space: invoked directly by
  // the completing transfer). Delivers to the mailbox exactly once per
  // seq; always acks, because a duplicate frame usually means a lost ack.
  // Returns whether this frame was the copy admitted to the mailbox (the
  // caller tags dedup-suppressed copies as duplicate flow edges).
  bool on_data_frame(std::size_t src, std::size_t dst, int tag,
                     std::uint64_t seq, InFlight& rec) {
    const std::uint64_t span = rec.msg.hdr.span_id;
    bool accepted = false;
    if (dedup_[pair_index(src, dst)].accept(seq)) {
      PGXD_CHECK(!rec.delivered);
      rec.delivered = true;
      accepted = true;
      mailbox(dst, tag).send(std::move(rec.msg));
      note_settled(dst, tag);  // landed: the mailbox now accounts for it
    } else {
      ++rstats_.duplicates_suppressed;
    }
    sim_.spawn(ack_proc(dst, src, seq, span));
    return accepted;
  }

  // Ack frame: real (droppable, duplicable) fabric traffic back to the
  // sender. Carries the acked message's span id so the trace can draw the
  // return edge.
  sim::Task<void> ack_proc(std::size_t from, std::size_t to,
                           std::uint64_t seq, std::uint64_t span) {
    ++rstats_.acks_sent;
    const sim::SimTime sent_at = sim_.now();
    const net::Delivery d =
        co_await fabric_.transfer(from, to, rcfg_.ack_wire_bytes);
    if (!d.delivered()) co_return;
    record_flow_edge(span, from, to, /*tag=*/-1, sim::Trace::FlowKind::kAck,
                     rcfg_.ack_wire_bytes, sent_at, /*retransmit=*/false,
                     /*duplicate=*/false);
    on_ack(to, from, seq);
  }

  void on_ack(std::size_t src, std::size_t dst, std::uint64_t seq) {
    ++rstats_.acks_received;
    auto& slot = inflight_[pair_index(src, dst)];
    auto it = slot.find(seq);
    if (it == slot.end()) return;  // duplicate ack for a completed message
    InFlight& rec = *it->second;
    if (rec.acked) return;
    rec.acked = true;
    if (rec.timer != nullptr) rec.timer->cancel();
  }

  // One flow edge per physical frame that landed on a receiver, recorded
  // at the arrival instant. No-op (one branch) when no trace is attached.
  void record_flow_edge(std::uint64_t span, std::size_t src, std::size_t dst,
                        int tag, sim::Trace::FlowKind kind,
                        std::uint64_t bytes, sim::SimTime sent_at,
                        bool retransmit, bool duplicate) {
    if (trace_ == nullptr) return;
    trace_->record_flow(sim::Trace::Flow(span, src, dst, sent_at, sim_.now(),
                                         bytes, tag, kind, retransmit,
                                         duplicate));
  }

  // In-flight accounting for the wait-graph satisfiability probe: one unit
  // per remote message, held from post()/send() until the message lands in
  // the destination mailbox, is lost on the unreliable fabric, or is
  // abandoned by a fail-fast sender. Tracked unconditionally so a graph
  // attached at cluster construction never sees a partial count.
  void note_inflight(std::size_t dst, int tag) { ++inflight_to_[dst][tag]; }
  void note_settled(std::size_t dst, int tag) {
    auto it = inflight_to_[dst].find(tag);
    PGXD_DCHECK(it != inflight_to_[dst].end() && it->second > 0);
    if (it != inflight_to_[dst].end() && --it->second == 0)
      inflight_to_[dst].erase(it);
  }

  void note_barrier_arrival(std::size_t rank) {
    at_barrier_[rank] = 1;
    if (graph_ != nullptr)
      graph_->remove_hold(sim::WaitResource::barrier(), rank);
  }

  // Last arriver of a round: every suspended waiter has been scheduled to
  // resume but still carries its wait edge until it actually runs. Count
  // them satisfiable until then, and re-arm every rank's not-yet-arrived
  // hold for the next round.
  void note_barrier_release() {
    std::size_t arrived = 0;
    for (char a : at_barrier_) arrived += (a != 0) ? 1 : 0;
    PGXD_DCHECK(arrived > 0);
    barrier_release_pending_ += arrived - 1;  // everyone except the releaser
    std::fill(at_barrier_.begin(), at_barrier_.end(), char{0});
    if (graph_ != nullptr)
      for (std::size_t r = 0; r < machines_; ++r)
        graph_->add_hold(sim::WaitResource::barrier(), r);
  }

  sim::SimTime jittered(sim::SimTime rto) {
    const auto span = static_cast<std::uint64_t>(
        static_cast<double>(rto) * rcfg_.backoff_jitter);
    if (span == 0) return rto;
    return rto + static_cast<sim::SimTime>(backoff_rng_.bounded(span + 1));
  }

  sim::Channel<Msg>& mailbox(std::size_t rank, int tag) {
    auto& slot = mailboxes_[rank][tag];
    if (!slot) slot = std::make_unique<sim::Channel<Msg>>(sim_);
    return *slot;
  }

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  std::size_t machines_;
  ReliableConfig rcfg_;
  ReliableStats rstats_;
  sim::Barrier barrier_;
  std::vector<std::map<int, std::unique_ptr<sim::Channel<Msg>>>> mailboxes_;
  // Reliable-mode state, indexed by pair_index(src, dst).
  std::vector<std::map<std::uint64_t, std::shared_ptr<InFlight>>> inflight_;
  std::vector<std::uint64_t> next_seq_;
  std::vector<DedupWindow> dedup_;
  // Destinations given up on by fail-fast sends (reset by drain_mailboxes).
  std::vector<char> unreachable_;
  // Wait-for graph integration (attached by Cluster; null when detached).
  sim::WaitGraph* graph_ = nullptr;
  // Remote messages headed for (dst, tag) that have not yet landed, been
  // lost, or been abandoned — the satisfiability probe's in-flight term.
  std::vector<std::map<int, std::int64_t>> inflight_to_;
  // Ranks currently arrived-and-suspended at the barrier, for deadlock
  // diagnostics naming.
  std::vector<char> at_barrier_;
  // Barrier waiters released but not yet resumed (their wait edges are
  // still registered; the probe treats them as satisfiable).
  std::size_t barrier_release_pending_ = 0;
  std::function<bool(std::size_t, std::size_t)> suspects_;
  Rng backoff_rng_{0};
  // Causal tracing: span-id source (stamped on every remote message even
  // when untraced, so headers are always meaningful) and the optional
  // flow-edge sink.
  std::uint64_t next_span_ = 0;
  sim::Trace* trace_ = nullptr;
};

}  // namespace pgxd::rt
