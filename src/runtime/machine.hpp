// Machine and task-manager abstractions.
//
// A Machine is one simulated processor: `threads` worker threads (Table I:
// 32 per node), a memory tracker, and compute-charging helpers that route
// through the cost model. The task-manager behaviour of PGX.D (worker
// threads grab tasks from a list; parallel regions are chunked) is modeled
// by CostModel::parallel's task-wave accounting.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/memory.hpp"
#include "sim/simulator.hpp"

namespace pgxd::rt {

class Machine {
 public:
  Machine(sim::Simulator& sim, const CostModel& cost, std::size_t rank,
          unsigned threads, std::uint64_t seed)
      : sim_(sim), cost_(cost), rank_(rank), threads_(threads),
        rng_(derive_seed(seed, rank)) {
    PGXD_CHECK(threads >= 1);
  }

  std::size_t rank() const { return rank_; }
  unsigned threads() const { return threads_; }
  Rng& rng() { return rng_; }
  MemoryTracker& memory() { return mem_; }
  const CostModel& cost() const { return cost_; }
  sim::Simulator& simulator() { return sim_; }

  // Serial compute on one worker thread.
  auto compute(sim::SimTime t) { return sim_.delay(t); }

  // Compute a serial cost in parallel across this machine's threads.
  auto compute_parallel(sim::SimTime serial_cost, std::size_t tasks = 0) {
    return sim_.delay(cost_.parallel(serial_cost, threads_, tasks));
  }

  // Paper step (1): local parallel quicksort + Fig. 2 balanced merge.
  auto charge_local_parallel_sort(std::size_t n) {
    return sim_.delay(cost_.local_parallel_sort_time(n, threads_));
  }

  auto charge_balanced_merge(std::size_t n, std::size_t runs) {
    return sim_.delay(cost_.balanced_merge_time(n, runs, threads_));
  }

  auto charge_naive_kway_merge(std::size_t n, std::size_t runs) {
    return sim_.delay(cost_.naive_kway_merge_time(n, runs));
  }

  auto charge_parallel_kway_merge(std::size_t n, std::size_t runs) {
    return sim_.delay(cost_.parallel_kway_merge_time(n, runs, threads_));
  }

  // Step (1) radix path: `passes` counting sweeps per chunk + balanced merge.
  auto charge_local_radix_sort(std::size_t n, unsigned passes) {
    return sim_.delay(cost_.local_radix_sort_time(n, passes, threads_));
  }

  auto charge_copy(std::size_t n) { return sim_.delay(cost_.copy_time(n)); }

  auto charge_binary_search(std::size_t n, std::size_t searches) {
    return sim_.delay(cost_.binary_search_time(n, searches));
  }

 private:
  sim::Simulator& sim_;
  const CostModel& cost_;
  std::size_t rank_;
  unsigned threads_;
  Rng rng_;
  MemoryTracker mem_;
};

}  // namespace pgxd::rt
