// Heartbeat-based crash failure detector.
//
// Every rank runs a detector process that sends a small heartbeat frame to
// every peer once per `interval` (real fabric traffic: heartbeats pay port
// occupancy, can be dropped by fault windows, and die with a crashed
// host). Each delivery refreshes the receiver's per-peer "last heard"
// clock; an observer *suspects* a peer once it has heard nothing for
// longer than `timeout`.
//
// Failure model notes:
//   * Crash-stop is modeled faithfully at the process level: a rank whose
//     machine crash-stops exits its heartbeat loop permanently for the
//     run, even if the machine's ports later restart — the OS rebooted,
//     but the process that was heartbeating is gone. A restarted rank
//     resumes heartbeating only when the detector is restarted (i.e. the
//     next recovery attempt re-admits it).
//   * Suspicion is observer-local and recomputed on demand from simulated
//     time — no shared "dead set" — so detection latency and asymmetric
//     connectivity behave like a real φ-style detector's would.
//   * With timeout >= a few intervals, false positives require the fabric
//     to drop several consecutive heartbeats; the DES makes the tradeoff
//     (interval x timeout vs. detection latency) exactly reproducible.
//
// The watchdog bounds the whole cluster run: heartbeat loops are the only
// perpetual processes in the DES, so a deadlocked program under crash
// faults would otherwise let the simulation spin forever on heartbeats. A
// loop that outlives `watchdog` aborts the run with a named error instead
// of hanging.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/timeout.hpp"

namespace pgxd::rt {

struct DetectorConfig {
  bool enabled = false;
  // Heartbeat period per (sender, peer) pair.
  sim::SimTime interval = 1 * sim::kMillisecond;
  // Silence threshold before an observer suspects a peer. Must be >=
  // interval; several intervals keeps the false-positive rate negligible
  // on a lossy-but-alive fabric.
  sim::SimTime timeout = 5 * sim::kMillisecond;
  // Modeled wire size of one heartbeat frame.
  std::uint64_t heartbeat_wire_bytes = 16;
  // Hard ceiling on how long heartbeat loops may outlive start(); crossing
  // it means the cluster's programs are deadlocked and aborts loudly.
  sim::SimTime watchdog = 30 * sim::kSecond;
};

struct DetectorStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_delivered = 0;
  std::uint64_t suspicions = 0;  // alive -> suspected transitions observed
  std::uint64_t clears = 0;      // suspected -> alive (peer heard again)
};

class FailureDetector {
 public:
  FailureDetector(sim::Simulator& sim, net::Fabric& fabric, DetectorConfig cfg)
      : sim_(sim),
        fabric_(fabric),
        cfg_(cfg),
        p_(fabric.machines()),
        last_heard_(p_ * p_, 0),
        suspected_(p_ * p_, 0),
        timers_(p_, nullptr) {
    PGXD_CHECK_MSG(cfg.interval > 0, "DetectorConfig: interval must be > 0");
    PGXD_CHECK_MSG(cfg.timeout >= cfg.interval,
                   "DetectorConfig: timeout must be >= interval");
    PGXD_CHECK_MSG(cfg.watchdog > cfg.timeout,
                   "DetectorConfig: watchdog must exceed timeout");
  }
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  // Spawns one heartbeat loop per rank and resets all suspicion state
  // (every rank starts presumed alive as of now). Call once per cluster
  // run; request_stop() winds the loops down.
  void start() {
    stopping_ = false;
    started_at_ = sim_.now();
    std::fill(last_heard_.begin(), last_heard_.end(), sim_.now());
    std::fill(suspected_.begin(), suspected_.end(), char{0});
    for (std::size_t r = 0; r < p_; ++r) sim_.spawn(heartbeat_loop(r));
  }

  // Asks every heartbeat loop to exit at its next wakeup and cancels
  // pending interval timers so the simulator can reach quiescence.
  void request_stop() {
    stopping_ = true;
    for (sim::Timeout* t : timers_)
      if (t != nullptr) t->cancel();
  }

  bool stopping() const { return stopping_; }

  // Observer-local suspicion: `observer` has heard nothing from `peer` for
  // longer than the timeout. Transition edges feed the stats counters.
  bool suspects(std::size_t observer, std::size_t peer) const {
    if (observer == peer) return false;
    const std::size_t i = observer * p_ + peer;
    const bool s = sim_.now() - last_heard_[i] > cfg_.timeout;
    if (s && suspected_[i] == 0) {
      suspected_[i] = 1;
      ++stats_.suspicions;
    }
    return s;
  }

  // Count of (observer, peer) pairs currently past the silence threshold.
  // Deliberately side-effect-free (no transition counting), so passive
  // observers — the time-series sampler's suspicion probe — can poll it
  // every tick without perturbing the `detector.suspicions` counter that
  // reports and tests rely on.
  std::size_t suspected_pair_count() const {
    std::size_t n = 0;
    const sim::SimTime now = sim_.now();
    for (std::size_t observer = 0; observer < p_; ++observer)
      for (std::size_t peer = 0; peer < p_; ++peer)
        if (observer != peer &&
            now - last_heard_[observer * p_ + peer] > cfg_.timeout)
          ++n;
    return n;
  }

  // First member of `peers` that `observer` currently suspects, if any.
  std::optional<std::size_t> first_suspected(
      std::size_t observer, const std::vector<std::size_t>& peers) const {
    for (std::size_t peer : peers)
      if (peer != observer && suspects(observer, peer)) return peer;
    return std::nullopt;
  }

  const DetectorStats& stats() const { return stats_; }
  const DetectorConfig& config() const { return cfg_; }

  void export_metrics(obs::MetricsRegistry& reg) const {
    reg.counter("detector.heartbeats_sent").inc(stats_.heartbeats_sent);
    reg.counter("detector.heartbeats_delivered")
        .inc(stats_.heartbeats_delivered);
    reg.counter("detector.suspicions").inc(stats_.suspicions);
    reg.counter("detector.clears").inc(stats_.clears);
  }

 private:
  sim::Task<void> heartbeat_loop(std::size_t rank) {
    while (!stopping_) {
      PGXD_CHECK_MSG(sim_.now() - started_at_ <= cfg_.watchdog,
                     "failure-detector watchdog expired: cluster programs "
                     "still blocked past the watchdog horizon (deadlock "
                     "under crash faults?)");
      // Crash-stop kills the heartbeat *process*: even if the machine's
      // ports restart later, this loop stays dead for the rest of the run.
      if (fabric_.down(rank, sim_.now())) co_return;
      for (std::size_t peer = 0; peer < p_; ++peer) {
        if (peer == rank || stopping_) continue;
        ++stats_.heartbeats_sent;
        const net::Delivery d =
            co_await fabric_.transfer(rank, peer, cfg_.heartbeat_wire_bytes);
        if (d.delivered()) heard(peer, rank);
      }
      if (stopping_) break;
      sim::Timeout tick(sim_, cfg_.interval);
      timers_[rank] = &tick;
      co_await tick.wait();
      timers_[rank] = nullptr;
    }
  }

  void heard(std::size_t observer, std::size_t peer) {
    ++stats_.heartbeats_delivered;
    const std::size_t i = observer * p_ + peer;
    last_heard_[i] = sim_.now();
    if (suspected_[i] != 0) {
      suspected_[i] = 0;
      ++stats_.clears;
    }
  }

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  DetectorConfig cfg_;
  std::size_t p_;
  bool stopping_ = false;
  sim::SimTime started_at_ = 0;
  // last_heard_[observer * p + peer]: when observer last heard peer.
  // Mutable alongside stats_/suspected_ because suspects() is a logically
  // const query that records transition edges for telemetry.
  std::vector<sim::SimTime> last_heard_;
  mutable std::vector<char> suspected_;
  mutable DetectorStats stats_;
  std::vector<sim::Timeout*> timers_;
};

}  // namespace pgxd::rt
