// Compute cost model for simulated machines.
//
// The simulator executes every algorithm on real data but charges virtual
// time for the compute phases through this model, so a 52-machine,
// 32-thread-per-machine run is timeable on one host. Constants default to a
// Xeon E5-2660-class node (the paper's testbed, Table I) and can be
// recalibrated against this host's real kernels (see calibrate()).
//
// All helpers return simulated nanoseconds.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace pgxd::rt {

struct CostModel {
  // Comparison sort: c * n * log2(n). 2 ns/(elem*level) matches a
  // Sandy-Bridge-class Xeon E5-2660 sorting 64-bit keys.
  double sort_ns_per_elem_log = 2.0;
  // Sequential two-way merge / partition scan: c * n.
  double merge_ns_per_elem = 1.6;
  // Bulk copy (memcpy-ish): c * n.
  double copy_ns_per_elem = 0.5;
  // One binary-search probe (dependent cache miss).
  double search_ns_per_probe = 12.0;
  // Spawn+join cost of one parallel task on the task manager.
  double task_overhead_ns = 1500.0;
  // Fraction of linear speedup the in-node parallel phases achieve
  // (memory-bandwidth ceiling across 2 sockets).
  double parallel_efficiency = 0.75;
  // Loser-tree k-way merge: one tournament replay per element, c * log2(k)
  // per element. Slightly cheaper per level than a two-way merge pass
  // because only the tree path is touched, not the data, per level.
  double loser_compare_ns_per_elem_log = 1.2;
  // One LSD radix pass (count + scatter) per element at cache-exceeding
  // sizes (matches sort::kRadixNsPerElemPass, measured on this host class).
  double radix_ns_per_elem_pass = 3.8;
  // One probe of the multisequence splitter search (kway_select): re-probes
  // of the just-merged, cache-warm runs — much cheaper than the cold
  // dependent-miss probes search_ns_per_probe models.
  double select_probe_ns = 3.0;

  // Number of "effective" workers after the efficiency haircut.
  double effective_workers(unsigned workers) const;

  sim::SimTime sort_time(std::size_t n) const;
  sim::SimTime merge_time(std::size_t n) const;
  sim::SimTime copy_time(std::size_t n) const;
  sim::SimTime binary_search_time(std::size_t n, std::size_t searches) const;

  // Serial cost split across `workers` with per-task overhead.
  sim::SimTime parallel(sim::SimTime serial_cost, unsigned workers,
                        std::size_t tasks = 0) const;

  // Paper step (1): equal chunks per worker thread (parallel quicksort) plus
  // the Fig. 2 balanced merge tree.
  sim::SimTime local_parallel_sort_time(std::size_t n, unsigned workers) const;

  // Fig. 2 tree over `runs` equal runs totalling n elements: ceil(log2 runs)
  // levels, each moving n elements with all merges parallelized.
  sim::SimTime balanced_merge_time(std::size_t n, std::size_t runs,
                                   unsigned workers) const;

  // Ablation baseline: one sequential k-way heap merge (n log2 k compares,
  // no intra-merge parallelism).
  sim::SimTime naive_kway_merge_time(std::size_t n, std::size_t runs) const;

  // Single-pass parallel k-way merge (sort/parallel_kway_merge.hpp): a
  // splitter search (workers * runs binary searches over n/runs-sized runs)
  // cuts the output into per-worker ranges, then every element pays one
  // loser-tree replay — n * log2(runs) compares total, split across
  // workers, each element moved exactly once.
  sim::SimTime parallel_kway_merge_time(std::size_t n, std::size_t runs,
                                        unsigned workers) const;

  // Step (1) radix local sort: `passes` counting+scatter sweeps over equal
  // chunks per worker, then the same balanced merge of the per-thread runs
  // as the comparison path.
  sim::SimTime local_radix_sort_time(std::size_t n, unsigned passes,
                                     unsigned workers) const;

  // Adaptive mergesort (TimSort) on data that decomposed into `runs`
  // natural runs: O(n) run detection plus n * ceil(log2 runs) of merging.
  // Already-sorted input (runs == 1) costs a single scan — the property
  // the paper cites for Spark choosing TimSort.
  sim::SimTime adaptive_sort_time(std::size_t n, std::size_t runs) const;

  // One histogram-refinement round on a rank holding n sorted keys and
  // answering for `probes` candidate keys: two monotone binary searches per
  // probe (lower + upper bound) plus packing the rank-bracket reply.
  sim::SimTime histogram_round_time(std::size_t n, std::size_t probes) const;
};

// Measures this host's real kernels (quicksort, merge, copy, binary search)
// and returns a model scaled to them. `sample_n` controls calibration cost.
CostModel calibrate(std::size_t sample_n = 1 << 20);

}  // namespace pgxd::rt
