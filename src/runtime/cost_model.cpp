#include "runtime/cost_model.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sort/quicksort.hpp"

namespace pgxd::rt {

namespace {

double log2_of(std::size_t n) {
  return n > 1 ? std::log2(static_cast<double>(n)) : 1.0;
}

sim::SimTime ns(double x) { return static_cast<sim::SimTime>(std::ceil(x)); }

}  // namespace

double CostModel::effective_workers(unsigned workers) const {
  if (workers <= 1) return 1.0;
  return 1.0 + (static_cast<double>(workers) - 1.0) * parallel_efficiency;
}

sim::SimTime CostModel::sort_time(std::size_t n) const {
  if (n < 2) return 0;
  return ns(sort_ns_per_elem_log * static_cast<double>(n) * log2_of(n));
}

sim::SimTime CostModel::merge_time(std::size_t n) const {
  return ns(merge_ns_per_elem * static_cast<double>(n));
}

sim::SimTime CostModel::copy_time(std::size_t n) const {
  return ns(copy_ns_per_elem * static_cast<double>(n));
}

sim::SimTime CostModel::binary_search_time(std::size_t n,
                                           std::size_t searches) const {
  return ns(search_ns_per_probe * log2_of(std::max<std::size_t>(n, 2)) *
            static_cast<double>(searches));
}

sim::SimTime CostModel::parallel(sim::SimTime serial_cost, unsigned workers,
                                 std::size_t tasks) const {
  if (tasks == 0) tasks = workers;
  const double waves =
      std::ceil(static_cast<double>(tasks) / std::max(1u, workers));
  return ns(static_cast<double>(serial_cost) / effective_workers(workers) +
            task_overhead_ns * waves);
}

sim::SimTime CostModel::local_parallel_sort_time(std::size_t n,
                                                 unsigned workers) const {
  if (n < 2) return 0;
  workers = std::max(1u, workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  // All chunks sort concurrently at parallel efficiency; the per-chunk sort
  // is serial within its thread.
  const double chunk_sort =
      sort_ns_per_elem_log * static_cast<double>(chunk) * log2_of(chunk);
  const double slowdown =
      static_cast<double>(workers) / effective_workers(workers);
  sim::SimTime t = ns(chunk_sort * slowdown + task_overhead_ns);
  t += balanced_merge_time(n, workers, workers);
  return t;
}

sim::SimTime CostModel::balanced_merge_time(std::size_t n, std::size_t runs,
                                            unsigned workers) const {
  if (runs <= 1 || n == 0) return 0;
  const auto levels =
      static_cast<std::size_t>(std::bit_width(runs - 1));  // ceil(log2(runs))
  sim::SimTime total = 0;
  for (std::size_t l = 0; l < levels; ++l)
    total += parallel(merge_time(n), workers);
  return total;
}

sim::SimTime CostModel::naive_kway_merge_time(std::size_t n,
                                              std::size_t runs) const {
  if (runs <= 1 || n == 0) return 0;
  // Binary heap of k runs: every element pays log2(k) comparisons plus the
  // move, all on one thread.
  const double per_elem =
      merge_ns_per_elem * std::max(1.0, log2_of(runs));
  return ns(per_elem * static_cast<double>(n));
}

sim::SimTime CostModel::parallel_kway_merge_time(std::size_t n,
                                                 std::size_t runs,
                                                 unsigned workers) const {
  if (runs <= 1 || n == 0) return copy_time(n);
  workers = std::max(1u, workers);
  const double per_elem =
      loser_compare_ns_per_elem_log * std::max(1.0, log2_of(runs)) +
      copy_ns_per_elem;
  const auto serial = ns(per_elem * static_cast<double>(n));
  // Splitter search: workers-1 independent boundaries, each a value-pivot
  // binary search doing O(runs * log n) warm probes over the sorted runs.
  // The boundaries are independent tasks, so the search parallelizes like
  // the merge itself.
  const auto serial_select =
      ns(select_probe_ns * log2_of(n) * static_cast<double>(runs) *
         static_cast<double>(workers > 1 ? workers - 1 : 0));
  return parallel(serial_select + serial, workers);
}

sim::SimTime CostModel::local_radix_sort_time(std::size_t n, unsigned passes,
                                              unsigned workers) const {
  if (n < 2) return 0;
  workers = std::max(1u, workers);
  passes = std::max(1u, passes);
  const std::size_t chunk = (n + workers - 1) / workers;
  const double chunk_sort = radix_ns_per_elem_pass *
                            static_cast<double>(passes) *
                            static_cast<double>(chunk);
  const double slowdown =
      static_cast<double>(workers) / effective_workers(workers);
  sim::SimTime t = ns(chunk_sort * slowdown + task_overhead_ns);
  t += balanced_merge_time(n, workers, workers);
  return t;
}

sim::SimTime CostModel::adaptive_sort_time(std::size_t n,
                                           std::size_t runs) const {
  if (n < 2) return 0;
  runs = std::max<std::size_t>(1, runs);
  const auto levels =
      static_cast<double>(std::bit_width(runs - 1));  // ceil(log2(runs))
  return ns(copy_ns_per_elem * static_cast<double>(n) +      // run detection
            merge_ns_per_elem * static_cast<double>(n) * std::max(1.0, levels));
}

sim::SimTime CostModel::histogram_round_time(std::size_t n,
                                             std::size_t probes) const {
  if (probes == 0) return 0;
  // The monotone lower+upper bound walk restarts near the previous probe,
  // but each probe still pays a dependent-miss search in the worst case;
  // the reply pack is a linear touch of the 2*probes bracket words.
  return binary_search_time(n, 2 * probes) + copy_time(2 * probes);
}

CostModel calibrate(std::size_t sample_n) {
  using Clock = std::chrono::steady_clock;
  CostModel m;
  sample_n = std::max<std::size_t>(sample_n, 1 << 16);

  Rng rng(0xC0FFEE);
  std::vector<std::uint64_t> data(sample_n);
  for (auto& x : data) x = rng.next();

  // Sort constant.
  {
    auto v = data;
    const auto t0 = Clock::now();
    sort::quicksort(std::span<std::uint64_t>(v));
    const auto dt = std::chrono::duration<double, std::nano>(Clock::now() - t0);
    m.sort_ns_per_elem_log =
        dt.count() / (static_cast<double>(sample_n) *
                      std::log2(static_cast<double>(sample_n)));
  }

  // Merge constant.
  {
    auto a = std::vector<std::uint64_t>(data.begin(), data.begin() + sample_n / 2);
    auto b = std::vector<std::uint64_t>(data.begin() + sample_n / 2, data.end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<std::uint64_t> out(sample_n);
    const auto t0 = Clock::now();
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
    const auto dt = std::chrono::duration<double, std::nano>(Clock::now() - t0);
    m.merge_ns_per_elem = dt.count() / static_cast<double>(sample_n);
  }

  // Copy constant.
  {
    std::vector<std::uint64_t> out(sample_n);
    const auto t0 = Clock::now();
    std::memcpy(out.data(), data.data(), sample_n * sizeof(std::uint64_t));
    const auto dt = std::chrono::duration<double, std::nano>(Clock::now() - t0);
    m.copy_ns_per_elem = std::max(0.05, dt.count() / static_cast<double>(sample_n));
  }

  // Binary-search probe constant.
  {
    auto v = data;
    std::sort(v.begin(), v.end());
    constexpr std::size_t kProbes = 100000;
    Rng probe_rng(7);
    std::uint64_t acc = 0;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < kProbes; ++i) {
      const std::uint64_t key = probe_rng.next();
      acc += static_cast<std::uint64_t>(
          std::lower_bound(v.begin(), v.end(), key) - v.begin());
    }
    volatile std::uint64_t sink = acc;
    const auto dt = std::chrono::duration<double, std::nano>(Clock::now() - t0);
    m.search_ns_per_probe =
        dt.count() / (static_cast<double>(kProbes) *
                      std::log2(static_cast<double>(sample_n)));
    (void)sink;
  }

  PGXD_CHECK(m.sort_ns_per_elem_log > 0);
  PGXD_CHECK(m.merge_ns_per_elem > 0);
  return m;
}

}  // namespace pgxd::rt
