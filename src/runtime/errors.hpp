// Failure outcomes surfaced by the runtime under crash-stop faults.
//
// These are the *recoverable* surface: a coroutine stack that hits one of
// them unwinds to whatever supervisor wrapper the engine installed (see
// DistributedSorter's resilient program), which converts the exception
// into a per-rank attempt outcome. They deliberately do NOT inherit from
// each other — a handler that wants "any failure" catches the common base.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "sim/time.hpp"

namespace pgxd::rt {

// Common base so supervisors can catch every crash-tolerance outcome with
// one handler while tests still discriminate by concrete type.
class FailureError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Raised on a rank's own coroutine stack when the rank is discovered to be
// crash-stopped (the DES analogue of the process dying: any comm operation
// attempted at or after the crash instant unwinds instead of executing).
class RankCrashedError : public FailureError {
 public:
  RankCrashedError(std::size_t rank, sim::SimTime at)
      : FailureError("rank " + std::to_string(rank) +
                     " crash-stopped at t=" + std::to_string(at) + "ns"),
        rank_(rank),
        at_(at) {}

  std::size_t rank() const { return rank_; }
  sim::SimTime at() const { return at_; }

 private:
  std::size_t rank_;
  sim::SimTime at_;
};

// Raised by a fail-fast reliable send whose destination exhausted the
// retransmit budget or is suspected dead by the failure detector.
class PeerUnreachableError : public FailureError {
 public:
  PeerUnreachableError(std::size_t src, std::size_t dst)
      : FailureError("peer " + std::to_string(dst) + " unreachable from rank " +
                     std::to_string(src) +
                     " (retry budget exhausted or suspected crashed)"),
        src_(src),
        dst_(dst) {}

  std::size_t src() const { return src_; }
  std::size_t dst() const { return dst_; }

 private:
  std::size_t src_;
  std::size_t dst_;
};

// Raised when a participant learns (via the abort broadcast or its own
// failure detector) that the current cooperative phase is being torn down.
class SortAbortedError : public FailureError {
 public:
  explicit SortAbortedError(const std::string& reason)
      : FailureError("sort attempt aborted: " + reason) {}
};

}  // namespace pgxd::rt
