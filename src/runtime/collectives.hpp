// Collective operations over Comm — the reusable building blocks of the
// engines' communication patterns (sample gather, splitter broadcast,
// counts all-to-all). Each collective is a per-rank coroutine: every
// machine calls the same function with its own rank and payload, mirroring
// MPI's SPMD convention.
//
// Tag discipline: each call uses caller-provided tags; concurrent
// collectives on one cluster must use distinct tags.
//
// Every public entry point is a non-coroutine wrapper that names its
// payload before entering the *_impl coroutine: GCC 12 mishandles prvalue
// arguments bound to coroutine by-value parameters (see the note on
// rt::Message). Callers beware of a related GCC 12 limitation: a temporary
// built from a braced initializer-list (e.g. `std::vector<int>{1, 2}`)
// inside a co_await full-expression fails to compile ("array used as
// initializer") because the list's backing array cannot be spilled to the
// coroutine frame — name such payloads in a local first.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "runtime/comm.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace pgxd::rt {

namespace detail {

template <typename Payload>
sim::Task<Payload> broadcast_impl(Comm<Payload>& comm, std::size_t rank,
                                  std::size_t root, int tag, Payload value,
                                  std::uint64_t bytes) {
  if (rank == root) {
    for (std::size_t dst = 0; dst < comm.machines(); ++dst)
      comm.post(root, dst, tag, value, bytes);
  }
  auto msg = co_await comm.recv(rank, tag);
  co_return std::move(msg.payload);
}

template <typename Payload>
sim::Task<std::vector<Payload>> gather_impl(Comm<Payload>& comm,
                                            std::size_t rank,
                                            std::size_t root, int tag,
                                            Payload value,
                                            std::uint64_t bytes) {
  const std::size_t p = comm.machines();
  std::vector<Payload> out;
  if (rank != root) {
    co_await comm.send(rank, root, tag, std::move(value), bytes);
    co_return out;
  }
  out.resize(p);
  out[root] = std::move(value);
  for (std::size_t i = 0; i + 1 < p; ++i) {
    auto msg = co_await comm.recv(root, tag);
    out[msg.src] = std::move(msg.payload);
  }
  co_return out;
}

template <typename Payload>
sim::Task<std::vector<Payload>> all_gather_impl(Comm<Payload>& comm,
                                                std::size_t rank, int tag,
                                                Payload value,
                                                std::uint64_t bytes) {
  const std::size_t p = comm.machines();
  std::vector<Payload> out(p);
  for (std::size_t step = 1; step < p; ++step) {
    const std::size_t dst = (rank + step) % p;
    comm.post(rank, dst, tag, value, bytes);
  }
  out[rank] = std::move(value);
  for (std::size_t i = 0; i + 1 < p; ++i) {
    auto msg = co_await comm.recv(rank, tag);
    out[msg.src] = std::move(msg.payload);
  }
  co_return out;
}

template <typename Payload, typename Op>
sim::Task<Payload> all_reduce_impl(Comm<Payload>& comm, std::size_t rank,
                                   int gather_tag, int bcast_tag,
                                   Payload value, std::uint64_t bytes, Op op) {
  auto gathered = co_await gather_impl(comm, rank, /*root=*/std::size_t{0},
                                       gather_tag, std::move(value), bytes);
  Payload combined{};
  if (rank == 0) {
    PGXD_CHECK(!gathered.empty());
    combined = std::move(gathered[0]);
    for (std::size_t s = 1; s < gathered.size(); ++s)
      combined = op(std::move(combined), std::move(gathered[s]));
  }
  auto result = co_await broadcast_impl(comm, rank, /*root=*/std::size_t{0},
                                        bcast_tag, std::move(combined), bytes);
  co_return result;
}

template <typename Payload>
sim::Task<std::vector<Payload>> all_to_all_impl(
    Comm<Payload>& comm, std::size_t rank, int tag,
    std::vector<Payload> values, std::vector<std::uint64_t> bytes) {
  const std::size_t p = comm.machines();
  PGXD_CHECK(values.size() == p);
  PGXD_CHECK(bytes.size() == p);
  std::vector<Payload> out(p);
  for (std::size_t step = 1; step < p; ++step) {
    const std::size_t dst = (rank + step) % p;
    comm.post(rank, dst, tag, std::move(values[dst]), bytes[dst]);
  }
  out[rank] = std::move(values[rank]);
  for (std::size_t i = 0; i + 1 < p; ++i) {
    auto msg = co_await comm.recv(rank, tag);
    out[msg.src] = std::move(msg.payload);
  }
  co_return out;
}

}  // namespace detail

// ---- Deadline-aware (crash-tolerant) variants --------------------------
//
// Each bounded collective resolves to std::nullopt instead of deadlocking
// when a participant cannot complete by the absolute sim-time `deadline`:
// the participant that gives up posts a zero-payload *abort frame* to
// every rank on `abort_tag`, and any participant that sees one resolves
// nullopt immediately — one failure collapses the whole collective at
// detection speed rather than at everyone's deadline. A participant that
// is itself crash-stopped unwinds with RankCrashedError instead.
//
// All participants must pass the same deadline (SPMD convention, like the
// tags). Abort frames may arrive after a participant already resolved;
// callers running under faults should drain mailboxes between phases or
// run with allow_undrained. Payload must be default-constructible (abort
// frames carry Payload{}).

inline constexpr std::uint64_t kAbortFrameBytes = 8;

// Polling quantum for bounded receives: short enough to see abort frames
// promptly, long enough that the cancelled-timer churn stays negligible.
inline constexpr sim::SimTime kBoundedPoll = 500 * sim::kMicrosecond;

namespace detail {

template <typename Payload>
void post_abort_frames(Comm<Payload>& comm, std::size_t rank, int abort_tag) {
  for (std::size_t dst = 0; dst < comm.machines(); ++dst) {
    if (dst == rank) continue;
    Payload empty{};
    comm.post(rank, dst, abort_tag, std::move(empty), kAbortFrameBytes);
  }
}

// Core bounded receive: next message of `tag`, or nullopt on abort frame /
// deadline (originating the abort broadcast in the deadline case).
template <typename Payload>
sim::Task<std::optional<Message<Payload>>> bounded_recv_impl(
    Comm<Payload>& comm, std::size_t rank, int tag, int abort_tag,
    sim::SimTime deadline) {
  auto& sim = comm.simulator();
  for (;;) {
    comm.throw_if_crashed(rank);
    if (comm.try_recv(rank, abort_tag)) {
      while (comm.try_recv(rank, abort_tag)) {}
      co_return std::nullopt;
    }
    if (sim.now() >= deadline) {
      post_abort_frames(comm, rank, abort_tag);
      co_return std::nullopt;
    }
    const sim::SimTime slice =
        std::min<sim::SimTime>(deadline, sim.now() + kBoundedPoll);
    auto got = co_await comm.recv_until(rank, tag, slice);
    if (got) co_return got;
  }
}

template <typename Payload>
sim::Task<std::optional<Payload>> bounded_broadcast_impl(
    Comm<Payload>& comm, std::size_t rank, std::size_t root, int tag,
    int abort_tag, Payload value, std::uint64_t bytes, sim::SimTime deadline) {
  if (rank == root) {
    for (std::size_t dst = 0; dst < comm.machines(); ++dst)
      comm.post(root, dst, tag, value, bytes);
  }
  auto msg =
      co_await bounded_recv_impl(comm, rank, tag, abort_tag, deadline);
  if (!msg) co_return std::nullopt;
  co_return std::move(msg->payload);
}

template <typename Payload>
sim::Task<std::optional<std::vector<Payload>>> bounded_gather_impl(
    Comm<Payload>& comm, std::size_t rank, std::size_t root, int tag,
    int abort_tag, Payload value, std::uint64_t bytes, sim::SimTime deadline) {
  const std::size_t p = comm.machines();
  if (rank != root) {
    // Posted, not awaited: a dead root must not wedge the contributors.
    comm.post(rank, root, tag, std::move(value), bytes);
    std::vector<Payload> empty;
    co_return std::optional<std::vector<Payload>>(std::move(empty));
  }
  std::vector<Payload> out(p);
  out[root] = std::move(value);
  for (std::size_t i = 0; i + 1 < p; ++i) {
    auto msg =
        co_await bounded_recv_impl(comm, root, tag, abort_tag, deadline);
    if (!msg) co_return std::nullopt;
    out[msg->src] = std::move(msg->payload);
  }
  co_return std::optional<std::vector<Payload>>(std::move(out));
}

template <typename Payload>
sim::Task<std::optional<std::vector<Payload>>> bounded_all_to_all_impl(
    Comm<Payload>& comm, std::size_t rank, int tag, int abort_tag,
    std::vector<Payload> values, std::vector<std::uint64_t> bytes,
    sim::SimTime deadline) {
  const std::size_t p = comm.machines();
  PGXD_CHECK(values.size() == p);
  PGXD_CHECK(bytes.size() == p);
  std::vector<Payload> out(p);
  for (std::size_t step = 1; step < p; ++step) {
    const std::size_t dst = (rank + step) % p;
    comm.post(rank, dst, tag, std::move(values[dst]), bytes[dst]);
  }
  out[rank] = std::move(values[rank]);
  for (std::size_t i = 0; i + 1 < p; ++i) {
    auto msg =
        co_await bounded_recv_impl(comm, rank, tag, abort_tag, deadline);
    if (!msg) co_return std::nullopt;
    out[msg->src] = std::move(msg->payload);
  }
  co_return std::optional<std::vector<Payload>>(std::move(out));
}

// ---- Group-scoped variants ---------------------------------------------
//
// The same collectives over an ordered subset of the cluster's ranks — the
// communicator a recursive (multi-level) partitioning scheme runs its
// sub-phases over. members[0] is the group root; results are indexed by
// *member position*, not physical rank. Every participant passes the same
// member list (SPMD convention, like the tags and deadlines) and must be in
// it. Messages never leave the group, so two disjoint groups can run the
// same collective on the same tag concurrently; the bounded variants fan
// abort frames out to the group only.

template <typename Payload>
sim::Task<Payload> group_broadcast_impl(Comm<Payload>& comm,
                                        std::vector<std::size_t> members,
                                        std::size_t rank, int tag,
                                        Payload value, std::uint64_t bytes) {
  PGXD_CHECK(!members.empty());
  if (rank == members[0]) {
    for (std::size_t dst : members) comm.post(rank, dst, tag, value, bytes);
  }
  auto msg = co_await comm.recv(rank, tag);
  co_return std::move(msg.payload);
}

template <typename Payload>
sim::Task<std::vector<Payload>> group_gather_impl(
    Comm<Payload>& comm, std::vector<std::size_t> members, std::size_t rank,
    int tag, Payload value, std::uint64_t bytes) {
  const std::size_t q = members.size();
  PGXD_CHECK(q > 0);
  const std::size_t root = members[0];
  std::vector<Payload> out;
  if (rank != root) {
    co_await comm.send(rank, root, tag, std::move(value), bytes);
    co_return out;
  }
  out.resize(q);
  out[0] = std::move(value);
  for (std::size_t i = 0; i + 1 < q; ++i) {
    auto msg = co_await comm.recv(root, tag);
    std::size_t j = q;
    for (std::size_t k = 0; k < q; ++k)
      if (members[k] == msg.src) j = k;
    PGXD_CHECK_MSG(j < q, "group gather: contribution from a non-member");
    out[j] = std::move(msg.payload);
  }
  co_return out;
}

template <typename Payload>
sim::Task<std::vector<Payload>> group_all_to_all_impl(
    Comm<Payload>& comm, std::vector<std::size_t> members, std::size_t rank,
    int tag, std::vector<Payload> values, std::vector<std::uint64_t> bytes) {
  const std::size_t q = members.size();
  PGXD_CHECK(values.size() == q);
  PGXD_CHECK(bytes.size() == q);
  std::size_t me = q;
  for (std::size_t k = 0; k < q; ++k)
    if (members[k] == rank) me = k;
  PGXD_CHECK_MSG(me < q, "group all-to-all: caller is not a member");
  std::vector<Payload> out(q);
  for (std::size_t step = 1; step < q; ++step) {
    const std::size_t dj = (me + step) % q;
    comm.post(rank, members[dj], tag, std::move(values[dj]), bytes[dj]);
  }
  out[me] = std::move(values[me]);
  for (std::size_t i = 0; i + 1 < q; ++i) {
    auto msg = co_await comm.recv(rank, tag);
    std::size_t j = q;
    for (std::size_t k = 0; k < q; ++k)
      if (members[k] == msg.src) j = k;
    PGXD_CHECK_MSG(j < q, "group all-to-all: payload from a non-member");
    out[j] = std::move(msg.payload);
  }
  co_return out;
}

template <typename Payload>
void post_group_abort_frames(Comm<Payload>& comm,
                             const std::vector<std::size_t>& members,
                             std::size_t rank, int abort_tag) {
  for (std::size_t dst : members) {
    if (dst == rank) continue;
    Payload empty{};
    comm.post(rank, dst, abort_tag, std::move(empty), kAbortFrameBytes);
  }
}

// Group-scoped bounded receive: identical to bounded_recv_impl except the
// deadline-triggered abort broadcast stays inside the group.
template <typename Payload>
sim::Task<std::optional<Message<Payload>>> bounded_group_recv_impl(
    Comm<Payload>& comm, const std::vector<std::size_t>& members,
    std::size_t rank, int tag, int abort_tag, sim::SimTime deadline) {
  auto& sim = comm.simulator();
  for (;;) {
    comm.throw_if_crashed(rank);
    if (comm.try_recv(rank, abort_tag)) {
      while (comm.try_recv(rank, abort_tag)) {}
      co_return std::nullopt;
    }
    if (sim.now() >= deadline) {
      post_group_abort_frames(comm, members, rank, abort_tag);
      co_return std::nullopt;
    }
    const sim::SimTime slice =
        std::min<sim::SimTime>(deadline, sim.now() + kBoundedPoll);
    auto got = co_await comm.recv_until(rank, tag, slice);
    if (got) co_return got;
  }
}

template <typename Payload>
sim::Task<std::optional<Payload>> bounded_group_broadcast_impl(
    Comm<Payload>& comm, std::vector<std::size_t> members, std::size_t rank,
    int tag, int abort_tag, Payload value, std::uint64_t bytes,
    sim::SimTime deadline) {
  PGXD_CHECK(!members.empty());
  if (rank == members[0]) {
    for (std::size_t dst : members) comm.post(rank, dst, tag, value, bytes);
  }
  auto msg = co_await bounded_group_recv_impl(comm, members, rank, tag,
                                              abort_tag, deadline);
  if (!msg) co_return std::nullopt;
  co_return std::move(msg->payload);
}

template <typename Payload>
sim::Task<std::optional<std::vector<Payload>>> bounded_group_gather_impl(
    Comm<Payload>& comm, std::vector<std::size_t> members, std::size_t rank,
    int tag, int abort_tag, Payload value, std::uint64_t bytes,
    sim::SimTime deadline) {
  const std::size_t q = members.size();
  PGXD_CHECK(q > 0);
  const std::size_t root = members[0];
  if (rank != root) {
    // Posted, not awaited: a dead root must not wedge the contributors.
    comm.post(rank, root, tag, std::move(value), bytes);
    std::vector<Payload> empty;
    co_return std::optional<std::vector<Payload>>(std::move(empty));
  }
  std::vector<Payload> out(q);
  out[0] = std::move(value);
  for (std::size_t i = 0; i + 1 < q; ++i) {
    auto msg = co_await bounded_group_recv_impl(comm, members, root, tag,
                                                abort_tag, deadline);
    if (!msg) co_return std::nullopt;
    std::size_t j = q;
    for (std::size_t k = 0; k < q; ++k)
      if (members[k] == msg->src) j = k;
    PGXD_CHECK_MSG(j < q, "group gather: contribution from a non-member");
    out[j] = std::move(msg->payload);
  }
  co_return std::optional<std::vector<Payload>>(std::move(out));
}

}  // namespace detail

// Broadcast: root's value reaches every rank (including the root itself).
// Returns each rank's received copy.
template <typename Payload>
sim::Task<Payload> broadcast(Comm<Payload>& comm, std::size_t rank,
                             std::size_t root, int tag, Payload value,
                             std::uint64_t bytes) {
  return detail::broadcast_impl(comm, rank, root, tag, std::move(value),
                                bytes);
}

// Gather: every rank's value arrives at the root. The root receives the
// vector indexed by source rank; other ranks receive an empty vector.
template <typename Payload>
sim::Task<std::vector<Payload>> gather(Comm<Payload>& comm, std::size_t rank,
                                       std::size_t root, int tag,
                                       Payload value, std::uint64_t bytes) {
  return detail::gather_impl(comm, rank, root, tag, std::move(value), bytes);
}

// All-gather: every rank ends with every rank's value (indexed by source).
template <typename Payload>
sim::Task<std::vector<Payload>> all_gather(Comm<Payload>& comm,
                                           std::size_t rank, int tag,
                                           Payload value,
                                           std::uint64_t bytes) {
  return detail::all_gather_impl(comm, rank, tag, std::move(value), bytes);
}

// All-reduce: combine every rank's value with `op` (associative and
// commutative); every rank receives the combined result. Payload must be
// default-constructible.
template <typename Payload, typename Op>
sim::Task<Payload> all_reduce(Comm<Payload>& comm, std::size_t rank,
                              int gather_tag, int bcast_tag, Payload value,
                              std::uint64_t bytes, Op op) {
  return detail::all_reduce_impl(comm, rank, gather_tag, bcast_tag,
                                 std::move(value), bytes, std::move(op));
}

// All-to-all: rank r sends values[d] to rank d and receives one payload
// from every rank (indexed by source). values.size() must equal the
// machine count; values[rank] transfers locally.
template <typename Payload>
sim::Task<std::vector<Payload>> all_to_all(Comm<Payload>& comm,
                                           std::size_t rank, int tag,
                                           std::vector<Payload> values,
                                           std::vector<std::uint64_t> bytes) {
  return detail::all_to_all_impl(comm, rank, tag, std::move(values),
                                 std::move(bytes));
}

// Deadline-aware broadcast: like broadcast(), but resolves nullopt when the
// value has not arrived by `deadline` or any participant aborted. See the
// bounded-variant contract above.
template <typename Payload>
sim::Task<std::optional<Payload>> bounded_broadcast(
    Comm<Payload>& comm, std::size_t rank, std::size_t root, int tag,
    int abort_tag, Payload value, std::uint64_t bytes, sim::SimTime deadline) {
  return detail::bounded_broadcast_impl(comm, rank, root, tag, abort_tag,
                                        std::move(value), bytes, deadline);
}

// Deadline-aware gather: the root resolves nullopt when any contribution
// is missing at `deadline`; contributors post-and-go (an empty vector,
// immediately), so a dead root cannot wedge them.
template <typename Payload>
sim::Task<std::optional<std::vector<Payload>>> bounded_gather(
    Comm<Payload>& comm, std::size_t rank, std::size_t root, int tag,
    int abort_tag, Payload value, std::uint64_t bytes, sim::SimTime deadline) {
  return detail::bounded_gather_impl(comm, rank, root, tag, abort_tag,
                                     std::move(value), bytes, deadline);
}

// Deadline-aware all-to-all: every participant resolves nullopt when its
// inbound set is incomplete at `deadline` or any participant aborted.
template <typename Payload>
sim::Task<std::optional<std::vector<Payload>>> bounded_all_to_all(
    Comm<Payload>& comm, std::size_t rank, int tag, int abort_tag,
    std::vector<Payload> values, std::vector<std::uint64_t> bytes,
    sim::SimTime deadline) {
  return detail::bounded_all_to_all_impl(comm, rank, tag, abort_tag,
                                         std::move(values), std::move(bytes),
                                         deadline);
}

// Group broadcast: members[0]'s value reaches every member. Callers outside
// the group must not participate. See the group-scoped contract in detail.
template <typename Payload>
sim::Task<Payload> group_broadcast(Comm<Payload>& comm,
                                   std::vector<std::size_t> members,
                                   std::size_t rank, int tag, Payload value,
                                   std::uint64_t bytes) {
  return detail::group_broadcast_impl(comm, std::move(members), rank, tag,
                                      std::move(value), bytes);
}

// Group gather: members[0] receives every member's value, indexed by member
// position; non-root members resolve to an empty vector.
template <typename Payload>
sim::Task<std::vector<Payload>> group_gather(Comm<Payload>& comm,
                                             std::vector<std::size_t> members,
                                             std::size_t rank, int tag,
                                             Payload value,
                                             std::uint64_t bytes) {
  return detail::group_gather_impl(comm, std::move(members), rank, tag,
                                   std::move(value), bytes);
}

// Group all-to-all: member at position j sends values[d] to the member at
// position d; everyone receives a vector indexed by member position.
// values.size() must equal members.size().
template <typename Payload>
sim::Task<std::vector<Payload>> group_all_to_all(
    Comm<Payload>& comm, std::vector<std::size_t> members, std::size_t rank,
    int tag, std::vector<Payload> values, std::vector<std::uint64_t> bytes) {
  return detail::group_all_to_all_impl(comm, std::move(members), rank, tag,
                                       std::move(values), std::move(bytes));
}

// Deadline-aware group broadcast: nullopt on deadline or abort; the abort
// frames fan out to group members only, so a failing group cannot collapse
// a concurrent sibling group's collective.
template <typename Payload>
sim::Task<std::optional<Payload>> bounded_group_broadcast(
    Comm<Payload>& comm, std::vector<std::size_t> members, std::size_t rank,
    int tag, int abort_tag, Payload value, std::uint64_t bytes,
    sim::SimTime deadline) {
  return detail::bounded_group_broadcast_impl(comm, std::move(members), rank,
                                              tag, abort_tag, std::move(value),
                                              bytes, deadline);
}

// Deadline-aware group gather: the group root resolves nullopt when any
// member's contribution is missing at `deadline`; contributors post-and-go.
template <typename Payload>
sim::Task<std::optional<std::vector<Payload>>> bounded_group_gather(
    Comm<Payload>& comm, std::vector<std::size_t> members, std::size_t rank,
    int tag, int abort_tag, Payload value, std::uint64_t bytes,
    sim::SimTime deadline) {
  return detail::bounded_group_gather_impl(comm, std::move(members), rank, tag,
                                           abort_tag, std::move(value), bytes,
                                           deadline);
}

}  // namespace pgxd::rt
