// Per-machine memory accounting, split the way Fig. 11 reports it:
// persistent ("RSS": result arrays + provenance bookkeeping that live to the
// end of the sort) versus temporary (scratch that is freed before the sort
// returns).
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace pgxd::rt {

class MemoryTracker {
 public:
  void alloc_persistent(std::uint64_t bytes) {
    persistent_ += bytes;
    peak_persistent_ = std::max(peak_persistent_, persistent_);
    bump_total_peak();
  }

  void free_persistent(std::uint64_t bytes) {
    PGXD_CHECK_MSG(bytes <= persistent_, "persistent free exceeds allocation");
    persistent_ -= bytes;
  }

  void alloc_temp(std::uint64_t bytes) {
    temp_ += bytes;
    peak_temp_ = std::max(peak_temp_, temp_);
    bump_total_peak();
  }

  void free_temp(std::uint64_t bytes) {
    PGXD_CHECK_MSG(bytes <= temp_, "temp free exceeds allocation");
    temp_ -= bytes;
  }

  std::uint64_t persistent() const { return persistent_; }
  std::uint64_t temp() const { return temp_; }
  std::uint64_t peak_persistent() const { return peak_persistent_; }
  std::uint64_t peak_temp() const { return peak_temp_; }
  std::uint64_t peak_total() const { return peak_total_; }

  void reset() { *this = MemoryTracker{}; }

 private:
  void bump_total_peak() {
    peak_total_ = std::max(peak_total_, persistent_ + temp_);
  }

  std::uint64_t persistent_ = 0;
  std::uint64_t temp_ = 0;
  std::uint64_t peak_persistent_ = 0;
  std::uint64_t peak_temp_ = 0;
  std::uint64_t peak_total_ = 0;
};

// RAII scope for a temporary allocation.
class TempAlloc {
 public:
  TempAlloc(MemoryTracker& mem, std::uint64_t bytes) : mem_(&mem), bytes_(bytes) {
    mem_->alloc_temp(bytes_);
  }
  TempAlloc(const TempAlloc&) = delete;
  TempAlloc& operator=(const TempAlloc&) = delete;
  TempAlloc(TempAlloc&& o) noexcept : mem_(o.mem_), bytes_(o.bytes_) {
    o.mem_ = nullptr;
  }
  TempAlloc& operator=(TempAlloc&&) = delete;
  ~TempAlloc() {
    if (mem_) mem_->free_temp(bytes_);
  }

 private:
  MemoryTracker* mem_;
  std::uint64_t bytes_;
};

struct BufferPoolStats {
  std::uint64_t leases = 0;        // acquire() calls
  std::uint64_t reuses = 0;        // leases served from the free list
  std::uint64_t fresh_allocs = 0;  // leases that had to allocate
  std::uint64_t returns = 0;       // release() calls
  std::size_t peak_free = 0;       // high-water mark of the free list
};

// Recycling pool of vector buffers for the exchange hot path: chunk
// payloads are leased here by the sender and returned by the receiver once
// placed, so a steady-state exchange allocates O(outstanding buffers) ≈ O(p)
// vectors total instead of one per chunk — including under reliable-mode
// retransmits, which resend modeled bytes only and never touch a payload
// after its first delivery.
//
// Thread-safety contract: acquire()/release()/free_buffers()/outstanding()
// may race freely (a mutex guards the free list and tallies — uncontended
// in the simulator, where machines are cooperatively scheduled coroutines
// in one OS thread). stats() returns an unlocked reference and is for
// quiescent reads only: after a sort completes or between exchanges, never
// concurrently with lease/release traffic.
template <typename T>
class BufferPool {
 public:
  // Leases a buffer with capacity >= reserve_hint, empty. Reuses the most
  // recently returned buffer when one is available.
  std::vector<T> acquire(std::size_t reserve_hint) {
    std::vector<T> buf;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.leases;
      if (!free_.empty()) {
        ++stats_.reuses;
        buf = std::move(free_.back());
        free_.pop_back();
      } else {
        ++stats_.fresh_allocs;
      }
    }
    buf.clear();
    buf.reserve(reserve_hint);
    return buf;
  }

  // Returns a buffer to the free list. Any buffer is accepted — a
  // duplicating fabric clones messages, so returns may outnumber leases —
  // but storage already on the free list is rejected loudly: releasing the
  // same allocation twice would alias two future leases.
  void release(std::vector<T>&& buf) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.returns;
    if (buf.capacity() == 0) return;  // moved-from or never allocated
    for (const auto& f : free_)
      PGXD_CHECK_MSG(f.data() != buf.data(),
                     "buffer pool: storage released twice");
    free_.push_back(std::move(buf));
    stats_.peak_free = std::max(stats_.peak_free, free_.size());
  }

  // Recovery-supervisor hook, quiescent-state only: buffers leased into an
  // aborted attempt are destroyed along with the drained mailboxes and can
  // never be release()d, which would leave `outstanding` permanently
  // inflated and eventually wedge the next attempt's backpressure loop.
  // Reconciling counts every unreturned lease as returned-by-destruction.
  void reconcile_after_drain() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.returns = std::max(stats_.returns, stats_.leases);
  }

  std::size_t free_buffers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

  // Leased-but-unreturned buffers. Signed: a duplicating fabric returns
  // cloned storage that was never leased, which can push returns past
  // leases — that undercounts outstanding, which only ever relaxes
  // backpressure, never wedges it.
  std::int64_t outstanding() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::int64_t>(stats_.leases) -
           static_cast<std::int64_t>(stats_.returns);
  }

  // Quiescent-state read (see the class comment).
  const BufferPoolStats& stats() const { return stats_; }

 private:
  mutable std::mutex mu_;  // pgxd-lock-order: buffer-pool rank 10
  std::vector<std::vector<T>> free_;
  BufferPoolStats stats_;
};

}  // namespace pgxd::rt
