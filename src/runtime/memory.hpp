// Per-machine memory accounting, split the way Fig. 11 reports it:
// persistent ("RSS": result arrays + provenance bookkeeping that live to the
// end of the sort) versus temporary (scratch that is freed before the sort
// returns).
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/assert.hpp"

namespace pgxd::rt {

class MemoryTracker {
 public:
  void alloc_persistent(std::uint64_t bytes) {
    persistent_ += bytes;
    peak_persistent_ = std::max(peak_persistent_, persistent_);
    bump_total_peak();
  }

  void free_persistent(std::uint64_t bytes) {
    PGXD_CHECK_MSG(bytes <= persistent_, "persistent free exceeds allocation");
    persistent_ -= bytes;
  }

  void alloc_temp(std::uint64_t bytes) {
    temp_ += bytes;
    peak_temp_ = std::max(peak_temp_, temp_);
    bump_total_peak();
  }

  void free_temp(std::uint64_t bytes) {
    PGXD_CHECK_MSG(bytes <= temp_, "temp free exceeds allocation");
    temp_ -= bytes;
  }

  std::uint64_t persistent() const { return persistent_; }
  std::uint64_t temp() const { return temp_; }
  std::uint64_t peak_persistent() const { return peak_persistent_; }
  std::uint64_t peak_temp() const { return peak_temp_; }
  std::uint64_t peak_total() const { return peak_total_; }

  void reset() { *this = MemoryTracker{}; }

 private:
  void bump_total_peak() {
    peak_total_ = std::max(peak_total_, persistent_ + temp_);
  }

  std::uint64_t persistent_ = 0;
  std::uint64_t temp_ = 0;
  std::uint64_t peak_persistent_ = 0;
  std::uint64_t peak_temp_ = 0;
  std::uint64_t peak_total_ = 0;
};

// RAII scope for a temporary allocation.
class TempAlloc {
 public:
  TempAlloc(MemoryTracker& mem, std::uint64_t bytes) : mem_(&mem), bytes_(bytes) {
    mem_->alloc_temp(bytes_);
  }
  TempAlloc(const TempAlloc&) = delete;
  TempAlloc& operator=(const TempAlloc&) = delete;
  TempAlloc(TempAlloc&& o) noexcept : mem_(o.mem_), bytes_(o.bytes_) {
    o.mem_ = nullptr;
  }
  TempAlloc& operator=(TempAlloc&&) = delete;
  ~TempAlloc() {
    if (mem_) mem_->free_temp(bytes_);
  }

 private:
  MemoryTracker* mem_;
  std::uint64_t bytes_;
};

}  // namespace pgxd::rt
