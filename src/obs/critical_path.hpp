// Critical-path analysis over a completed sim::Trace: which chain of
// per-rank phase work and cross-rank message hops actually bounded the
// run's end-to-end latency.
//
// The walk runs backward from the latest span end. Standing on lane L at
// instant t (inside span S), the latest non-duplicate flow edge arriving
// on L within S and at or before t is the event that enabled the work
// ending at t: the walk charges (recv..t] to S's phase as compute, charges
// the edge's wire time (send..recv] to the same phase, and jumps to the
// sender at the send instant. With no such arrival, S's start enabled the
// work: charge (S.begin..t] to S and continue on the same lane at S.begin.
// Per-lane spans are contiguous from t=0 (engines stamp every step), so
// the walk terminates at the run start and the charged segments sum to
// exactly the end-to-end time — the report's total_ns reconciles with the
// SortReport's total_time_ns by construction.
//
// When the caller passes the run's true end time (`run_end`), the walk
// starts there instead of at the latest span end. The difference is the
// protocol drain tail — under reliable delivery the last data span can end
// well before the last ack lands — and the walk crosses it by starting on
// the lane receiving the latest in-window flow (usually that final ack),
// so the tail shows up as wire time instead of silently missing from the
// total.
//
// Alongside the path, the analyzer reports per-phase slack (how much the
// average lane finished ahead of the phase's last finisher — high slack =
// stragglers) and the top-k blocking edges (the path's message hops ranked
// by wire time — where faster links or fewer retransmits would shorten the
// run).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace pgxd::obs {

// Per-phase attribution of the critical path, plus cluster-wide slack.
struct CriticalPathPhase {
  std::string name;
  sim::SimTime compute_ns = 0;  // path time inside spans of this phase
  sim::SimTime wire_ns = 0;     // path message hops landing in this phase
  double share = 0.0;           // (compute + wire) / total
  // Mean over lanes of (phase's cluster-wide last end − the lane's own
  // last end): how long the average rank idled waiting for the phase's
  // straggler. 0 = perfectly balanced.
  sim::SimTime slack_mean_ns = 0;
};

// One message hop on the critical path.
struct CriticalPathEdge {
  std::uint64_t span_id = 0;
  std::size_t src = 0;
  std::size_t dst = 0;
  sim::SimTime send = 0;
  sim::SimTime recv = 0;
  std::uint64_t bytes = 0;
  std::string label;  // engine tag label ("chunk", "samples", ...) or "ack"
  bool retransmit = false;
};

struct CriticalPathReport {
  bool computed = false;
  sim::SimTime total_ns = 0;    // == compute_ns + wire_ns == end-to-end
  sim::SimTime compute_ns = 0;
  sim::SimTime wire_ns = 0;
  std::size_t hops = 0;         // message hops on the path
  std::size_t start_lane = 0;   // lane where the walk terminated (run start)
  std::size_t end_lane = 0;     // lane owning the final span end
  std::vector<CriticalPathPhase> phases;      // by first appearance on path
  std::vector<CriticalPathEdge> top_edges;    // by wire time, descending

  void write_json(JsonWriter& w) const {
    w.begin_object();
    w.key("computed");
    w.value(computed);
    w.key("total_ns");
    w.value(static_cast<std::uint64_t>(total_ns));
    w.key("compute_ns");
    w.value(static_cast<std::uint64_t>(compute_ns));
    w.key("wire_ns");
    w.value(static_cast<std::uint64_t>(wire_ns));
    w.key("hops");
    w.value(static_cast<std::uint64_t>(hops));
    w.key("start_lane");
    w.value(static_cast<std::uint64_t>(start_lane));
    w.key("end_lane");
    w.value(static_cast<std::uint64_t>(end_lane));
    w.key("phases");
    w.begin_array();
    for (const auto& p : phases) {
      w.begin_object();
      w.kv("name", p.name);
      w.key("compute_ns");
      w.value(static_cast<std::uint64_t>(p.compute_ns));
      w.key("wire_ns");
      w.value(static_cast<std::uint64_t>(p.wire_ns));
      w.key("share");
      w.value(p.share);
      w.key("slack_mean_ns");
      w.value(static_cast<std::uint64_t>(p.slack_mean_ns));
      w.end_object();
    }
    w.end_array();
    w.key("top_edges");
    w.begin_array();
    for (const auto& e : top_edges) {
      w.begin_object();
      w.key("span_id");
      w.value(e.span_id);
      w.key("src");
      w.value(static_cast<std::uint64_t>(e.src));
      w.key("dst");
      w.value(static_cast<std::uint64_t>(e.dst));
      w.key("send_ns");
      w.value(static_cast<std::uint64_t>(e.send));
      w.key("recv_ns");
      w.value(static_cast<std::uint64_t>(e.recv));
      w.key("wire_ns");
      w.value(static_cast<std::uint64_t>(e.recv - e.send));
      w.key("bytes");
      w.value(e.bytes);
      w.kv("label", e.label);
      w.key("retransmit");
      w.value(e.retransmit);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
};

inline CriticalPathReport compute_critical_path(const sim::Trace& trace,
                                                std::size_t top_k = 5,
                                                sim::SimTime run_end = 0) {
  CriticalPathReport out;
  const auto& spans = trace.spans();
  if (spans.empty()) return out;

  const std::size_t lanes = trace.lane_count();

  // Per-lane span indices ordered by begin; per-lane incoming non-duplicate
  // flows ordered by recv.
  std::vector<std::vector<const sim::Trace::Span*>> lane_spans(lanes);
  for (const auto& s : spans) lane_spans[s.lane].push_back(&s);
  for (auto& v : lane_spans)
    std::sort(v.begin(), v.end(),
              [](const sim::Trace::Span* a, const sim::Trace::Span* b) {
                return a->begin < b->begin;
              });

  std::vector<std::vector<const sim::Trace::Flow*>> lane_inflows(lanes);
  for (const auto& f : trace.flows())
    if (!f.duplicate && f.dst < lanes) lane_inflows[f.dst].push_back(&f);
  for (auto& v : lane_inflows)
    std::sort(v.begin(), v.end(),
              [](const sim::Trace::Flow* a, const sim::Trace::Flow* b) {
                return a->recv < b->recv;
              });

  // The path's terminus: the latest span end anywhere.
  std::size_t lane = 0;
  sim::SimTime t = spans.front().end;
  for (const auto& s : spans)
    if (s.end > t || (s.end == t && s.lane < lane)) {
      t = s.end;
      lane = s.lane;
    }
  // Extend to the run's true end when the caller knows it: the drain tail
  // belongs to the lane receiving the latest flow inside it (the final
  // ack), falling back to the latest-span lane when nothing arrived.
  if (run_end > t) {
    const sim::Trace::Flow* tail = nullptr;
    for (const auto& f : trace.flows())
      if (!f.duplicate && f.dst < lanes && f.recv > t && f.recv <= run_end &&
          (tail == nullptr || f.recv > tail->recv))
        tail = &f;
    if (tail != nullptr) lane = tail->dst;
    t = run_end;
  }
  out.end_lane = lane;
  const sim::SimTime t_end = t;

  std::map<std::string, CriticalPathPhase> by_phase;
  std::vector<std::string> phase_order;
  auto phase_slot = [&](const std::string& name) -> CriticalPathPhase& {
    auto it = by_phase.find(name);
    if (it == by_phase.end()) {
      phase_order.push_back(name);
      it = by_phase.emplace(name, CriticalPathPhase{}).first;
      it->second.name = name;
    }
    return it->second;
  };

  std::vector<CriticalPathEdge> path_edges;

  // Each iteration either strictly decreases t or consumes a span start, so
  // the walk is bounded by spans + flows; the explicit cap turns a logic
  // bug into a loud stop instead of a hang.
  std::size_t fuel = spans.size() + trace.flows().size() + lanes + 2;
  while (fuel-- > 0) {
    // The span on `lane` covering the work that ends at t: the last span
    // beginning strictly before t (work at t was enabled at or before it).
    const auto& ls = lane_spans[lane];
    const sim::Trace::Span* cur = nullptr;
    for (auto it = ls.rbegin(); it != ls.rend(); ++it)
      if ((*it)->begin < t) {
        cur = *it;
        break;
      }
    if (cur == nullptr) break;  // run start on this lane — path complete

    // Latest arrival on this lane inside (cur.begin, t]. Edges that cannot
    // move the walk strictly earlier (zero-latency hops, send at/after t)
    // are skipped rather than followed, so progress is guaranteed.
    const sim::Trace::Flow* in = nullptr;
    const auto& fl = lane_inflows[lane];
    for (auto it = fl.rbegin(); it != fl.rend(); ++it) {
      if ((*it)->recv > t) continue;
      if ((*it)->recv <= cur->begin) break;
      if ((*it)->send >= (*it)->recv || (*it)->send >= t) continue;
      in = *it;
      break;
    }

    CriticalPathPhase& slot = phase_slot(cur->label);
    if (in != nullptr) {
      slot.compute_ns += t - in->recv;
      slot.wire_ns += in->recv - in->send;
      CriticalPathEdge e;
      e.span_id = in->span_id;
      e.src = in->src;
      e.dst = in->dst;
      e.send = in->send;
      e.recv = in->recv;
      e.bytes = in->bytes;
      e.label = in->kind == sim::Trace::FlowKind::kAck
                    ? std::string("ack")
                    : trace.tag_label(in->tag);
      e.retransmit = in->retransmit;
      path_edges.push_back(std::move(e));
      t = in->send;
      lane = in->src;
    } else {
      slot.compute_ns += t - cur->begin;
      t = cur->begin;
    }
  }
  out.start_lane = lane;

  // Totals and shares.
  sim::SimTime t_start = t;
  out.total_ns = t_end - t_start;
  for (const auto& name : phase_order) {
    const auto& p = by_phase[name];
    out.compute_ns += p.compute_ns;
    out.wire_ns += p.wire_ns;
  }
  out.hops = path_edges.size();
  out.computed = true;

  // Per-phase slack: mean over participating lanes of how far before the
  // phase's cluster-wide last end each lane finished it.
  std::map<std::string, std::map<std::size_t, sim::SimTime>> phase_lane_end;
  for (const auto& s : spans) {
    auto& m = phase_lane_end[s.label];
    auto [it, fresh] = m.emplace(s.lane, s.end);
    if (!fresh) it->second = std::max(it->second, s.end);
  }
  for (const auto& name : phase_order) {
    CriticalPathPhase& p = by_phase[name];
    const auto& m = phase_lane_end[name];
    sim::SimTime last = 0;
    for (const auto& [l, e] : m) last = std::max(last, e);
    sim::SimTime slack_sum = 0;
    for (const auto& [l, e] : m) slack_sum += last - e;
    p.slack_mean_ns =
        m.empty() ? 0 : slack_sum / static_cast<sim::SimTime>(m.size());
    p.share = out.total_ns == 0
                  ? 0.0
                  : static_cast<double>(p.compute_ns + p.wire_ns) /
                        static_cast<double>(out.total_ns);
    out.phases.push_back(p);
  }

  // Top-k blocking edges by wire time.
  std::sort(path_edges.begin(), path_edges.end(),
            [](const CriticalPathEdge& a, const CriticalPathEdge& b) {
              return (a.recv - a.send) > (b.recv - b.send);
            });
  if (path_edges.size() > top_k) path_edges.resize(top_k);
  out.top_edges = std::move(path_edges);
  return out;
}

}  // namespace pgxd::obs
