// Minimal JSON emitter for telemetry exports (SortReport, metrics dumps,
// Chrome trace_event files). Write-only by design: the repository has no
// JSON dependency, and the telemetry consumers (Perfetto, the report schema
// validator, plotting scripts) only need us to *produce* valid documents.
//
// The writer is a push API with explicit begin/end calls; nesting is
// validated with PGXD_CHECK so a malformed emitter crashes in tests instead
// of producing silently broken reports. Doubles are emitted with %.17g
// (round-trippable); NaN/Inf — which JSON cannot represent — are emitted as
// null.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace pgxd::obs {

class JsonWriter {
 public:
  void begin_object() {
    comma();
    out_ += '{';
    stack_.push_back(Frame{/*array=*/false, /*count=*/0});
    key_pending_ = false;
  }
  void end_object() {
    PGXD_CHECK_MSG(!stack_.empty() && !stack_.back().array,
                   "json: end_object without matching begin_object");
    PGXD_CHECK_MSG(!key_pending_, "json: object key without a value");
    out_ += '}';
    stack_.pop_back();
  }
  void begin_array() {
    comma();
    out_ += '[';
    stack_.push_back(Frame{/*array=*/true, /*count=*/0});
    key_pending_ = false;
  }
  void end_array() {
    PGXD_CHECK_MSG(!stack_.empty() && stack_.back().array,
                   "json: end_array without matching begin_array");
    out_ += ']';
    stack_.pop_back();
  }

  // Names the next value inside an object.
  void key(std::string_view k) {
    PGXD_CHECK_MSG(!stack_.empty() && !stack_.back().array,
                   "json: key outside an object");
    PGXD_CHECK_MSG(!key_pending_, "json: two keys in a row");
    if (stack_.back().count++ > 0) out_ += ',';
    append_string(k);
    out_ += ':';
    key_pending_ = true;
  }

  void value(std::string_view s) {
    comma();
    append_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    comma();
    out_ += b ? "true" : "false";
  }
  void value(double d) {
    comma();
    if (!std::isfinite(d)) {
      out_ += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out_ += buf;
  }
  void value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  // Unambiguous helpers for common integer types.
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void null() {
    comma();
    out_ += "null";
  }

  // Convenience: key + scalar in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  // The finished document; all containers must be closed.
  const std::string& str() const {
    PGXD_CHECK_MSG(stack_.empty(), "json: unclosed object/array");
    return out_;
  }

 private:
  struct Frame {
    bool array;
    std::size_t count;
  };

  // Separator bookkeeping shared by every value-producing call.
  void comma() {
    if (key_pending_) {
      key_pending_ = false;
      return;  // the key already wrote its separator
    }
    if (!stack_.empty()) {
      PGXD_CHECK_MSG(stack_.back().array, "json: object value without a key");
      if (stack_.back().count++ > 0) out_ += ',';
    }
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

}  // namespace pgxd::obs
