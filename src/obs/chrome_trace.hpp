// Chrome trace_event exporter for sim::Trace spans: produces the JSON
// object format ({"traceEvents": [...], "displayTimeUnit": "ms"}) that
// chrome://tracing and Perfetto load directly. Each trace lane becomes a
// thread ("rank N") of one process; every span is a complete ("ph": "X")
// event with microsecond timestamps and its byte metadata under args.
//
// Causal extensions: every sim::Trace::Flow edge becomes a flow-event pair
// ("ph": "s" on the sender lane, "ph": "f" with "bp": "e" on the receiver
// lane, matched by id + cat), which the viewer draws as arrows between
// rank lanes — retransmitted and duplicate frames carry those flags under
// args, so fault-fabric redelivery is visible at a glance. A time-series
// dump (obs::TimeSeriesSampler) adds counter events ("ph": "C") that
// render as live per-rank graphs under the lanes.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/timeseries.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace pgxd::obs {

// Serializes `trace` as a Chrome trace_event JSON document. `process_name`
// labels the single process row in the viewer; `timeseries` (optional)
// appends its series as counter events.
inline std::string chrome_trace_json(const sim::Trace& trace,
                                     const std::string& process_name = "pgxd",
                                     const TimeSeriesDump* timeseries =
                                         nullptr) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Metadata events: one process name, one named thread per lane (emitted
  // for every lane, including span-less ones, so rank numbering in the
  // viewer matches the cluster).
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.kv("tid", 0);
  w.key("args");
  w.begin_object();
  w.kv("name", process_name);
  w.end_object();
  w.end_object();
  for (std::size_t lane = 0; lane < trace.lane_count(); ++lane) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::uint64_t>(lane));
    w.key("args");
    w.begin_object();
    w.kv("name", "rank " + std::to_string(lane));
    w.end_object();
    w.end_object();
  }

  for (const auto& s : trace.spans()) {
    w.begin_object();
    w.kv("name", s.label);
    w.kv("ph", "X");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::uint64_t>(s.lane));
    // trace_event timestamps are microseconds; SimTime is integer ns.
    w.kv("ts", static_cast<double>(s.begin) / 1e3);
    w.kv("dur", static_cast<double>(s.end - s.begin) / 1e3);
    w.key("args");
    w.begin_object();
    w.kv("bytes", s.bytes);
    w.end_object();
    w.end_object();
  }

  // Flow events: one "s"/"f" pair per recorded physical frame. The pair is
  // matched by (cat, id); ids are unique per edge (not per span id — a
  // retransmitted message draws one arrow per landed copy). "bp": "e"
  // binds the arrow head to the enclosing receiver slice.
  std::uint64_t edge_id = 0;
  for (const auto& f : trace.flows()) {
    const bool ack = f.kind == sim::Trace::FlowKind::kAck;
    const std::string name =
        ack ? std::string("ack") : trace.tag_label(f.tag);
    const char* cat = ack ? "flow.ack" : "flow.data";
    const std::uint64_t id = edge_id++;

    w.begin_object();
    w.kv("name", name);
    w.kv("cat", cat);
    w.kv("ph", "s");
    w.kv("id", id);
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::uint64_t>(f.src));
    w.kv("ts", static_cast<double>(f.send) / 1e3);
    w.key("args");
    w.begin_object();
    w.kv("span_id", f.span_id);
    w.kv("bytes", f.bytes);
    w.kv("retransmit", f.retransmit);
    w.kv("duplicate", f.duplicate);
    w.end_object();
    w.end_object();

    w.begin_object();
    w.kv("name", name);
    w.kv("cat", cat);
    w.kv("ph", "f");
    w.kv("bp", "e");
    w.kv("id", id);
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::uint64_t>(f.dst));
    w.kv("ts", static_cast<double>(f.recv) / 1e3);
    w.end_object();
  }

  // Counter events: each sampled point of each series, rendered by the
  // viewer as a stacked graph track named after the series.
  if (timeseries != nullptr) {
    for (const auto& series : timeseries->series) {
      for (const auto& p : series.points) {
        w.begin_object();
        w.kv("name", series.name);
        w.kv("ph", "C");
        w.kv("pid", 0);
        w.kv("ts", static_cast<double>(p.t) / 1e3);
        w.key("args");
        w.begin_object();
        w.kv("value", p.v);
        w.end_object();
        w.end_object();
      }
    }
  }

  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

}  // namespace pgxd::obs
