// Chrome trace_event exporter for sim::Trace spans: produces the JSON
// object format ({"traceEvents": [...], "displayTimeUnit": "ms"}) that
// chrome://tracing and Perfetto load directly. Each trace lane becomes a
// thread ("rank N") of one process; every span is a complete ("ph": "X")
// event with microsecond timestamps and its byte metadata under args.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace pgxd::obs {

// Serializes `trace` as a Chrome trace_event JSON document. `process_name`
// labels the single process row in the viewer.
inline std::string chrome_trace_json(const sim::Trace& trace,
                                     const std::string& process_name = "pgxd") {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Metadata events: one process name, one named thread per lane (emitted
  // for every lane, including span-less ones, so rank numbering in the
  // viewer matches the cluster).
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.kv("tid", 0);
  w.key("args");
  w.begin_object();
  w.kv("name", process_name);
  w.end_object();
  w.end_object();
  for (std::size_t lane = 0; lane < trace.lane_count(); ++lane) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::uint64_t>(lane));
    w.key("args");
    w.begin_object();
    w.kv("name", "rank " + std::to_string(lane));
    w.end_object();
    w.end_object();
  }

  for (const auto& s : trace.spans()) {
    w.begin_object();
    w.kv("name", s.label);
    w.kv("ph", "X");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::uint64_t>(s.lane));
    // trace_event timestamps are microseconds; SimTime is integer ns.
    w.kv("ts", static_cast<double>(s.begin) / 1e3);
    w.kv("dur", static_cast<double>(s.end - s.begin) / 1e3);
    w.key("args");
    w.begin_object();
    w.kv("bytes", s.bytes);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

}  // namespace pgxd::obs
