// Per-rank metrics registry: counters, gauges, and two histogram flavors
// (fixed-bucket and HDR-style log-linear), mergeable across ranks the same
// way RunningStats::merge folds partial streams.
//
// Cost model: machines in this codebase are cooperatively scheduled
// coroutines on one OS thread, so metric updates are plain integer writes —
// no locks, no atomics. The *lookup* (name -> instrument) is a map probe;
// hot paths should resolve an instrument once and bump the returned
// reference (see DistributedSorter's exchange loop), which makes an update
// a single add on a cached pointer.
//
// Naming scheme (docs/ARCHITECTURE.md "Observability"):
//   <subsystem>.<object>.<property>[_<unit>]
// e.g. sort.exchange.chunks_sent, net.nic.bytes_received, comm.reliable.retransmits.
// Counters are monotone totals; gauges are last-written levels (merge takes
// the max — every gauge in this codebase is a peak or a high-water mark);
// histograms record value distributions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace pgxd::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }
  void merge(const Counter& o) { v_ += o.v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }
  // Gauges in this codebase are peaks/high-water marks; merging ranks keeps
  // the cluster-wide peak.
  void merge(const Gauge& o) { v_ = v_ > o.v_ ? v_ : o.v_; }

 private:
  double v_ = 0.0;
};

// HDR-style log-linear histogram over unsigned 64-bit values: one octave per
// power of two, kSubBuckets linear sub-buckets per octave, so the quantile
// error is bounded by 1/kSubBuckets (~3%) at any magnitude. Values 0..
// kSubBuckets-1 are exact. Memory: one u64 per bucket, ~2KB total.
class LogHistogram {
 public:
  static constexpr int kSubBits = 5;  // 32 sub-buckets per octave
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;
  // Octaves above the linear range: values with bit_width in
  // (kSubBits, 64], each contributing kSubBuckets buckets.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBits) * (kSubBuckets / 2);

  void add(std::uint64_t v, std::uint64_t count = 1);

  std::uint64_t count() const { return n_; }
  std::uint64_t min() const { return n_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  std::uint64_t sum() const { return sum_; }
  double mean() const {
    return n_ ? static_cast<double>(sum_) / static_cast<double>(n_) : 0.0;
  }
  // Smallest recorded-bucket lower bound b such that at least q of the mass
  // is <= bucket b's upper bound. q in [0, 1].
  std::uint64_t quantile(double q) const;

  void merge(const LogHistogram& o);

  // Lower bound of the bucket holding `v` (the histogram's resolution).
  static std::uint64_t bucket_floor(std::uint64_t v);

 private:
  static std::size_t bucket_index(std::uint64_t v);
  static std::uint64_t bucket_lower(std::size_t index);

  std::vector<std::uint64_t> counts_;  // lazily sized to kBucketCount
  std::uint64_t n_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range values clamp into
// the edge buckets. For quantities with a known, narrow range (ratios,
// shares) where uniform resolution beats log-linear.
class FixedHistogram {
 public:
  FixedHistogram() : FixedHistogram(0.0, 1.0, 10) {}
  FixedHistogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t count = 1);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t b) const { return counts_[b]; }
  std::uint64_t count() const { return n_; }

  // Merging requires identical bucket layouts.
  void merge(const FixedHistogram& o);

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_ = 0;
};

// One rank's metrics. Instruments are created on first use and live for the
// registry's lifetime, so references returned here stay valid — resolve
// once, bump many times.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) { return counters_[key(name)]; }
  Gauge& gauge(std::string_view name) { return gauges_[key(name)]; }
  LogHistogram& histogram(std::string_view name) {
    return histograms_[key(name)];
  }
  FixedHistogram& fixed_histogram(std::string_view name, double lo, double hi,
                                  std::size_t buckets) {
    auto it = fixed_.find(key(name));
    if (it == fixed_.end())
      it = fixed_.emplace(key(name), FixedHistogram(lo, hi, buckets)).first;
    return it->second;
  }

  // Read-only views for exporters/tests; zero-valued instruments included.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LogHistogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, FixedHistogram>& fixed_histograms() const {
    return fixed_;
  }

  std::uint64_t counter_value(std::string_view name) const {
    auto it = counters_.find(key(name));
    return it == counters_.end() ? 0 : it->second.value();
  }
  double gauge_value(std::string_view name) const {
    auto it = gauges_.find(key(name));
    return it == gauges_.end() ? 0.0 : it->second.value();
  }

  // Folds another rank's registry into this one: counters add, gauges keep
  // the max, histograms merge bucket-wise. Instruments present only in
  // `other` are created here.
  void merge(const MetricsRegistry& other);

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, min,
  // max, mean, p50, p90, p99}}, "fixed_histograms": {...}} as one object.
  void write_json(JsonWriter& w) const;

 private:
  static std::string key(std::string_view name) { return std::string(name); }

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LogHistogram> histograms_;
  std::map<std::string, FixedHistogram> fixed_;
};

// Merges a set of per-rank registries into one cluster-wide view.
MetricsRegistry merge_all(const std::vector<MetricsRegistry>& per_rank);

}  // namespace pgxd::obs
