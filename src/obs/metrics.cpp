#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace pgxd::obs {

// ---- LogHistogram ----------------------------------------------------------
//
// Layout: values below kSubBuckets map to bucket == value (exact). A value
// with bit_width w > kSubBits lands in octave (w - kSubBits); within the
// octave the top kSubBits-1 bits below the leading bit select one of
// kSubBuckets/2 linear sub-buckets (the lower half of each octave overlaps
// the previous octave's range, so only half the sub-buckets are new).

std::size_t LogHistogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int w = static_cast<int>(std::bit_width(v));  // > kSubBits
  const int octave = w - kSubBits;
  const auto sub = static_cast<std::size_t>(
      (v >> (w - kSubBits)) & ((kSubBuckets / 2) - 1));
  return kSubBuckets + static_cast<std::size_t>(octave - 1) * (kSubBuckets / 2) +
         sub;
}

std::uint64_t LogHistogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t rel = index - kSubBuckets;
  const int octave = static_cast<int>(rel / (kSubBuckets / 2)) + 1;
  const std::uint64_t sub = rel % (kSubBuckets / 2);
  // Leading bit at position (kSubBits - 1 + octave); sub-bucket stride is
  // 2^octave.
  return ((kSubBuckets / 2) + sub) << octave;
}

std::uint64_t LogHistogram::bucket_floor(std::uint64_t v) {
  return bucket_lower(bucket_index(v));
}

void LogHistogram::add(std::uint64_t v, std::uint64_t count) {
  if (count == 0) return;
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  counts_[bucket_index(v)] += count;
  if (n_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  n_ += count;
  sum_ += v * count;
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (n_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(n_ - 1));  // 0-based rank
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen > target) {
      // Clamp to the observed extremes so tiny histograms report exact
      // values instead of bucket bounds.
      return std::clamp(bucket_lower(b), min_, max_);
    }
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& o) {
  if (o.n_ == 0) return;
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += o.counts_[b];
  if (n_ == 0 || o.min_ < min_) min_ = o.min_;
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
  sum_ += o.sum_;
}

// ---- FixedHistogram --------------------------------------------------------

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PGXD_CHECK(hi > lo);
  PGXD_CHECK(buckets > 0);
}

void FixedHistogram::add(double x, std::uint64_t count) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(b)] += count;
  n_ += count;
}

void FixedHistogram::merge(const FixedHistogram& o) {
  PGXD_CHECK_MSG(lo_ == o.lo_ && hi_ == o.hi_ &&
                     counts_.size() == o.counts_.size(),
                 "fixed histogram merge requires identical bucket layouts");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += o.counts_[b];
  n_ += o.n_;
}

// ---- MetricsRegistry -------------------------------------------------------

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  for (const auto& [name, h] : other.fixed_) {
    auto it = fixed_.find(name);
    if (it == fixed_.end())
      fixed_.emplace(name, h);
    else
      it->second.merge(h);
  }
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.kv("count", h.count());
    w.kv("min", h.min());
    w.kv("max", h.max());
    w.kv("mean", h.mean());
    w.kv("p50", h.quantile(0.50));
    w.kv("p90", h.quantile(0.90));
    w.kv("p99", h.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.key("fixed_histograms");
  w.begin_object();
  for (const auto& [name, h] : fixed_) {
    w.key(name);
    w.begin_object();
    w.kv("lo", h.lo());
    w.kv("hi", h.hi());
    w.kv("count", h.count());
    w.key("buckets");
    w.begin_array();
    for (std::size_t b = 0; b < h.buckets(); ++b) w.value(h.bucket_count(b));
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

MetricsRegistry merge_all(const std::vector<MetricsRegistry>& per_rank) {
  MetricsRegistry merged;
  for (const auto& r : per_rank) merged.merge(r);
  return merged;
}

}  // namespace pgxd::obs
