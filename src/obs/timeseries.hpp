// Time-series telemetry: periodic sim-time snapshots of cheap probes
// (mailbox depth, BufferPool occupancy, failure-detector suspicion, ...)
// into fixed-size ring buffers. A TimeSeriesSampler owns named probes and
// a sampling coroutine driven by sim::Timeout: the loop samples at the
// start instant and then every `interval`, and request_stop() cancels the
// armed timer outright, so an idle sampler never advances the clock or
// delays quiescence (same stop discipline as rt::FailureDetector).
//
// The collected data exports two ways: a `timeseries` JSON block in the
// SortReport (TimeSeriesDump::write_json) and Chrome counter events
// ("ph":"C") via obs::chrome_trace_json, which Perfetto renders as live
// per-rank graphs under the rank lanes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "obs/json.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/timeout.hpp"

namespace pgxd::obs {

struct TimeSeriesPoint {
  sim::SimTime t = 0;
  double v = 0.0;

  TimeSeriesPoint() = default;
  TimeSeriesPoint(sim::SimTime t_in, double v_in) : t(t_in), v(v_in) {}
};

// Fixed-capacity ring buffer of (sim-time, value) points: pushing past
// capacity drops the oldest point and counts the drop, so a sampler left
// running on a long simulation has bounded memory and says how much
// history it shed.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity) : buf_(capacity) {
    PGXD_CHECK(capacity > 0);
  }

  void push(sim::SimTime t, double v) {
    if (size_ == buf_.size()) {
      buf_[head_] = TimeSeriesPoint(t, v);
      head_ = (head_ + 1) % buf_.size();
      ++dropped_;
      return;
    }
    buf_[(head_ + size_) % buf_.size()] = TimeSeriesPoint(t, v);
    ++size_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  // Points shed off the old end after the ring filled.
  std::uint64_t dropped() const { return dropped_; }
  // i in [0, size()), oldest first.
  const TimeSeriesPoint& at(std::size_t i) const {
    PGXD_CHECK(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

 private:
  std::vector<TimeSeriesPoint> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

// Value snapshot of a sampler, detached from the probes — what reports
// embed and exporters consume after the simulation has completed.
struct TimeSeriesDump {
  struct Series {
    std::string name;
    std::size_t capacity = 0;
    std::uint64_t dropped = 0;
    std::vector<TimeSeriesPoint> points;

    Series() = default;
  };

  sim::SimTime interval = 0;
  std::vector<Series> series;

  bool empty() const { return series.empty(); }

  // {"interval_ns": n, "series": {"<name>": {"capacity": c, "dropped": d,
  //  "points": [[t_ns, value], ...]}, ...}}
  void write_json(JsonWriter& w) const {
    w.begin_object();
    w.key("interval_ns");
    w.value(static_cast<std::uint64_t>(interval));
    w.key("series");
    w.begin_object();
    for (const auto& s : series) {
      w.key(s.name);
      w.begin_object();
      w.key("capacity");
      w.value(static_cast<std::uint64_t>(s.capacity));
      w.key("dropped");
      w.value(s.dropped);
      w.key("points");
      w.begin_array();
      for (const auto& p : s.points) {
        w.begin_array();
        w.value(static_cast<std::uint64_t>(p.t));
        w.value(p.v);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
};

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(sim::SimTime interval = 200 * sim::kMicrosecond,
                             std::size_t capacity = 512)
      : interval_(interval), capacity_(capacity) {
    PGXD_CHECK(interval_ > 0);
  }

  // Registers a named probe. Probes run at every tick, on the simulation
  // thread, and must be cheap and side-effect-free (they observe live
  // cluster state mid-run).
  void add(std::string name, std::function<double()> probe) {
    entries_.push_back(Entry{std::move(name), std::move(probe),
                             TimeSeries(capacity_)});
  }

  std::size_t series_count() const { return entries_.size(); }
  sim::SimTime interval() const { return interval_; }
  bool running() const { return running_; }

  // One synchronous snapshot of every probe at instant `now` — also usable
  // without a running loop (tests, end-of-run final sample).
  void sample_once(sim::SimTime now) {
    for (auto& e : entries_) e.data.push(now, e.probe());
  }

  // Spawns the sampling loop as a root simulation process. The caller
  // (Cluster::run_on) pairs it with request_stop() when the workload
  // completes, exactly like the failure detector's lifecycle.
  void start(sim::Simulator& sim) {
    PGXD_CHECK_MSG(!running_, "sampler started twice without a stop");
    stopping_ = false;
    running_ = true;
    sim.spawn(loop(sim));
  }

  // Stops the loop at the current instant: the armed sim::Timeout is
  // cancelled (its deadline event is removed outright), so stopping never
  // advances the simulated clock.
  void request_stop() {
    stopping_ = true;
    if (timer_ != nullptr) timer_->cancel();
  }

  TimeSeriesDump dump() const {
    TimeSeriesDump out;
    out.interval = interval_;
    out.series.reserve(entries_.size());
    for (const auto& e : entries_) {
      TimeSeriesDump::Series s;
      s.name = e.name;
      s.capacity = e.data.capacity();
      s.dropped = e.data.dropped();
      s.points.reserve(e.data.size());
      for (std::size_t i = 0; i < e.data.size(); ++i)
        s.points.push_back(e.data.at(i));
      out.series.push_back(std::move(s));
    }
    return out;
  }

 private:
  struct Entry {
    std::string name;
    std::function<double()> probe;
    TimeSeries data;

    Entry(std::string n, std::function<double()> p, TimeSeries d)
        : name(std::move(n)), probe(std::move(p)), data(std::move(d)) {}
  };

  sim::Task<void> loop(sim::Simulator& sim) {
    while (!stopping_) {
      sample_once(sim.now());
      sim::Timeout tick(sim, interval_);
      timer_ = &tick;
      co_await tick.wait();
      timer_ = nullptr;
    }
    running_ = false;
  }

  std::vector<Entry> entries_;
  sim::SimTime interval_;
  std::size_t capacity_;
  bool stopping_ = false;
  bool running_ = false;
  sim::Timeout* timer_ = nullptr;
};

}  // namespace pgxd::obs
